"""Distributed farm: transport, delta snapshots, standby failover, chaos.

Covers the shard-process layer end to end: framed transport edge cases
(oversized frames, partial reads, timeouts, attributed close), delta
snapshot byte-identical reconstruction and compaction, hot-standby
promotion under SIGKILL chaos, double-kill permanent failure with the
conservation ledger intact, two-run determinism, and the robustness
satellites (bounded timeline ring, seeded backoff jitter, atomic
forensics/snapshot writes with attributed torn-file errors).
"""

import json
import os
import socket
import struct

import pytest

from repro.fault.model import (
    ALL_FAULT_KINDS,
    FaultError,
    PROCESS_KILL,
    ProcessKill,
    generate_kill_plan,
)
from repro.flow import build_system
from repro.isa import MD16_TEP
from repro.obs import (
    FORENSICS_VERSION,
    ShardAggregator,
    load_forensics_bundle,
    merged_chrome_trace,
    write_forensics_bundle,
)
from repro.resil import (
    Channel,
    DeltaChain,
    FarmLedger,
    FrameTooLarge,
    MachineSnapshot,
    RestartPolicy,
    RetryPolicy,
    ShardConfig,
    ShardSupervisor,
    SnapshotError,
    TransportClosed,
    TransportTimeout,
    apply_delta,
    diff_snapshots,
    encode_frame,
    generate_event_stream,
    read_snapshot,
    snapshot_fingerprint,
    snapshot_machine,
    write_snapshot,
)
from repro.resil.standby import StandbyLog
from repro.statechart import ChartBuilder


def pingpong_chart():
    b = ChartBuilder("pingpong")
    b.event("GO", period=500).event("BACK")
    b.condition("FLAG")
    with b.or_state("Top", default="A"):
        b.basic("A").transition("B", label="GO/Work()")
        b.basic("B").transition("A", label="BACK/SetTrue(FLAG)")
    return b.build()


PINGPONG_ROUTINES = """
int:16 total;
void Work() { total = total + 3; }
"""


@pytest.fixture(scope="module")
def system():
    return build_system(pingpong_chart(), PINGPONG_ROUTINES, MD16_TEP)


# ---------------------------------------------------------------------------
# transport edge cases
# ---------------------------------------------------------------------------

class TestTransport:
    def _pair(self, **kwargs):
        a, b = socket.socketpair()
        return Channel(a, **kwargs), b

    def test_roundtrip_and_counters(self):
        channel, peer = self._pair()
        other = Channel(peer)
        channel.send({"op": "ping", "token": 7})
        assert other.recv(1.0) == {"op": "ping", "token": 7}
        assert channel.frames_sent == 1
        assert other.frames_received == 1
        channel.close()
        other.close()

    def test_partial_read_reassembly(self):
        """A frame delivered one byte at a time still decodes whole."""
        channel, peer = self._pair()
        frame = encode_frame({"op": "result", "items": list(range(50))})
        for i in range(len(frame)):
            peer.sendall(frame[i:i + 1])
        message = channel.recv(5.0)
        assert message["items"] == list(range(50))
        channel.close()
        peer.close()

    def test_oversized_frame_rejected_before_payload(self):
        """A hostile header is refused without reading the payload."""
        channel, peer = self._pair(max_frame=1024)
        peer.sendall(struct.pack(">I", 1 << 30))
        with pytest.raises(FrameTooLarge) as err:
            channel.recv(1.0)
        assert "1073741824" in str(err.value)
        channel.close()
        peer.close()

    def test_oversized_frame_rejected_on_send(self):
        channel, peer = self._pair(max_frame=16)
        with pytest.raises(FrameTooLarge):
            channel.send({"blob": "x" * 64})
        channel.close()
        peer.close()

    def test_timeout_is_not_a_hang(self):
        channel, peer = self._pair()
        with pytest.raises(TransportTimeout):
            channel.recv(0.05)
        channel.close()
        peer.close()

    def test_death_mid_frame_is_attributed(self):
        """A peer dying mid-frame names how much of what was lost."""
        channel, peer = self._pair()
        frame = encode_frame({"op": "result"})
        peer.sendall(frame[:7])  # header + 3 payload bytes, then death
        peer.close()
        with pytest.raises(TransportClosed) as err:
            channel.recv(1.0)
        assert "3 of" in str(err.value)
        channel.close()

    def test_retry_policy_jitter_is_seeded(self):
        policy = RetryPolicy(max_attempts=4, seed=9)
        first = list(policy.delays("shard1"))
        again = list(policy.delays("shard1"))
        other = list(policy.delays("shard2"))
        assert first == again
        assert first != other
        base = RetryPolicy(max_attempts=4, seed=9, jitter=0.0)
        for lower, jittered in zip(base.delays(""), first):
            assert jittered >= lower


# ---------------------------------------------------------------------------
# delta snapshots
# ---------------------------------------------------------------------------

def _snapshots_apart(system, first_steps, more_steps):
    machine = system.make_machine()
    events = sorted(system.chart.events)
    for i in range(first_steps):
        machine.step([events[i % len(events)]])
    base = snapshot_machine(machine, include_attachments=False)
    for i in range(more_steps):
        machine.step([events[i % len(events)]])
    target = snapshot_machine(machine, include_attachments=False)
    return base, target


class TestDeltaSnapshots:
    def test_reconstruction_is_byte_identical(self, system):
        base, target = _snapshots_apart(system, 5, 7)
        delta = diff_snapshots(base, target)
        rebuilt = apply_delta(base, delta)
        assert rebuilt.to_json_str() == target.to_json_str()

    def test_delta_is_smaller_than_full(self, system):
        base, target = _snapshots_apart(system, 5, 2)
        delta = diff_snapshots(base, target)
        assert delta.encoded_bytes < len(target.to_json_str())

    def test_wrong_base_is_refused(self, system):
        base, target = _snapshots_apart(system, 5, 7)
        delta = diff_snapshots(base, target)
        with pytest.raises(SnapshotError) as err:
            apply_delta(target, delta)
        assert "base" in str(err.value)

    def test_roundtrip_through_wire_document(self, system):
        from repro.resil import DeltaSnapshot

        base, target = _snapshots_apart(system, 3, 4)
        delta = diff_snapshots(base, target)
        wire = json.loads(delta.to_json_str())
        decoded = DeltaSnapshot.from_json(wire)
        rebuilt = apply_delta(base, decoded)
        assert rebuilt.to_json_str() == target.to_json_str()

    def test_malformed_document_is_attributed(self):
        from repro.resil import DeltaSnapshot

        with pytest.raises(SnapshotError):
            DeltaSnapshot.from_json({"not": "a delta"})
        with pytest.raises(SnapshotError):
            DeltaSnapshot.from_json({"version": 999})

    def test_chain_emits_full_then_deltas_and_compacts(self, system):
        machine = system.make_machine()
        events = sorted(system.chart.events)
        chain = DeltaChain(compact_ratio=1.0, max_deltas=3)
        kinds = []
        for i in range(10):
            machine.step([events[i % len(events)]])
            kind, _doc = chain.record(
                snapshot_machine(machine, include_attachments=False))
            kinds.append(kind)
        assert kinds[0] == "full"
        assert "delta" in kinds
        # max_deltas=3 forces a compaction full within any 4-step window
        for i in range(len(kinds) - 4):
            assert "full" in kinds[i:i + 5]
        assert chain.compactions >= 1

    def test_chain_deltas_always_target_last_full(self, system):
        machine = system.make_machine()
        events = sorted(system.chart.events)
        chain = DeltaChain(compact_ratio=1.0, max_deltas=100)
        last_full = None
        for i in range(8):
            machine.step([events[i % len(events)]])
            snapshot = snapshot_machine(machine,
                                        include_attachments=False)
            kind, doc = chain.record(snapshot)
            if kind == "full":
                last_full = MachineSnapshot.from_json(doc)
            else:
                from repro.resil import DeltaSnapshot

                rebuilt = apply_delta(last_full,
                                      DeltaSnapshot.from_json(doc))
                assert rebuilt.to_json_str() == snapshot.to_json_str()


# ---------------------------------------------------------------------------
# process-kill fault model
# ---------------------------------------------------------------------------

class TestProcessKillModel:
    def test_kind_stays_out_of_machine_taxonomy(self):
        assert PROCESS_KILL not in ALL_FAULT_KINDS

    def test_validation(self):
        with pytest.raises(FaultError):
            ProcessKill(tick=0, shard=0)
        with pytest.raises(FaultError):
            ProcessKill(tick=1, shard=-1)
        with pytest.raises(FaultError):
            ProcessKill(tick=1, shard=0, target="bystander")

    def test_plan_is_seeded_and_deterministic(self):
        one = generate_kill_plan(3, 4, seed=11, max_tick=30)
        two = generate_kill_plan(3, 4, seed=11, max_tick=30)
        assert one == two
        assert len(one) == 4
        assert len({(k.tick, k.shard) for k in one}) == 4
        assert generate_kill_plan(3, 4, seed=12, max_tick=30) != one


# ---------------------------------------------------------------------------
# standby log
# ---------------------------------------------------------------------------

class TestStandbyLog:
    def test_take_through_watermark(self):
        log = StandbyLog()
        log.append([{"seq": i} for i in range(6)])
        assert [d["seq"] for d in log.take_through(4)] == [0, 1, 2, 3]
        assert log.replayed == 4
        # already at the watermark: nothing more to replay
        assert log.take_through(4) == []
        assert [d["seq"] for d in log.drain()] == [4, 5]
        assert log.replayed == 6


# ---------------------------------------------------------------------------
# the distributed farm
# ---------------------------------------------------------------------------

def _run_farm(system, *, n_shards=3, standby=False, kill_plan=(),
              policy=None, items=48, seed=3, config=None,
              aggregator=None):
    supervisor = ShardSupervisor(
        system, n_shards=n_shards, standby=standby,
        config=config or ShardConfig(checkpoint_every=4, batch=2),
        policy=policy, kill_plan=list(kill_plan), aggregator=aggregator)
    stream = generate_event_stream(system.chart.events, items, seed=seed)
    return supervisor.run(stream, arrivals_per_tick=5)


class TestShardFarm:
    def test_clean_run_conserves_and_drains(self, system):
        aggregator = ShardAggregator()
        report = _run_farm(system, aggregator=aggregator)
        assert report.submitted == 48
        assert report.processed == 48
        assert report.conservation() == []
        assert aggregator.conservation() == []
        assert report.in_flight == 0
        assert all(s["state"] == "running" for s in report.shards)

    def test_kill_without_standby_respawns_from_checkpoint(self, system):
        report = _run_farm(
            system, kill_plan=[ProcessKill(tick=4, shard=1,
                                           after_items=1)])
        assert report.kills_fired == 1
        assert report.respawns == 1
        assert report.promotions == 0
        assert report.processed == report.submitted
        assert report.conservation() == []
        # traffic rerouted away while the shard was down
        assert report.rerouted >= 1

    def test_kill_with_standby_promotes(self, system):
        report = _run_farm(
            system, standby=True,
            kill_plan=[ProcessKill(tick=4, shard=1, after_items=1)])
        assert report.kills_fired == 1
        assert report.promotions == 1
        assert report.respawns == 0
        assert report.processed == report.submitted
        assert report.conservation() == []
        kinds = [e["kind"] for e in report.timeline]
        assert "process-kill" in kinds
        assert "promotion" in kinds

    def test_standby_verifies_delta_synced_checkpoints(self, system):
        report = _run_farm(system, standby=True, items=60)
        verified = sum(s["standby_verified"] for s in report.shards)
        divergences = sum(s["standby_divergences"] for s in report.shards)
        assert verified > 0
        assert divergences == 0

    def test_double_kill_fails_permanently_with_attribution(self, system):
        report = _run_farm(
            system, n_shards=2, standby=True,
            policy=RestartPolicy(max_restarts=0),
            kill_plan=[ProcessKill(tick=4, shard=1, target="standby"),
                       ProcessKill(tick=5, shard=1, after_items=0)])
        assert report.permanent_failures == 1
        assert report.shards[1]["state"] == "failed"
        # every in-flight item on the lost shard is attributed
        assert report.shed.get("shard-lost", 0) \
            + report.rejected.get("shard-lost", 0) > 0
        assert report.conservation() == []
        kinds = [e["kind"] for e in report.timeline]
        assert "standby-lost" in kinds
        assert "permanent-failure" in kinds

    def test_hung_worker_is_detected_and_promoted(self, system):
        supervisor = ShardSupervisor(
            system, n_shards=2, standby=True,
            config=ShardConfig(checkpoint_every=4, batch=2,
                               request_timeout=0.3, miss_threshold=2))
        supervisor.start()
        try:
            # wedge shard0's primary: alive but silent
            supervisor.shards[0].channel.send({"op": "hang",
                                               "seconds": 30.0})
            stream = generate_event_stream(system.chart.events, 30,
                                           seed=3)
            report = supervisor.run(stream, arrivals_per_tick=5)
        finally:
            supervisor.shutdown()
        assert report.promotions == 1
        assert report.conservation() == []
        kinds = [e["kind"] for e in report.timeline]
        assert "missed-heartbeat" in kinds
        assert "worker-lost" in kinds

    def test_two_runs_same_seed_are_byte_identical(self, system):
        def once():
            report = _run_farm(
                system, standby=True,
                kill_plan=generate_kill_plan(3, 2, seed=5, max_tick=8))
            return json.dumps(report.to_json(), sort_keys=True)

        assert once() == once()


# ---------------------------------------------------------------------------
# satellites: timeline ring, backoff jitter, atomic writes
# ---------------------------------------------------------------------------

class TestTimelineRing:
    def test_ring_bounds_and_counts_drops(self):
        ledger = FarmLedger(timeline_limit=5)
        for tick in range(8):
            ledger.note(tick, "shed", "worker0")
        assert len(ledger.timeline) == 5
        assert ledger.timeline_dropped == 3
        assert [e["tick"] for e in ledger.timeline] == [3, 4, 5, 6, 7]

    def test_unlimited_when_disabled(self):
        ledger = FarmLedger(timeline_limit=None)
        for tick in range(100):
            ledger.note(tick, "shed")
        assert len(ledger.timeline) == 100
        assert ledger.timeline_dropped == 0

    def test_consumers_report_truncation(self):
        ledger = FarmLedger(timeline_limit=2)
        for tick in range(5):
            ledger.note(tick, "restart", "worker0")
        trace = merged_chrome_trace(
            {}, supervisor_events=ledger.timeline,
            dropped_events=ledger.timeline_dropped)
        assert trace["otherData"]["supervisor_timeline_dropped"] == 3
        names = [e["name"] for e in trace["traceEvents"]]
        assert "timeline-truncated" in names


class TestBackoffJitter:
    def test_default_schedule_is_unchanged(self):
        policy = RestartPolicy()
        assert [policy.backoff(n) for n in range(5)] == [2, 4, 8, 16, 32]

    def test_jitter_is_seeded_and_bounded(self):
        policy = RestartPolicy(jitter_ticks=4, jitter_seed=7)
        first = [policy.backoff(n, key="shard0") for n in range(5)]
        again = [policy.backoff(n, key="shard0") for n in range(5)]
        assert first == again
        for n, jittered in enumerate(first):
            base = RestartPolicy().backoff(n)
            assert base <= jittered <= base + 4

    def test_jitter_desynchronizes_workers(self):
        policy = RestartPolicy(jitter_ticks=16, jitter_seed=7)
        schedules = {name: tuple(policy.backoff(n, key=name)
                                 for n in range(4))
                     for name in ("w0", "w1", "w2", "w3")}
        assert len(set(schedules.values())) > 1


class TestAtomicWrites:
    def test_forensics_write_is_atomic(self, tmp_path):
        bundle = {"version": FORENSICS_VERSION, "cause": {"kind": "test"},
                  "ring": [], "recorded": 0, "dropped": 0, "capacity": 8}
        path = tmp_path / "bundle.json"
        write_forensics_bundle(bundle, str(path))
        assert load_forensics_bundle(str(path))["capacity"] == 8
        assert [p.name for p in tmp_path.iterdir()] == ["bundle.json"]

    def test_truncated_bundle_error_is_attributed(self, tmp_path):
        bundle = {"version": FORENSICS_VERSION, "cause": {"kind": "test"},
                  "ring": [], "recorded": 0, "dropped": 0, "capacity": 8}
        path = tmp_path / "bundle.json"
        write_forensics_bundle(bundle, str(path))
        torn = path.read_text()[:len(path.read_text()) // 2]
        path.write_text(torn)
        with pytest.raises(ValueError) as err:
            load_forensics_bundle(str(path))
        assert not isinstance(err.value, json.JSONDecodeError)
        assert "truncated or corrupt" in str(err.value)
        assert "bundle.json" in str(err.value)

    def test_snapshot_file_roundtrip_and_torn_file(self, system,
                                                   tmp_path):
        machine = system.make_machine()
        machine.step([sorted(system.chart.events)[0]])
        snapshot = snapshot_machine(machine, include_attachments=False)
        path = tmp_path / "ckpt.json"
        write_snapshot(snapshot, str(path))
        loaded = read_snapshot(str(path))
        assert loaded.to_json_str() == snapshot.to_json_str()
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt.json"]
        path.write_text(path.read_text()[:40])
        with pytest.raises(SnapshotError) as err:
            read_snapshot(str(path))
        assert "truncated or corrupt" in str(err.value)


class TestShardAggregator:
    def test_conservation_checked_per_sample(self):
        aggregator = ShardAggregator()
        aggregator.on_tick(1, {"submitted": 10, "accepted": 7,
                               "rejected": 2, "in_dispatch": 1,
                               "processed": 4, "shed": 1, "queued": 2},
                           {"shard0": {"queue_depth": 2}})
        assert aggregator.conservation() == []
        aggregator.on_tick(2, {"submitted": 10, "accepted": 6,
                               "rejected": 2, "in_dispatch": 1,
                               "processed": 4, "shed": 1, "queued": 2},
                           {})
        problems = aggregator.conservation()
        assert len(problems) == 2
        assert "tick 2" in problems[0]

    def test_ring_limit(self):
        aggregator = ShardAggregator(limit=2)
        row = {"submitted": 0, "accepted": 0, "rejected": 0,
               "in_dispatch": 0, "processed": 0, "shed": 0, "queued": 0}
        for tick in range(5):
            aggregator.on_tick(tick, row, {})
        assert len(aggregator) == 2
        assert aggregator.dropped == 3
