"""Direct unit tests for the TEP simulator: flags, shifts, faults."""

import pytest

from repro.isa import (
    CustomInstruction,
    Imm,
    Instruction,
    LabelRef,
    MD16_TEP,
    MINIMAL_TEP,
    Mem,
    Op,
    PortRef,
    Reg,
    SignalRef,
    StorageClass,
    cycle_cost,
)
from repro.pscp.tep import SimplePorts, Tep, TepError


def run_program(instructions, arch=MINIMAL_TEP, entry="main", ports=None,
                setup=None):
    program = [instructions[0].with_label(entry)] + list(instructions[1:])
    if program[-1].op not in (Op.RET, Op.TRET):
        program.append(Instruction(Op.RET))
    tep = Tep(arch, program, ports=ports)
    if setup:
        setup(tep)
    tep.run(entry)
    return tep


class TestFlags:
    def test_load_sets_zero_flag(self):
        tep = run_program([Instruction(Op.LDA, Imm(0))])
        assert tep.z and not tep.n

    def test_load_sets_negative_flag(self):
        tep = run_program([Instruction(Op.LDA, Imm(0x80))])
        assert tep.n and not tep.z

    def test_load_preserves_carry(self):
        # SUB sets borrow; the following LDA must not clear it
        tep = run_program([
            Instruction(Op.LDA, Imm(1)),
            Instruction(Op.SUB, Imm(2)),     # borrow -> C set
            Instruction(Op.LDA, Imm(7)),
        ])
        assert tep.c is True

    def test_add_carry_out(self):
        tep = run_program([
            Instruction(Op.LDA, Imm(200)),
            Instruction(Op.ADD, Imm(100)),
        ])
        assert tep.c is True
        assert tep.acc == (300) & 0xFF

    def test_adc_chains_carry(self):
        tep = run_program([
            Instruction(Op.LDA, Imm(255)),
            Instruction(Op.ADD, Imm(1)),     # carry out, acc = 0
            Instruction(Op.LDA, Imm(10)),
            Instruction(Op.ADC, Imm(0)),     # 10 + 0 + carry = 11
        ])
        assert tep.acc == 11

    def test_sbc_chains_borrow(self):
        tep = run_program([
            Instruction(Op.LDA, Imm(0)),
            Instruction(Op.SUB, Imm(1)),     # borrow
            Instruction(Op.LDA, Imm(10)),
            Instruction(Op.SBC, Imm(0)),     # 10 - 0 - 1 = 9
        ])
        assert tep.acc == 9

    def test_cmp_discards_result(self):
        tep = run_program([
            Instruction(Op.LDA, Imm(5)),
            Instruction(Op.CMP, Imm(5)),
        ])
        assert tep.acc == 5 and tep.z


class TestShiftsAndRotates:
    def test_shl_carry_out(self):
        tep = run_program([Instruction(Op.LDA, Imm(0x81)),
                           Instruction(Op.SHL)])
        assert tep.acc == 0x02 and tep.c

    def test_shr_carry_out(self):
        tep = run_program([Instruction(Op.LDA, Imm(0x01)),
                           Instruction(Op.SHR)])
        assert tep.acc == 0 and tep.c and tep.z

    def test_rcl_rotates_through_carry(self):
        tep = run_program([
            Instruction(Op.LDA, Imm(0x80)),
            Instruction(Op.SHL),             # acc=0, C=1
            Instruction(Op.LDA, Imm(0x01)),
            Instruction(Op.RCL),             # acc = 0x03
        ])
        assert tep.acc == 0x03

    def test_rcr_rotates_through_carry(self):
        tep = run_program([
            Instruction(Op.LDA, Imm(0x01)),
            Instruction(Op.SHR),             # acc=0, C=1
            Instruction(Op.LDA, Imm(0x80)),
            Instruction(Op.RCR),             # acc = 0xC0
        ])
        assert tep.acc == 0xC0


class TestMemoryAndIndexing:
    def test_internal_external_distinct(self):
        tep = run_program([
            Instruction(Op.LDA, Imm(5)),
            Instruction(Op.STA, Mem(3, StorageClass.INTERNAL)),
            Instruction(Op.LDA, Imm(9)),
            Instruction(Op.STA, Mem(3, StorageClass.EXTERNAL)),
        ])
        assert tep.internal[3] == 5
        assert tep.external[3] == 9

    def test_indexed_load_store(self):
        tep = run_program([
            Instruction(Op.LDA, Imm(2)),
            Instruction(Op.TAO),                       # OP = 2
            Instruction(Op.LDA, Imm(42)),
            Instruction(Op.STI, Mem(10)),              # mem[12] = 42
            Instruction(Op.LDA, Imm(0)),
            Instruction(Op.LDI, Mem(10)),              # acc = mem[12]
        ])
        assert tep.acc == 42
        assert tep.internal[12] == 42

    def test_registers(self):
        arch = MINIMAL_TEP.with_(register_file_size=4)
        tep = run_program([
            Instruction(Op.LDA, Imm(7)),
            Instruction(Op.STA, Reg(2)),
            Instruction(Op.LDA, Imm(0)),
            Instruction(Op.LDA, Reg(2)),
        ], arch=arch)
        assert tep.acc == 7


class TestFaults:
    def test_illegal_mul_without_unit(self):
        with pytest.raises(TepError, match="M/D"):
            run_program([Instruction(Op.LDA, Imm(2)),
                         Instruction(Op.MUL, Imm(3))])

    def test_illegal_neg_without_negator(self):
        with pytest.raises(TepError, match="negator"):
            run_program([Instruction(Op.NEG)])

    def test_division_by_zero_saturates(self):
        tep = run_program([Instruction(Op.LDA, Imm(9)),
                           Instruction(Op.DIV, Imm(0))], arch=MD16_TEP)
        assert tep.acc == 0xFFFF

    def test_runaway_detected(self):
        program = [Instruction(Op.JMP, LabelRef("main"), label="main")]
        tep = Tep(MINIMAL_TEP, program)
        with pytest.raises(TepError, match="runaway"):
            tep.run("main", max_cycles=500)

    def test_undefined_label(self):
        tep = Tep(MINIMAL_TEP, [Instruction(Op.NOP, label="main")])
        with pytest.raises(TepError, match="unknown entry"):
            tep.run("nowhere")

    def test_duplicate_label_rejected(self):
        with pytest.raises(TepError, match="duplicate"):
            Tep(MINIMAL_TEP, [Instruction(Op.NOP, label="x"),
                              Instruction(Op.NOP, label="x")])

    def test_unbalanced_return(self):
        # RET with an empty call stack below the entry depth
        program = [Instruction(Op.RET, label="main")]
        tep = Tep(MINIMAL_TEP, program)
        # a bare RET at entry depth just ends the run
        assert tep.run("main") > 0

    def test_call_stack_overflow_guard(self):
        program = [Instruction(Op.CALL, LabelRef("main"), label="main")]
        tep = Tep(MINIMAL_TEP, program)
        with pytest.raises(TepError, match="stack"):
            tep.run("main")


class TestPortsSignalsCustom:
    def test_ports_roundtrip(self):
        ports = SimplePorts({0x700: 5})
        tep = run_program([
            Instruction(Op.INP, PortRef(0x700)),
            Instruction(Op.ADD, Imm(1)),
            Instruction(Op.OUTP, PortRef(0x701)),
        ], ports=ports)
        assert ports.values[0x701] == 6
        assert ports.writes == [(0x701, 6)]

    def test_events_and_conditions(self):
        tep = run_program([
            Instruction(Op.EVSET, SignalRef(3)),
            Instruction(Op.CSET, SignalRef(1)),
            Instruction(Op.CCLR, SignalRef(2)),
            Instruction(Op.CTST, SignalRef(1)),
        ])
        assert tep.events_raised == {3}
        assert tep.condition_cache[1] is True
        assert tep.condition_cache[2] is False
        assert tep.acc == 1

    def test_custom_instruction_semantics(self):
        custom = CustomInstruction("fma", "((v0+v1)<<c1)", 2, 2)
        arch = MD16_TEP.with_(custom_instructions=(custom,))
        tep = run_program([
            Instruction(Op.LDA, Imm(10)),
            Instruction(Op.LDO, Imm(20)),
            Instruction(Op.CUSTOM, Imm(0)),
        ], arch=arch)
        assert tep.acc == 60

    def test_undefined_custom_faults(self):
        with pytest.raises(TepError, match="CUSTOM"):
            run_program([Instruction(Op.CUSTOM, Imm(5))], arch=MD16_TEP)


class TestCycleAccounting:
    def test_cycles_match_microprogram_lengths(self):
        program = [Instruction(Op.LDA, Imm(1), label="main"),
                   Instruction(Op.ADD, Mem(0)),
                   Instruction(Op.RET)]
        tep = Tep(MINIMAL_TEP, program)
        cycles = tep.run("main")
        expected = sum(cycle_cost(i, MINIMAL_TEP) for i in program)
        assert cycles == expected

    def test_multiple_runs_accumulate(self):
        program = [Instruction(Op.NOP, label="main"), Instruction(Op.RET)]
        tep = Tep(MINIMAL_TEP, program)
        first = tep.run("main")
        tep.run("main")
        assert tep.cycles == 2 * first
        assert tep.instructions_executed == 4
