"""Property: the textual statechart format round-trips arbitrary charts.

Random chart shapes (nested OR/AND, random labels with every trigger/guard
combination, wcet overrides, declarations) are emitted to the Fig. 2a format
and re-parsed; structure, labels and semantics must survive.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.statechart import (
    ChartBuilder,
    Interpreter,
    emit_chart,
    parse_chart,
)

EVENTS = ["E0", "E1", "E2"]
CONDITIONS = ["C0", "C1"]


@st.composite
def charts(draw):
    b = ChartBuilder("roundtrip")
    for index, event in enumerate(EVENTS):
        period = draw(st.sampled_from([None, 100, 5000]))
        b.event(event, period=period)
    for condition in CONDITIONS:
        b.condition(condition, initial=draw(st.booleans()))

    state_names = []

    def label_for():
        trigger = draw(st.sampled_from([None] + EVENTS))
        guard = draw(st.sampled_from([None] + CONDITIONS))
        negate = draw(st.booleans())
        parts = []
        if trigger:
            parts.append(trigger if not negate else f"not {trigger}")
        if guard:
            parts.append(f"[{guard}]")
        if draw(st.booleans()):
            parts.append("/Act()")
        return " ".join(parts) if parts else "E0"

    def build_region(prefix, depth):
        n_states = draw(st.integers(1, 3))
        names = []
        for index in range(n_states):
            name = f"{prefix}S{index}"
            if depth < 1 and draw(st.booleans()) and n_states > 1:
                with b.or_state(name):
                    build_region(f"{name}_", depth + 1)
            else:
                b.basic(name)
            names.append(name)
            state_names.append(name)
        # ring transitions among the new states
        for index, name in enumerate(names):
            if draw(st.booleans()):
                wcet = draw(st.sampled_from([None, 42]))
                b._pending.append(
                    (name, names[(index + 1) % len(names)], label_for(), wcet))

    with b.or_state("Top"):
        build_region("", 0)
    return b.build(validate=False)


class TestTextualRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(charts())
    def test_structure_survives(self, chart):
        text = emit_chart(chart)
        again = parse_chart(text)
        assert set(again.states) == set(chart.states)
        for name, state in chart.states.items():
            assert again.states[name].kind == state.kind
            assert again.states[name].children == state.children
            assert again.states[name].default == state.default
        assert len(again.transitions) == len(chart.transitions)

    @settings(max_examples=40, deadline=None)
    @given(charts())
    def test_labels_and_overrides_survive(self, chart):
        again = parse_chart(emit_chart(chart))

        def key(transition):
            return (transition.source, transition.target, transition.action,
                    transition.wcet_override, str(transition.trigger),
                    str(transition.guard))

        # transition declaration order may differ (the emitter walks the
        # state tree), but the multiset of transitions must be identical
        assert sorted(map(key, again.transitions)) == \
            sorted(map(key, chart.transitions))

    @settings(max_examples=25, deadline=None)
    @given(charts(), st.lists(st.sets(st.sampled_from(EVENTS)), max_size=5))
    def test_semantics_survive(self, chart, trace):
        again = parse_chart(emit_chart(chart))
        a = Interpreter(chart)
        b = Interpreter(again)
        for events in trace:
            a.step(events)
            b.step(events)
            assert a.configuration == b.configuration

    @settings(max_examples=25, deadline=None)
    @given(charts())
    def test_declarations_survive(self, chart):
        again = parse_chart(emit_chart(chart))
        assert {e.name: e.period for e in again.events.values()} == \
            {e.name: e.period for e in chart.events.values()}
        assert {c.name: c.initial for c in again.conditions.values()} == \
            {c.name: c.initial for c in chart.conditions.values()}
