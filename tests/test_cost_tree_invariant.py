"""Property: the WCET tree accounts for every emitted instruction exactly
once, across randomly generated programs and architectures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import CodeGenerator, MD16_TEP, MINIMAL_TEP, prepare_program
from repro.isa.cost import iter_blocks, verify_cost_tree


@st.composite
def random_programs(draw):
    """Small random programs exercising every statement form."""
    n_globals = draw(st.integers(1, 3))
    globals_decl = "\n".join(f"int:16 g{i};" for i in range(n_globals))
    body_parts = []
    n_stmts = draw(st.integers(1, 5))
    for index in range(n_stmts):
        kind = draw(st.integers(0, 4))
        g = f"g{draw(st.integers(0, n_globals - 1))}"
        if kind == 0:
            body_parts.append(f"{g} = {g} + {draw(st.integers(0, 50))};")
        elif kind == 1:
            body_parts.append(
                f"if ({g} > {draw(st.integers(0, 20))}) "
                f"{{ {g} = 0; }} else {{ {g} = 1; }}")
        elif kind == 2:
            bound = draw(st.integers(1, 6))
            body_parts.append(
                f"@bound({bound}) while ({g} > 0) {{ {g} = {g} - 1; }}")
        elif kind == 3:
            body_parts.append(f"{g} = helper({g});")
        else:
            body_parts.append(f"{g} = {g} * {draw(st.integers(1, 5))};")
    return f"""
    {globals_decl}
    int:16 helper(int:16 x) {{ return x + 1; }}
    void main_routine() {{
      {' '.join(body_parts)}
    }}
    """


class TestCostTreeInvariant:
    @settings(max_examples=40, deadline=None)
    @given(random_programs(),
           st.sampled_from(["minimal", "md16", "md16opt"]))
    def test_every_instruction_counted_once(self, source, arch_name):
        arch = {"minimal": MINIMAL_TEP, "md16": MD16_TEP,
                "md16opt": MD16_TEP.with_(microcode_optimized=True)}[arch_name]
        checked = prepare_program(source, arch)
        compiled = CodeGenerator(checked, arch).compile()
        for name, obj in compiled.objects.items():
            problems = verify_cost_tree(obj.instructions, obj.cost)
            assert problems == [], (name, problems[:3])

    @settings(max_examples=20, deadline=None)
    @given(random_programs())
    def test_wcet_positive_and_monotone_in_waitstates(self, source):
        fast = MD16_TEP.with_(external_ram_wait_states=0)
        slow = MD16_TEP.with_(external_ram_wait_states=6)
        fast_w = CodeGenerator(prepare_program(source, fast), fast)\
            .compile().wcets()["main_routine"]
        slow_w = CodeGenerator(prepare_program(source, slow), slow)\
            .compile().wcets()["main_routine"]
        assert 0 < fast_w <= slow_w

    def test_iter_blocks_covers_nested_structures(self):
        source = """
        int:16 g;
        void f() {
          if (g > 0) {
            @bound(3) while (g > 0) { g = g - 1; }
          } else { g = 5; }
        }
        """
        checked = prepare_program(source, MD16_TEP)
        compiled = CodeGenerator(checked, MD16_TEP).compile()
        blocks = list(iter_blocks(compiled.objects["f"].cost))
        assert len(blocks) >= 4  # test, loop-test, loop-body, else, epilogue
