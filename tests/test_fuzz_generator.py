"""Generator contract: determinism, lint-cleanliness, round-trips."""

import pytest

from repro.fuzz import (
    GeneratorConfig,
    event_trace,
    generate_spec,
    render_chart,
    render_source,
    spec_from_json,
    spec_to_json,
)
from repro.fuzz.oracle import check_roundtrip
from repro.flow.build import select_initial_architecture

SEEDS = list(range(1, 13))


class TestDeterminism:
    def test_same_seed_same_spec(self):
        for seed in SEEDS[:4]:
            assert (spec_to_json(generate_spec(seed))
                    == spec_to_json(generate_spec(seed)))

    def test_same_seed_same_rendering(self):
        from repro.statechart.parser import emit_chart

        for seed in SEEDS[:4]:
            a, b = generate_spec(seed), generate_spec(seed)
            assert emit_chart(render_chart(a)) == emit_chart(render_chart(b))
            assert render_source(a) == render_source(b)

    def test_different_seeds_differ(self):
        docs = {spec_to_json(generate_spec(seed))["name"] is not None
                and str(spec_to_json(generate_spec(seed)))
                for seed in SEEDS}
        assert len(docs) > 1

    def test_event_trace_deterministic(self):
        events = ["E0", "E1", "E2"]
        assert event_trace(5, events, 30) == event_trace(5, events, 30)
        assert event_trace(5, events, 30) != event_trace(6, events, 30)


class TestWellFormed:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_lint_error_free(self, seed):
        """The generator's headline guarantee: every chart lints clean."""
        from repro.analysis import lint_system

        spec = generate_spec(seed)
        chart = render_chart(spec)
        source = render_source(spec)
        arch = select_initial_architecture(chart, source)
        result = lint_system(chart, source, arch)
        errors = [d for d in result.diagnostics
                  if d.severity.value == "error"]
        assert not errors, [d.format() for d in errors]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_textual_roundtrip(self, seed):
        """parse(emit(chart)) is structurally identical (satellite 2)."""
        check_roundtrip(render_chart(generate_spec(seed)))

    def test_spec_json_roundtrip(self):
        for seed in SEEDS[:6]:
            spec = generate_spec(seed)
            doc = spec_to_json(spec)
            assert spec_to_json(spec_from_json(doc)) == doc

    def test_json_copy_does_not_alias_bodies(self):
        """Serialized documents must not share routine body lists with the
        live spec — the shrinker mutates copies in place (regression for
        the aliasing bug the first canary campaign surfaced)."""
        spec = generate_spec(1)
        copy = spec_from_json(spec_to_json(spec))
        for name, routine in spec.routines.items():
            if routine.body:
                assert copy.routines[name].body is not routine.body

    def test_effect_free_mode(self):
        spec = generate_spec(3, GeneratorConfig(effects=False))
        assert all(not r.body for r in spec.routines.values())

    def test_knobs_bound_size(self):
        # max_states is a soft budget: composite expansion may overshoot
        # by one OR/AND block, never unboundedly
        config = GeneratorConfig(max_states=6, max_extra_transitions=1)
        for seed in SEEDS[:6]:
            spec = generate_spec(seed, config)
            assert len(spec.states()) <= 6 + 8
