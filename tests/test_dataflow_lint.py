"""Tests for the action-language dataflow pass (PSC310-313)."""

from repro.action.check import check_program
from repro.action.parser import parse_program
from repro.analysis.dataflow import action_dataflow


def lint(source):
    return action_dataflow(check_program(parse_program(source)))


def codes(source):
    return [d.code for d in lint(source)]


class TestUseBeforeInit:
    def test_plain_read_of_uninitialized_local(self):
        assert codes("""
int:16 g;
void F() { int:16 x; g = x; }
""") == ["PSC310"]

    def test_initialized_local_is_clean(self):
        assert codes("""
int:16 g;
void F() { int:16 x; x = 1; g = x; }
""") == []

    def test_decl_initializer_counts(self):
        assert codes("""
int:16 g;
void F() { int:16 x = 2; g = x; }
""") == []

    def test_then_only_assignment_flags(self):
        assert "PSC310" in codes("""
int:16 g;
void F(int:1 c) {
  int:16 x;
  if (c) { x = 1; }
  g = x;
}
""")

    def test_both_branches_assign_is_clean(self):
        assert codes("""
int:16 g;
void F(int:1 c) {
  int:16 x;
  if (c) { x = 1; } else { x = 2; }
  g = x;
}
""") == []

    def test_while_body_assignment_does_not_count(self):
        assert "PSC310" in codes("""
int:16 g;
void F(int:1 c) {
  int:16 x;
  @bound(4) while (c) { x = 1; }
  g = x;
}
""")

    def test_compound_assign_reads_target(self):
        assert "PSC310" in codes("""
int:16 g;
void F() { int:16 x; x += 1; g = x; }
""")

    def test_globals_are_assumed_initialized(self):
        assert codes("""
int:16 g;
int:16 h;
void F() { h = g; }
""") == []

    def test_parameters_are_initialized(self):
        assert codes("""
int:16 g;
void F(int:16 p) { g = p; }
""") == []

    def test_reported_once_per_name(self):
        assert codes("""
int:16 g;
void F() { int:16 x; g = x + x; g = x; }
""") == ["PSC310"]


class TestDeadStores:
    def test_store_overwritten_before_read(self):
        diagnostics = lint("""
int:16 g;
void F() { int:16 x; x = 1; x = 2; g = x; }
""")
        assert [d.code for d in diagnostics] == ["PSC311"]
        assert "overwritten" in diagnostics[0].message

    def test_store_never_read(self):
        diagnostics = lint("""
void F() { int:16 x; x = 1; }
""")
        assert [d.code for d in diagnostics] == ["PSC311"]
        assert "never read" in diagnostics[0].message

    def test_control_flow_clears_pending(self):
        assert codes("""
int:16 g;
void F(int:1 c) {
  int:16 x;
  x = 1;
  if (c) { g = x; }
  x = 2;
  g = x;
}
""") == []

    def test_global_stores_are_not_dead(self):
        # Globals outlive the routine, so back-to-back global writes
        # are not flagged.
        assert codes("""
int:16 g;
void F() { g = 1; g = 2; }
""") == []


class TestDeadBranches:
    def test_constant_false_if(self):
        diagnostics = lint("""
int:16 g;
void F() { if (1 > 2) { g = 1; } }
""")
        assert [d.code for d in diagnostics] == ["PSC312"]

    def test_constant_true_if_flags_else(self):
        assert codes("""
int:16 g;
void F() { if (2 > 1) { g = 1; } else { g = 2; } }
""") == ["PSC312"]

    def test_constant_false_while(self):
        assert codes("""
int:16 g;
void F() { @bound(4) while (0) { g = 1; } }
""") == ["PSC312"]

    def test_short_circuit_folding(self):
        assert codes("""
int:16 g;
void F(int:1 c) { if (0 && c) { g = 1; } }
""") == ["PSC312"]

    def test_non_constant_condition_is_clean(self):
        assert codes("""
int:16 g;
void F(int:1 c) { if (c) { g = 1; } }
""") == []


class TestTruncation:
    def test_narrowing_assignment_flags(self):
        diagnostics = lint("""
int:16 wide;
int:8 narrow;
void F() { narrow = wide; }
""")
        assert [d.code for d in diagnostics] == ["PSC313"]
        assert diagnostics[0].severity.value == "warning"

    def test_widening_is_clean(self):
        assert codes("""
int:16 wide;
int:8 narrow;
void F() { wide = narrow; }
""") == []

    def test_literals_do_not_flag(self):
        assert codes("""
int:8 narrow;
void F() { narrow = 3; }
""") == []

    def test_narrowing_expression_flags(self):
        assert codes("""
int:16 wide;
int:8 narrow;
void F() { narrow = wide + 1; }
""") == ["PSC313"]


class TestLocations:
    def test_line_offset_is_applied(self):
        checked = check_program(parse_program(
            "int:16 g;\nvoid F() { int:16 x; g = x; }\n"))
        shifted = action_dataflow(checked, path="r.c", line_offset=0)
        assert shifted[0].location.file == "r.c"
        assert shifted[0].location.line is not None
