"""Delta-debugging shrinker: minimality, bug preservation, robustness."""

from repro.fuzz import (
    OracleHarness,
    generate_spec,
    plant_canary,
    shrink_spec,
    spec_size,
    spec_to_json,
)
from repro.fuzz.shrink import shrink_candidates


def canary_case(stage="promote-internal", seeds=range(7919, 7940), cycles=20):
    for seed in seeds:
        spec = generate_spec(seed)
        mutation = plant_canary(spec, stage=stage, cycles=cycles)
        if mutation is None:
            continue
        divergence = _first_divergence(spec, mutation, cycles)
        if divergence is not None:
            return spec, mutation, divergence, cycles
    raise AssertionError("no diverging canary seed found")


def _first_divergence(spec, mutation, cycles):
    harness = OracleHarness(spec, cycles=cycles, mutation=mutation)
    return harness.run_all(stop_at_first=True).first_divergence


def same_bug_predicate(original, mutation, cycles):
    """True iff the candidate still diverges at the same stage+field."""

    def predicate(candidate):
        divergence = _first_divergence(candidate, mutation, cycles)
        return (divergence is not None
                and divergence.stage == original.stage
                and divergence.field == original.field)

    return predicate


class TestShrinkCandidates:
    def test_candidates_are_strictly_smaller(self):
        spec = generate_spec(1)
        size = spec_size(spec)
        for candidate in shrink_candidates(spec):
            assert spec_size(candidate) < size

    def test_candidates_do_not_mutate_original(self):
        spec = generate_spec(1)
        before = spec_to_json(spec)
        for _ in shrink_candidates(spec):
            pass
        assert spec_to_json(spec) == before

    def test_candidates_never_remove_last_state(self):
        spec = generate_spec(2)
        for candidate in shrink_candidates(spec):
            assert candidate.root.children, "shrink emptied the chart"


class TestShrinkSpec:
    def test_shrink_preserves_the_bug(self):
        spec, mutation, divergence, cycles = canary_case()
        predicate = same_bug_predicate(divergence, mutation, cycles)
        shrunk = shrink_spec(spec, predicate)
        assert predicate(shrunk), "shrunk chart lost the divergence"
        assert spec_size(shrunk) <= spec_size(spec)

    def test_shrunk_chart_is_one_minimal(self):
        """1-minimality (satellite 5): no single further removal keeps
        the divergence — every candidate of the shrunk spec fails the
        predicate."""
        spec, mutation, divergence, cycles = canary_case()
        predicate = same_bug_predicate(divergence, mutation, cycles)
        shrunk = shrink_spec(spec, predicate)
        for candidate in shrink_candidates(shrunk):
            try:
                still_bad = predicate(candidate)
            except Exception:
                still_bad = False
            assert not still_bad, "shrink stopped before a fixpoint"

    def test_predicate_exceptions_count_as_false(self):
        spec = generate_spec(3)

        def explode(candidate):
            raise RuntimeError("predicate crash")

        shrunk = shrink_spec(spec, explode)
        assert spec_to_json(shrunk) == spec_to_json(spec)

    def test_max_steps_bounds_work(self):
        spec = generate_spec(4)
        # an always-true predicate would shrink to the floor; max_steps=1
        # stops after a single accepted removal (the first candidate drops
        # exactly one transition)
        shrunk = shrink_spec(spec, lambda c: True, max_steps=1)
        assert spec_size(shrunk) == spec_size(spec) - 1
