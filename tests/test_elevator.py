"""Tests for the elevator-bank case study (second workload)."""

import pytest

from repro.flow import Improver, build_system
from repro.isa import MD16_TEP
from repro.workloads.elevator import (
    ELEVATOR_CONSTRAINTS,
    ELEVATOR_MUTUAL_EXCLUSIONS,
    ELEVATOR_ROUTINES,
    elevator_chart,
)


@pytest.fixture(scope="module")
def chart():
    return elevator_chart()


@pytest.fixture(scope="module")
def baseline(chart):
    return build_system(chart, ELEVATOR_ROUTINES, MD16_TEP)


class TestStructure:
    def test_two_cabs_and_dispatcher_in_parallel(self, chart):
        assert set(chart.states["Running"].children) == \
            {"Dispatcher", "Cab0", "Cab1"}

    def test_constraints_declared(self, chart):
        declared = {e.name: e.period for e in chart.constrained_events()}
        assert declared == ELEVATOR_CONSTRAINTS

    def test_only_expected_warnings(self, chart):
        # BUSY0/1 are tested inside routines (Test(...)), not in labels, so
        # the label-level warning fires; everything else is clean
        from repro.statechart import chart_warnings
        assert chart_warnings(chart) == [
            "condition 'BUSY0' guards no transition",
            "condition 'BUSY1' guards no transition",
        ]


class TestStaticAnalysis:
    def test_baseline_violates_door_deadline(self, baseline):
        violated = {v.cycle.event for v in baseline.violations()}
        assert "DOOR_BLOCKED0" in violated
        assert "DOOR_BLOCKED1" in violated

    def test_hall_call_met_even_on_baseline(self, baseline):
        assert baseline.critical_paths()["HALL_CALL"] <= \
            ELEVATOR_CONSTRAINTS["HALL_CALL"]

    def test_cab_symmetry(self, baseline):
        paths = baseline.critical_paths()
        assert paths["DOOR_BLOCKED0"] == paths["DOOR_BLOCKED1"]
        assert paths["FLOOR_SENSOR0"] == paths["FLOOR_SENSOR1"]

    def test_improver_finds_a_solution(self, chart):
        improver = Improver(chart, ELEVATOR_ROUTINES,
                            initial_arch=MD16_TEP,
                            mutual_exclusions=ELEVATOR_MUTUAL_EXCLUSIONS,
                            max_teps=3)
        result = improver.run()
        assert result.success, result.trajectory_table()
        # parallel cabs: extra TEPs are what closes the door deadline
        assert result.steps[-1].arch.n_teps >= 2


class TestExecution:
    def run_full_trip(self, system, floor=3):
        machine = system.make_machine()
        machine.ports.map_latch(
            system.compiled.maps.ports["CallFloor"], floor)
        machine.step({"POWER_ON"})
        machine.step({"HALL_CALL"})     # dispatcher queues, raises DISPATCH0
        machine.step()                  # cab 0 plans
        assert machine.in_state("Moving0")
        for _ in range(floor):
            machine.step({f"FLOOR_SENSOR0"})
        machine.step()                  # AT_FLOOR0
        assert machine.in_state("Opening0")
        machine.step({"DOOR_TIMER0"})
        machine.step({"DOOR_TIMER0"})
        assert machine.in_state("Closing0")
        return machine

    def test_cab_reaches_called_floor(self, baseline):
        machine = self.run_full_trip(baseline, floor=3)
        assert machine.read_global("position0") == 3

    def test_door_obstruction_reopens(self, baseline):
        machine = self.run_full_trip(baseline)
        machine.step({"DOOR_BLOCKED0"})
        assert machine.in_state("Opening0")
        assert machine.read_global("blocked_count") == 1

    def test_trip_completes_and_frees_cab(self, baseline):
        machine = self.run_full_trip(baseline)
        machine.step({"DOORS_SHUT0"})
        assert machine.in_state("Parked0")
        assert machine.condition("BUSY0") is False

    def test_second_call_goes_to_other_cab(self, baseline):
        machine = self.run_full_trip(baseline, floor=2)
        # cab 0 is busy; a new call must dispatch cab 1
        machine.step({"HALL_CALL"})
        machine.step()
        assert machine.in_state("Moving1")

    def test_downward_travel(self, baseline):
        machine = self.run_full_trip(baseline, floor=2)
        machine.step({"DOORS_SHUT0"})
        # now call floor 0: distance negative, direction down
        machine.ports.map_latch(
            baseline.compiled.maps.ports["CallFloor"], 0)
        machine.step({"HALL_CALL"})
        machine.step()
        for _ in range(2):
            machine.step({"FLOOR_SENSOR1" if machine.in_state("Moving1")
                          else "FLOOR_SENSOR0"})
        cab = 1 if machine.in_state("Moving1") or \
            machine.in_state("Opening1") else 0
        # whichever cab took it started from 0 -> moved down? cab1 starts at
        # position 0 and the call floor is 0: distance 0 -> immediate stop
        assert machine.read_global(f"position{cab}") in (0, -2, 2)


class TestDynamicDeadlines:
    def test_static_bound_holds_for_door_event(self, chart):
        """On the improved architecture, the DOOR_BLOCKED reaction observed
        in the machine stays below both the static bound and the deadline."""
        improver = Improver(chart, ELEVATOR_ROUTINES,
                            initial_arch=MD16_TEP,
                            mutual_exclusions=ELEVATOR_MUTUAL_EXCLUSIONS,
                            max_teps=3)
        result = improver.run()
        system = result.final
        machine = system.make_machine()
        machine.ports.map_latch(system.compiled.maps.ports["CallFloor"], 1)
        machine.step({"POWER_ON"})
        machine.step({"HALL_CALL"})
        machine.step()
        machine.step({"FLOOR_SENSOR0"})
        machine.step()
        machine.step({"DOOR_TIMER0"})
        machine.step({"DOOR_TIMER0"})
        before = machine.time
        step = machine.step({"DOOR_BLOCKED0"})
        reaction = step.end_time - before
        assert machine.in_state("Opening0")
        static_bound = system.critical_paths()["DOOR_BLOCKED0"]
        assert reaction <= static_bound
        assert reaction <= ELEVATOR_CONSTRAINTS["DOOR_BLOCKED0"]
