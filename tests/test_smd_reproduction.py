"""Acceptance tests: the SMD case study reproduces the paper's evaluation.

These tests pin the quantitative reproduction: Table 2 (constraints),
Table 3 (event cycles, within tolerance), Table 4 (area and critical-path
shape), Fig. 4 (parallel-sibling bounds), and the closed-loop property that
the static bounds dominate every observed latency.
"""

import pytest

from repro.flow import build_system
from repro.flow.improve import hot_globals
from repro.isa import MD16_TEP, MINIMAL_TEP, StorageClass
from repro.workloads import (
    MoveCommand,
    SMD_MUTUAL_EXCLUSIONS,
    SMD_ROUTINES,
    SmdClosedLoop,
    TABLE2_PAPER,
    TABLE3_PAPER,
    TABLE4_PAPER,
    smd_chart,
)
from repro.workloads.motors import MotorSpec

#: tolerance for Table 3 event-cycle lengths (fraction of the paper value)
TABLE3_TOLERANCE = 0.05

#: high-acceleration X/Y specs so tests reach the 50 kHz stress regime fast
FAST_MOTORS = {
    "X": MotorSpec("X", 50_000.0, 0.025e-3, 1.25, 2000.0),
    "Y": MotorSpec("Y", 50_000.0, 0.025e-3, 1.25, 2000.0),
    "Phi": MotorSpec("Phi", 9_000.0, 0.1, 900.0, 0.0),
}


@pytest.fixture(scope="module")
def reference_system():
    """The Table 3 reference point: 16-bit M/D TEP, unoptimized, one TEP."""
    return build_system(smd_chart(), SMD_ROUTINES, MD16_TEP)


@pytest.fixture(scope="module")
def cycle_lengths(reference_system):
    lengths = {}
    for cycle in reference_system.validator.all_cycles():
        key = tuple(cycle.states)
        lengths[key] = max(lengths.get(key, 0), cycle.length)
    return lengths


class TestTable2:
    def test_constraints_match_paper(self):
        chart = smd_chart()
        measured = {event.name: event.period
                    for event in chart.constrained_events()}
        assert measured == TABLE2_PAPER


class TestTable3:
    def test_every_paper_cycle_found(self, cycle_lengths):
        for states, _ in TABLE3_PAPER:
            candidates = [s for s in cycle_lengths
                          if s[0] == states[0] and s[-1] == states[-1]
                          and len(s) == len(states)]
            assert candidates, f"paper cycle {states} not found"

    @pytest.mark.parametrize("states,paper_length", TABLE3_PAPER,
                             ids=lambda v: str(v)[:40])
    def test_cycle_length_within_tolerance(self, cycle_lengths, states,
                                           paper_length):
        if isinstance(states, int):
            pytest.skip("parametrize id pass-through")
        candidates = [length for s, length in cycle_lengths.items()
                      if s[0] == states[0] and s[-1] == states[-1]
                      and len(s) == len(states)]
        measured = max(candidates)
        assert abs(measured - paper_length) <= TABLE3_TOLERANCE * paper_length, \
            f"{states}: measured {measured}, paper {paper_length}"

    def test_violations_match_paper(self, reference_system):
        """The paper: 'a possible timing violation for the first three
        timing constraints of Table 2' (DATA_VALID, X_PULSE, Y_PULSE)."""
        violated = {v.cycle.event for v in reference_system.violations()}
        assert violated == {"DATA_VALID", "X_PULSE", "Y_PULSE"}
        assert "PHI_PULSE" not in violated  # 878 < 1600

    def test_motor_cycles_symmetric(self, cycle_lengths):
        runs = {name: cycle_lengths[(name, name)]
                for name in ("RunX", "RunY", "RunPhi")}
        assert len(set(runs.values())) == 1


class TestFig4Bounds:
    def test_parallel_sibling_bounds_positive(self, reference_system):
        v = reference_system.validator
        reach = v.region_upper_bound("ReachPosition")
        prep = v.region_upper_bound("DataPreparation")
        assert reach > 0 and prep > 0
        # ReachPosition aggregates three motor regions (AND: sum)
        assert reach == 3 * v.region_upper_bound("MoveX")

    def test_moving_jobs_decompose(self, reference_system):
        v = reference_system.validator
        jobs = v.region_jobs("Moving")
        assert len(jobs) == 3
        assert sum(jobs) == v.region_upper_bound("Moving")


def _evaluate(arch, storage_map=None, specialize=False):
    system = build_system(smd_chart(), SMD_ROUTINES, arch,
                          storage_map=storage_map, specialize=specialize)
    paths = system.critical_paths()
    return (system.area().total_clbs,
            max(paths["X_PULSE"], paths["Y_PULSE"]),
            paths["DATA_VALID"],
            system)


class TestTable4:
    """Area within 5%, critical-path shape preserved."""

    def test_minimal_tep_blows_constraints(self):
        area, xy, dv, _ = _evaluate(MINIMAL_TEP)
        paper_area, paper_xy, paper_dv = TABLE4_PAPER["1 minimal TEP"]
        assert abs(area - paper_area) <= 0.05 * paper_area
        # the paper prints "> 1000" and "> 3000"
        assert xy > paper_xy
        assert dv > paper_dv

    def test_md16_unoptimized_matches(self):
        area, xy, dv, _ = _evaluate(MD16_TEP)
        paper_area, paper_xy, paper_dv = TABLE4_PAPER[
            "16bit M/D TEP, unoptimized code"]
        assert abs(area - paper_area) <= 0.05 * paper_area
        assert abs(xy - paper_xy) <= 0.05 * paper_xy
        assert abs(dv - paper_dv) <= 0.05 * paper_dv

    def test_optimized_code_improves_both_paths(self):
        _, xy_unopt, dv_unopt, _ = _evaluate(MD16_TEP)
        opt = MD16_TEP.with_(microcode_optimized=True)
        _, xy_opt, dv_opt, _ = _evaluate(opt, specialize=True)
        paper = TABLE4_PAPER["16bit M/D TEP, optimized code"]
        # paper's optimization factors: 524/878 = 0.60, 1317/2041 = 0.65
        assert 0.45 <= xy_opt / xy_unopt <= 0.75
        assert 0.45 <= dv_opt / dv_unopt <= 0.75

    def test_second_tep_improves_both_paths(self):
        _, xy_one, dv_one, _ = _evaluate(MD16_TEP)
        md2 = MD16_TEP.with_(n_teps=2,
                             mutual_exclusions=SMD_MUTUAL_EXCLUSIONS)
        area2, xy_two, dv_two, _ = _evaluate(md2)
        paper_area, _, _ = TABLE4_PAPER["2 16bit M/D TEP, unoptimized code"]
        assert abs(area2 - paper_area) <= 0.05 * paper_area
        # paper's two-TEP factors: 469/878 = 0.53, 1081/2041 = 0.53
        assert 0.45 <= xy_two / xy_one <= 0.70
        assert 0.45 <= dv_two / dv_one <= 0.70

    def test_final_architecture_fulfils_all_constraints(self):
        """'The solution fulfils all timing requirements.'"""
        final = MD16_TEP.with_(n_teps=2, microcode_optimized=True,
                               mutual_exclusions=SMD_MUTUAL_EXCLUSIONS)
        _, xy, dv, system = _evaluate(final, specialize=True)
        assert system.violations() == []
        assert xy <= TABLE2_PAPER["X_PULSE"]
        assert dv <= TABLE2_PAPER["DATA_VALID"]

    def test_final_fits_xc4025(self):
        """'The result fits on a single Xilinx XC4025 FPGA.'"""
        from repro.hw import XC4025
        final = MD16_TEP.with_(n_teps=2, microcode_optimized=True,
                               mutual_exclusions=SMD_MUTUAL_EXCLUSIONS)
        _, _, _, system = _evaluate(final, specialize=True)
        assert system.area().fits(XC4025)

    def test_area_ordering(self):
        a_min, *_ = _evaluate(MINIMAL_TEP)
        a_md, *_ = _evaluate(MD16_TEP)
        a_two, *_ = _evaluate(MD16_TEP.with_(n_teps=2))
        assert a_min < a_md < a_two


class TestClosedLoop:
    @pytest.fixture(scope="class")
    def final_system(self):
        final = MD16_TEP.with_(n_teps=2, microcode_optimized=True,
                               mutual_exclusions=SMD_MUTUAL_EXCLUSIONS)
        return build_system(smd_chart(), SMD_ROUTINES, final, specialize=True)

    def test_moves_complete_and_positions_match(self, final_system):
        loop = SmdClosedLoop(final_system, motor_specs=FAST_MOTORS)
        report = loop.run([MoveCommand(40, 30, 6)],
                          max_configuration_cycles=20000)
        assert report.all_moves_completed
        assert report.final_positions == {"X": 40, "Y": 30, "Phi": 6}

    def test_no_deadline_misses_on_final_architecture(self, final_system):
        loop = SmdClosedLoop(final_system, motor_specs=FAST_MOTORS)
        report = loop.run([MoveCommand(50, 50, 5)],
                          max_configuration_cycles=20000)
        assert report.all_deadlines_met, report.deadline_reports

    def test_static_bounds_dominate_observed_latency(self, final_system):
        """The central soundness claim: no observed latency exceeds the
        static critical path for its event."""
        loop = SmdClosedLoop(final_system, motor_specs=FAST_MOTORS)
        report = loop.run([MoveCommand(60, 45, 6)],
                          max_configuration_cycles=20000)
        static = final_system.critical_paths()
        for event, worst in report.worst_latencies.items():
            if worst is None:
                continue
            # latency includes the cycle consuming the event; compare to
            # the static bound plus one scheduler overhead window
            assert worst <= static[event] + 50, (event, worst, static[event])
