"""Bounded model checker: property language, explorer, witnesses, CLI.

The three fixtures under ``tests/fixtures/bmc/`` pin the three verdict
families end to end: ``violating`` (embedded properties, replayable
counterexamples, exit 1), ``safe`` (every form proved, exit 0) and
``bounded`` (honest bound-exhausted verdicts at ``--depth 5``, exit 3).
"""

import io
import json
import os
import pathlib

import pytest

from repro.analysis.bmc import (
    AlwaysReach,
    Deadline,
    Explorer,
    NeverIn,
    NeverWhile,
    abstract_actions,
    check_system,
    load_witness,
    parse_properties,
    replay_witness,
)
from repro.cli import run
from repro.flow.build import build_system, select_initial_architecture
from repro.statechart.parser import parse_chart

REPO = pathlib.Path(__file__).parent.parent
FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "bmc"
GOLDEN = pathlib.Path(__file__).parent / "golden"


def invoke(argv):
    out = io.StringIO()
    status = run(argv, out=out)
    return status, out.getvalue()


def check_fixture(name, *extra):
    base = os.path.join("tests", "fixtures", "bmc", name)
    return invoke(["check", base, *extra])


def build_fixture(name):
    chart = parse_chart((FIXTURES / name / "chart.sc").read_text())
    source = (FIXTURES / name / "routines.c").read_text()
    arch = select_initial_architecture(chart, source)
    return chart, source, build_system(chart, source, arch)


# ---------------------------------------------------------------------------
# property language
# ---------------------------------------------------------------------------

class TestPropertyParsing:
    CHART = """
chart props;
event GO period 500;
event STOP;
condition BUSY;
orstate Main { contains A, B; default A; }
basicstate A { transition { target B; label "GO"; } }
basicstate B { transition { target A; label "STOP [BUSY]"; } }
"""

    def parse(self, text):
        chart = parse_chart(self.CHART)
        return parse_properties(chart, sidecar_text=text,
                                sidecar_path="props.txt")

    def test_all_four_forms(self):
        parsed = self.parse(
            "never A while B\n"
            "never BUSY in A\n"
            "always reach B within 3 cycles of GO\n"
            "deadline GO\n"
            "deadline STOP 120\n")
        assert parsed.ok
        kinds = [type(p) for p in parsed.properties]
        assert kinds == [NeverWhile, NeverIn, AlwaysReach, Deadline,
                         Deadline]
        reach = parsed.properties[2]
        assert (reach.state, reach.cycles, reach.event) == ("B", 3, "GO")
        assert parsed.properties[3].budget is None  # declared period
        assert parsed.properties[4].budget == 120

    def test_comments_and_blank_lines_skipped(self):
        parsed = self.parse("# comment\n\nnever A while B  // tail\n")
        assert parsed.ok and len(parsed.properties) == 1

    def test_unknown_state_is_psc601(self):
        parsed = self.parse("never A while Nope\n")
        assert not parsed.ok
        assert [d.code for d in parsed.diagnostics] == ["PSC601"]

    def test_unknown_syntax_is_psc600(self):
        parsed = self.parse("eventually B\n")
        assert not parsed.ok
        assert [d.code for d in parsed.diagnostics] == ["PSC600"]

    def test_deadline_without_period_needs_budget(self):
        parsed = self.parse("deadline STOP\n")  # STOP has no period
        assert not parsed.ok
        assert parsed.diagnostics[0].code == "PSC600"

    def test_never_in_requires_condition_expression(self):
        parsed = self.parse("never GO in A\n")  # event, not condition
        assert not parsed.ok

    def test_chart_embedded_properties_carry_lines(self):
        chart = parse_chart(
            (FIXTURES / "violating" / "chart.sc").read_text())
        parsed = parse_properties(chart, chart_path="chart.sc")
        assert parsed.ok
        texts = [p.text for p in parsed.properties]
        assert texts == ["never Armed while Running",
                         "never ARMED in Running"]
        assert all(p.line is not None for p in parsed.properties)


# ---------------------------------------------------------------------------
# the explorer and the action abstraction
# ---------------------------------------------------------------------------

class TestExplorer:
    def explore(self, name, **kwargs):
        chart, source, system = build_fixture(name)
        from repro.action.check import Checker, Externals
        from repro.action.parser import parse_with_preamble

        program = parse_with_preamble(source)
        checked = Checker(program, Externals.from_chart(chart)).analyze()
        actions = abstract_actions(chart, checked)
        return Explorer(chart, actions, **kwargs).explore()

    def test_safe_fixture_space_is_tiny_and_complete(self):
        space = self.explore("safe")
        assert space.complete
        configs = {node[0] for node in space.nodes}
        assert all(len(c) == 3 for c in configs)  # Root + Main + one child
        assert len(space.nodes) == 3

    def test_mid_step_condition_writes_are_ordered(self):
        # Begin() runs SetTrue(BUSY) as a top-level builtin: the successor
        # node must carry BUSY=true exactly (a must effect, not a fork).
        space = self.explore("safe")
        work = [n for n in space.nodes if "Work" in n[0]]
        assert work and all("BUSY" in n[1] for n in work)
        idle = [n for n in space.nodes if "Idle" in n[0]]
        assert idle and all("BUSY" not in n[1] for n in idle)

    def test_depth_bound_truncates_honestly(self):
        space = self.explore("bounded", depth=5)
        assert not space.complete
        assert "depth" in space.truncation

    def test_decision_events_prune_dead_alphabet(self):
        # In the safe chart only GO/STOP ever appear in any enable
        # product, and at Idle only GO is live.
        space = self.explore("safe")
        for node, decisions in space.decisions.items():
            assert set(decisions) <= {"GO", "STOP"}
            if any(s == "Idle" for s in node[0]):
                assert set(decisions) == {"GO"}


# ---------------------------------------------------------------------------
# verdicts end to end
# ---------------------------------------------------------------------------

class TestCheckSystem:
    def test_violating_chart_produces_replaying_witnesses(self, tmp_path):
        chart, source, system = build_fixture("violating")
        result = check_system(chart, source, system,
                              witness_dir=str(tmp_path), label="v")
        assert result.violated
        violated = [v for v in result.verdicts if v.status == "violated"]
        assert len(violated) == 2
        for verdict in violated:
            assert verdict.witness is not None
            assert verdict.witness.replayed is True
            assert len(verdict.witness_files) == 2
            for path in verdict.witness_files:
                assert os.path.exists(path)

    def test_witness_roundtrip_and_fresh_replay(self, tmp_path):
        chart, source, system = build_fixture("violating")
        result = check_system(chart, source, system,
                              witness_dir=str(tmp_path), label="v")
        verdict = next(v for v in result.verdicts
                       if v.status == "violated")
        witness = load_witness(verdict.witness_files[0])
        witness.replayed = None  # force a fresh verdict
        replayed, recorder = replay_witness(system, witness)
        assert replayed.replayed is True
        assert recorder.last_escalation is not None
        assert recorder.last_escalation["kind"] == "model-check"

    def test_forensics_bundle_names_the_property(self, tmp_path):
        chart, source, system = build_fixture("violating")
        result = check_system(chart, source, system,
                              witness_dir=str(tmp_path), label="v")
        verdict = next(v for v in result.verdicts
                       if v.status == "violated")
        bundle = json.loads(
            pathlib.Path(verdict.witness_files[1]).read_text())
        assert bundle["cause"]["kind"] == "model-check"
        assert bundle["cause"]["property"] == verdict.prop.text

    def test_safe_chart_proves_everything(self):
        chart, source, system = build_fixture("safe")
        props = (FIXTURES / "safe" / "properties.txt").read_text()
        result = check_system(chart, source, system,
                              properties_text=props)
        assert result.complete and not result.violated
        assert all(v.status == "proved" for v in result.verdicts)

    def test_bound_exhausted_is_not_a_proof(self):
        chart, source, system = build_fixture("bounded")
        props = (FIXTURES / "bounded" / "properties.txt").read_text()
        result = check_system(chart, source, system,
                              properties_text=props, depth=5)
        assert not result.complete
        assert all(v.status == "bound-exhausted" for v in result.verdicts)

    def test_property_errors_check_nothing(self):
        chart, source, system = build_fixture("safe")
        result = check_system(chart, source, system,
                              properties_text="never Ghost while Work\n")
        assert result.truncation == "property errors"
        assert result.verdicts == ()
        assert result.errors >= 1


# ---------------------------------------------------------------------------
# the CLI and its goldens
# ---------------------------------------------------------------------------

@pytest.fixture
def repo_cwd(monkeypatch):
    monkeypatch.chdir(REPO)


class TestCheckCli:
    def test_violating_fixture_matches_golden(self, repo_cwd):
        status, text = check_fixture("violating")
        assert status == 1
        assert text == (GOLDEN / "check_violating.txt").read_text()

    def test_safe_fixture_matches_golden(self, repo_cwd):
        status, text = check_fixture(
            "safe", "--properties", "tests/fixtures/bmc/safe/properties.txt")
        assert status == 0
        assert text == (GOLDEN / "check_safe.txt").read_text()

    def test_bounded_fixture_matches_golden(self, repo_cwd):
        status, text = check_fixture(
            "bounded", "--properties",
            "tests/fixtures/bmc/bounded/properties.txt", "--depth", "5")
        assert status == 3
        assert text == (GOLDEN / "check_bounded.txt").read_text()

    def test_bounded_fixture_proves_at_full_depth(self, repo_cwd):
        status, text = check_fixture(
            "bounded", "--properties",
            "tests/fixtures/bmc/bounded/properties.txt")
        assert status == 0
        assert "PSC603" in text

    def test_witness_dir_writes_artifacts(self, repo_cwd, tmp_path):
        status, text = check_fixture("violating", "--witness-dir",
                                     str(tmp_path))
        assert status == 1
        names = sorted(os.listdir(tmp_path))
        assert names == ["chart.p0.forensics.json", "chart.p0.witness.json",
                         "chart.p1.forensics.json", "chart.p1.witness.json"]
        assert "[witness: chart.p0.witness.json]" in text

    def test_sarif_runs_are_byte_identical(self, repo_cwd):
        _, first = check_fixture("violating", "--format", "sarif")
        _, second = check_fixture("violating", "--format", "sarif")
        assert first == second
        assert json.loads(first)["version"] == "2.1.0"

    def test_smd_workload_matches_golden(self):
        status, text = invoke(["check", "--workload", "smd"])
        assert status == 0
        assert text == (GOLDEN / "check_smd.txt").read_text()
        # the previously heuristic deadline claims are now proofs
        assert text.count("PSC610") == 4

    def test_missing_properties_file_exits_2(self, repo_cwd):
        status, _ = check_fixture("safe", "--properties", "no/such/file")
        assert status == 2

    def test_unknown_property_name_exits_2(self, repo_cwd, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("never Ghost while Armed\n")
        status, text = check_fixture("violating", "--properties", str(bad))
        assert status == 2
        assert "PSC601" in text

    def test_unparseable_routines_exit_2_not_crash(self, tmp_path):
        (tmp_path / "chart.sc").write_text(
            (FIXTURES / "safe" / "chart.sc").read_text())
        (tmp_path / "routines.c").write_text("routine Broken() {}\n")
        status, text = invoke(["check", str(tmp_path)])
        assert status == 2
        assert "PSC301" in text


class TestChartPropertyRoundtrip:
    def test_emit_chart_preserves_properties(self):
        from repro.statechart.parser import emit_chart

        chart = parse_chart((FIXTURES / "violating" / "chart.sc").read_text())
        text = emit_chart(chart)
        assert 'property "never Armed while Running";' in text
        reparsed = parse_chart(text)
        assert ([p.text for p in reparsed.properties]
                == [p.text for p in chart.properties])

    def test_escaped_quotes_survive_roundtrip(self):
        from repro.statechart.parser import emit_chart

        chart = parse_chart("chart q;\nevent GO;\n"
                            "orstate Main { contains A; default A; }\n"
                            "basicstate A { }\n")
        chart.add_property('never A while A')
        assert [p.text for p in parse_chart(emit_chart(chart)).properties] \
            == ["never A while A"]
