"""Tests for trigger/guard boolean expressions."""

import pytest
from hypothesis import given, strategies as st

from repro.statechart.expr import (
    And,
    ExprError,
    Name,
    Not,
    Or,
    conjunction,
    disjunction,
    parse_expr,
)

NAMES = ["A", "B", "C", "DATA_VALID", "X_PULSE"]


def exprs(depth=3):
    """Hypothesis strategy for random expression trees."""
    leaf = st.sampled_from(NAMES).map(Name)
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            children.map(Not),
            st.tuples(children, children).map(lambda p: And(*p)),
            st.tuples(children, children).map(lambda p: Or(*p)),
        ),
        max_leaves=8,
    )


class TestParsing:
    def test_single_name(self):
        assert parse_expr("POWER") == Name("POWER")

    def test_or(self):
        assert parse_expr("INIT or ALLRESET") == Or(Name("INIT"), Name("ALLRESET"))

    def test_not_parenthesized(self):
        e = parse_expr("not (X_PULSE or Y_PULSE)")
        assert e == Not(Or(Name("X_PULSE"), Name("Y_PULSE")))

    def test_and_chain(self):
        e = parse_expr("XFINISH and YFINISH and PHIFINISH")
        assert e == And(And(Name("XFINISH"), Name("YFINISH")), Name("PHIFINISH"))

    def test_precedence_not_over_and_over_or(self):
        e = parse_expr("not A and B or C")
        assert e == Or(And(Not(Name("A")), Name("B")), Name("C"))

    def test_nested_parens(self):
        e = parse_expr("((A))")
        assert e == Name("A")

    @pytest.mark.parametrize("bad", ["", "and", "A or", "(A", "A)", "A B", "not"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ExprError):
            parse_expr(bad)


class TestEvaluation:
    def test_name(self):
        assert Name("A").evaluate({"A"})
        assert not Name("A").evaluate({"B"})

    def test_or_and_not(self):
        e = parse_expr("not (X_PULSE or Y_PULSE)")
        assert e.evaluate(set())
        assert not e.evaluate({"X_PULSE"})
        assert not e.evaluate({"Y_PULSE", "OTHER"})

    def test_guard_conjunction(self):
        e = parse_expr("XFINISH and YFINISH and PHIFINISH")
        assert e.evaluate({"XFINISH", "YFINISH", "PHIFINISH"})
        assert not e.evaluate({"XFINISH", "YFINISH"})

    def test_evaluate_accepts_any_iterable(self):
        assert parse_expr("A or B").evaluate(["B"])


class TestHelpers:
    def test_conjunction(self):
        e = conjunction(["A", "B", "C"])
        assert e.evaluate({"A", "B", "C"})
        assert not e.evaluate({"A", "B"})

    def test_disjunction(self):
        e = disjunction(["A", "B"])
        assert e.evaluate({"B"})
        assert not e.evaluate(set())

    def test_empty_conjunction_rejected(self):
        with pytest.raises(ExprError):
            conjunction([])

    def test_names_collects_all(self):
        e = parse_expr("not (A or B) and C")
        assert e.names() == frozenset({"A", "B", "C"})


class TestSumOfProducts:
    def test_name_sop(self):
        assert Name("A").to_sop() == [(frozenset({"A"}), frozenset())]

    def test_demorgan(self):
        e = parse_expr("not (A or B)")
        assert e.to_sop() == [(frozenset(), frozenset({"A", "B"}))]

    def test_contradiction_dropped(self):
        e = And(Name("A"), Not(Name("A")))
        assert e.to_sop() == []

    @staticmethod
    def _sop_evaluate(products, asserted):
        return any(pos <= asserted and not (neg & asserted)
                   for pos, neg in products)

    @given(exprs(), st.sets(st.sampled_from(NAMES)))
    def test_sop_equivalent_to_evaluate(self, expr, asserted):
        products = expr.to_sop()
        assert self._sop_evaluate(products, asserted) == expr.evaluate(asserted)

    @given(exprs(), st.sets(st.sampled_from(NAMES)))
    def test_str_roundtrip_preserves_semantics(self, expr, asserted):
        reparsed = parse_expr(str(expr))
        assert reparsed.evaluate(asserted) == expr.evaluate(asserted)
