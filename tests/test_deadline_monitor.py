"""DeadlineMonitor edge cases: superseded arrivals, dropped events, events
never consumed, and back-to-back arrivals within one configuration cycle.

These drive the monitor directly with hand-built :class:`MachineStep`
objects so every branch of the miss taxonomy is exercised deterministically,
independent of a compiled controller.
"""

from repro.pscp.machine import MachineStep
from repro.pscp.trace import DeadlineMonitor, EventRecord
from repro.statechart import ChartBuilder


class FakeTransition:
    """Stands in for a chart transition; consumes a fixed set of events."""

    def __init__(self, *events):
        self.events = set(events)

    def consumes(self, name):
        return name in self.events


def make_step(start, end, sampled=(), fired=()):
    return MachineStep(
        fired=list(fired),
        configuration=frozenset({"Top"}),
        cycle_length=end - start,
        start_time=start,
        end_time=end,
        plan=None,
        events_sampled=frozenset(sampled),
        events_raised=frozenset(),
    )


def chart(period=100):
    b = ChartBuilder("monitored")
    b.event("TICK", period=period)
    b.event("FREE")  # unconstrained: the monitor must ignore it
    with b.or_state("Top", default="Idle"):
        b.basic("Idle").transition("Idle", label="TICK/")
    return b.build()


class TestHappyPath:
    def test_consumed_within_period(self):
        monitor = DeadlineMonitor(chart(period=100))
        monitor.arrival("TICK", 0)
        monitor.observe(make_step(5, 45, sampled={"TICK"},
                                  fired=[FakeTransition("TICK")]))
        report = monitor.report("TICK")
        assert report.arrivals == 1
        assert report.consumed == 1
        assert report.worst_latency == 45
        assert report.misses == 0
        assert report.met
        assert monitor.all_met()

    def test_unconstrained_event_ignored(self):
        monitor = DeadlineMonitor(chart())
        monitor.arrival("FREE", 0)
        monitor.arrival("UNKNOWN", 0)
        assert "FREE" not in monitor.records
        assert [r.event for r in monitor.reports()] == ["TICK"]


class TestSupersededArrival:
    def test_overwritten_before_sampling_is_a_miss(self):
        monitor = DeadlineMonitor(chart(period=100))
        monitor.arrival("TICK", 0)       # never sampled...
        monitor.arrival("TICK", 100)     # ...overwritten by the next one
        monitor.observe(make_step(100, 130, sampled={"TICK"},
                                  fired=[FakeTransition("TICK")]))
        report = monitor.report("TICK")
        assert report.arrivals == 2
        assert report.superseded == 1
        assert report.consumed == 1
        assert report.misses == 1
        assert not report.met

    def test_miss_is_recorded_at_arrival_time(self):
        monitor = DeadlineMonitor(chart(period=100))
        monitor.arrival("TICK", 0)
        monitor.arrival("TICK", 100)
        # no observe() yet: the superseded arrival is already a known miss
        first = monitor.records["TICK"][0]
        assert first.superseded
        assert first.is_miss(period=100)


class TestDroppedEvent:
    def test_sampled_but_not_consumed_is_a_miss(self):
        monitor = DeadlineMonitor(chart(period=100))
        monitor.arrival("TICK", 0)
        # the cycle samples TICK but fires nothing that consumes it; the CR
        # clears the event bits at end of cycle, so the arrival is gone
        monitor.observe(make_step(5, 45, sampled={"TICK"}, fired=[]))
        report = monitor.report("TICK")
        assert report.dropped == 1
        assert report.consumed == 0
        assert report.misses == 1

    def test_dropped_event_not_resurrected_by_later_cycle(self):
        monitor = DeadlineMonitor(chart(period=100))
        monitor.arrival("TICK", 0)
        monitor.observe(make_step(5, 45, sampled={"TICK"}, fired=[]))
        # a later cycle that would consume TICK has no open record to close
        monitor.observe(make_step(45, 90, sampled={"TICK"},
                                  fired=[FakeTransition("TICK")]))
        report = monitor.report("TICK")
        assert report.arrivals == 1
        assert report.consumed == 0
        assert report.misses == 1


class TestNeverConsumed:
    def test_open_past_deadline_is_a_miss(self):
        monitor = DeadlineMonitor(chart(period=100))
        monitor.arrival("TICK", 0)
        # cycles pass without ever sampling TICK; clock moves past deadline
        monitor.observe(make_step(0, 60, sampled=set(), fired=[]))
        monitor.observe(make_step(60, 140, sampled=set(), fired=[]))
        report = monitor.report("TICK")
        assert report.arrivals == 1
        assert report.consumed == 0
        assert report.misses == 1

    def test_open_within_deadline_is_not_yet_a_miss(self):
        monitor = DeadlineMonitor(chart(period=100))
        monitor.arrival("TICK", 0)
        monitor.observe(make_step(0, 60, sampled=set(), fired=[]))
        report = monitor.report("TICK")
        assert report.misses == 0
        assert not report.met  # still outstanding, so not "met" either

    def test_never_observed_is_not_a_miss(self):
        # no steps at all: no clock, so the open arrival cannot be judged
        monitor = DeadlineMonitor(chart(period=100))
        monitor.arrival("TICK", 0)
        assert monitor.report("TICK").misses == 0


class TestLateMiss:
    def test_consumed_after_period_is_a_miss(self):
        monitor = DeadlineMonitor(chart(period=100))
        monitor.arrival("TICK", 0)
        monitor.observe(make_step(90, 150, sampled={"TICK"},
                                  fired=[FakeTransition("TICK")]))
        report = monitor.report("TICK")
        assert report.consumed == 1
        assert report.worst_latency == 150
        assert report.misses == 1

    def test_latency_exactly_period_is_on_time(self):
        monitor = DeadlineMonitor(chart(period=100))
        monitor.arrival("TICK", 20)
        monitor.observe(make_step(80, 120, sampled={"TICK"},
                                  fired=[FakeTransition("TICK")]))
        assert monitor.report("TICK").misses == 0


class TestBackToBackArrivals:
    def test_two_arrivals_one_cycle(self):
        """Two arrivals land before the same configuration cycle samples the
        event: the CR holds one bit, so the first is superseded and only the
        second can be consumed."""
        monitor = DeadlineMonitor(chart(period=100))
        monitor.arrival("TICK", 10)
        monitor.arrival("TICK", 12)
        monitor.observe(make_step(12, 50, sampled={"TICK"},
                                  fired=[FakeTransition("TICK")]))
        report = monitor.report("TICK")
        assert report.arrivals == 2
        assert report.superseded == 1
        assert report.consumed == 1
        assert report.worst_latency == 38
        assert report.misses == 1

    def test_steady_stream_alternating(self):
        monitor = DeadlineMonitor(chart(period=100))
        for n in range(4):
            monitor.arrival("TICK", n * 100)
            monitor.observe(make_step(n * 100, n * 100 + 40,
                                      sampled={"TICK"},
                                      fired=[FakeTransition("TICK")]))
        report = monitor.report("TICK")
        assert report.arrivals == report.consumed == 4
        assert report.misses == 0
        assert report.met


class TestPublish:
    def test_publish_into_registry_is_idempotent(self):
        from repro.obs import MetricsRegistry

        monitor = DeadlineMonitor(chart(period=100))
        monitor.arrival("TICK", 0)
        monitor.observe(make_step(0, 40, sampled={"TICK"},
                                  fired=[FakeTransition("TICK")]))
        monitor.arrival("TICK", 100)
        monitor.arrival("TICK", 110)  # supersedes
        registry = MetricsRegistry()
        monitor.publish(registry)
        monitor.publish(registry)  # snapshot semantics: no double counting
        assert registry["deadline.TICK.arrivals"].value == 3
        assert registry["deadline.TICK.misses"].value == 1
        assert registry["deadline.TICK.period_cycles"].value == 100
        histogram = registry["deadline.TICK.latency_cycles"]
        assert histogram.count == 1
        assert histogram.max == 40


class TestEventRecord:
    def test_latency_none_until_consumed(self):
        record = EventRecord("TICK", 10)
        assert record.latency is None
        record.consumed_time = 35
        assert record.latency == 25
