"""Unit tests for the closed-loop environment harness."""

import pytest

from repro.flow import build_system
from repro.isa import MD16_TEP
from repro.workloads import (
    MoveCommand,
    SMD_ROUTINES,
    SmdClosedLoop,
    smd_chart,
)
from repro.workloads.motors import MotorSpec

FAST_MOTORS = {
    "X": MotorSpec("X", 50_000.0, 0.025e-3, 1.25, 2000.0),
    "Y": MotorSpec("Y", 50_000.0, 0.025e-3, 1.25, 2000.0),
    "Phi": MotorSpec("Phi", 9_000.0, 0.1, 900.0, 0.0),
}


@pytest.fixture(scope="module")
def optimized_system():
    arch = MD16_TEP.with_(microcode_optimized=True)
    return build_system(smd_chart(), SMD_ROUTINES, arch, specialize=True)


class TestEventScheduling:
    def test_schedule_orders_by_time(self, optimized_system):
        loop = SmdClosedLoop(optimized_system)
        loop.schedule(300, "INIT")
        loop.schedule(100, "POWER")
        assert loop._due_events(150) == {"POWER"}
        assert loop._due_events(400) == {"INIT"}

    def test_due_events_record_arrivals(self, optimized_system):
        loop = SmdClosedLoop(optimized_system)
        loop.schedule(100, "DATA_VALID")
        loop._due_events(100)
        assert loop.monitor.records["DATA_VALID"][0].arrival_time == 100

    def test_command_transfer_schedules_bytes(self, optimized_system):
        loop = SmdClosedLoop(optimized_system)
        end = loop._issue_command(MoveCommand(10, 10, 2), start_time=0)
        data_valids = [entry for entry in loop._queue
                       if entry[2] == "DATA_VALID"]
        assert len(data_valids) == SmdClosedLoop.COMMAND_BYTES
        assert any(entry[2] == "END_DATA" for entry in loop._queue)
        assert end > SmdClosedLoop.COMMAND_BYTES * loop.COMMAND_PERIOD - 1


class TestRunLoop:
    def test_single_move_completes(self, optimized_system):
        loop = SmdClosedLoop(optimized_system, motor_specs=FAST_MOTORS)
        report = loop.run([MoveCommand(20, 15, 3)],
                          max_configuration_cycles=15000)
        assert report.all_moves_completed
        assert report.final_positions == {"X": 20, "Y": 15, "Phi": 3}
        assert report.configuration_cycles > 0
        assert report.total_cycles > 0

    def test_negative_moves_track_direction(self, optimized_system):
        loop = SmdClosedLoop(optimized_system, motor_specs=FAST_MOTORS)
        report = loop.run([MoveCommand(-10, 12, -2)],
                          max_configuration_cycles=15000)
        assert report.final_positions == {"X": -10, "Y": 12, "Phi": -2}

    def test_budget_exhaustion_reports_partial(self, optimized_system):
        loop = SmdClosedLoop(optimized_system, motor_specs=FAST_MOTORS)
        report = loop.run([MoveCommand(50, 50, 5)],
                          max_configuration_cycles=20)
        assert not report.all_moves_completed
        assert report.commands_completed == 0

    def test_deadline_reports_cover_constrained_events(self, optimized_system):
        loop = SmdClosedLoop(optimized_system, motor_specs=FAST_MOTORS)
        report = loop.run([MoveCommand(10, 10, 2)],
                          max_configuration_cycles=15000)
        events = {deadline.event for deadline in report.deadline_reports}
        assert events == {"DATA_VALID", "X_PULSE", "Y_PULSE", "PHI_PULSE"}

    def test_machine_visits_expected_states(self, optimized_system):
        loop = SmdClosedLoop(optimized_system, motor_specs=FAST_MOTORS)
        loop.run([MoveCommand(10, 10, 2)], max_configuration_cycles=15000)
        visited = set()
        for step in loop.machine.history:
            visited |= set(step.configuration)
        assert {"Idle1", "Operation", "OpcodeReady", "Moving",
                "RunX", "RunY", "RunPhi"} <= visited
