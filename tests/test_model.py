"""Tests for the chart data model: hierarchy queries, completion, scopes."""

import pytest

from repro.statechart import (
    Chart,
    ChartBuilder,
    ChartError,
    PortKind,
    StateKind,
)


@pytest.fixture
def nested_chart():
    """Top-level structure shaped like Fig. 6: an AND of two OR regions."""
    b = ChartBuilder("nested")
    b.event("GO").event("STOP").condition("READY")
    with b.or_state("Main", default="Idle"):
        b.basic("Idle").transition("Operation", label="GO")
        with b.and_state("Operation"):
            with b.or_state("Prep", default="P1"):
                b.basic("P1").transition("P2", label="[READY]")
                b.basic("P2").transition("P1", label="STOP")
            with b.or_state("Move", default="M1"):
                b.basic("M1").transition("M2", label="GO")
                b.basic("M2")
        b.basic("Err")
    return b.build()


class TestHierarchy:
    def test_ancestors(self, nested_chart):
        assert nested_chart.ancestors("P1") == ["Prep", "Operation", "Main", "Root"]

    def test_is_ancestor_non_strict(self, nested_chart):
        assert nested_chart.is_ancestor("P1", "P1")
        assert nested_chart.is_ancestor("Operation", "M2")
        assert not nested_chart.is_ancestor("Prep", "M1")

    def test_lca_cousins(self, nested_chart):
        assert nested_chart.lca("P1", "M2") == "Operation"

    def test_lca_with_ancestor(self, nested_chart):
        assert nested_chart.lca("P1", "Prep") == "Prep"

    def test_depth(self, nested_chart):
        assert nested_chart.depth("Root") == 0
        assert nested_chart.depth("Main") == 1
        assert nested_chart.depth("P1") == 4

    def test_descendants_preorder(self, nested_chart):
        descendants = list(nested_chart.descendants("Operation"))
        assert descendants == ["Prep", "P1", "P2", "Move", "M1", "M2"]

    def test_leaves(self, nested_chart):
        assert set(nested_chart.leaves()) == {"Idle", "P1", "P2", "M1", "M2", "Err"}


class TestDefaultCompletion:
    def test_or_completion_follows_default(self, nested_chart):
        assert nested_chart.default_completion("Prep") == ["Prep", "P1"]

    def test_and_completion_enters_all_regions(self, nested_chart):
        entered = nested_chart.default_completion("Operation")
        assert set(entered) == {"Operation", "Prep", "P1", "Move", "M1"}

    def test_initial_configuration(self, nested_chart):
        assert nested_chart.initial_configuration() == frozenset(
            {"Root", "Main", "Idle"})

    def test_bad_default_raises(self):
        chart = Chart("bad")
        chart.add_state("A", StateKind.OR)
        chart.add_state("A1", parent="A")
        chart.states["A"].default = "NotAChild"
        with pytest.raises(ChartError):
            chart.default_completion("A")


class TestScopesAndSets:
    def test_sibling_transition_scope(self, nested_chart):
        t = next(t for t in nested_chart.transitions if t.source == "P1")
        assert nested_chart.transition_scope(t) == "Prep"

    def test_cross_region_scope_climbs_to_or(self, nested_chart):
        chart = nested_chart
        t = chart.add_transition("P1", "M2")
        # LCA is the AND state Operation; the scope must climb to Main.
        assert chart.transition_scope(t) == "Main"

    def test_exit_set(self, nested_chart):
        chart = nested_chart
        config = frozenset({"Root", "Main", "Operation", "Prep", "P1", "Move", "M1"})
        t = next(t for t in chart.transitions
                 if t.source == "Idle" and t.target == "Operation")
        # Now a transition leaving Operation for Err:
        t_err = chart.add_transition("Operation", "Err")
        exited = chart.exit_set(t_err, config)
        assert exited == frozenset({"Operation", "Prep", "P1", "Move", "M1"})

    def test_entry_set_enters_parallel_regions(self, nested_chart):
        chart = nested_chart
        t = next(t for t in chart.transitions if t.source == "Idle")
        entered = chart.entry_set(t)
        assert entered == frozenset({"Operation", "Prep", "P1", "Move", "M1"})

    def test_entry_set_deep_target_enters_sibling_regions(self, nested_chart):
        chart = nested_chart
        t = chart.add_transition("Idle", "P2")
        entered = chart.entry_set(t)
        # Entering P2 directly still default-completes the Move region.
        assert "P2" in entered and "Move" in entered and "M1" in entered
        assert "P1" not in entered


class TestDeclarations:
    def test_duplicate_state_rejected(self):
        chart = Chart("dup")
        chart.add_state("A")
        with pytest.raises(ChartError):
            chart.add_state("A")

    def test_duplicate_signal_rejected(self):
        chart = Chart("dup")
        chart.add_event("X")
        with pytest.raises(ChartError):
            chart.add_condition("X")

    def test_unknown_parent_rejected(self):
        chart = Chart("c")
        with pytest.raises(ChartError):
            chart.add_state("A", parent="Nope")

    def test_transition_to_unknown_state_rejected(self):
        chart = Chart("c")
        chart.add_state("A")
        with pytest.raises(ChartError):
            chart.add_transition("A", "B")

    def test_port_width_positive(self):
        chart = Chart("c")
        with pytest.raises(ValueError):
            chart.add_port("P", PortKind.DATA, width=0)

    def test_constrained_events(self):
        chart = Chart("c")
        chart.add_event("A", period=300)
        chart.add_event("B")
        assert [e.name for e in chart.constrained_events()] == ["A"]

    def test_signals_order_events_first(self):
        chart = Chart("c")
        chart.add_condition("C1")
        chart.add_event("E1")
        assert chart.signals() == ["E1", "C1"]


class TestTransitionQueries:
    def test_names_consumed_merges_trigger_and_guard(self, nested_chart):
        chart = nested_chart
        from repro.statechart import parse_expr
        t = chart.add_transition(
            "Idle", "Err", trigger=parse_expr("GO"), guard=parse_expr("READY"))
        assert t.names_consumed() == frozenset({"GO", "READY"})
        assert t.consumes("GO") and t.consumes("READY")
        assert not t.consumes("STOP")

    def test_describe_mentions_endpoints(self, nested_chart):
        t = nested_chart.transitions[0]
        text = t.describe()
        assert t.source in text and t.target in text
