"""Tests for the ISA: operands, legality, encoding, microcode (Table 1)."""

import pytest

from repro.isa import (
    ArchConfig,
    CustomInstruction,
    DecoderRom,
    Group,
    Imm,
    Instruction,
    IsaError,
    LabelRef,
    MD16_TEP,
    MINIMAL_TEP,
    Mem,
    Op,
    PortRef,
    Reg,
    SignalRef,
    StorageClass,
    check_legal,
    cycle_cost,
    encode,
    encoded_length,
    format_table1,
    microprogram,
    program_size_words,
)
from repro.isa.microcode import FETCH_PROLOGUE, RETURN_TO_FETCH


class TestArchConfig:
    def test_basic_tep_defaults(self):
        assert MINIMAL_TEP.data_width == 8
        assert MINIMAL_TEP.instruction_width == 16
        assert not MINIMAL_TEP.has_muldiv

    def test_words_for(self):
        assert MINIMAL_TEP.words_for(8) == 1
        assert MINIMAL_TEP.words_for(9) == 2
        assert MINIMAL_TEP.words_for(16) == 2
        assert MD16_TEP.words_for(16) == 1
        assert MD16_TEP.words_for(32) == 2

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            ArchConfig(data_width=12)

    def test_custom_depth_limit_enforced(self):
        deep = CustomInstruction("x", "(v0+v1)", 2, depth=9)
        with pytest.raises(ValueError):
            ArchConfig(custom_instructions=(deep,))

    def test_with_override(self):
        arch = MINIMAL_TEP.with_(has_muldiv=True, name="plus-md")
        assert arch.has_muldiv and MINIMAL_TEP.has_muldiv is False

    def test_describe_mentions_key_facts(self):
        text = MD16_TEP.with_(n_teps=2, microcode_optimized=True).describe()
        assert "2x" in text and "16bit" in text and "M/D" in text
        assert "optimized" in text

    def test_mutual_exclusions(self):
        arch = ArchConfig(n_teps=2, mutual_exclusions=frozenset(
            {frozenset({"A", "B"})}))
        assert arch.mutually_exclusive("A", "B")
        assert arch.mutually_exclusive("B", "A")
        assert not arch.mutually_exclusive("A", "C")


class TestLegality:
    def test_mul_needs_md_unit(self):
        with pytest.raises(IsaError, match="M/D"):
            check_legal(Instruction(Op.MUL, Imm(3)), MINIMAL_TEP)
        check_legal(Instruction(Op.MUL, Imm(3)), MD16_TEP)

    def test_neg_needs_negator(self):
        with pytest.raises(IsaError, match="two's-complement"):
            check_legal(Instruction(Op.NEG), MINIMAL_TEP)
        check_legal(Instruction(Op.NEG), MINIMAL_TEP.with_(has_negator=True))

    def test_cbeq_needs_comparator(self):
        instr = Instruction(Op.CBEQ, Imm(1), LabelRef("x"))
        with pytest.raises(IsaError, match="comparator"):
            check_legal(instr, MINIMAL_TEP)

    def test_shln_needs_barrel(self):
        with pytest.raises(IsaError, match="barrel"):
            check_legal(Instruction(Op.SHLN, Imm(4)), MINIMAL_TEP)

    def test_register_bounds(self):
        arch = MINIMAL_TEP.with_(register_file_size=2)
        check_legal(Instruction(Op.LDA, Reg(1)), arch)
        with pytest.raises(IsaError, match="register file"):
            check_legal(Instruction(Op.LDA, Reg(2)), arch)

    def test_internal_ram_bounds(self):
        arch = MINIMAL_TEP.with_(internal_ram_words=16)
        with pytest.raises(IsaError, match="words"):
            check_legal(Instruction(Op.LDA, Mem(16)), arch)

    def test_custom_index_bounds(self):
        with pytest.raises(IsaError, match="CUSTOM"):
            check_legal(Instruction(Op.CUSTOM, Imm(0)), MINIMAL_TEP)


class TestEncoding:
    def test_simple_encode_one_word(self):
        words = encode(Instruction(Op.LDA, Imm(5)))
        assert len(words) == 1
        assert (words[0] >> 10) == Op.LDA.value
        assert words[0] & 0xFF == 5

    def test_wide_immediate_two_words(self):
        words = encode(Instruction(Op.LDA, Imm(0x1234)))
        assert len(words) == 2
        assert words[1] == 0x1234

    def test_register_encoding_distinct_from_memory(self):
        reg = encode(Instruction(Op.LDA, Reg(3)))[0]
        mem = encode(Instruction(Op.LDA, Mem(3)))[0]
        assert reg != mem

    def test_external_mode(self):
        word = encode(Instruction(Op.STA, Mem(7, StorageClass.EXTERNAL)))[0]
        assert (word >> 8) & 0x3 == 3  # Mode.EXTERNAL

    def test_unresolved_label_rejected(self):
        with pytest.raises(IsaError, match="unresolved"):
            encode(Instruction(Op.JMP, LabelRef("nowhere")))

    def test_resolved_label(self):
        words = encode(Instruction(Op.JMP, LabelRef("x", 0x22)))
        assert words[0] & 0xFF == 0x22

    def test_fused_branch_has_target_word(self):
        instr = Instruction(Op.CBEQ, Imm(1), LabelRef("t", 0x40))
        words = encode(instr)
        assert words[-1] == 0x40

    def test_encoded_length_matches_encode(self):
        cases = [
            Instruction(Op.LDA, Imm(5)),
            Instruction(Op.LDA, Imm(300)),
            Instruction(Op.STA, Mem(200, StorageClass.EXTERNAL)),
            Instruction(Op.STA, Mem(200, StorageClass.INTERNAL)),
            Instruction(Op.CBNE, Imm(1), LabelRef("t", 1)),
            Instruction(Op.JMP, LabelRef("t", 0x300)),
        ]
        for instr in cases:
            assert encoded_length(instr) == len(encode(instr)), instr

    def test_program_size(self):
        program = [Instruction(Op.LDA, Imm(5)), Instruction(Op.RET)]
        assert program_size_words(program) == 2


class TestMicrocode:
    def test_every_microprogram_starts_with_fetch(self):
        for op, operand in [(Op.LDA, Imm(1)), (Op.ADD, Mem(0)), (Op.JMP, LabelRef("x", 0)),
                            (Op.TRET, None), (Op.EVSET, SignalRef(0))]:
            ops = microprogram(Instruction(op, operand), MINIMAL_TEP)
            assert ops[0] == FETCH_PROLOGUE[0]
            assert ops[1] == FETCH_PROLOGUE[1]

    def test_unoptimized_ends_with_return_jump(self):
        ops = microprogram(Instruction(Op.NOP), MINIMAL_TEP)
        assert ops[-1] == RETURN_TO_FETCH

    def test_optimized_drops_return_jump(self):
        arch = MINIMAL_TEP.with_(microcode_optimized=True)
        unopt = cycle_cost(Instruction(Op.NOP), MINIMAL_TEP)
        opt = cycle_cost(Instruction(Op.NOP), arch)
        assert opt == unopt - 1

    def test_external_access_costs_wait_states(self):
        internal = cycle_cost(Instruction(Op.LDA, Mem(0)), MINIMAL_TEP)
        external = cycle_cost(
            Instruction(Op.LDA, Mem(0, StorageClass.EXTERNAL)), MINIMAL_TEP)
        assert external == internal + MINIMAL_TEP.external_ram_wait_states

    def test_register_access_cheapest(self):
        arch = MINIMAL_TEP.with_(register_file_size=4)
        reg = cycle_cost(Instruction(Op.LDA, Reg(0)), arch)
        mem = cycle_cost(Instruction(Op.LDA, Mem(0)), arch)
        assert reg < mem

    def test_custom_instruction_single_execute_state(self):
        arch = MINIMAL_TEP.with_(custom_instructions=(
            CustomInstruction("c0", "(v0+v1)", 2, 1),))
        ops = microprogram(Instruction(Op.CUSTOM, Imm(0)), arch)
        # fetch(2) + one execute state + return jump
        assert len(ops) == 4

    def test_muldiv_slower_than_add(self):
        arch = MD16_TEP
        mul = cycle_cost(Instruction(Op.MUL, Mem(0)), arch)
        add = cycle_cost(Instruction(Op.ADD, Mem(0)), arch)
        assert mul > add

    def test_fused_branch_cheaper_than_cmp_plus_jump(self):
        arch = MINIMAL_TEP.with_(has_comparator=True)
        fused = cycle_cost(
            Instruction(Op.CBEQ, Mem(0), LabelRef("x", 0)), arch)
        split = (cycle_cost(Instruction(Op.CMP, Mem(0)), arch)
                 + cycle_cost(Instruction(Op.JZ, LabelRef("x", 0)), arch))
        assert fused < split

    def test_microop_encoding_roundtrip_fields(self):
        ops = microprogram(Instruction(Op.ADD, Imm(1)), MINIMAL_TEP)
        word = ops[-2].encode(0x17)
        assert (word >> 13) & 0b111 == ops[-2].group.value
        assert (word >> 8) & 0b11111 == ops[-2].signal
        assert word & 0xFF == 0x17

    def test_signal_field_fits_5_bits(self):
        with pytest.raises(IsaError):
            from repro.isa.microcode import MicroOp
            MicroOp(Group.ALU, 32, "bad")


class TestTable1:
    """Regenerating the exact content of Table 1."""

    def test_groups_match_paper(self):
        rows = format_table1()
        table = {symbolic: (bits, pattern) for symbolic, bits, pattern in rows}
        assert table["arithmetic"] == ("001", "01x00")
        assert table["logical"] == ("001", "000xx")
        assert table["shift"] == ("010", "0xxxx")
        assert table["single signals"] == ("011", "xxxxx")
        assert table["address bus"] == ("100", "0xxxx")
        assert table["jump, branch"] == ("101", "0xxxx")

    def test_arithmetic_signals_match_pattern(self):
        """add/sub/adc/sbc encodings fit Table 1's 01x00-family pattern."""
        from repro.isa.microcode import ARITH_SIGNALS
        for name in ("add", "sub", "adc", "sbc"):
            code = ARITH_SIGNALS[name]
            assert code & 0b01000, f"{name} must set the arithmetic bit"

    def test_logical_signals_match_pattern(self):
        from repro.isa.microcode import LOGIC_SIGNALS
        for name in ("and", "or", "xor", "not"):
            assert LOGIC_SIGNALS[name] & 0b11000 == 0


class TestDecoderRom:
    def test_shared_microprograms_stored_once(self):
        rom = DecoderRom(MINIMAL_TEP)
        a = rom.add_instruction(Instruction(Op.LDA, Imm(1)))
        b = rom.add_instruction(Instruction(Op.LDA, Imm(2)))
        assert a == b  # same shape -> same microprogram

    def test_distinct_shapes_get_distinct_entries(self):
        rom = DecoderRom(MINIMAL_TEP)
        a = rom.add_instruction(Instruction(Op.LDA, Imm(1)))
        b = rom.add_instruction(Instruction(Op.LDA, Mem(0)))
        assert a != b
        assert rom.size_words > 0

    def test_rom_size_grows_with_isa_usage(self):
        rom = DecoderRom(MINIMAL_TEP)
        rom.add_program([Instruction(Op.LDA, Imm(1)),
                         Instruction(Op.ADD, Mem(0)),
                         Instruction(Op.JMP, LabelRef("x", 0)),
                         Instruction(Op.RET)])
        small = rom.size_words
        rom.add_program([Instruction(Op.SUB, Mem(1)),
                         Instruction(Op.OUTP, PortRef(1))])
        assert rom.size_words > small

    def test_dump_is_readable(self):
        rom = DecoderRom(MINIMAL_TEP)
        rom.add_instruction(Instruction(Op.NOP))
        dump = rom.dump()
        assert "decoder ROM" in dump
