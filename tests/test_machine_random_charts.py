"""Property test: the full PSCP machine agrees with the reference
interpreter on randomly generated charts.

Hypothesis builds random chart shapes (OR chains, AND compositions, random
triggers/guards) with effect-free routines; the machine (SLA + compiled
stubs + scheduler) and the interpreter must walk through identical
configurations for random event traces.  This ties together every layer:
chart model, SLA synthesis, guard arbitration, stub generation, scheduler
and the TEP simulator.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.action.check import Externals
from repro.isa import CodeGenerator, MD16_TEP, NameMaps, prepare_program
from repro.pscp import PscpMachine
from repro.statechart import ChartBuilder, Interpreter

EVENTS = ["E0", "E1", "E2"]
CONDITIONS = ["C0", "C1"]


@st.composite
def chart_specs(draw):
    """A random chart description: regions of state rings with random
    transition labels."""
    n_regions = draw(st.integers(1, 3))
    regions = []
    for region in range(n_regions):
        n_states = draw(st.integers(2, 4))
        transitions = []
        for state in range(n_states):
            n_out = draw(st.integers(0, 2))
            for _ in range(n_out):
                target = draw(st.integers(0, n_states - 1))
                event = draw(st.sampled_from(EVENTS))
                guard = draw(st.sampled_from([None] + CONDITIONS))
                negate = draw(st.booleans())
                transitions.append((state, target, event, guard, negate))
        regions.append((n_states, transitions))
    initial_conditions = draw(st.sets(st.sampled_from(CONDITIONS)))
    return regions, initial_conditions


def build_chart(spec):
    regions, initial_conditions = spec
    b = ChartBuilder("random")
    for event in EVENTS:
        b.event(event)
    for condition in CONDITIONS:
        b.condition(condition, initial=condition in initial_conditions)

    def fill_region(region_index, n_states, transitions):
        for state in range(n_states):
            b.basic(f"R{region_index}S{state}")
        for index, (source, target, event, guard, negate) in enumerate(
                transitions):
            label = event
            if guard is not None:
                label += f" [{'not ' if negate else ''}{guard}]"
            label += f"/Act{region_index}_{index}()"
            b._pending.append((f"R{region_index}S{source}",
                               f"R{region_index}S{target}", label, None))

    if len(regions) == 1:
        with b.or_state("Top", default="R0S0"):
            fill_region(0, *regions[0])
    else:
        with b.and_state("Top"):
            for region_index, (n_states, transitions) in enumerate(regions):
                with b.or_state(f"Region{region_index}",
                                default=f"R{region_index}S0"):
                    fill_region(region_index, n_states, transitions)
    chart = b.build(validate=False)
    routines = "\n".join(
        f"void Act{r}_{i}() {{ }}"
        for r, (n, ts) in enumerate(regions)
        for i in range(len(ts)))
    routines = routines or "void Unused() { }"
    return chart, routines


class TestMachineMatchesInterpreterOnRandomCharts:
    @settings(max_examples=25, deadline=None)
    @given(chart_specs(),
           st.lists(st.sets(st.sampled_from(EVENTS)), max_size=6))
    def test_configurations_agree(self, spec, trace):
        chart, routines = build_chart(spec)
        externals = Externals.from_chart(chart)
        checked = prepare_program(routines, MD16_TEP, externals)
        compiled = CodeGenerator(checked, MD16_TEP,
                                 maps=NameMaps.from_chart(chart)).compile()
        params = {f.name: [] for f in checked.program.functions}
        machine = PscpMachine(chart, compiled, param_names=params)
        interpreter = Interpreter(chart)
        for events in trace:
            machine_step = machine.step(events)
            interpreter_step = interpreter.step(events)
            assert machine.cr.configuration == interpreter.configuration
            assert [t.index for t in machine_step.fired] == \
                [t.index for t in interpreter_step.fired]

    @settings(max_examples=15, deadline=None)
    @given(chart_specs())
    def test_sla_size_reasonable(self, spec):
        """Synthesis never explodes on these shapes."""
        from repro.sla import synthesize
        chart, _ = build_chart(spec)
        pla = synthesize(chart)
        # each transition contributes at most a few products (guards are
        # single literals here)
        assert pla.product_terms <= 4 * max(1, len(chart.transitions))
