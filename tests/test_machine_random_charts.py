"""Property test: the full PSCP machine agrees with the reference
interpreter on randomly generated charts.

Chart generation is delegated to :mod:`repro.fuzz.generator` — the same
seeded vocabulary the differential fuzz campaigns use — so the property
test and the fuzzer exercise one grammar.  Hypothesis's role here is
reduced to drawing generator seeds (plus shrinking towards small ones);
the heavy lifting (well-formed hierarchy, lint-clean routines, range-safe
arithmetic) lives in the generator itself.

The full-effects test runs the baseline rung of the oracle's stage stack
(machine vs. interpreter+SpecEvaluator on configurations, fired indices,
conditions, ports and globals); the effect-free test keeps the historical
shape-only property alive on the cheaper no-routines mode.
"""

from hypothesis import given, settings, strategies as st

from repro.fuzz import GeneratorConfig, OracleHarness, generate_spec, render_chart

SHAPE_CONFIG = GeneratorConfig(effects=False)

seeds = st.integers(0, 2**32 - 1)


class TestMachineMatchesInterpreterOnRandomCharts:
    @settings(max_examples=20, deadline=None)
    @given(seeds, st.integers(5, 25))
    def test_baseline_machine_agrees(self, seed, cycles):
        """Machine and interpreter agree per-cycle on every observable
        field, with real action routines executing on both sides."""
        spec = generate_spec(seed)
        harness = OracleHarness(spec, cycles=cycles, max_rungs=1)
        result = harness.run_all(stop_at_first=True)
        assert result.clean, result.first_divergence.describe()

    @settings(max_examples=15, deadline=None)
    @given(seeds, st.integers(5, 20))
    def test_effect_free_shapes_agree(self, seed, cycles):
        """The historical shape-only property: empty routines, pure
        configuration/firing agreement."""
        spec = generate_spec(seed, SHAPE_CONFIG)
        harness = OracleHarness(spec, cycles=cycles, max_rungs=1)
        result = harness.run_all(stop_at_first=True)
        assert result.clean, result.first_divergence.describe()

    @settings(max_examples=15, deadline=None)
    @given(seeds)
    def test_sla_size_reasonable(self, seed):
        """Synthesis never explodes on these shapes."""
        from repro.sla import synthesize

        chart = render_chart(generate_spec(seed, SHAPE_CONFIG))
        pla = synthesize(chart)
        # each transition contributes at most a few products (guards are
        # single literals in the generated vocabulary)
        assert pla.product_terms <= 4 * max(1, len(chart.transitions))
