"""Tests for the reference interpreter (configuration-cycle semantics)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.statechart import (
    ChartBuilder,
    Interpreter,
    check_configuration,
)


def blinker():
    b = ChartBuilder("blinker")
    b.event("TICK")
    with b.or_state("Top", default="Off"):
        b.basic("Off").transition("On", label="TICK/LightOn()")
        b.basic("On").transition("Off", label="TICK/LightOff()")
    return b.build()


def parallel_chart():
    """AND composition with independent regions plus an escape transition."""
    b = ChartBuilder("par")
    b.event("GO").event("E1").event("E2").event("ABORT")
    b.condition("OK", initial=True)
    with b.or_state("Main", default="Idle"):
        b.basic("Idle").transition("Work", label="GO")
        with b.and_state("Work") as work:
            with b.or_state("RegA", default="A1"):
                b.basic("A1").transition("A2", label="E1")
                b.basic("A2")
            with b.or_state("RegB", default="B1"):
                b.basic("B1").transition("B2", label="E2")
                b.basic("B2")
        work.transition("Idle", label="ABORT")
        b.basic("Dead")
    return b.build()


class TestBasicStepping:
    def test_initial_configuration(self):
        interp = Interpreter(blinker())
        assert "Off" in interp.configuration

    def test_event_fires_transition(self):
        interp = Interpreter(blinker())
        result = interp.step({"TICK"})
        assert len(result.fired) == 1
        assert "On" in interp.configuration and "Off" not in interp.configuration

    def test_no_event_is_quiescent(self):
        interp = Interpreter(blinker())
        result = interp.step()
        assert result.quiescent
        assert "Off" in interp.configuration

    def test_events_last_one_cycle(self):
        interp = Interpreter(blinker())
        interp.step({"TICK"})    # Off -> On
        result = interp.step()   # TICK is gone; nothing fires
        assert result.quiescent

    def test_toggles_repeatedly(self):
        interp = Interpreter(blinker())
        for i in range(6):
            interp.step({"TICK"})
            expected = "On" if i % 2 == 0 else "Off"
            assert expected in interp.configuration

    def test_unknown_event_rejected(self):
        interp = Interpreter(blinker())
        with pytest.raises(KeyError):
            interp.step({"NOPE"})

    def test_action_log_records_routines(self):
        interp = Interpreter(blinker())
        interp.step({"TICK"})
        interp.step({"TICK"})
        assert interp.action_log == ["LightOn()", "LightOff()"]

    def test_reset(self):
        interp = Interpreter(blinker())
        interp.step({"TICK"})
        interp.reset()
        assert "Off" in interp.configuration
        assert interp.cycle == 0


class TestParallelism:
    def test_entering_and_state_enters_all_regions(self):
        interp = Interpreter(parallel_chart())
        interp.step({"GO"})
        assert {"Work", "RegA", "A1", "RegB", "B1"} <= set(interp.configuration)

    def test_parallel_regions_fire_same_cycle(self):
        interp = Interpreter(parallel_chart())
        interp.step({"GO"})
        result = interp.step({"E1", "E2"})
        assert len(result.fired) == 2
        assert {"A2", "B2"} <= set(interp.configuration)

    def test_regions_are_independent(self):
        interp = Interpreter(parallel_chart())
        interp.step({"GO"})
        interp.step({"E1"})
        assert "A2" in interp.configuration and "B1" in interp.configuration

    def test_outer_transition_wins_conflict(self):
        """ABORT (scope at Main) beats the inner E1 transition."""
        interp = Interpreter(parallel_chart())
        interp.step({"GO"})
        result = interp.step({"E1", "ABORT"})
        assert len(result.fired) == 1
        assert result.fired[0].target == "Idle"
        assert "Idle" in interp.configuration
        assert "A2" not in interp.configuration

    def test_exit_of_and_state_clears_all_regions(self):
        interp = Interpreter(parallel_chart())
        interp.step({"GO"})
        interp.step({"ABORT"})
        for gone in ["Work", "RegA", "A1", "RegB", "B1"]:
            assert gone not in interp.configuration


class TestInternalEventsAndConditions:
    def test_raised_event_visible_next_cycle(self):
        b = ChartBuilder("chain")
        b.event("START").event("INTERNAL")
        with b.or_state("Top", default="S0"):
            b.basic("S0").transition("S1", label="START/Fire()")
            b.basic("S1").transition("S2", label="INTERNAL")
            b.basic("S2")
        chart = b.build()

        def fire(interp, transition):
            interp.raise_event("INTERNAL")

        interp = Interpreter(chart, actions={"Fire": fire})
        interp.step({"START"})
        assert "S1" in interp.configuration
        result = interp.step()  # INTERNAL becomes visible now
        assert not result.quiescent
        assert "S2" in interp.configuration

    def test_condition_gates_transition(self):
        b = ChartBuilder("gate")
        b.event("E").condition("OPEN")
        with b.or_state("Top", default="A"):
            b.basic("A").transition("B", label="E [OPEN]")
            b.basic("B")
        interp = Interpreter(b.build())
        interp.step({"E"})
        assert "A" in interp.configuration  # OPEN false: no firing
        interp.set_condition("OPEN", True)
        interp.step({"E"})
        assert "B" in interp.configuration

    def test_condition_persists_across_cycles(self):
        interp = Interpreter(parallel_chart())
        assert interp.condition("OK") is True
        interp.step()
        interp.step()
        assert interp.condition("OK") is True

    def test_set_unknown_condition_rejected(self):
        interp = Interpreter(blinker())
        with pytest.raises(KeyError):
            interp.set_condition("NOPE", True)

    def test_raise_unknown_event_rejected(self):
        interp = Interpreter(blinker())
        with pytest.raises(KeyError):
            interp.raise_event("NOPE")


class TestConfigurationConsistency:
    """Property: every reachable configuration is structurally consistent."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.sets(st.sampled_from(["GO", "E1", "E2", "ABORT"])),
                    max_size=12))
    def test_random_traces_keep_consistency(self, trace):
        chart = parallel_chart()
        interp = Interpreter(chart)
        for events in trace:
            interp.step(events)
            problems = check_configuration(chart, interp.configuration)
            assert problems == [], problems

    def test_check_flags_missing_root(self):
        chart = blinker()
        problems = check_configuration(chart, frozenset({"Top", "Off"}))
        assert any("root" in p for p in problems)

    def test_check_flags_two_or_children(self):
        chart = blinker()
        bad = frozenset({"Root", "Top", "Off", "On"})
        problems = check_configuration(chart, bad)
        assert any("active children" in p for p in problems)

    def test_check_flags_orphan(self):
        chart = blinker()
        bad = frozenset({"Root", "Off"})
        problems = check_configuration(chart, bad)
        assert any("parent" in p for p in problems)


class TestStepResult:
    def test_events_consumed_reported(self):
        interp = Interpreter(blinker())
        result = interp.step({"TICK"})
        assert result.events_consumed == frozenset({"TICK"})

    def test_entered_and_exited_sets(self):
        interp = Interpreter(parallel_chart())
        result = interp.step({"GO"})
        assert "Idle" in result.exited
        assert {"Work", "RegA", "A1"} <= set(result.entered)

    def test_run_over_trace(self):
        interp = Interpreter(blinker())
        results = interp.run([{"TICK"}, set(), {"TICK"}])
        assert [r.quiescent for r in results] == [False, True, False]
