"""Multi-rung differential oracle: clean ladders, canary detection,
divergence monotonicity."""

import pytest

from repro.fuzz import (
    OracleHarness,
    apply_mutation,
    generate_spec,
    ladder_rungs,
    plant_canary,
    render_chart,
    render_source,
    spec_to_json,
)
from repro.fuzz.oracle import EXTRA_STAGES


def first_plantable(stage, seeds=range(7919, 7940), cycles=20):
    """First (spec, mutation) pair where a canary plants at *stage*."""
    for seed in seeds:
        spec = generate_spec(seed)
        mutation = plant_canary(spec, stage=stage, cycles=cycles)
        if mutation is not None:
            return spec, mutation
    raise AssertionError(f"no plantable seed for stage {stage!r}")


class TestLadder:
    def test_rung_names_mirror_improver(self):
        spec = generate_spec(1)
        rungs = ladder_rungs(render_chart(spec), render_source(spec))
        names = [r.name for r in rungs]
        assert names[0] == "baseline"
        assert "peephole" in names
        assert "add-tep" in names
        # ladder order is fixed: each rung builds on the previous arch
        assert names.index("peephole") < names.index("add-tep")

    def test_stage_names_include_extra_stages(self):
        harness = OracleHarness(generate_spec(1), cycles=10)
        names = harness.stage_names()
        for extra in EXTRA_STAGES:
            assert extra in names
        assert names[-len(EXTRA_STAGES):] == list(EXTRA_STAGES)

    def test_max_rungs_truncates(self):
        harness = OracleHarness(generate_spec(1), cycles=10, max_rungs=1)
        assert harness.stage_names() == ["baseline", *EXTRA_STAGES]


class TestCleanOracle:
    @pytest.mark.parametrize("seed", [1, 2, 5, 7919])
    def test_every_stage_agrees(self, seed):
        """Zero divergence across all rungs, snapshot/restore and the
        delta-chain reconstruction — the fuzzer's core invariant."""
        harness = OracleHarness(generate_spec(seed), cycles=25)
        result = harness.run_all(stop_at_first=True)
        assert result.clean, result.first_divergence.describe()
        assert result.stages == harness.stage_names()


class TestCanary:
    def test_apply_mutation_retargets_one_transition(self):
        spec, mutation = first_plantable("baseline")
        mutated = apply_mutation(spec, mutation)
        assert mutated is not None
        before = spec_to_json(spec)
        after = spec_to_json(mutated)
        assert before != after
        # exactly one transition's target changed
        changed = [
            (b, a)
            for b, a in zip(_transitions(before), _transitions(after))
            if b != a
        ]
        assert len(changed) == 1
        assert changed[0][1]["target"] == mutation.new_target

    def test_canary_detected_at_planted_stage(self):
        spec, mutation = first_plantable("promote-internal")
        harness = OracleHarness(spec, cycles=20, mutation=mutation)
        names = harness.stage_names()
        planted = names.index("promote-internal")
        # stages before the mutation run the clean chart: no divergence
        for index in range(planted):
            assert harness.run_stage(index) is None, names[index]
        # the planted stage itself diverges
        divergence = harness.run_stage(planted)
        assert divergence is not None
        assert divergence.stage == "promote-internal"

    def test_canary_divergence_is_monotone(self):
        """Every stage at or after the mutation point diverges — the
        property the ladder bisection relies on."""
        spec, mutation = first_plantable("promote-internal")
        harness = OracleHarness(spec, cycles=20, mutation=mutation)
        names = harness.stage_names()
        planted = names.index("promote-internal")
        verdicts = [harness.run_stage(i) is not None
                    for i in range(len(names))]
        assert verdicts == [i >= planted for i in range(len(names))]

    def test_snapshot_stage_canary(self):
        """A mutation planted at an extra stage is caught there and only
        there (all rung stages run the clean chart)."""
        spec = generate_spec(7922)
        mutation = plant_canary(spec, stage="snapshot-restore", cycles=20)
        assert mutation is not None
        harness = OracleHarness(spec, cycles=20, mutation=mutation)
        names = harness.stage_names()
        planted = names.index("snapshot-restore")
        for index in range(planted):
            assert harness.run_stage(index) is None
        assert harness.run_stage(planted) is not None


def _transitions(doc):
    return doc["transitions"]
