"""Tests for the PSCP machine: scheduler, CR, ports, timers, and the
machine-vs-interpreter equivalence property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.action.check import Externals
from repro.isa import CodeGenerator, MD16_TEP, NameMaps, prepare_program
from repro.pscp import (
    DISPATCH_OVERHEAD_CYCLES,
    DeadlineMonitor,
    InterruptController,
    MachineError,
    PortBus,
    PortError,
    PscpMachine,
    SLA_OVERHEAD_CYCLES,
    Timer,
    TimerBank,
    round_robin_dispatch,
    stub_wcet,
)
from repro.statechart import ChartBuilder, Interpreter


def build_machine(chart, source, arch=MD16_TEP, port_bus=None):
    externals = Externals.from_chart(chart)
    checked = prepare_program(source, arch, externals)
    maps = NameMaps.from_chart(chart)
    compiled = CodeGenerator(checked, arch, maps=maps).compile()
    params = {f.name: [p.name for p in f.params]
              for f in checked.program.functions}
    return PscpMachine(chart, compiled, port_bus=port_bus,
                       param_names=params)


def counter_chart():
    b = ChartBuilder("counter")
    b.event("GO").event("STEP").event("DONE_EV")
    b.condition("DONE")
    with b.or_state("Main", default="Idle"):
        b.basic("Idle").transition("Run", label="GO/Init()")
        run = b.basic("Run")
        run.transition("Fin", label="STEP [DONE]")
        run.transition("Run", label="STEP [not DONE]/Work(3)")
        b.basic("Fin")
    return b.build()


COUNTER_SRC = """
int:16 acc;
void Init() { acc = 0; }
void Work(int:16 k) {
  acc = acc + k;
  if (acc >= 9) { SetTrue(DONE); Raise(DONE_EV); }
}
"""


class TestMachineBasics:
    def test_initial_configuration(self):
        machine = build_machine(counter_chart(), COUNTER_SRC)
        assert machine.in_state("Idle")

    def test_transition_with_routine_executes(self):
        machine = build_machine(counter_chart(), COUNTER_SRC)
        machine.step({"GO"})
        assert machine.in_state("Run")
        machine.step({"STEP"})
        assert machine.read_global("acc") == 3

    def test_condition_written_back_to_cr(self):
        machine = build_machine(counter_chart(), COUNTER_SRC)
        machine.step({"GO"})
        for _ in range(3):
            machine.step({"STEP"})
        assert machine.condition("DONE")

    def test_guard_steers_transition(self):
        machine = build_machine(counter_chart(), COUNTER_SRC)
        machine.step({"GO"})
        for _ in range(3):
            machine.step({"STEP"})
        machine.step({"STEP"})
        assert machine.in_state("Fin")

    def test_raised_event_visible_next_cycle(self):
        b = ChartBuilder("chain")
        b.event("START").event("PING")
        with b.or_state("Top", default="S0"):
            b.basic("S0").transition("S1", label="START/Fire()")
            b.basic("S1").transition("S2", label="PING")
            b.basic("S2")
        chart = b.build()
        machine = build_machine(chart, "void Fire() { Raise(PING); }")
        machine.step({"START"})
        assert machine.in_state("S1")
        step = machine.step()
        assert not step.quiescent
        assert machine.in_state("S2")

    def test_unknown_event_rejected(self):
        machine = build_machine(counter_chart(), COUNTER_SRC)
        with pytest.raises(MachineError):
            machine.step({"NOPE"})

    def test_quiescent_cycle_costs_only_sla_overhead(self):
        machine = build_machine(counter_chart(), COUNTER_SRC)
        step = machine.step()
        assert step.quiescent
        assert step.cycle_length == SLA_OVERHEAD_CYCLES

    def test_time_accumulates(self):
        machine = build_machine(counter_chart(), COUNTER_SRC)
        machine.step({"GO"})
        machine.step({"STEP"})
        assert machine.time == sum(s.cycle_length for s in machine.history)

    def test_events_last_single_cycle(self):
        machine = build_machine(counter_chart(), COUNTER_SRC)
        machine.step({"GO"})
        step = machine.step()  # GO is gone
        assert step.quiescent


class TestEquivalenceWithInterpreter:
    """Property: machine and interpreter agree on fired transitions and
    configurations for random traces (with matching action semantics)."""

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sets(st.sampled_from(["GO", "STEP"])), max_size=8))
    def test_configurations_match(self, trace):
        chart = counter_chart()
        machine = build_machine(chart, COUNTER_SRC)

        state = {"acc": 0}

        def init(interp, transition):
            state["acc"] = 0

        def work(interp, transition):
            state["acc"] += 3
            if state["acc"] >= 9:
                interp.set_condition("DONE", True)
                interp.raise_event("DONE_EV")

        interp = Interpreter(chart, actions={"Init": init, "Work": work})
        for events in trace:
            machine_step = machine.step(events)
            interp_step = interp.step(events)
            assert machine.cr.configuration == interp.configuration
            assert [t.index for t in machine_step.fired] == \
                [t.index for t in interp_step.fired]
            assert machine.condition("DONE") == interp.condition("DONE")
        assert machine.read_global("acc") == state["acc"] \
            or not any("GO" in t for t in trace)


class TestDispatch:
    def test_round_robin_alternates(self):
        arch = MD16_TEP.with_(n_teps=2)
        plan = round_robin_dispatch([0, 1, 2, 3], lambda i: f"r{i}", arch)
        assert plan.queues == [[0, 2], [1, 3]]

    def test_single_tep_serializes(self):
        plan = round_robin_dispatch([0, 1, 2], lambda i: f"r{i}", MD16_TEP)
        assert plan.queues == [[0, 1, 2]]

    def test_mutual_exclusion_forces_same_queue(self):
        arch = MD16_TEP.with_(n_teps=2, mutual_exclusions=frozenset(
            {frozenset({"r0", "r1"})}))
        plan = round_robin_dispatch([0, 1], lambda i: f"r{i}", arch)
        assert plan.queues == [[0, 1], []]

    def test_non_exclusive_still_parallel(self):
        arch = MD16_TEP.with_(n_teps=2, mutual_exclusions=frozenset(
            {frozenset({"r0", "r9"})}))
        plan = round_robin_dispatch([0, 1], lambda i: f"r{i}", arch)
        assert plan.queues == [[0], [1]]

    def test_makespan_is_max_queue(self):
        arch = MD16_TEP.with_(n_teps=2)
        plan = round_robin_dispatch([0, 1], lambda i: f"r{i}", arch)
        costs = {0: 100, 1: 30}
        assert plan.makespan(lambda i: costs[i]) == \
            100 + DISPATCH_OVERHEAD_CYCLES

    def test_two_teps_shorten_cycle(self):
        """The core Table 4 effect: a second TEP nearly halves a cycle with
        two comparable transitions."""
        chart_b = ChartBuilder("par")
        chart_b.event("T")
        with chart_b.and_state("W"):
            with chart_b.or_state("A", default="A1"):
                chart_b.basic("A1").transition("A1", label="T/WorkA()")
            with chart_b.or_state("B", default="B1"):
                chart_b.basic("B1").transition("B1", label="T/WorkB()")
        chart = chart_b.build()
        src = """
        int:16 a;
        int:16 b;
        void WorkA() { int:16 i = 0; @bound(10) while (i < 10) { a = a + i; i = i + 1; } }
        void WorkB() { int:16 i = 0; @bound(10) while (i < 10) { b = b + i; i = i + 1; } }
        """
        one = build_machine(chart, src, MD16_TEP)
        two = build_machine(chart, src, MD16_TEP.with_(n_teps=2))
        len_one = one.step({"T"}).cycle_length
        len_two = two.step({"T"}).cycle_length
        assert len_two < len_one
        assert len_two < 0.75 * len_one

    def test_mutually_exclusive_routines_not_sped_up(self):
        chart_b = ChartBuilder("par2")
        chart_b.event("T")
        with chart_b.and_state("W"):
            with chart_b.or_state("A", default="A1"):
                chart_b.basic("A1").transition("A1", label="T/WorkA()")
            with chart_b.or_state("B", default="B1"):
                chart_b.basic("B1").transition("B1", label="T/WorkB()")
        chart = chart_b.build()
        src = """
        int:16 shared;
        void WorkA() { shared = shared + 1; }
        void WorkB() { shared = shared + 2; }
        """
        arch = MD16_TEP.with_(n_teps=2, mutual_exclusions=frozenset(
            {frozenset({"WorkA", "WorkB"})}))
        serial = build_machine(chart, src, arch)
        parallel = build_machine(chart, src, MD16_TEP.with_(n_teps=2))
        assert serial.step({"T"}).cycle_length > \
            parallel.step({"T"}).cycle_length


class TestStubWcet:
    def test_stub_wcet_bounds_measured(self):
        chart = counter_chart()
        externals = Externals.from_chart(chart)
        checked = prepare_program(COUNTER_SRC, MD16_TEP, externals)
        compiled = CodeGenerator(checked, MD16_TEP,
                                 maps=NameMaps.from_chart(chart)).compile()
        params = {f.name: [p.name for p in f.params]
                  for f in checked.program.functions}
        machine = PscpMachine(chart, compiled, param_names=params)
        machine.step({"GO"})
        step = machine.step({"STEP"})
        work_transition = step.fired[0]
        bound = stub_wcet(work_transition, compiled, params)
        measured = step.cycle_length - SLA_OVERHEAD_CYCLES - \
            DISPATCH_OVERHEAD_CYCLES
        assert measured <= bound

    def test_wcet_override_wins(self):
        chart = counter_chart()
        externals = Externals.from_chart(chart)
        checked = prepare_program(COUNTER_SRC, MD16_TEP, externals)
        compiled = CodeGenerator(checked, MD16_TEP,
                                 maps=NameMaps.from_chart(chart)).compile()
        transition = chart.transitions[0]
        transition.wcet_override = 777
        assert stub_wcet(transition, compiled, {}) == 777


class TestPortBus:
    def test_latch_semantics(self):
        bus = PortBus()
        bus.write(0x700, 42)
        assert bus.read(0x700) == 42

    def test_handlers(self):
        bus = PortBus()
        values = []
        bus.map_read(0x701, lambda: 7)
        bus.map_write(0x702, values.append)
        assert bus.read(0x701) == 7
        bus.write(0x702, 9)
        assert values == [9]

    def test_strict_mode_rejects_unmapped(self):
        bus = PortBus(strict=True)
        with pytest.raises(PortError):
            bus.read(0x700)
        bus.map_latch(0x700)
        assert bus.read(0x700) == 0

    def test_access_log(self):
        bus = PortBus()
        bus.write(1, 5)
        bus.read(1)
        assert bus.access_log == [("w", 1, 5), ("r", 1, 5)]


class TestTimers:
    def test_timer_fires_each_period(self):
        timer = Timer("TICK", 100)
        assert timer.advance(0, 350) == [100, 200, 300]
        assert timer.advance(350, 400) == [400]

    def test_phase_offset(self):
        timer = Timer("TICK", 100, phase=30)
        assert timer.advance(0, 250) == [30, 130, 230]

    def test_disabled_timer_silent(self):
        timer = Timer("TICK", 50, enabled=False)
        assert timer.advance(0, 500) == []

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            Timer("TICK", 0)

    def test_bank_merges_sorted(self):
        bank = TimerBank([Timer("A", 100), Timer("B", 150)])
        events = bank.events_between(0, 300)
        assert events == [(100, "A"), (150, "B"), (200, "A"), (300, "A"),
                          (300, "B")]

    def test_bank_pending_set(self):
        bank = TimerBank([Timer("A", 10), Timer("B", 25)])
        assert bank.pending_events(0, 25) == {"A", "B"}


class TestInterrupts:
    def test_interrupt_preempts_normal_events(self):
        ic = InterruptController({"IRQ"})
        assert ic.filter({"IRQ", "NORMAL"}) == {"IRQ"}
        assert ic.held_events == {"NORMAL"}
        # held events replayed next cycle
        assert ic.filter(set()) == {"NORMAL"}

    def test_no_interrupt_passthrough(self):
        ic = InterruptController({"IRQ"})
        assert ic.filter({"A", "B"}) == {"A", "B"}

    def test_interrupt_alone_passes(self):
        ic = InterruptController({"IRQ"})
        assert ic.filter({"IRQ"}) == {"IRQ"}
        assert ic.held_events == set()


class TestDeadlineMonitor:
    def make_machine(self):
        b = ChartBuilder("mon")
        b.event("PULSE", period=300)
        with b.or_state("Top", default="S"):
            b.basic("S").transition("S", label="PULSE/Handle()")
        chart = b.build()
        return chart, build_machine(chart, "void Handle() { }")

    def test_latency_recorded(self):
        chart, machine = self.make_machine()
        monitor = DeadlineMonitor(chart)
        monitor.arrival("PULSE", machine.time)
        step = machine.step({"PULSE"})
        monitor.observe(step)
        report = monitor.report("PULSE")
        assert report.arrivals == 1
        assert report.consumed == 1
        assert report.worst_latency == step.end_time
        assert report.met

    def test_miss_detected_when_latency_exceeds_period(self):
        chart, machine = self.make_machine()
        monitor = DeadlineMonitor(chart)
        monitor.arrival("PULSE", 0)
        # let a lot of time pass before the consuming step
        for _ in range(40):
            machine.step()
        step = machine.step({"PULSE"})
        monitor.observe(step)
        report = monitor.report("PULSE")
        if step.end_time > 300:
            assert report.misses >= 1

    def test_unconstrained_event_ignored(self):
        chart, machine = self.make_machine()
        monitor = DeadlineMonitor(chart)
        monitor.arrival("NOT_TRACKED", 0)
        assert monitor.reports()[0].arrivals == 0
