"""Tests for pattern detection and the peephole optimizers (section 4)."""

import pytest

from repro.action import parse_program
from repro.isa import (
    Imm,
    Instruction,
    LabelRef,
    Mem,
    MINIMAL_TEP,
    Op,
    count_redundant_jumps,
    evaluate_signature,
    expression_depth,
    expression_signature,
    find_comparator_sites,
    find_custom_candidates,
    find_negation_sites,
    is_fusable,
    leaf_variables,
    microprogram,
    optimize_assembly,
    optimize_microprogram,
)
from repro.isa.microcode import RETURN_TO_FETCH


def expr_of(text, params="int:16 a, int:16 b, int:16 c"):
    program = parse_program(f"void f({params}) {{ a = {text}; }}")
    return program.function("f").body[0].value


class TestSignatures:
    def test_variables_numbered_by_first_use(self):
        assert expression_signature(expr_of("a + b")) == "(v0+v1)"
        assert expression_signature(expr_of("b + a")) == "(v0+v1)"

    def test_repeated_variable_distinct_from_two_variables(self):
        assert expression_signature(expr_of("a + a")) == "(v0+v0)"
        assert expression_signature(expr_of("a + a")) != \
            expression_signature(expr_of("a + b"))

    def test_constants_baked_in(self):
        assert expression_signature(expr_of("a << 2")) == "(v0<<c2)"
        assert expression_signature(expr_of("a << 3")) != \
            expression_signature(expr_of("a << 2"))

    def test_non_fusable_returns_none(self):
        assert expression_signature(expr_of("a * b")) is None
        assert expression_signature(expr_of("a == b")) is None

    def test_unary_signatures(self):
        assert expression_signature(expr_of("-(a ^ b)")) == "(-(v0^v1))"
        assert expression_signature(expr_of("~a")) == "(~v0)"

    def test_depth(self):
        assert expression_depth(expr_of("a")) == 0
        assert expression_depth(expr_of("a + b")) == 1
        assert expression_depth(expr_of("(a + b) << 1")) == 2

    def test_leaf_variables_order(self):
        assert leaf_variables(expr_of("b + (a & b)")) == ["b", "a"]


class TestSignatureEvaluation:
    @pytest.mark.parametrize("text,operands,expected", [
        ("a + b", [10, 20], 30),
        ("a - b", [10, 3], 7),
        ("(a + b) << 1", [10, 20], 60),
        ("a ^ (b | 12)", [0xF0, 0x03], 0xF0 ^ (0x03 | 12)),
        ("-(a)", [5], (-5) & 0xFF),
        ("~a", [0], 0xFF),
        ("(a >> 2) + 1", [40], 11),
        ("a + a", [7], 14),
    ])
    def test_evaluate_matches_python(self, text, operands, expected):
        signature = expression_signature(expr_of(text))
        assert signature is not None
        assert evaluate_signature(signature, operands, 0xFF) == expected & 0xFF

    def test_fusable_limits(self):
        assert is_fusable(expr_of("(a + b) ^ c"), max_operands=3)
        assert not is_fusable(expr_of("(a + b) ^ c"), max_operands=2)
        # single-operator expressions are not worth fusing
        assert not is_fusable(expr_of("a + b"), max_operands=2)


class TestSiteDiscovery:
    PROGRAM = """
    int:16 x;
    int:16 y;
    void f(int:16 a, int:16 b) {
      if (a == b) { x = a; } else { x = b; }
      x = -x;
      y = (a + b) << 1;
      y = (a + b) << 1;
      y = a ^ (b & 255);
    }
    """

    def test_comparator_sites(self):
        sites = find_comparator_sites(parse_program(self.PROGRAM))
        assert len(sites) == 1
        assert sites[0].kind == "comparator"
        assert "==" in sites[0].detail

    def test_negation_sites(self):
        sites = find_negation_sites(parse_program(self.PROGRAM))
        assert len(sites) == 1
        assert "x = -x" in sites[0].detail

    def test_custom_candidates_ranked_and_deduplicated(self):
        from repro.action import check_program
        program = parse_program(self.PROGRAM)
        check_program(program)  # annotate types
        candidates = find_custom_candidates(program, max_operands=2)
        signatures = [c.signature for c in candidates]
        assert "((v0+v1)<<c1)" in signatures
        # the duplicated expression counts twice
        best = next(c for c in candidates if c.signature == "((v0+v1)<<c1)")
        assert best.occurrences == 2
        assert candidates == sorted(candidates,
                                    key=lambda c: c.estimated_saving,
                                    reverse=True)

    def test_candidate_to_instruction(self):
        from repro.action import check_program
        program = parse_program(self.PROGRAM)
        check_program(program)
        candidate = find_custom_candidates(program)[0]
        custom = candidate.to_instruction(0)
        assert custom.signature == candidate.signature
        assert custom.depth <= 4


class TestMicrocodePeephole:
    def test_removes_trailing_return_jump(self):
        ops = microprogram(Instruction(Op.ADD, Mem(0)), MINIMAL_TEP)
        assert ops[-1] == RETURN_TO_FETCH
        optimized = optimize_microprogram(ops, fetch_address=0)
        assert len(optimized) == len(ops) - 1
        assert optimized[-1].next_address == 0

    def test_idempotent(self):
        ops = microprogram(Instruction(Op.ADD, Mem(0)), MINIMAL_TEP)
        once = optimize_microprogram(ops)
        twice = optimize_microprogram(once)
        assert [(o.group, o.signal) for o in once] == \
            [(o.group, o.signal) for o in twice]

    def test_count_redundant_jumps(self):
        programs = [microprogram(Instruction(Op.NOP), MINIMAL_TEP),
                    microprogram(Instruction(Op.ADD, Imm(1)), MINIMAL_TEP)]
        assert count_redundant_jumps(programs) == 2
        optimized = [optimize_microprogram(p) for p in programs]
        assert count_redundant_jumps(optimized) == 0

    def test_matches_arch_flag_costs(self):
        """The peephole's effect equals the optimized-arch microprograms."""
        arch_opt = MINIMAL_TEP.with_(microcode_optimized=True)
        for instr in [Instruction(Op.LDA, Imm(1)),
                      Instruction(Op.ADD, Mem(0)),
                      Instruction(Op.TRET)]:
            manual = optimize_microprogram(microprogram(instr, MINIMAL_TEP))
            auto = microprogram(instr, arch_opt)
            assert len(manual) == len(auto)


class TestAssemblyPeephole:
    def test_jump_to_next_removed(self):
        program = [
            Instruction(Op.LDA, Imm(1)),
            Instruction(Op.JMP, LabelRef("next")),
            Instruction(Op.STA, Mem(0), label="next"),
        ]
        optimized = optimize_assembly(program)
        assert len(optimized) == 2
        assert optimized[1].label == "next"

    def test_jump_elsewhere_kept(self):
        program = [
            Instruction(Op.JMP, LabelRef("far")),
            Instruction(Op.NOP, label="near"),
            Instruction(Op.RET, label="far"),
        ]
        assert len(optimize_assembly(program)) == 3

    def test_store_load_pair_collapsed(self):
        program = [
            Instruction(Op.STA, Mem(4)),
            Instruction(Op.LDA, Mem(4)),
            Instruction(Op.ADD, Imm(1)),
        ]
        optimized = optimize_assembly(program)
        assert [i.op for i in optimized] == [Op.STA, Op.ADD]

    def test_store_load_with_label_kept(self):
        program = [
            Instruction(Op.STA, Mem(4)),
            Instruction(Op.LDA, Mem(4), label="entry"),
        ]
        assert len(optimize_assembly(program)) == 2

    def test_store_load_different_address_kept(self):
        program = [
            Instruction(Op.STA, Mem(4)),
            Instruction(Op.LDA, Mem(5)),
        ]
        assert len(optimize_assembly(program)) == 2

    def test_fixed_point_chains(self):
        program = [
            Instruction(Op.STA, Mem(1)),
            Instruction(Op.LDA, Mem(1)),
            Instruction(Op.JMP, LabelRef("n")),
            Instruction(Op.RET, label="n"),
        ]
        optimized = optimize_assembly(program)
        assert [i.op for i in optimized] == [Op.STA, Op.RET]
