"""Tests for the seeded perf-bench harness and the regression guard
(:mod:`repro.perf.bench`, :mod:`repro.perf.compare`, ``repro bench``).

Wall-clock numbers are host noise, so the assertions split along the
document's own policy line: everything simulated (determinism, latency,
counts) must agree byte-exactly between two runs, while wall metrics are
only exercised structurally or with injected, unambiguous deltas.
"""

import copy
import io
import json

import pytest

from repro.cli import run
from repro.perf import (
    BENCH_ID,
    BENCH_SCHEMA_VERSION,
    DEFAULT_TOLERANCE,
    WORKLOAD_NAMES,
    compare_documents,
    fingerprint,
    run_bench,
)

REPEATS = 2


@pytest.fixture(scope="module")
def elevator_doc():
    return run_bench(workloads=["elevator"], repeats=REPEATS)


@pytest.fixture(scope="module")
def elevator_doc_again():
    return run_bench(workloads=["elevator"], repeats=REPEATS)


class TestDocumentShape:
    def test_header(self, elevator_doc):
        assert elevator_doc["schema_version"] == BENCH_SCHEMA_VERSION
        assert elevator_doc["bench_id"] == BENCH_ID
        assert elevator_doc["fingerprint"] == fingerprint()
        assert set(fingerprint()) == {"python", "implementation",
                                      "machine", "system"}
        assert elevator_doc["config"]["repeats"] == REPEATS
        assert elevator_doc["calibration_ns"] > 0

    def test_workload_sections(self, elevator_doc):
        workload = elevator_doc["workloads"]["elevator"]
        assert set(workload) == {"determinism", "latency", "counts",
                                 "wall", "throughput", "profile"}
        assert workload["determinism"]["configuration_cycles"] == 2000
        assert workload["counts"]["instructions_retired"] > 0
        assert workload["latency"]  # deadline histograms populated
        for digest in workload["latency"].values():
            assert digest["count"] > 0
            assert "quantile_error_bounds" in digest

    def test_wall_and_throughput(self, elevator_doc):
        workload = elevator_doc["workloads"]["elevator"]
        wall = workload["wall"]
        assert wall["repeats"] == REPEATS
        assert len(wall["samples_ns"]) == REPEATS
        assert wall["best_ns"] == min(wall["samples_ns"])
        assert wall["best_ns"] <= wall["median_ns"]
        throughput = workload["throughput"]
        assert throughput["ns_per_reference_cycle"] > 0
        assert throughput["configuration_cycles_per_second"] > 0

    def test_profile_section(self, elevator_doc):
        profile = elevator_doc["workloads"]["elevator"]["profile"]
        assert profile["level"] == "opcode"
        assert profile["steps"] == 2000
        assert profile["opcodes"]  # opcode level attributes instructions
        assert profile["routines"]

    def test_document_is_json_ready(self, elevator_doc):
        json.dumps(elevator_doc)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            run_bench(workloads=["warehouse"])
        assert WORKLOAD_NAMES == ("smd", "elevator", "farm")


class TestTwoRunAgreement:
    def test_simulated_sections_are_byte_exact(self, elevator_doc,
                                               elevator_doc_again):
        mine = elevator_doc["workloads"]["elevator"]
        again = elevator_doc_again["workloads"]["elevator"]
        for section in ("determinism", "latency", "counts"):
            assert mine[section] == again[section]
        # the exact parts of the profile agree too (wall shares may not)
        for first, second in zip(mine["profile"]["phases"],
                                 again["profile"]["phases"]):
            assert first["phase"] == second["phase"]
            assert first["calls"] == second["calls"]
            assert first["modeled_cycles"] == second["modeled_cycles"]

    def test_compare_accepts_the_second_run(self, elevator_doc,
                                            elevator_doc_again):
        # same process, same fingerprint: wall is checked; a generous
        # tolerance keeps a noisy CI host from flaking the unit test (the
        # CI bench job runs the real tolerance against full-size runs)
        report = compare_documents(elevator_doc_again, elevator_doc,
                                   tolerance=2.0)
        assert report.wall_checked
        assert report.ok, report.render()
        assert any("elevator.determinism: exact match" in line
                   for line in report.lines)


def slowed(document, factor):
    """A deep copy with every wall metric *factor* times slower."""
    candidate = copy.deepcopy(document)
    for workload in candidate["workloads"].values():
        workload["wall"]["median_ns"] *= factor
        throughput = workload["throughput"]
        if "ns_per_reference_cycle" in throughput:
            throughput["ns_per_reference_cycle"] *= factor
    return candidate


class TestRegressionGuard:
    def test_injected_slowdown_fails(self, elevator_doc):
        report = compare_documents(slowed(elevator_doc, 1.25), elevator_doc,
                                   check_wall=True)
        assert DEFAULT_TOLERANCE < 0.20  # a >=20% slowdown must fail
        assert not report.ok
        assert any("wall.median_ns" in line for line in report.regressions)
        assert any("throughput.ns_per_reference_cycle" in line
                   for line in report.regressions)

    def test_within_tolerance_passes(self, elevator_doc):
        report = compare_documents(slowed(elevator_doc, 1.05), elevator_doc,
                                   check_wall=True)
        assert report.ok, report.render()

    def test_faster_never_fails(self, elevator_doc):
        report = compare_documents(slowed(elevator_doc, 0.5), elevator_doc,
                                   check_wall=True)
        assert report.ok, report.render()

    def test_calibration_normalizes_host_speed_drift(self, elevator_doc):
        # candidate ran 2x slower, but its calibration loop did too: a
        # host-speed artifact, not a regression
        candidate = slowed(elevator_doc, 2.0)
        candidate["calibration_ns"] = elevator_doc["calibration_ns"] * 2
        report = compare_documents(candidate, elevator_doc,
                                   check_wall=True)
        assert report.ok, report.render()
        assert any("host-speed ratio 2.00" in line
                   for line in report.lines)
        # same slowdown with an unchanged calibration is a real regression
        assert not compare_documents(slowed(elevator_doc, 2.0),
                                     elevator_doc, check_wall=True).ok

    def test_determinism_divergence_always_fails(self, elevator_doc):
        candidate = copy.deepcopy(elevator_doc)
        determinism = candidate["workloads"]["elevator"]["determinism"]
        determinism["instructions_retired"] += 1
        report = compare_documents(candidate, elevator_doc,
                                   check_wall=False)
        assert not report.ok
        assert any("simulated results diverged" in line
                   and "instructions_retired" in line
                   for line in report.regressions)

    def test_fingerprint_gates_the_wall_comparison(self, elevator_doc):
        candidate = slowed(elevator_doc, 10.0)
        candidate["fingerprint"] = dict(candidate["fingerprint"],
                                        machine="riscv128")
        report = compare_documents(candidate, elevator_doc)
        assert not report.wall_checked
        assert report.ok, report.render()  # simulated sections still match
        assert any("wall/throughput skipped" in line
                   for line in report.lines)
        # forcing the check overrides the gate
        forced = compare_documents(candidate, elevator_doc, check_wall=True)
        assert not forced.ok

    def test_schema_version_mismatch_fails_early(self, elevator_doc):
        candidate = copy.deepcopy(elevator_doc)
        candidate["schema_version"] = BENCH_SCHEMA_VERSION + 1
        report = compare_documents(candidate, elevator_doc)
        assert not report.ok
        assert len(report.regressions) == 1
        assert "schema_version" in report.regressions[0]

    def test_missing_workload_fails(self, elevator_doc):
        candidate = copy.deepcopy(elevator_doc)
        del candidate["workloads"]["elevator"]
        report = compare_documents(candidate, elevator_doc)
        assert not report.ok
        assert any("missing from candidate" in line
                   for line in report.regressions)

    def test_profile_section_is_never_compared(self, elevator_doc):
        candidate = copy.deepcopy(elevator_doc)
        candidate["workloads"]["elevator"]["profile"] = {"level": "none"}
        report = compare_documents(candidate, elevator_doc,
                                   check_wall=False)
        assert report.ok, report.render()


class TestBenchCli:
    def bench(self, *argv):
        out = io.StringIO()
        status = run(["bench", *argv], out=out)
        return status, out.getvalue()

    def test_emits_the_document(self, tmp_path):
        target = tmp_path / "BENCH_6.json"
        status, output = self.bench(
            "--workloads", "elevator", "--repeats", "1", "--warmup", "0",
            "--out", str(target))
        assert status == 0
        assert f"wrote {target}" in output
        assert "elevator: median" in output
        document = json.loads(target.read_text())
        assert document["bench_id"] == BENCH_ID
        assert list(document["workloads"]) == ["elevator"]

    def test_update_baseline_then_compare_candidate(self, tmp_path,
                                                    elevator_doc):
        baseline = tmp_path / "perf_baseline.json"
        baseline.write_text(json.dumps(elevator_doc))

        good = tmp_path / "good.json"
        good.write_text(json.dumps(slowed(elevator_doc, 1.0)))
        status, output = self.bench(
            "--compare", "--candidate", str(good),
            "--baseline", str(baseline), "--check-wall", "always")
        assert status == 0
        assert "comparison: OK" in output

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(slowed(elevator_doc, 1.25)))
        status, output = self.bench(
            "--compare", "--candidate", str(bad),
            "--baseline", str(baseline), "--check-wall", "always")
        assert status == 1
        assert "FAIL" in output and "regression" in output

    def test_candidate_requires_compare(self, tmp_path, capsys):
        status, _output = self.bench("--candidate", "whatever.json")
        assert status == 2
        assert "--candidate requires --compare" in capsys.readouterr().err

    def test_unreadable_baseline_is_an_input_error(self, tmp_path,
                                                   elevator_doc, capsys):
        candidate = tmp_path / "candidate.json"
        candidate.write_text(json.dumps(elevator_doc))
        status, _output = self.bench(
            "--compare", "--candidate", str(candidate),
            "--baseline", str(tmp_path / "nope.json"))
        assert status == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_workload_is_an_input_error(self, capsys):
        status, _output = self.bench("--workloads", "warehouse")
        assert status == 2
        assert "unknown workload" in capsys.readouterr().err
