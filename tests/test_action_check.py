"""Tests for the intermediate-C semantic checker."""

import pytest

from repro.action import (
    BoolType,
    CheckError,
    Externals,
    IntType,
    check_program,
    parse_program,
    parse_with_preamble,
)


def check(src, **externals):
    return check_program(parse_program(src), Externals(**externals))


class TestTypeAnnotation:
    def test_expression_types_annotated(self):
        checked = check("int:8 g; void f(int:8 a) { a = a + g; }")
        assign = checked.function("f").body[0]
        assert isinstance(assign.value.typ, IntType)
        assert assign.value.typ.width == 8

    def test_width_widens_to_max(self):
        checked = check("void f(int:8 a, int:16 b) { int:16 c; c = a + b; }")
        assign = checked.function("f").body[1]
        assert assign.value.typ.width == 16

    def test_comparison_is_bool(self):
        checked = check("void f(int:8 a) { bool t; t = a == 3; }")
        assign = checked.function("f").body[1]
        assert isinstance(assign.value.typ, BoolType)

    def test_condition_name_is_bool(self):
        checked = check("void f() { bool t; t = READY; }",
                        conditions={"READY"})
        assign = checked.function("f").body[1]
        assert isinstance(assign.value.typ, BoolType)

    def test_enum_member_resolves(self):
        checked = check_program(parse_with_preamble(
            "void f() { int:4 t; t = Data; }"))
        assert checked is not None

    def test_struct_field_type(self):
        checked = check("""
        typedef struct pair { int:8 lo; int:16 hi; } Pair;
        Pair p;
        void f() { int:16 t; t = p.hi; }
        """)
        assign = checked.function("f").body[1]
        assert assign.value.typ.width == 16


class TestRecursionBan:
    def test_direct_recursion_rejected(self):
        with pytest.raises(CheckError, match="recursion"):
            check("void f() { f(); }")

    def test_mutual_recursion_rejected(self):
        with pytest.raises(CheckError, match="recursion"):
            check("void a() { b(); } void b() { a(); }")

    def test_call_chain_allowed_and_ordered(self):
        checked = check("""
        void leaf() { }
        void mid() { leaf(); }
        void top() { mid(); leaf(); }
        """)
        order = checked.call_order
        assert order.index("leaf") < order.index("mid") < order.index("top")


class TestBuiltins:
    def test_raise_requires_declared_event(self):
        with pytest.raises(CheckError, match="not a declared event"):
            check("void f() { Raise(GHOST); }")

    def test_raise_accepts_declared_event(self):
        check("void f() { Raise(E); }", events={"E"})

    def test_settrue_requires_condition(self):
        with pytest.raises(CheckError, match="not a declared condition"):
            check("void f() { SetTrue(E); }", events={"E"})

    def test_writeport_arity(self):
        with pytest.raises(CheckError, match="argument"):
            check("void f() { WritePort(P); }", ports={"P"})

    def test_readport_returns_value(self):
        checked = check("void f() { int:8 v; v = ReadPort(P); }", ports={"P"})
        assert checked is not None

    def test_builtin_needs_bare_name(self):
        with pytest.raises(CheckError, match="bare"):
            check("void f() { Raise(1 + 2); }", events={"E"})


class TestRestrictions:
    def test_unknown_name_rejected(self):
        with pytest.raises(CheckError, match="unknown name"):
            check("void f() { int:8 a; a = ghost; }")

    def test_unbounded_loop_rejected(self):
        with pytest.raises(CheckError, match="bound"):
            check("void f(int:8 a) { while (a > 0) { a -= 1; } }")

    def test_bounded_loop_accepted(self):
        check("void f(int:8 a) { @bound(9) while (a > 0) { a -= 1; } }")

    def test_wcet_override_excuses_unbounded_loop(self):
        check("void f(int:8 a) @wcet(500) { while (a > 0) { a -= 1; } }")

    def test_undefined_call_rejected(self):
        with pytest.raises(CheckError, match="undefined function"):
            check("void f() { ghost(); }")

    def test_call_arity_checked(self):
        with pytest.raises(CheckError, match="argument"):
            check("void g(int:8 a) { } void f() { g(); }")

    def test_void_return_with_value_rejected(self):
        with pytest.raises(CheckError, match="void"):
            check("void f() { return 3; }")

    def test_missing_return_value_rejected(self):
        with pytest.raises(CheckError, match="missing return value"):
            check("int:8 f() { return; }")

    def test_event_as_value_rejected(self):
        with pytest.raises(CheckError, match="used as a value"):
            check("void f() { int:8 a; a = E; }", events={"E"})

    def test_struct_assignment_rejected(self):
        with pytest.raises(CheckError, match="cannot assign whole"):
            check("""
            typedef struct p { int:8 x; } P;
            P a;
            P b;
            void f() { a = b; }
            """)

    def test_duplicate_local_rejected(self):
        with pytest.raises(CheckError, match="redeclaration"):
            check("void f() { int:8 a; int:8 a; }")

    def test_duplicate_global_rejected(self):
        with pytest.raises(CheckError, match="duplicate global"):
            check("int:8 a; int:8 a;")

    def test_duplicate_function_rejected(self):
        with pytest.raises(CheckError, match="duplicate function"):
            check("void f() { } void f() { }")

    def test_all_problems_reported_at_once(self):
        with pytest.raises(CheckError) as excinfo:
            check("void f() { int:8 a; a = ghost1; a = ghost2; }")
        message = str(excinfo.value)
        assert "ghost1" in message and "ghost2" in message

    def test_externals_from_chart(self):
        from repro.statechart import ChartBuilder, PortKind
        b = ChartBuilder("c")
        b.event("E").condition("C").port("P", PortKind.DATA, width=8)
        with b.or_state("Top", default="S"):
            b.basic("S")
        chart = b.build()
        ext = Externals.from_chart(chart)
        assert ext.events == {"E"}
        assert ext.conditions == {"C"}
        assert ext.ports == {"P"}
