"""Tests for the end-to-end flow and the iterative improvement ladder."""

import pytest

from repro.flow import (
    Improver,
    build_system,
    select_initial_architecture,
)
from repro.flow.build import specialize_routines
from repro.isa import MD16_TEP, MINIMAL_TEP, StorageClass
from repro.statechart import ChartBuilder


def small_chart():
    b = ChartBuilder("small")
    b.event("GO", period=800)
    b.event("TOCK")
    with b.or_state("Top", default="A"):
        b.basic("A").transition("B", label="GO/Work(3)")
        b.basic("B").transition("A", label="TOCK/Cool()")
    return b.build()


SMALL_SRC = """
int:16 total;
void Work(int:16 k) {
  int:16 i = 0;
  @bound(12) while (i < k * 4) {
    total = total + i;
    i = i + 1;
  }
}
void Cool() { total = total >> 1; }
"""


class TestBuildSystem:
    def test_produces_all_artifacts(self):
        system = build_system(small_chart(), SMALL_SRC, MD16_TEP)
        assert system.compiled.objects
        assert system.pla.product_terms > 0
        assert set(system.transition_costs) == {0, 1}
        assert system.critical_paths()["GO"] > 0

    def test_machine_runs_from_built_system(self):
        system = build_system(small_chart(), SMALL_SRC, MD16_TEP)
        machine = system.make_machine()
        machine.step({"GO"})
        assert machine.in_state("B")
        assert machine.read_global("total") == sum(range(12))

    def test_area_scales_with_arch(self):
        chart = small_chart()
        one = build_system(chart, SMALL_SRC, MD16_TEP).area().total_clbs
        two = build_system(chart, SMALL_SRC,
                           MD16_TEP.with_(n_teps=2)).area().total_clbs
        assert two > one

    def test_decoder_rom_nonempty(self):
        system = build_system(small_chart(), SMALL_SRC, MD16_TEP)
        assert system.decoder_rom().size_words > 0

    def test_app_stats_from_chart(self):
        system = build_system(small_chart(), SMALL_SRC, MD16_TEP)
        stats = system.app_stats()
        assert stats.transitions == 2
        assert stats.cr_bits == system.pla.layout.width


class TestInitialArchitectureSelection:
    def test_16bit_muldiv_selected_for_wide_mul(self):
        arch = select_initial_architecture(small_chart(), SMALL_SRC)
        assert arch.data_width == 16
        assert arch.has_muldiv

    def test_8bit_for_narrow_code(self):
        b = ChartBuilder("narrow")
        b.event("E", period=500)
        with b.or_state("T", default="S"):
            b.basic("S").transition("S", label="E/Bump()")
        chart = b.build()
        src = "int:8 c; void Bump() { c = c + 1; }"
        arch = select_initial_architecture(chart, src)
        assert arch.data_width == 8
        assert not arch.has_muldiv


class TestSpecialization:
    def chart_and_src(self):
        b = ChartBuilder("spec")
        b.event("P", period=400)
        with b.or_state("T", default="S"):
            b.basic("S").transition("S", label="P/Tick(2)")
        chart = b.build()
        src = """
        int:16 slots[4];
        void Tick(int:16 m) { slots[m] = slots[m] + 1; }
        """
        return chart, src

    def test_specialized_clone_created_and_cheaper(self):
        chart, src = self.chart_and_src()
        plain = build_system(chart, src, MD16_TEP)
        specialized = build_system(chart, src, MD16_TEP, specialize=True)
        assert any(name.startswith("Tick_") for name
                   in specialized.compiled.objects)
        assert specialized.transition_costs[0] < plain.transition_costs[0]

    def test_specialized_machine_still_correct(self):
        chart, src = self.chart_and_src()
        system = build_system(chart, src, MD16_TEP, specialize=True)
        machine = system.make_machine()
        machine.step({"P"})
        machine.step({"P"})
        slots = system.compiled.allocator.locations["slots"]
        values = machine.executor.read_variable(slots)
        # element 2 incremented twice: value 2 sits in the third word group
        element = (values >> (2 * 16)) & 0xFFFF
        assert element == 2

    def test_original_chart_untouched(self):
        chart, src = self.chart_and_src()
        build_system(chart, src, MD16_TEP, specialize=True)
        assert chart.transitions[0].action == "Tick(2)"

    def test_assigned_parameter_not_folded(self):
        b = ChartBuilder("nospec")
        b.event("P", period=400)
        with b.or_state("T", default="S"):
            b.basic("S").transition("S", label="P/Tick(2)")
        chart = b.build()
        src = """
        int:16 x;
        void Tick(int:16 m) { m = m + 1; x = m; }
        """
        system = build_system(chart, src, MD16_TEP, specialize=True)
        assert not any(name.startswith("Tick_")
                       for name in system.compiled.objects)


class TestImprover:
    def test_trajectory_recorded(self):
        improver = Improver(small_chart(), SMALL_SRC)
        result = improver.run()
        assert result.steps
        assert result.steps[0].rung == "baseline"
        rungs = [step.rung for step in result.steps]
        assert rungs == sorted(set(rungs), key=rungs.index)  # no repeats

    def test_already_meeting_constraints_stops_at_baseline(self):
        b = ChartBuilder("easy")
        b.event("E", period=100000)
        with b.or_state("T", default="S"):
            b.basic("S").transition("S", label="E/Nop()")
        chart = b.build()
        improver = Improver(chart, "void Nop() { }")
        result = improver.run()
        assert result.success
        assert len(result.steps) == 1

    def test_peephole_rung_reduces_critical_path(self):
        improver = Improver(small_chart(), SMALL_SRC,
                            initial_arch=MD16_TEP)
        result = improver.run()
        by_rung = {step.rung: step for step in result.steps}
        if "peephole" in by_rung:
            assert by_rung["peephole"].critical_paths["GO"] < \
                by_rung["baseline"].critical_paths["GO"]

    def test_tight_constraint_escalates_to_more_teps(self):
        b = ChartBuilder("tight")
        b.event("FAST", period=60)
        b.event("OTHER")
        with b.and_state("W"):
            with b.or_state("A", default="A1"):
                b.basic("A1").transition("A1", label="FAST/Quick()")
            with b.or_state("B", default="B1"):
                b.basic("B1").transition("B1", label="OTHER/Slow()")
        chart = b.build()
        src = """
        int:16 a;
        int:16 s;
        void Quick() { a = a + 1; }
        void Slow() {
          int:16 i = 0;
          @bound(10) while (i < 10) { s = s + i; i = i + 1; }
        }
        """
        improver = Improver(chart, src, max_teps=2)
        result = improver.run()
        rungs = [step.rung for step in result.steps]
        assert "add-tep" in rungs
        final_arch = result.steps[-1].arch
        assert final_arch.n_teps == 2

    def test_area_grows_along_ladder(self):
        improver = Improver(small_chart(), SMALL_SRC,
                            initial_arch=MINIMAL_TEP)
        result = improver.run()
        # the last rung (if TEPs were added) must cost more than baseline
        if result.steps[-1].arch.n_teps > 1:
            assert result.steps[-1].area_clbs > result.steps[0].area_clbs

    def test_trajectory_table_shape(self):
        improver = Improver(small_chart(), SMALL_SRC)
        result = improver.run()
        table = result.trajectory_table()
        assert all(len(row) == 3 for row in table)
