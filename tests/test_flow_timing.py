"""Tests for the heuristic timing validator (section 4)."""

import pytest

from repro.flow.timing import EventCycle, TimingValidator, TimingViolation, lpt_makespan
from repro.isa import ArchConfig
from repro.statechart import ChartBuilder


def costed_validator(chart, costs, n_teps=1):
    """Validator with per-transition costs given by label lookup."""
    arch = ArchConfig(n_teps=n_teps, data_width=16)

    def cost(transition):
        return costs.get(transition.label, costs.get("default", 10))

    return TimingValidator(chart, cost, arch=arch)


def serial_chart():
    b = ChartBuilder("serial")
    b.event("E", period=100)
    b.event("STEP")
    with b.or_state("Top", default="A"):
        b.basic("A").transition("B", label="E/FromA()")
        b.basic("B").transition("C", label="STEP/FromB()")
        b.basic("C").transition("A", label="E/FromC()")
    return b.build()


def parallel_chart():
    """One region consumes TICK; the sibling has bounded work."""
    b = ChartBuilder("par")
    b.event("TICK", period=200)
    b.event("OTHER")
    with b.and_state("W"):
        with b.or_state("Main", default="M1"):
            b.basic("M1").transition("M1", label="TICK/Handle()")
        with b.or_state("Side", default="S1"):
            b.basic("S1").transition("S2", label="OTHER/SideWork()")
            b.basic("S2").transition("S1", label="OTHER/SideWork2()")
    return b.build()


class TestLpt:
    def test_single_machine_sums(self):
        assert lpt_makespan([5, 3, 2], 1) == 10

    def test_two_machines_balance(self):
        assert lpt_makespan([5, 3, 2], 2) == 5

    def test_empty(self):
        assert lpt_makespan([], 4) == 0

    def test_more_machines_than_jobs(self):
        assert lpt_makespan([7, 2], 8) == 7

    def test_never_below_max_job(self):
        assert lpt_makespan([10, 1, 1, 1], 3) == 10


class TestConsumers:
    def test_positive_trigger_consumes(self):
        chart = serial_chart()
        v = costed_validator(chart, {})
        assert set(v.consuming_states("E")) == {"A", "C"}

    def test_negated_event_does_not_consume(self):
        b = ChartBuilder("neg")
        b.event("P", period=100)
        b.event("GO")
        with b.or_state("T", default="S"):
            b.basic("S").transition("S2", label="not P/Go()")
            b.basic("S2").transition("S", label="P/Back()")
        chart = b.build()
        v = costed_validator(chart, {})
        assert v.consuming_states("P") == ["S2"]

    def test_guard_event_consumes(self):
        b = ChartBuilder("g")
        b.event("DV", period=100)
        with b.or_state("T", default="S"):
            b.basic("S").transition("S", label="[DV]/Get()")
        chart = b.build()
        v = costed_validator(chart, {})
        assert v.consuming_states("DV") == ["S"]


class TestEventCycles:
    def test_simple_path_between_consumers(self):
        chart = serial_chart()
        costs = {"E/FromA()": 30, "STEP/FromB()": 40, "E/FromC()": 50}
        v = costed_validator(chart, costs)
        cycles = v.event_cycles("E")
        lengths = {c.states: c.length for c in cycles}
        # A --E--> B --STEP--> C : path between two E-consumers
        assert lengths[("A", "B", "C")] == 70
        # C --E--> A : single step between consumers
        assert lengths[("C", "A")] == 50

    def test_self_loop_cycle(self):
        b = ChartBuilder("self")
        b.event("T", period=50)
        with b.or_state("Top", default="S"):
            b.basic("S").transition("S", label="T/Work()")
        v = costed_validator(b.build(), {"T/Work()": 33})
        cycles = v.event_cycles("T")
        assert len(cycles) == 1
        assert cycles[0].states == ("S", "S")
        assert cycles[0].length == 33

    def test_completion_transitions_not_steps(self):
        b = ChartBuilder("comp")
        b.event("T", period=50)
        with b.or_state("Top", default="S"):
            b.basic("S").transition("Mid", label="T/Go()")
            b.basic("Mid").transition("S", label="/AutoBack()")
        v = costed_validator(b.build(), {})
        # the only way back to the consumer is a pure completion transition,
        # which is not an event-cycle step
        assert all(c.states == ("S", "Mid") or len(c.states) == 2
                   for c in v.event_cycles("T"))
        assert not any(c.states[-1] == "S" and len(c.states) == 3
                       for c in v.event_cycles("T"))

    def test_condition_only_transitions_not_steps(self):
        b = ChartBuilder("cond")
        b.event("T", period=50)
        b.condition("C")
        with b.or_state("Top", default="S"):
            b.basic("S").transition("Mid", label="T/Go()")
            b.basic("Mid").transition("S", label="[C]/CondBack()")
        v = costed_validator(b.build(), {})
        assert not any(len(c.states) == 3 for c in v.event_cycles("T"))

    def test_inherited_transitions_traversed(self):
        b = ChartBuilder("inh")
        b.event("T", period=500)
        b.event("RESET")
        with b.or_state("Top", default="Work"):
            with b.or_state("Work", default="S") as work:
                b.basic("S").transition("Mid", label="T/Go()")
                b.basic("Mid")
            work.transition("Idle", label="RESET/Clear()")
            b.basic("Idle").transition("Work", label="T/Restart()")
        v = costed_validator(b.build(), {"T/Go()": 10, "RESET/Clear()": 20,
                                         "T/Restart()": 30})
        cycles = v.event_cycles("T")
        lengths = {c.states: c.length for c in cycles}
        # Mid inherits Work's RESET transition to Idle (a T-consumer)
        assert ("S", "Mid", "Idle") in lengths
        assert lengths[("S", "Mid", "Idle")] == 30

    def test_dedupe_keeps_one_per_transition_sequence(self):
        b = ChartBuilder("dedupe")
        b.event("T", period=100)
        b.event("OUT")
        with b.or_state("Top", default="Idle"):
            b.basic("Idle").transition("Grp", label="T/Enter()")
            with b.or_state("Grp", default="Inner") as grp:
                b.basic("Inner")
            grp.transition("Idle", label="OUT/Leave()")
        v = costed_validator(b.build(), {})
        cycles = v.event_cycles("T")
        # entering Grp branches into positions Grp and Inner, but both paths
        # use the same transitions -> one cycle reported
        two_step = [c for c in cycles if len(c.transition_indices) == 2]
        assert len(two_step) == 1


class TestParallelBounds:
    def test_region_jobs_or_takes_max(self):
        chart = parallel_chart()
        v = costed_validator(chart, {"OTHER/SideWork()": 70,
                                     "OTHER/SideWork2()": 90})
        assert v.region_jobs("Side") == (90,)
        assert v.region_upper_bound("Side") == 90

    def test_region_jobs_and_concatenates(self):
        b = ChartBuilder("andjobs")
        b.event("E", period=10)
        with b.or_state("Top", default="W"):
            with b.and_state("W"):
                with b.or_state("A", default="A1"):
                    b.basic("A1").transition("A1", label="E/Wa()")
                with b.or_state("B", default="B1"):
                    b.basic("B1").transition("B1", label="E/Wb()")
        chart = b.build()
        v = costed_validator(chart, {"E/Wa()": 40, "E/Wb()": 60})
        assert sorted(v.region_jobs("W")) == [40, 60]
        assert v.region_upper_bound("W") == 100

    def test_sibling_bound_added_on_one_tep(self):
        chart = parallel_chart()
        v = costed_validator(chart, {"TICK/Handle()": 25,
                                     "OTHER/SideWork()": 70,
                                     "OTHER/SideWork2()": 90})
        cycles = v.event_cycles("TICK")
        # step cost = own 25 + sibling bound 90
        assert cycles[0].length == 115

    def test_sibling_overlaps_on_two_teps(self):
        chart = parallel_chart()
        costs = {"TICK/Handle()": 25, "OTHER/SideWork()": 70,
                 "OTHER/SideWork2()": 90}
        v2 = costed_validator(chart, costs, n_teps=2)
        cycles = v2.event_cycles("TICK")
        # LPT([25, 90], 2) = 90
        assert cycles[0].length == 90

    def test_exit_transition_drops_sibling_bound(self):
        b = ChartBuilder("exitdrop")
        b.event("T", period=1000)
        b.event("OUT").event("W")
        with b.or_state("Top", default="Idle"):
            b.basic("Idle").transition("Work", label="T/Enter()")
            with b.and_state("Work") as work:
                with b.or_state("A", default="A1"):
                    b.basic("A1").transition("A1", label="T/Inner()")
                with b.or_state("B", default="B1"):
                    b.basic("B1").transition("B1", label="W/Heavy()")
            work.transition("Idle", label="OUT/Leave()")
        chart = b.build()
        costs = {"T/Enter()": 10, "T/Inner()": 20, "W/Heavy()": 500,
                 "OUT/Leave()": 30}
        v = costed_validator(chart, costs)
        lengths = {c.states: c.length for c in v.event_cycles("T")}
        # the self-loop inside A pays the sibling bound
        assert lengths[("A1", "A1")] == 520
        # leaving Work pays no sibling bound: Enter(10) + Leave(30)
        entry_exit = [l for s, l in lengths.items()
                      if s[0] == "Idle" and s[-1] == "Idle"]
        assert 40 in entry_exit


class TestValidationAndReporting:
    def test_violations_flag_excess(self):
        chart = serial_chart()
        v = costed_validator(chart, {"E/FromA()": 80, "STEP/FromB()": 40,
                                     "E/FromC()": 10})
        violations = v.validate()
        assert any(viol.cycle.states == ("A", "B", "C") for viol in violations)
        worst = max(violations, key=lambda x: x.excess)
        assert worst.excess == 20  # 120 - 100
        assert "exceeds" in worst.describe()

    def test_no_violation_when_fast(self):
        chart = serial_chart()
        v = costed_validator(chart, {"default": 5, "E/FromA()": 5,
                                     "STEP/FromB()": 5, "E/FromC()": 5})
        assert v.validate() == []

    def test_critical_path_is_longest_cycle(self):
        chart = serial_chart()
        v = costed_validator(chart, {"E/FromA()": 30, "STEP/FromB()": 40,
                                     "E/FromC()": 50})
        assert v.critical_path("E") == 70

    def test_all_cycles_covers_constrained_events(self):
        chart = parallel_chart()
        v = costed_validator(chart, {"default": 5})
        events = {c.event for c in v.all_cycles()}
        assert events == {"TICK"}

    def test_annotated_dot_output(self):
        chart = parallel_chart()
        v = costed_validator(chart, {"default": 5})
        dot = v.annotated_dot("TICK")
        assert "digraph" in dot
        assert "upper bound" in dot
        assert "period 200" in dot
