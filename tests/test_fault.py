"""Tests for the fault subsystem: injector, guard, failover, campaigns.

The load-bearing property mirrors the tracer's enable/disable parity: an
attached injector with an *empty* plan (guard attached or not) must produce
byte-identical ``MachineStep`` history, cycle counts and architectural
state versus a machine with no injector at all.
"""

import json

import pytest

from repro.action.check import Externals
from repro.fault import (
    Fault,
    FaultCampaign,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultSurface,
    ILLEGAL_CONFIGURATION,
    MachineGuard,
    RETRY_EXHAUSTED,
    TEP_FAILOVER,
    WATCHDOG_ABORT,
    configuration_problems,
)
from repro.flow import build_system
from repro.isa import CodeGenerator, MD16_TEP, NameMaps, prepare_program
from repro.pscp import PscpMachine, round_robin_dispatch
from repro.pscp.machine import MachineError
from repro.statechart import ChartBuilder
from repro.workloads import (
    MoveCommand,
    SMD_MUTUAL_EXCLUSIONS,
    SMD_ROUTINES,
    SmdClosedLoop,
    smd_chart,
)
from repro.workloads.motors import Motor, MotorSpec, X_MOTOR


def build_machine(chart, source, arch=MD16_TEP, **kwargs):
    externals = Externals.from_chart(chart)
    checked = prepare_program(source, arch, externals)
    maps = NameMaps.from_chart(chart)
    compiled = CodeGenerator(checked, arch, maps=maps).compile()
    params = {f.name: [p.name for p in f.params]
              for f in checked.program.functions}
    return PscpMachine(chart, compiled, param_names=params, **kwargs)


def pingpong_chart():
    b = ChartBuilder("pingpong")
    b.event("GO", period=500).event("BACK")
    b.condition("FLAG")
    with b.or_state("Top", default="A"):
        b.basic("A").transition("B", label="GO/Work()")
        b.basic("B").transition("A", label="BACK/SetTrue(FLAG)")
    return b.build()


PINGPONG_ROUTINES = """
int:16 total;
void Work() { total = total + 3; }
"""

STIMULUS = [{"GO"}, {"BACK"}, set(), {"GO"}, {"BACK"}, {"GO"}]


def step_fingerprint(step):
    return (tuple(t.index for t in step.fired), step.configuration,
            step.cycle_length, step.start_time, step.end_time,
            step.events_sampled, step.events_raised,
            step.faults, step.recoveries)


FAST_MOTORS = {
    "X": MotorSpec("X", 50_000.0, 0.025e-3, 1.25, 2000.0),
    "Y": MotorSpec("Y", 50_000.0, 0.025e-3, 1.25, 2000.0),
    "Phi": MotorSpec("Phi", 9_000.0, 0.1, 900.0, 0.0),
}


@pytest.fixture(scope="module")
def smd_system():
    arch = MD16_TEP.with_(n_teps=2,
                          mutual_exclusions=SMD_MUTUAL_EXCLUSIONS,
                          microcode_optimized=True)
    return build_system(smd_chart(), SMD_ROUTINES, arch, specialize=True)


class TestFaultFreeParity:
    def test_empty_plan_is_byte_identical_to_no_injector(self):
        chart = pingpong_chart()
        plain = build_machine(chart, PINGPONG_ROUTINES)
        faulted = build_machine(chart, PINGPONG_ROUTINES)
        faulted.attach_injector(FaultInjector(FaultPlan.empty()))

        plain_steps = plain.run(STIMULUS)
        faulted_steps = faulted.run(STIMULUS)

        assert ([step_fingerprint(s) for s in plain_steps]
                == [step_fingerprint(s) for s in faulted_steps])
        assert plain.time == faulted.time
        assert plain.cycle_count == faulted.cycle_count
        assert plain.read_global("total") == faulted.read_global("total")
        assert plain.cr.conditions == faulted.cr.conditions

    def test_guard_alone_is_byte_identical_too(self):
        chart = pingpong_chart()
        plain = build_machine(chart, PINGPONG_ROUTINES)
        guarded = build_machine(chart, PINGPONG_ROUTINES)
        guarded.attach_guard(MachineGuard())

        plain_steps = plain.run(STIMULUS)
        guarded_steps = guarded.run(STIMULUS)

        assert ([step_fingerprint(s) for s in plain_steps]
                == [step_fingerprint(s) for s in guarded_steps])
        assert plain.time == guarded.time
        assert guarded.guard.detections == []

    def test_detached_by_default(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        assert machine.injector is None
        assert machine.guard is None
        step = machine.step({"GO"})
        assert step.faults == () and step.recoveries == ()

    def test_closed_loop_empty_plan_parity(self, smd_system):
        plain = SmdClosedLoop(smd_system, motor_specs=FAST_MOTORS)
        faulted = SmdClosedLoop(smd_system, motor_specs=FAST_MOTORS,
                                injector=FaultInjector(FaultPlan.empty()),
                                guard=MachineGuard())
        commands = [MoveCommand(20, 15, 3)]
        plain_report = plain.run(commands, max_configuration_cycles=15000)
        faulted_report = faulted.run(commands, max_configuration_cycles=15000)
        assert plain_report.total_cycles == faulted_report.total_cycles
        assert (plain_report.configuration_cycles
                == faulted_report.configuration_cycles)
        assert plain_report.final_positions == faulted_report.final_positions
        assert plain_report.all_moves_completed
        assert faulted_report.all_moves_completed


class TestFaultModel:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            Fault("gremlin", 3)

    def test_negative_cycle_rejected(self):
        with pytest.raises(FaultError):
            Fault("event-drop", -1, "GO")

    def test_plan_sorts_by_cycle(self):
        plan = FaultPlan((Fault("event-drop", 9, "GO"),
                          Fault("ram-flip", 2, None, 1)))
        assert [fault.cycle for fault in plan] == [2, 9]

    def test_surface_and_generation_are_deterministic(self, smd_system):
        import random

        surface = FaultSurface.from_system(smd_system)
        assert surface.events and surface.conditions
        assert surface.n_teps == 2
        assert surface.fragile_state_bits, \
            "the SMD Move* OR-states have 3 children -> unused code points"
        kinds = ("event-drop", "cr-state-flip", "tep-stall")
        one = FaultPlan.generate(random.Random(7), surface, kinds, n_faults=6)
        two = FaultPlan.generate(random.Random(7), surface, kinds, n_faults=6)
        assert one.describe() == two.describe()


class TestEventBusFaults:
    def test_drop_suppresses_the_transition(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        machine.attach_injector(FaultInjector(FaultPlan(
            (Fault("event-drop", 0, "GO"),))))
        step = machine.step({"GO"})
        assert step.fired == []
        assert "GO" not in step.events_sampled
        assert len(step.faults) == 1
        assert machine.injector.exhausted

    def test_delay_redelivers_later(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        machine.attach_injector(FaultInjector(FaultPlan(
            (Fault("event-delay", 0, "GO", param=2),))))
        first = machine.step({"GO"})
        assert first.fired == []
        machine.step(set())
        third = machine.step(set())  # cycle 2: the delayed GO arrives
        assert [t.index for t in third.fired] == [0]
        assert machine.read_global("total") == 3

    def test_duplicate_fires_twice(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        machine.attach_injector(FaultInjector(FaultPlan(
            (Fault("event-duplicate", 0, "GO", param=2),))))
        machine.step({"GO"})       # fires normally, duplicate armed
        machine.step({"BACK"})     # back to A
        third = machine.step(set())  # the duplicated GO bites
        assert [t.index for t in third.fired] == [0]
        assert machine.read_global("total") == 6

    def test_faults_stay_armed_until_victim_appears(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        machine.attach_injector(FaultInjector(FaultPlan(
            (Fault("event-drop", 0, "GO"),))))
        machine.step(set())
        machine.step(set())
        assert not machine.injector.exhausted
        step = machine.step({"GO"})
        assert step.fired == []
        assert machine.injector.exhausted


class TestWatchdogAndRetry:
    def test_runaway_is_aborted_and_retried(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        machine.attach_injector(FaultInjector(FaultPlan(
            (Fault("tep-runaway", 0),))))
        guard = MachineGuard()
        machine.attach_guard(guard)
        budget = guard.budgets[0]

        first = machine.step({"GO"})
        # aborted at exactly the budget; the routine's RAM write never ran
        assert machine.read_global("total") == 0
        assert first.cycle_length == 2 + 4 + budget  # SLA + dispatch + budget
        assert [d.kind for d in first.recoveries] == [WATCHDOG_ABORT]
        assert guard.watchdog_aborts == 1

        second = machine.step(set())  # backoff 1 -> retry due now
        assert second.fired == []     # retry re-executes, no state change
        assert machine.read_global("total") == 3
        assert guard.retries_succeeded == 1
        assert guard.detections[0].recovered

    def test_retries_exhaust_after_max_attempts(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        machine.attach_injector(FaultInjector(FaultPlan(
            tuple(Fault("tep-runaway", 0) for _ in range(5)))))
        guard = MachineGuard(max_retries=2)
        machine.attach_guard(guard)
        machine.step({"GO"})
        for _ in range(8):
            machine.step(set())
        assert guard.retries_exhausted == 1
        kinds = [d.kind for d in guard.detections]
        assert kinds.count(RETRY_EXHAUSTED) == 1
        assert not guard.detections[0].recovered
        assert machine.read_global("total") == 0

    def test_stall_within_budget_completes(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        machine.attach_injector(FaultInjector(FaultPlan(
            (Fault("tep-stall", 0, param=5),))))
        machine.attach_guard(MachineGuard())
        plain = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        reference = plain.step({"GO"})

        step = machine.step({"GO"})
        # the routine ran (effects applied), just 5 cycles late
        assert machine.read_global("total") == 3
        assert step.cycle_length == reference.cycle_length + 5
        assert machine.guard.watchdog_aborts == 0

    def test_stall_beyond_budget_is_aborted(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        guard = MachineGuard()
        machine.attach_injector(FaultInjector(FaultPlan(
            (Fault("tep-stall", 0, param=100_000),))))
        machine.attach_guard(guard)
        step = machine.step({"GO"})
        assert step.cycle_length == 2 + 4 + guard.budgets[0]
        assert guard.watchdog_aborts == 1

    def test_runaway_without_guard_costs_default_budget(self):
        from repro.fault.model import DEFAULT_RUNAWAY_CYCLES

        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        machine.attach_injector(FaultInjector(FaultPlan(
            (Fault("tep-runaway", 0),))))
        step = machine.step({"GO"})
        assert step.cycle_length == 2 + 4 + DEFAULT_RUNAWAY_CYCLES
        assert machine.read_global("total") == 0  # effects lost, undetected


def tri_chart():
    b = ChartBuilder("tri")
    b.event("GO").event("HOP")
    with b.or_state("Top", default="A"):
        b.basic("A").transition("B", label="GO")
        b.basic("B").transition("C", label="HOP")
        b.basic("C")
    return b.build()


class TestExclusivityChecker:
    def test_legal_configuration_has_no_problems(self):
        chart = tri_chart()
        assert configuration_problems(
            chart, chart.initial_configuration()) == []

    def test_two_active_or_children_detected(self):
        chart = tri_chart()
        config = chart.initial_configuration() | {"B"}
        problems = configuration_problems(chart, config)
        assert any("exclusivity" in p for p in problems)

    def test_orphan_and_childless_or_detected(self):
        chart = tri_chart()
        initial = chart.initial_configuration()
        orphan = configuration_problems(chart, frozenset({"A"}))
        assert any("parent" in p or "root" in p for p in orphan)
        childless = configuration_problems(chart, initial - {"A"})
        assert any("no active child" in p for p in childless)

    def test_state_flip_recovers_to_safe_state(self):
        chart = tri_chart()
        machine = build_machine(chart, "")
        encoding = machine.pla.layout.encoding
        machine.step({"GO"})  # now in B
        assert machine.in_state("B")
        # find a bit whose flip decodes to an illegal configuration (a
        # 3-child OR-selector always has one)
        bits = encoding.encode(machine.cr.configuration)
        bad_bit = next(
            bit for bit in range(encoding.width)
            if configuration_problems(
                chart,
                frozenset(encoding.active_states(bits ^ (1 << bit)))))
        guard = MachineGuard()
        machine.attach_injector(FaultInjector(FaultPlan(
            (Fault("cr-state-flip", machine.cycle_count, bad_bit),))))
        machine.attach_guard(guard)

        step = machine.step(set())
        assert [d.kind for d in step.recoveries] == [ILLEGAL_CONFIGURATION]
        assert step.recoveries[0].recovered
        assert machine.cr.configuration == guard.safe_state
        assert machine.in_state("A")

    def test_declared_safe_state_must_be_legal(self):
        machine = build_machine(tri_chart(), "")
        with pytest.raises(ValueError):
            machine.attach_guard(MachineGuard(safe_state={"B"}))


class TestTepFailover:
    def test_dispatch_restricted_to_available_teps(self):
        arch = MD16_TEP.with_(n_teps=2)
        plan = round_robin_dispatch([0, 1, 2], {}.get, arch,
                                    available_teps=[1])
        assert plan.queues[0] == []
        assert plan.queues[1] == [0, 1, 2]

    def test_default_rotation_unchanged(self):
        arch = MD16_TEP.with_(n_teps=2)
        restricted = round_robin_dispatch([0, 1, 2], {}.get, arch,
                                          available_teps=[0, 1])
        default = round_robin_dispatch([0, 1, 2], {}.get, arch)
        assert restricted.queues == default.queues

    def test_no_available_tep_rejected(self):
        arch = MD16_TEP.with_(n_teps=2)
        with pytest.raises(ValueError):
            round_robin_dispatch([0], {}.get, arch, available_teps=[])

    def test_fail_tep_replans_on_survivor(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES,
                                arch=MD16_TEP.with_(n_teps=2))
        guard = MachineGuard()
        machine.attach_injector(FaultInjector(FaultPlan(
            (Fault("tep-fail", 0, 0),))))
        machine.attach_guard(guard)
        step = machine.step({"GO"})
        assert machine.failed_teps == {0}
        assert step.plan.queues[0] == []
        assert step.plan.queues[1] == [0]
        assert guard.tep_failovers == 1
        assert [d.kind for d in step.recoveries] == [TEP_FAILOVER]
        assert machine.read_global("total") == 3  # work still done

    def test_losing_every_tep_is_fatal(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES,
                                arch=MD16_TEP.with_(n_teps=2))
        machine.fail_tep(0)
        with pytest.raises(MachineError):
            machine.fail_tep(1)


class TestSatellites:
    def test_motor_has_work_property(self):
        motor = Motor(X_MOTOR)
        assert not motor.has_work
        motor.command_move(5, 0)
        assert motor.has_work and motor.moving
        motor.pulses_between(-1, 10**12)
        assert motor.has_work and not motor.moving

    def test_truncated_run_is_reported_honestly(self, smd_system):
        loop = SmdClosedLoop(smd_system, motor_specs=FAST_MOTORS)
        report = loop.run([MoveCommand(50, 50, 5)],
                          max_configuration_cycles=20)
        assert report.truncated
        assert not report.all_moves_completed

    def test_completed_run_is_not_truncated(self, smd_system):
        loop = SmdClosedLoop(smd_system, motor_specs=FAST_MOTORS)
        report = loop.run([MoveCommand(10, 10, 2)],
                          max_configuration_cycles=15000)
        assert not report.truncated
        assert report.all_moves_completed


CAMPAIGN_CLASSES = ("tep-stall", "tep-runaway", "cr-state-flip", "tep-fail")
CAMPAIGN_SEED = 2


class TestCampaign:
    @pytest.fixture(scope="class")
    def campaign_report(self, smd_system):
        return FaultCampaign(smd_system, seed=CAMPAIGN_SEED,
                             runs_per_class=1,
                             classes=CAMPAIGN_CLASSES).run()

    def test_identical_seed_identical_report(self, smd_system,
                                             campaign_report):
        again = FaultCampaign(smd_system, seed=CAMPAIGN_SEED,
                              runs_per_class=1,
                              classes=CAMPAIGN_CLASSES).run()
        assert (json.dumps(campaign_report.to_json(), sort_keys=True)
                == json.dumps(again.to_json(), sort_keys=True))

    def test_every_recovery_mechanism_demonstrated(self, campaign_report):
        by_class = {s.fault_class: s for s in campaign_report.class_stats}
        # watchdog abort + retry
        assert by_class["tep-stall"].recovered >= 1
        assert by_class["tep-runaway"].recovered >= 1
        # illegal-configuration recovery to the safe state
        assert by_class["cr-state-flip"].recovered >= 1
        # TEP failover completing every move on the survivors
        assert by_class["tep-fail"].recovered >= 1
        assert (by_class["tep-fail"].completed_moves
                == by_class["tep-fail"].runs)

    def test_report_renders_and_publishes(self, campaign_report):
        from repro.obs import MetricsRegistry

        text = campaign_report.render()
        assert "Fault campaign" in text and "tep-fail" in text
        metrics = MetricsRegistry()
        campaign_report.publish(metrics)
        assert metrics["campaign.runs"].value == len(CAMPAIGN_CLASSES)
        assert metrics["campaign.recovered"].value >= 4

    def test_unknown_class_rejected(self, smd_system):
        with pytest.raises(ValueError):
            FaultCampaign(smd_system, classes=("gremlin",))
