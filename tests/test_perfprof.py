"""Tests for :mod:`repro.obs.perfprof` — the hot-path profiler.

The load-bearing property mirrors the tracer's: an attached profiler is a
pure observer (identical ``MachineStep`` streams, cycle counts and
architectural state), and detached it costs a single ``is None`` guard.
Attribution arithmetic is pinned with an injected fake clock so the
assertions are deterministic.
"""

import itertools
import json

import pytest

from repro.action.check import Externals
from repro.isa import CodeGenerator, MD16_TEP, NameMaps, prepare_program
from repro.obs import (
    OPCODE_LEVEL,
    PerfProfiler,
    ROUTINE_LEVEL,
    STEP_PHASES,
    Tracer,
    chrome_trace,
)
from repro.obs.export import SELF_PROFILE_PID
from repro.pscp import PscpMachine, SLA_OVERHEAD_CYCLES
from repro.statechart import ChartBuilder


def build_machine(chart, source, arch=MD16_TEP, **kwargs):
    externals = Externals.from_chart(chart)
    checked = prepare_program(source, arch, externals)
    maps = NameMaps.from_chart(chart)
    compiled = CodeGenerator(checked, arch, maps=maps).compile()
    params = {f.name: [p.name for p in f.params]
              for f in checked.program.functions}
    return PscpMachine(chart, compiled, param_names=params, **kwargs)


def pingpong_chart():
    b = ChartBuilder("pingpong")
    b.event("GO", period=500).event("BACK")
    b.condition("FLAG")
    with b.or_state("Top", default="A"):
        b.basic("A").transition("B", label="GO/Work()")
        b.basic("B").transition("A", label="BACK/SetTrue(FLAG)")
    return b.build()


PINGPONG_ROUTINES = """
int:16 total;
void Work() { total = total + 3; }
"""

STIMULUS = [{"GO"}, {"BACK"}, set(), {"GO"}, {"BACK"}, {"GO"}]


def step_fingerprint(step):
    return (tuple(t.index for t in step.fired), step.configuration,
            step.cycle_length, step.start_time, step.end_time,
            step.events_sampled, step.events_raised)


def fake_clock(step_ns=7):
    """Monotonic integer-nanosecond clock advancing *step_ns* per read."""
    counter = itertools.count(0, step_ns)
    return lambda: next(counter)


class TestParity:
    @pytest.mark.parametrize("level", [ROUTINE_LEVEL, OPCODE_LEVEL])
    def test_identical_steps_with_profiler_attached(self, level):
        chart = pingpong_chart()
        plain = build_machine(chart, PINGPONG_ROUTINES)
        profiled = build_machine(chart, PINGPONG_ROUTINES)
        profiled.attach_profiler(PerfProfiler(level=level))

        plain_steps = plain.run(STIMULUS)
        profiled_steps = profiled.run(STIMULUS)

        assert ([step_fingerprint(s) for s in plain_steps]
                == [step_fingerprint(s) for s in profiled_steps])
        assert plain.time == profiled.time
        assert plain.read_global("total") == profiled.read_global("total")
        assert plain.cr.conditions == profiled.cr.conditions

    def test_disabled_by_default(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        assert machine.profiler is None
        assert machine.executor.profiler is None
        machine.step({"GO"})  # must not touch any profiler

    def test_detach_restores_disabled_path(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        profiler = PerfProfiler(clock=fake_clock())
        machine.attach_profiler(profiler)
        machine.step({"GO"})
        assert profiler.steps == 1
        machine.attach_profiler(None)
        assert machine.profiler is None
        assert machine.executor.profiler is None
        machine.step({"BACK"})
        assert profiler.steps == 1  # nothing recorded after detach


class TestConstruction:
    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown profiler level"):
            PerfProfiler(level="line")

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError, match="phase_stride"):
            PerfProfiler(phase_stride=0)

    def test_level_defaults(self):
        routine = PerfProfiler()
        opcode = PerfProfiler(level=OPCODE_LEVEL)
        assert (routine.level, routine.per_opcode) == (ROUTINE_LEVEL, False)
        assert routine.phase_stride == 8
        assert (opcode.level, opcode.per_opcode) == (OPCODE_LEVEL, True)
        assert opcode.phase_stride == 1  # opcode level samples every step


class TestPhaseArithmetic:
    def test_phase_sample_splits_the_timestamps(self):
        profiler = PerfProfiler()
        profiler.steps = 1
        profiler.phase_sample(100, 110, 125, 165, 170, 200)
        walls = {name: stat.wall_ns for name, stat in profiler.phases.items()}
        assert walls == {"sample-events": 10, "sla-eval": 15,
                         "dispatch": 40, "state-update": 5, "finalize": 30}
        assert profiler.sampled_steps == 1
        assert all(stat.samples == 1 for stat in profiler.phases.values())

    def test_phase_report_scales_sampled_wall(self):
        profiler = PerfProfiler(phase_stride=3)
        profiler.steps = 6  # two of six steps sampled
        profiler.phase_sample(0, 10, 20, 30, 40, 50)
        profiler.phase_sample(0, 10, 20, 30, 40, 50)
        assert profiler.sampled_steps == 2
        assert profiler.phase_scale == 3.0
        report = profiler.phase_report()
        assert [row[0] for row in report] == list(STEP_PHASES)
        # raw 20ns per phase, scaled x3; steps column is the exact count
        assert all(row[1] == 6 and row[2] == 60 for row in report)
        assert profiler.wall_ns == 5 * 60

    def test_phase_scale_exact_at_stride_one(self):
        profiler = PerfProfiler(phase_stride=1)
        profiler.steps = 2
        profiler.phase_sample(0, 1, 2, 3, 4, 5)
        profiler.phase_sample(0, 1, 2, 3, 4, 5)
        assert profiler.phase_scale == 1.0

    def test_phase_scale_zero_before_any_sample(self):
        assert PerfProfiler().phase_scale == 0.0
        assert PerfProfiler().wall_ns == 0


class TestFrameStack:
    def test_call_ret_separates_self_from_cumulative(self):
        profiler = PerfProfiler(level=OPCODE_LEVEL)
        frames = []
        profiler.open_frame(frames, "caller")
        frames[-1][1] += 100  # caller self time before the call
        profiler.open_frame(frames, "callee")
        frames[-1][1] += 40
        profiler.close_frame(frames)
        frames[-1][1] += 10  # caller self time after the call
        profiler.close_frame(frames)
        caller = profiler.routines["caller"]
        callee = profiler.routines["callee"]
        assert (callee.self_ns, callee.cum_ns) == (40, 40)
        assert (caller.self_ns, caller.cum_ns) == (110, 150)

    def test_note_run_accumulates(self):
        profiler = PerfProfiler()
        profiler.note_run("__t0", 25, 9, 4)
        profiler.note_run("__t0", 15, 9, 4)
        stat = profiler.routines["__t0"]
        assert (stat.calls, stat.self_ns, stat.cum_ns) == (2, 40, 40)
        assert (stat.cycles, stat.instructions) == (18, 8)

    def test_note_opcode_accumulates(self):
        profiler = PerfProfiler(level=OPCODE_LEVEL)
        profiler.note_opcode("ADD", 2, 11)
        profiler.note_opcode("ADD", 2, 9)
        stat = profiler.opcodes["ADD"]
        assert (stat.calls, stat.wall_ns, stat.modeled_cycles) == (2, 20, 4)


class TestMachineAttribution:
    def run_profiled(self, level=ROUTINE_LEVEL, phase_stride=None):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        profiler = PerfProfiler(level=level, clock=fake_clock(),
                                phase_stride=phase_stride)
        machine.attach_profiler(profiler)
        machine.run(STIMULUS)
        return machine, profiler

    def test_steps_and_modeled_cycles_are_exact(self):
        machine, profiler = self.run_profiled()
        assert profiler.steps == machine.cycle_count == len(STIMULUS)
        # every reference-clock cycle is charged to exactly one of the two
        # modeled phases: SLA overhead or the dispatch makespan
        assert profiler.sla_cycles + profiler.dispatch_cycles == machine.time
        assert profiler.sla_cycles == len(STIMULUS) * SLA_OVERHEAD_CYCLES

    def test_stride_sampling_counts(self):
        _machine, profiler = self.run_profiled(phase_stride=4)
        assert profiler.steps == 6
        assert profiler.sampled_steps == 1  # step 4 only
        assert profiler.phase_scale == 6.0
        _machine, exact = self.run_profiled(phase_stride=1)
        assert exact.sampled_steps == exact.steps == 6
        # sampled wall is a positive scaled estimate in both cases
        assert profiler.wall_ns > 0
        assert exact.wall_ns > 0

    def test_routine_attribution_with_pretty_names(self):
        _machine, profiler = self.run_profiled()
        assert profiler.routines  # dispatched entry stubs landed
        assert all(name.startswith("__t") for name in profiler.routines)
        calls = sum(stat.calls for stat in profiler.routines.values())
        assert calls == 5  # five of six stimulus steps fire a transition
        assert all(stat.cycles > 0 and stat.instructions > 0
                   for stat in profiler.routines.values())
        document = json.loads(json.dumps(profiler.to_json()))
        names = [row["routine"] for row in document["routines"]]
        # attach_profiler bound pretty names: "__t0" renders as "t0 <action>"
        assert names and all(name.startswith("t") and " " in name
                             for name in names)

    def test_opcode_attribution(self):
        _machine, profiler = self.run_profiled(level=OPCODE_LEVEL)
        assert profiler.opcodes
        assert sum(stat.calls for stat in profiler.opcodes.values()) > 0
        assert sum(stat.modeled_cycles
                   for stat in profiler.opcodes.values()) > 0
        # modeled opcode cycles are exact: they sum to the cycles the
        # executor charged across all dispatched routines
        assert (sum(stat.modeled_cycles
                    for stat in profiler.opcodes.values())
                == sum(stat.cycles for stat in profiler.routines.values()))

    def test_reset_forgets_everything_but_bindings(self):
        _machine, profiler = self.run_profiled()
        labels = dict(profiler.label_names)
        assert labels
        profiler.reset()
        assert profiler.steps == profiler.sampled_steps == 0
        assert profiler.sla_cycles == profiler.dispatch_cycles == 0
        assert not profiler.routines and not profiler.opcodes
        assert all(stat.samples == 0 and stat.wall_ns == 0
                   for stat in profiler.phases.values())
        assert profiler.label_names == labels


class TestRendering:
    def profiled(self, level=OPCODE_LEVEL):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        profiler = PerfProfiler(level=level, clock=fake_clock())
        machine.attach_profiler(profiler)
        machine.run(STIMULUS)
        return machine, profiler

    def test_to_json_shape(self):
        _machine, profiler = self.profiled()
        document = profiler.to_json(top=3)
        assert document["level"] == OPCODE_LEVEL
        assert document["steps"] == 6
        assert document["phase_stride"] == 1
        assert document["sampled_steps"] == 6
        assert [row["phase"] for row in document["phases"]] \
            == list(STEP_PHASES)
        assert len(document["routines"]) <= 3
        assert len(document["opcodes"]) <= 3
        # routines sorted by cumulative wall, opcodes by wall
        cums = [row["cum_ns"] for row in document["routines"]]
        assert cums == sorted(cums, reverse=True)
        walls = [row["wall_ns"] for row in document["opcodes"]]
        assert walls == sorted(walls, reverse=True)
        json.dumps(document)  # JSON-ready

    def test_hotspot_table_mentions_the_three_axes(self):
        _machine, profiler = self.profiled()
        table = profiler.hotspot_table(top=4)
        assert "Step phases (6 configuration cycles (exact))" in table
        assert "Hottest routines" in table
        assert "Hottest opcodes" in table

    def test_hotspot_table_reports_sampling(self):
        _machine, profiler = self.profiled(level=ROUTINE_LEVEL)
        assert "(wall sampled 1/8)" in profiler.hotspot_table()

    def test_chrome_trace_merges_self_profile_process(self):
        chart = pingpong_chart()
        machine = build_machine(chart, PINGPONG_ROUTINES)
        tracer = Tracer()
        profiler = PerfProfiler(level=OPCODE_LEVEL, clock=fake_clock())
        machine.attach_tracer(tracer)
        machine.attach_profiler(profiler)
        machine.run(STIMULUS)
        machine.flush_trace()

        merged = chrome_trace(tracer, profile=profiler)
        self_events = [e for e in merged["traceEvents"]
                       if e["pid"] == SELF_PROFILE_PID]
        assert self_events
        names = {e["args"].get("name") for e in self_events
                 if e["ph"] == "M"}
        assert f"self-profile ({OPCODE_LEVEL})" in names
        assert {"step phases", "routines (cumulative)",
                "opcodes (self)"} <= names
        assert merged["otherData"]["self_profile"]["steps"] == 6
        # without a profile the export is byte-identical to the historical
        # shape: no self-profile process, no otherData key
        plain = chrome_trace(tracer)
        assert not [e for e in plain["traceEvents"]
                    if e["pid"] == SELF_PROFILE_PID]
        assert "self_profile" not in plain["otherData"]

    def test_chrome_spans_tile_each_track(self):
        _machine, profiler = self.profiled()
        events = profiler.chrome_trace_events(SELF_PROFILE_PID, top=5)
        by_track = {}
        for event in events:
            if event["ph"] == "X":
                by_track.setdefault(event["tid"], []).append(event)
        assert by_track
        for spans in by_track.values():
            cursor = 0.0
            for span in spans:  # laid end to end
                assert span["ts"] == pytest.approx(cursor)
                cursor += span["dur"]
