"""Tests for the command-line front end."""

import io
import json

import pytest

from repro.cli import run

CHART = """
chart demo;
event GO period 900;
event STOP;
orstate Top { contains A, B; default A; }
basicstate A { transition { target B; label "GO/Fast()"; } }
basicstate B { transition { target A; label "STOP/Slow()"; } }
"""

ROUTINES = """
int:16 x;
void Fast() { x = x + 1; }
void Slow() { x = 0; }
"""

SLOW_ROUTINES = """
int:16 x;
void Fast() {
  int:16 i = 0;
  @bound(40) while (i < 40) { x = x + i; i = i + 1; }
}
void Slow() { x = 0; }
"""


@pytest.fixture
def project(tmp_path):
    chart_file = tmp_path / "demo.sc"
    chart_file.write_text(CHART)
    routine_file = tmp_path / "demo.c"
    routine_file.write_text(ROUTINES)
    return str(chart_file), str(routine_file)


def invoke(argv):
    out = io.StringIO()
    code = run(argv, out=out)
    return code, out.getvalue()


class TestCli:
    def test_basic_run_reports_tables(self, project):
        code, text = invoke(list(project))
        assert code == 0
        assert "Table 2" in text and "Table 3" in text
        assert "all timing constraints met" in text
        assert "PSCP area estimate" in text

    def test_exit_code_on_violation(self, project, tmp_path):
        slow = tmp_path / "slow.c"
        slow.write_text(SLOW_ROUTINES)
        code, text = invoke([project[0], str(slow), "--arch", "minimal"])
        assert code == 1
        assert "timing violations" in text

    def test_json_summary(self, project):
        code, text = invoke([*project, "--json"])
        summary = json.loads(text)
        assert summary["chart"] == "demo"
        assert "GO" in summary["critical_paths"]
        assert summary["area_clbs"] > 0
        assert {"Fast", "Slow"} <= set(summary["routine_wcets"])

    def test_arch_and_teps_flags(self, project):
        code, text = invoke([*project, "--arch", "md16", "--teps", "2"])
        assert "2x" in text and "16bit" in text

    def test_optimize_flag(self, project):
        _, plain = invoke([*project, "--json"])
        _, optimized = invoke([*project, "--json", "--optimize"])
        plain_paths = json.loads(plain)["critical_paths"]
        opt_paths = json.loads(optimized)["critical_paths"]
        assert opt_paths["GO"] < plain_paths["GO"]

    def test_improve_mode(self, project, tmp_path):
        slow = tmp_path / "slow.c"
        slow.write_text(SLOW_ROUTINES)
        code, text = invoke([project[0], str(slow), "--improve"])
        assert "improvement trajectory" in text
        assert "baseline" in text

    def test_emit_artifacts(self, project):
        code, text = invoke([*project, "--emit", "blif", "--emit", "vhdl",
                             "--emit", "asm", "--emit", "dot"])
        assert ".model sla" in text
        assert "entity sla" in text
        assert "Fast" in text  # assembler labels
        assert "digraph" in text

    def test_floorplan_flag(self, project):
        code, text = invoke([*project, "--floorplan"])
        assert "floorplan" in text

    def test_missing_file_error(self, tmp_path):
        code, _ = invoke([str(tmp_path / "nope.sc"), str(tmp_path / "nope.c")])
        assert code == 2
