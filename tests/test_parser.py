"""Tests for the textual statechart format (Fig. 2a) parser and emitter."""

import pytest

from repro.statechart import (
    ParseError,
    PortDirection,
    PortKind,
    StateKind,
    emit_chart,
    parse_chart,
)

FIG_2A = """
basicstate Errstate {
  transition {
    target Idle1;
    label "INIT or ALLRESET/InitializeAll()"
  }
}
andstate Operation {
  contains DataPreparation, ReachPosition;
  transition {
    target Idle1;
    label "INIT or ALLRESET/InitializeAll()";
  }
  transition {
    target Errstate;
    label "ERROR/Stop()";
  }
}
orstate DataPreparation {
  contains OpcodeReady, EmptyBuf, Bounds, NoData;
  default OpcodeReady;
}
basicstate OpcodeReady {}
basicstate EmptyBuf {}
basicstate Bounds {}
basicstate NoData {}
basicstate ReachPosition {}
basicstate Idle1 {}

event INIT;
event ALLRESET;
event ERROR;
"""


class TestFig2aFragment:
    """The exact textual fragment shown in Fig. 2a parses correctly."""

    def test_parses(self):
        chart = parse_chart(FIG_2A, name="fig2a")
        assert chart.states["Operation"].kind is StateKind.AND
        assert chart.states["DataPreparation"].kind is StateKind.OR
        assert chart.states["DataPreparation"].default == "OpcodeReady"
        assert chart.states["DataPreparation"].children == [
            "OpcodeReady", "EmptyBuf", "Bounds", "NoData"]

    def test_transition_labels_parsed(self):
        chart = parse_chart(FIG_2A)
        err = chart.states["Errstate"].transitions[0]
        assert err.target == "Idle1"
        assert err.trigger is not None
        assert err.trigger.names() == {"INIT", "ALLRESET"}
        assert err.action == "InitializeAll()"

    def test_composite_transition(self):
        chart = parse_chart(FIG_2A)
        targets = [t.target for t in chart.states["Operation"].transitions]
        assert targets == ["Idle1", "Errstate"]

    def test_label_semicolon_optional(self):
        # Fig. 2a itself omits the semicolon after the first label.
        chart = parse_chart(FIG_2A)
        assert len(chart.states["Errstate"].transitions) == 1

    def test_roots_attach_under_implicit_root(self):
        chart = parse_chart(FIG_2A)
        top = chart.states[chart.root].children
        assert "Errstate" in top and "Operation" in top and "Idle1" in top
        assert "OpcodeReady" not in top


class TestDeclarations:
    def test_event_with_period(self):
        chart = parse_chart("event DATA_VALID period 1500; basicstate S {}")
        assert chart.events["DATA_VALID"].period == 1500

    def test_condition_with_initial(self):
        chart = parse_chart("condition MOVEMENT initial true; basicstate S {}")
        assert chart.conditions["MOVEMENT"].initial is True

    def test_port_declaration(self):
        chart = parse_chart(
            "port PE0 : event width 1 address 448 out; basicstate S {}")
        port = chart.ports["PE0"]
        assert port.kind is PortKind.EVENT
        assert port.width == 1
        assert port.address == 448
        assert port.direction is PortDirection.OUTPUT

    def test_chart_name_directive(self):
        chart = parse_chart("chart pickup; basicstate S {}")
        assert chart.name == "pickup"

    def test_wcet_override(self):
        chart = parse_chart("""
            event E;
            basicstate A { transition { target B; label "E"; wcet 250; } }
            basicstate B {}
        """)
        assert chart.transitions[0].wcet_override == 250

    def test_refstate(self):
        chart = parse_chart("""
            orstate Top { contains MoveX; default MoveX; }
            refstate MoveX { refers MotorChart; }
        """)
        assert chart.states["MoveX"].kind is StateKind.REF
        assert chart.states["MoveX"].ref == "MotorChart"

    def test_comments_ignored(self):
        chart = parse_chart("""
            // a line comment
            # another comment style
            basicstate S {}  // trailing
        """)
        assert "S" in chart.states


class TestErrors:
    @pytest.mark.parametrize("text, fragment", [
        ("basicstate {", "expected name"),
        ("basicstate S { transition { label \"E\"; } }", "without target"),
        ("orstate A { contains B; } orstate B { contains A; }", "root"),
        ("basicstate S { contains T; }", "not declared"),
        ("basicstate S {} basicstate S {}", "duplicate"),
        ("weirdtoken", "unexpected"),
        ("basicstate S { transition { target T; } }", "unknown target"),
    ])
    def test_rejects(self, text, fragment):
        with pytest.raises(ParseError) as excinfo:
            parse_chart(text)
        assert fragment in str(excinfo.value)

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            parse_chart("basicstate S {}\nbasicstate S {}")
        assert excinfo.value.line == 2

    def test_bad_label_raises_attributed_parse_error(self):
        """A malformed label must surface as a ParseError with the
        transition's line number, never a raw LabelError/ExprError."""
        text = ('basicstate S {\n'
                '  transition {\n'
                '    target T;\n'
                '    label "E [[";\n'
                '  }\n'
                '}\n'
                'basicstate T {}\n')
        with pytest.raises(ParseError) as excinfo:
            parse_chart(text)
        assert "bad transition label" in str(excinfo.value)
        assert excinfo.value.line == 2

    def test_duplicate_transition_raises_attributed_parse_error(self):
        """Chart-model rejections during transition construction surface
        as attributed ParseErrors, not raw ChartErrors."""
        text = ('event E;\n'
                'basicstate S {\n'
                '  transition { target T; label "E"; }\n'
                '  transition { target T; label "E"; }\n'
                '}\n'
                'basicstate T {}\n')
        try:
            parse_chart(text)
        except ParseError as exc:
            assert exc.line is not None
        # (chart model may accept duplicates; only the error *type*
        # contract matters here)

    def test_double_containment_rejected(self):
        text = """
        orstate A { contains C; }
        orstate B { contains C; }
        basicstate C {}
        """
        with pytest.raises(ParseError):
            parse_chart(text)


class TestRoundTrip:
    def test_emit_then_parse_preserves_structure(self):
        chart = parse_chart(FIG_2A, name="fig2a")
        text = emit_chart(chart)
        again = parse_chart(text)
        assert set(again.states) == set(chart.states)
        assert again.states["DataPreparation"].default == "OpcodeReady"
        assert len(again.transitions) == len(chart.transitions)
        for a, b in zip(again.transitions, chart.transitions):
            assert a.source == b.source and a.target == b.target
            assert a.action == b.action

    def test_emit_includes_declarations(self):
        chart = parse_chart(
            "event E period 10; condition C initial true;"
            "port P : data width 8 inout; basicstate S {}")
        text = emit_chart(chart)
        assert "event E period 10;" in text
        assert "condition C initial true;" in text
        assert "port P : data width 8 inout;" in text
