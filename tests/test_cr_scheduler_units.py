"""Direct unit tests for the CR runtime object and the dispatch scheduler."""

import pytest

from repro.isa import ArchConfig
from repro.pscp.cr import ConfigurationRegister
from repro.pscp.scheduler import (
    DISPATCH_OVERHEAD_CYCLES,
    round_robin_dispatch,
)
from repro.sla import cr_layout
from repro.statechart import ChartBuilder


def small_chart():
    b = ChartBuilder("cr")
    b.event("E1").event("E2")
    b.condition("C1", initial=True).condition("C2")
    with b.or_state("Top", default="A"):
        b.basic("A").transition("B", label="E1")
        b.basic("B")
    return b.build()


class TestConfigurationRegister:
    def make_cr(self):
        chart = small_chart()
        return chart, ConfigurationRegister(cr_layout(chart))

    def test_initial_state(self):
        chart, cr = self.make_cr()
        assert cr.configuration == chart.initial_configuration()
        assert cr.conditions == {"C1"}
        assert cr.events == set()

    def test_sample_and_reset_events(self):
        _, cr = self.make_cr()
        cr.sample_events({"E1"}, {"E2"})
        assert cr.events == {"E1", "E2"}
        cr.reset_events()
        assert cr.events == set()

    def test_unknown_event_rejected(self):
        _, cr = self.make_cr()
        with pytest.raises(KeyError):
            cr.sample_events({"GHOST"}, set())

    def test_condition_vector_and_write(self):
        _, cr = self.make_cr()
        assert cr.condition_vector() == {"C1": True, "C2": False}
        cr.write_conditions({"C1": False, "C2": True})
        assert cr.conditions == {"C2"}

    def test_unknown_condition_rejected(self):
        _, cr = self.make_cr()
        with pytest.raises(KeyError):
            cr.write_conditions({"GHOST": True})

    def test_state_update(self):
        chart, cr = self.make_cr()
        cr.update_states(exited={"A"}, entered={"B"})
        assert "B" in cr.configuration and "A" not in cr.configuration

    def test_bits_roundtrip_through_layout(self):
        chart, cr = self.make_cr()
        cr.sample_events({"E1"}, set())
        events, conditions, states = cr.layout.unpack(cr.bits)
        assert events == {"E1"}
        assert conditions == {"C1"}
        assert states == cr.configuration


class TestDispatchPlan:
    def test_empty_dispatch(self):
        plan = round_robin_dispatch([], lambda i: None, ArchConfig())
        assert plan.queues == [[]]
        assert plan.makespan(lambda i: 0) == 0

    def test_tep_of_lookup(self):
        arch = ArchConfig(n_teps=2)
        plan = round_robin_dispatch([3, 5, 7], lambda i: f"r{i}", arch)
        assert plan.tep_of(3) == 0
        assert plan.tep_of(5) == 1
        assert plan.tep_of(7) == 0
        with pytest.raises(KeyError):
            plan.tep_of(99)

    def test_makespan_includes_dispatch_overhead_per_transition(self):
        plan = round_robin_dispatch([0, 1], lambda i: None, ArchConfig())
        costs = {0: 10, 1: 20}
        assert plan.makespan(lambda i: costs[i]) == \
            30 + 2 * DISPATCH_OVERHEAD_CYCLES

    def test_order_is_index_sorted(self):
        arch = ArchConfig(n_teps=3)
        plan = round_robin_dispatch([9, 1, 5], lambda i: None, arch)
        assert plan.order == [1, 5, 9]

    def test_actionless_transitions_never_excluded(self):
        arch = ArchConfig(n_teps=2, mutual_exclusions=frozenset(
            {frozenset({"X", "Y"})}))
        plan = round_robin_dispatch([0, 1], lambda i: None, arch)
        assert plan.queues == [[0], [1]]
