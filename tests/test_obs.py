"""Tests for the observability layer: tracer, metrics, exporters, and the
tracing hooks in the machine/TEP/flow.

The load-bearing property is enable/disable parity: an attached tracer must
observe the machine without perturbing it — identical ``MachineStep``
results, cycle counts and architectural state with tracing on and off.
"""

import io
import json

import pytest

from repro.action.check import Externals
from repro.isa import CodeGenerator, MD16_TEP, NameMaps, prepare_program
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    metrics_summary,
    trace_summary,
    write_chrome_trace,
)
from repro.pscp import PscpMachine
from repro.sla.blif import emit_blif, parse_blif
from repro.statechart import ChartBuilder


def build_machine(chart, source, arch=MD16_TEP, **kwargs):
    externals = Externals.from_chart(chart)
    checked = prepare_program(source, arch, externals)
    maps = NameMaps.from_chart(chart)
    compiled = CodeGenerator(checked, arch, maps=maps).compile()
    params = {f.name: [p.name for p in f.params]
              for f in checked.program.functions}
    return PscpMachine(chart, compiled, param_names=params, **kwargs)


def pingpong_chart():
    b = ChartBuilder("pingpong")
    b.event("GO", period=500).event("BACK")
    b.condition("FLAG")
    with b.or_state("Top", default="A"):
        b.basic("A").transition("B", label="GO/Work()")
        b.basic("B").transition("A", label="BACK/SetTrue(FLAG)")
    return b.build()


PINGPONG_ROUTINES = """
int:16 total;
void Work() { total = total + 3; }
"""

STIMULUS = [{"GO"}, {"BACK"}, set(), {"GO"}, {"BACK"}, {"GO"}]


def step_fingerprint(step):
    return (tuple(t.index for t in step.fired), step.configuration,
            step.cycle_length, step.start_time, step.end_time,
            step.events_sampled, step.events_raised)


class TestTracerParity:
    def test_identical_steps_with_tracing_on_and_off(self):
        chart = pingpong_chart()
        plain = build_machine(chart, PINGPONG_ROUTINES)
        traced = build_machine(chart, PINGPONG_ROUTINES)
        traced.attach_tracer(Tracer())

        plain_steps = plain.run(STIMULUS)
        traced_steps = traced.run(STIMULUS)

        assert ([step_fingerprint(s) for s in plain_steps]
                == [step_fingerprint(s) for s in traced_steps])
        assert plain.time == traced.time
        assert plain.read_global("total") == traced.read_global("total")
        assert plain.cr.conditions == traced.cr.conditions

    def test_detach_restores_disabled_path(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        tracer = Tracer()
        machine.attach_tracer(tracer)
        machine.step({"GO"})
        recorded = len(tracer)
        assert recorded > 0
        machine.attach_tracer(None)
        machine.step({"BACK"})
        assert len(tracer) == recorded

    def test_disabled_by_default(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        assert machine.tracer is None
        machine.step({"GO"})  # must not touch any tracer


class TestMachineTracing:
    def trace(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        tracer = Tracer()
        machine.attach_tracer(tracer)
        machine.run(STIMULUS)
        return machine, tracer

    def test_tracks_registered(self):
        _machine, tracer = self.trace()
        assert {"machine", "SLA", "scheduler", "TEP 0",
                "cond-cache bus"} <= set(tracer.track_names)

    def test_cycle_and_idle_spans_cover_machine_time(self):
        machine, tracer = self.trace()
        cycle_spans = [e for e in tracer.spans() if e[2] == "cycle"]
        idle_spans = [e for e in tracer.spans() if e[2] == "idle"]
        # quiescent cycles are coalesced into "idle" spans; together they
        # account for every configuration cycle and every reference cycle
        assert (len(cycle_spans)
                + sum(span[5]["cycles"] for span in idle_spans)
                == machine.cycle_count)
        assert idle_spans, "the empty-stimulus cycle must coalesce"
        assert (sum(span[4] for span in cycle_spans)
                + sum(span[4] for span in idle_spans) == machine.time)

    def test_tep_spans_carry_costs_and_instructions(self):
        machine, tracer = self.trace()
        tep_spans = tracer.events_on("TEP 0")
        assert tep_spans, "fired transitions must appear on the TEP track"
        for _kind, _track, name, _ts, dur, args in tep_spans:
            assert args["cycles"] > 0
            assert args["instructions"] > 0
            assert dur > args["cycles"]  # includes dispatch overhead

    def test_sampled_events_become_instants(self):
        _machine, tracer = self.trace()
        instants = {e[2] for e in tracer.events if e[0] == "i"}
        assert {"GO", "BACK"} <= instants

    def test_cache_traffic_counted(self):
        machine, tracer = self.trace()
        bridge = machine.cond_cache_bridge
        assert bridge.transfers == sum(
            len(s.fired) for s in machine.history)
        assert bridge.words_copied_in == bridge.words_copied_back > 0
        counters = [e for e in tracer.events if e[0] == "C"]
        assert sum(e[4] for e in counters) == bridge.words_total


class TestTepTracing:
    def test_standalone_tep_run_traced(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        tracer = Tracer()
        machine.executor.tracer = tracer
        machine.step({"GO"})
        spans = tracer.spans()
        assert spans and spans[0][2].startswith("__t")
        assert spans[0][5]["instructions"] > 0


class TestHistoryModes:
    def test_default_history_unbounded(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        machine.run(STIMULUS)
        assert len(machine.history) == len(STIMULUS)

    def test_keep_history_false_records_nothing(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES,
                                keep_history=False)
        steps = machine.run(STIMULUS)
        assert len(steps) == len(STIMULUS)  # steps still returned
        assert len(machine.history) == 0
        assert machine.cycle_count == len(STIMULUS)

    def test_history_limit_is_a_ring_buffer(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES,
                                history_limit=2)
        machine.run(STIMULUS)
        assert len(machine.history) == 2
        newest = machine.history[-1]
        assert newest.end_time == machine.time


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        registry.gauge("depth").set(7)
        assert registry["hits"].value == 5
        assert registry["depth"].value == 7

    def test_histogram_buckets_and_stats(self):
        histogram = Histogram("lat", buckets=(10, 100))
        for value in (3, 7, 50, 120):
            histogram.observe(value)
        assert histogram.counts == [2, 1]
        assert histogram.overflow == 1
        assert histogram.count == 4
        assert histogram.min == 3 and histogram.max == 120
        assert histogram.mean == pytest.approx(45.0)
        assert histogram.quantile(0.5) == 10

    def test_type_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_collect_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("a", "help text").inc()
        registry.histogram("h").observe(12)
        document = json.dumps(registry.collect())
        parsed = json.loads(document)
        assert parsed["a"]["value"] == 1
        assert parsed["h"]["count"] == 1

    def test_summary_table_renders(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.histogram("h").observe(5)
        text = metrics_summary(registry)
        assert "Metrics" in text and "a" in text and "h" in text


class TestChromeExport:
    def make_tracer(self):
        tracer = Tracer()
        track = tracer.track("unit")
        tracer.span(track, "work", 10, 5, {"k": 1})
        tracer.instant(track, "ping", 12)
        tracer.counter(track, "load", 15, 3)
        return tracer

    def test_chrome_trace_shape(self):
        document = chrome_trace(self.make_tracer())
        events = document["traceEvents"]
        phases = [event["ph"] for event in events]
        assert "X" in phases and "i" in phases and "C" in phases
        span = next(event for event in events if event["ph"] == "X")
        assert span["ts"] == 10 and span["dur"] == 5
        assert span["args"]["k"] == 1
        names = {event["args"]["name"] for event in events
                 if event.get("name") == "thread_name"}
        assert names == {"unit"}
        json.dumps(document)  # must be serializable

    def test_write_chrome_trace_to_path(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self.make_tracer(), str(path))
        document = json.loads(path.read_text())
        assert document["traceEvents"]

    def test_write_chrome_trace_to_fileobj_with_metrics(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        buffer = io.StringIO()
        write_chrome_trace(self.make_tracer(), buffer, registry)
        document = json.loads(buffer.getvalue())
        assert document["otherData"]["metrics"]["n"]["value"] == 1

    def test_trace_summary_text(self):
        text = trace_summary(self.make_tracer())
        assert "unit" in text and "work" in text


class TestBlifMetrics:
    def test_evaluation_counters(self):
        from repro.sla.synth import synthesize

        chart = pingpong_chart()
        model = parse_blif(emit_blif(synthesize(chart)))
        registry = MetricsRegistry()
        model.attach_metrics(registry)
        assignment = {name: False for name in model.inputs}
        model.evaluate(assignment)
        model.evaluate(assignment)
        assert registry["pla.evaluations"].value == 2
        assert registry["pla.product_terms_scanned"].value > 0
        model.attach_metrics(None)
        model.evaluate(assignment)
        assert registry["pla.evaluations"].value == 2


class TestFlowProfile:
    def test_improver_records_profile(self):
        from repro.flow import Improver, improvement_profile_report

        chart = pingpong_chart()
        source = """
int:16 total;
void Work() {
  int:16 i = 0;
  @bound(30) while (i < 30) { total = total + i; i = i + 1; }
}
"""
        result = Improver(chart, source).run()
        profile = result.profile
        assert profile is not None
        assert len(profile.rungs) == len(result.steps)
        assert profile.rungs[0].rung == "baseline"
        assert all(rung.wall_seconds >= 0 for rung in profile.rungs)
        assert profile.rungs[0].area_delta == 0
        document = json.dumps(profile.to_json())
        assert "baseline" in document
        report = improvement_profile_report(profile)
        assert "Improvement ladder profile" in report


class TestSchedulerDiversions:
    def test_mutual_exclusion_diversion_recorded(self):
        from repro.pscp import round_robin_dispatch

        arch = MD16_TEP.with_(
            n_teps=2,
            mutual_exclusions=frozenset({frozenset({"A", "B"})}))
        routines = {0: "A", 1: "B", 2: "C"}
        plan = round_robin_dispatch([0, 1, 2], routines.get, arch)
        assert plan.diverted == [(1, 0)]
        assert plan.queues[0][:2] == [0, 1]
