"""Tests for SLA synthesis: encoding, PLA, BLIF, and — crucially — the
functional equivalence of the synthesized logic with the reference
statechart interpreter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sla import (
    TransitionAddressTable,
    TatError,
    binary_encoding,
    cr_layout,
    emit_blif,
    evaluate_pla_via_blif,
    onehot_encoding,
    parse_blif,
    synthesize,
)
from repro.statechart import ChartBuilder, Interpreter, StateKind


def blinker():
    b = ChartBuilder("blinker")
    b.event("TICK")
    with b.or_state("Top", default="Off"):
        b.basic("Off").transition("On", label="TICK")
        b.basic("On").transition("Off", label="TICK")
    return b.build()


def rich_chart():
    """An AND composition with guards, triggers and an escape transition."""
    b = ChartBuilder("rich")
    b.event("GO").event("E1").event("E2").event("ABORT")
    b.condition("OK").condition("ARMED")
    with b.or_state("Main", default="Idle"):
        b.basic("Idle").transition("Work", label="GO [OK]")
        with b.and_state("Work") as work:
            with b.or_state("RegA", default="A1"):
                b.basic("A1").transition("A2", label="E1")
                b.basic("A2").transition("A1", label="E2 [ARMED]")
            with b.or_state("RegB", default="B1"):
                b.basic("B1").transition("B2", label="not (E1 or E2)")
                b.basic("B2")
        work.transition("Idle", label="ABORT")
    return b.build()


class TestBinaryEncoding:
    def test_blinker_needs_one_state_bit(self):
        enc = binary_encoding(blinker())
        assert enc.width == 1

    def test_and_regions_sum_bits(self):
        enc = binary_encoding(rich_chart())
        # Main selector (2 children -> 1 bit) + max(Idle=0, Work=RegA(1)+RegB(1))
        assert enc.width == 3

    def test_encode_decode_roundtrip_initial(self):
        chart = rich_chart()
        enc = binary_encoding(chart)
        config = chart.initial_configuration()
        assert enc.active_states(enc.encode(config)) == config

    def test_encode_decode_roundtrip_deep(self):
        chart = rich_chart()
        enc = binary_encoding(chart)
        config = frozenset({"Root", "Main", "Work", "RegA", "A2",
                            "RegB", "B1"})
        assert enc.active_states(enc.encode(config)) == config

    def test_exclusive_states_share_bits(self):
        """The OR children overlay: encoding width << one-hot width."""
        chart = rich_chart()
        assert binary_encoding(chart).width < onehot_encoding(chart).width

    def test_onehot_roundtrip(self):
        chart = rich_chart()
        enc = onehot_encoding(chart)
        config = chart.initial_configuration()
        assert enc.active_states(enc.encode(config)) == config

    def test_term_literals_assert_activity(self):
        chart = rich_chart()
        enc = binary_encoding(chart)
        bits = enc.encode(frozenset({"Root", "Main", "Idle"}))
        for bit, value in enc.term_literals("Idle"):
            assert bool((bits >> bit) & 1) == value


class TestCrLayout:
    def test_layout_order_events_conditions_states(self):
        layout = cr_layout(rich_chart())
        assert layout.event_bits["GO"] == 0
        assert layout.condition_bits["OK"] == 4
        assert layout.state_offset == 6
        assert layout.width == 6 + layout.encoding.width

    def test_pack_unpack_roundtrip(self):
        chart = rich_chart()
        layout = cr_layout(chart)
        config = chart.initial_configuration()
        bits = layout.pack({"GO"}, {"OK"}, config)
        events, conditions, states = layout.unpack(bits)
        assert events == {"GO"}
        assert conditions == {"OK"}
        assert states == config

    def test_input_names_cover_every_bit(self):
        layout = cr_layout(rich_chart())
        names = layout.input_names()
        assert len(names) == layout.width
        assert all(names)
        assert names[0] == "ev_GO"


class TestSynthesis:
    def test_product_term_count_positive(self):
        pla = synthesize(rich_chart())
        assert pla.product_terms >= len(rich_chart().transitions)

    def test_disjunctive_trigger_multiplies_terms(self):
        b = ChartBuilder("disj")
        b.event("A").event("B")
        with b.or_state("Top", default="S"):
            b.basic("S").transition("T", label="A or B")
            b.basic("T")
        pla = synthesize(b.build())
        assert len(pla.transition_terms[0]) == 2

    def test_contradictory_guard_yields_no_terms(self):
        b = ChartBuilder("contra")
        b.event("E").condition("C")
        with b.or_state("Top", default="S"):
            b.basic("S").transition("T", label="E [C and not C]")
            b.basic("T")
        pla = synthesize(b.build())
        assert pla.transition_terms[0] == []

    def test_unresolved_ref_rejected(self):
        from repro.sla import SynthesisError
        b = ChartBuilder("withref")
        with b.or_state("Top", default="R"):
            b.ref("R", "Other")
        chart = b.build(validate=False)
        with pytest.raises(SynthesisError, match="unresolved"):
            synthesize(chart)

    def test_enabled_matches_interpreter_simple(self):
        chart = blinker()
        pla = synthesize(chart)
        interp = Interpreter(chart)
        bits = pla.layout.pack({"TICK"}, set(), interp.configuration)
        assert pla.enabled(bits) == [0]

    def test_guard_network_suppresses_inner_transition(self):
        chart = rich_chart()
        pla = synthesize(chart)
        config = frozenset({"Root", "Main", "Work", "RegA", "A1",
                            "RegB", "B2"})
        bits = pla.layout.pack({"E1", "ABORT"}, set(), config)
        enabled = pla.enabled(bits)
        fired = [chart.transitions[i] for i in enabled]
        assert [t.label for t in fired] == ["ABORT"]


class TestEquivalenceWithInterpreter:
    """Property: PLA-enabled transitions == interpreter-selected transitions
    for every reachable configuration and random event/condition input."""

    EVENTS = ["GO", "E1", "E2", "ABORT"]
    CONDITIONS = ["OK", "ARMED"]

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.tuples(
        st.sets(st.sampled_from(EVENTS)),
        st.sets(st.sampled_from(CONDITIONS))), max_size=8))
    def test_pla_equals_interpreter(self, trace):
        chart = rich_chart()
        pla = synthesize(chart)
        interp = Interpreter(chart)
        for events, true_conditions in trace:
            for name in self.CONDITIONS:
                interp.set_condition(name, name in true_conditions)
            bits = pla.layout.pack(events, true_conditions,
                                   interp.configuration)
            expected = interp.select(interp.enabled(events))
            assert pla.enabled(bits) == [t.index for t in expected]
            interp.step(events)

    @settings(max_examples=40, deadline=None)
    @given(st.sets(st.sampled_from(EVENTS)),
           st.sets(st.sampled_from(CONDITIONS)))
    def test_onehot_and_binary_encodings_agree(self, events, conditions):
        chart = rich_chart()
        binary_pla = synthesize(chart, onehot=False)
        onehot_pla = synthesize(chart, onehot=True)
        interp = Interpreter(chart)
        interp.step({"GO"})  # move somewhere interesting if OK held... may not fire
        config = interp.configuration
        b_bits = binary_pla.layout.pack(events, conditions, config)
        o_bits = onehot_pla.layout.pack(events, conditions, config)
        assert binary_pla.enabled(b_bits) == onehot_pla.enabled(o_bits)


class TestBlif:
    def test_emit_contains_model_sections(self):
        text = emit_blif(synthesize(rich_chart()))
        assert ".model sla" in text
        assert ".inputs" in text and ".outputs" in text and ".end" in text

    def test_parse_roundtrip_evaluates_identically(self):
        chart = rich_chart()
        pla = synthesize(chart)
        interp = Interpreter(chart)
        bits = pla.layout.pack({"GO"}, {"OK"}, interp.configuration)
        assert evaluate_pla_via_blif(pla, bits) == pla.raw_enabled(bits)

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.sampled_from(["GO", "E1", "E2", "ABORT"])),
           st.sets(st.sampled_from(["OK", "ARMED"])))
    def test_blif_equivalence_random_inputs(self, events, conditions):
        chart = rich_chart()
        pla = synthesize(chart)
        bits = pla.layout.pack(events, conditions,
                               chart.initial_configuration())
        assert evaluate_pla_via_blif(pla, bits) == pla.raw_enabled(bits)

    def test_parse_rejects_garbage(self):
        from repro.sla import BlifError
        with pytest.raises(BlifError):
            parse_blif(".model x\n.latch a b\n.end")

    def test_missing_input_rejected_at_eval(self):
        from repro.sla import BlifError
        model = parse_blif(".model m\n.inputs a b\n.outputs o\n"
                           ".names a b o\n11 1\n.end")
        with pytest.raises(BlifError, match="unassigned"):
            model.evaluate({"a": True})

    def test_vhdl_emission_from_pla(self):
        from repro.hw import emit_sla_vhdl
        pla = synthesize(rich_chart())
        text = emit_sla_vhdl("sla", pla.layout.input_names(),
                             pla.output_names(),
                             pla.as_products_by_output())
        assert "entity sla" in text
        assert "ev_GO" in text


class TestTransitionAddressTable:
    def test_bind_and_lookup(self):
        tat = TransitionAddressTable()
        tat.bind(0, "stub0")
        assert tat.entry(0) == "stub0"
        assert tat.size == 1

    def test_double_bind_rejected(self):
        tat = TransitionAddressTable()
        tat.bind(0, "stub0")
        with pytest.raises(TatError):
            tat.bind(0, "other")

    def test_unbound_lookup_rejected(self):
        with pytest.raises(TatError):
            TransitionAddressTable().entry(3)

    def test_fifo_order(self):
        tat = TransitionAddressTable()
        for index in range(3):
            tat.bind(index, f"s{index}")
        tat.post([2, 0, 1])
        assert [tat.pop(), tat.pop(), tat.pop()] == [2, 0, 1]
        assert tat.pop() is None
        assert tat.empty

    def test_post_unbound_rejected(self):
        tat = TransitionAddressTable()
        with pytest.raises(TatError, match="unbound"):
            tat.post([7])
