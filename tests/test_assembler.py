"""Tests for the two-pass assembler and textual syntax."""

import pytest

from repro.isa import (
    AsmError,
    Imm,
    Instruction,
    LabelRef,
    Mem,
    Op,
    PortRef,
    Reg,
    StorageClass,
    assemble,
    emit_text,
    parse_text,
)


def sample_program():
    return [
        Instruction(Op.LDA, Imm(0), label="start"),
        Instruction(Op.STA, Mem(4)),
        Instruction(Op.LDA, Mem(4), label="loop"),
        Instruction(Op.ADD, Imm(1)),
        Instruction(Op.STA, Mem(4)),
        Instruction(Op.CMP, Imm(10)),
        Instruction(Op.JNZ, LabelRef("loop")),
        Instruction(Op.RET),
    ]


class TestAssembly:
    def test_labels_resolved_to_word_addresses(self):
        assembled = assemble(sample_program())
        assert assembled.labels["start"] == 0
        # each of these instructions encodes to one word
        assert assembled.labels["loop"] == 2

    def test_jump_operand_carries_address(self):
        assembled = assemble(sample_program())
        jump = assembled.instructions[6]
        assert isinstance(jump.operand, LabelRef)
        assert jump.operand.address == assembled.labels["loop"]

    def test_wide_operands_shift_addresses(self):
        program = [
            Instruction(Op.LDA, Imm(0x1234), label="a"),  # 2 words
            Instruction(Op.NOP, label="b"),
        ]
        assembled = assemble(program)
        assert assembled.labels["b"] == 2

    def test_binary_image_produced(self):
        assembled = assemble(sample_program())
        assert assembled.size_words == 8
        assert all(0 <= w <= 0xFFFF for w in assembled.words)

    def test_duplicate_label_rejected(self):
        program = [Instruction(Op.NOP, label="x"),
                   Instruction(Op.NOP, label="x")]
        with pytest.raises(AsmError, match="duplicate"):
            assemble(program)

    def test_undefined_label_rejected(self):
        program = [Instruction(Op.JMP, LabelRef("ghost"))]
        with pytest.raises(AsmError, match="undefined"):
            assemble(program)

    def test_fused_branch_target_resolved(self):
        arch_prog = [
            Instruction(Op.CBEQ, Imm(1), LabelRef("out"), label="top"),
            Instruction(Op.NOP),
            Instruction(Op.RET, label="out"),
        ]
        assembled = assemble(arch_prog)
        assert assembled.instructions[0].target.address == assembled.labels["out"]


class TestTextRoundTrip:
    def test_emit_parse_roundtrip(self):
        program = sample_program()
        text = emit_text(program)
        parsed = parse_text(text)
        assert len(parsed) == len(program)
        for original, again in zip(program, parsed):
            assert again.op is original.op
            assert again.operand == original.operand
            assert again.label == original.label

    def test_text_contains_labels_and_mnemonics(self):
        text = emit_text(sample_program())
        assert "loop:" in text
        assert "JNZ" in text and "int[4]" in text

    def test_parse_all_operand_kinds(self):
        text = """
        entry:  LDA  #7
                LDO  R2
                STA  ext[300]
                INP  port[1792]
                EVSET sig[3]
                CBNE #1, entry
                TRET
        """
        parsed = parse_text(text)
        assert parsed[0].operand == Imm(7)
        assert parsed[1].operand == Reg(2)
        assert parsed[2].operand == Mem(300, StorageClass.EXTERNAL)
        assert parsed[3].operand == PortRef(1792)
        assert parsed[4].operand.index == 3
        assert parsed[5].target == LabelRef("entry")

    def test_label_on_own_line(self):
        parsed = parse_text("alone:\n  NOP\n")
        assert parsed[0].label == "alone"
        assert parsed[0].op is Op.NOP

    def test_comments_preserved_semantics(self):
        parsed = parse_text("  LDA #1 ; the answer\n")
        assert parsed[0].comment == "the answer"

    def test_unknown_opcode_rejected(self):
        with pytest.raises(AsmError, match="unknown opcode"):
            parse_text("  FROB #1\n")

    def test_bad_operand_rejected(self):
        with pytest.raises(AsmError, match="bad operand"):
            parse_text("  LDA ##\n")

    def test_dangling_label_rejected(self):
        with pytest.raises(AsmError, match="dangling"):
            parse_text("dead:\n")

    def test_assembled_roundtrip_executes_identically(self):
        """Assemble, print, re-parse, re-assemble: same binary image."""
        first = assemble(sample_program())
        text = emit_text(sample_program())
        second = assemble(parse_text(text))
        assert first.words == second.words


class TestDisassembler:
    def test_disassemble_lists_opcodes(self):
        from repro.isa.assembler import disassemble_words
        assembled = assemble(sample_program())
        lines = disassemble_words(assembled.words)
        assert any("LDA" in line for line in lines)
        assert any("JNZ" in line for line in lines)
