"""Tests for chart well-formedness checking and @-reference resolution."""

import pytest

from repro.statechart import (
    Chart,
    ChartBuilder,
    ChartError,
    Interpreter,
    StateKind,
    chart_problems,
    parse_chart,
    resolve_references,
    validate_chart,
)


class TestProblems:
    def test_clean_chart_has_no_problems(self):
        b = ChartBuilder("ok")
        b.event("E")
        with b.or_state("Top", default="A"):
            b.basic("A").transition("B", label="E")
            b.basic("B")
        assert chart_problems(b.build()) == []

    def test_undeclared_signal_flagged(self):
        chart = Chart("c")
        chart.add_state("A")
        chart.add_state("B")
        from repro.statechart import parse_expr
        chart.add_transition("A", "B", trigger=parse_expr("GHOST"))
        problems = chart_problems(chart)
        assert any("GHOST" in p for p in problems)

    def test_and_state_needs_two_regions(self):
        chart = Chart("c")
        chart.add_state("W", StateKind.AND)
        chart.add_state("R1", parent="W")
        problems = chart_problems(chart)
        assert any("region" in p for p in problems)

    def test_basic_state_with_children_flagged(self):
        chart = Chart("c")
        chart.add_state("A", StateKind.BASIC)
        chart.add_state("A1", parent="A")
        assert any("must not contain" in p for p in chart_problems(chart))

    def test_bad_default_flagged(self):
        chart = Chart("c")
        chart.add_state("A", StateKind.OR, default="Zed")
        chart.add_state("A1", parent="A")
        assert any("default" in p for p in chart_problems(chart))

    def test_ref_without_target_flagged(self):
        chart = Chart("c")
        chart.add_state("R", StateKind.REF)
        assert any("refers to no chart" in p for p in chart_problems(chart))

    def test_transition_to_root_flagged(self):
        chart = Chart("c")
        chart.add_state("A")
        chart.add_transition("A", chart.root)
        assert any("root" in p for p in chart_problems(chart))

    def test_nonpositive_period_flagged(self):
        chart = Chart("c")
        chart.add_state("A")
        chart.add_event("E", period=0)
        assert any("period" in p for p in chart_problems(chart))

    def test_undeclared_event_port_flagged(self):
        chart = Chart("c")
        chart.add_state("A")
        chart.add_event("E", port="P_MISSING")
        assert any("P_MISSING" in p for p in chart_problems(chart))

    def test_validate_raises_with_all_problems(self):
        chart = Chart("c")
        chart.add_state("W", StateKind.AND)
        chart.add_state("R1", parent="W")
        chart.add_event("E", period=-1)
        with pytest.raises(ChartError) as excinfo:
            validate_chart(chart)
        message = str(excinfo.value)
        assert "region" in message and "period" in message


class TestReferenceResolution:
    def make_motor_chart(self):
        b = ChartBuilder("Motor")
        b.event("PULSE").event("STEPS")
        with b.or_state("Cycle", default="Start"):
            b.basic("Start").transition("Run", label="/StartMotor(M)")
            b.basic("Run").transition("End", label="STEPS/SetTrue(F)")
            b.basic("End")
        return b.build(validate=False)

    def make_top_chart(self):
        text = """
        event GO;
        orstate Top { contains Idle, MoveX; default Idle; }
        basicstate Idle { transition { target MoveX; label "GO"; } }
        refstate MoveX { refers Motor; }
        """
        return parse_chart(text, name="Top")

    def test_resolution_inlines_subchart(self):
        top = self.make_top_chart()
        resolve_references(top, {"Motor": self.make_motor_chart()})
        assert top.states["MoveX"].kind is StateKind.OR
        assert "Cycle" in top.states
        assert top.states["Cycle"].parent == "MoveX"
        assert {"Start", "Run", "End"} <= set(top.states)

    def test_resolution_copies_transitions_and_events(self):
        top = self.make_top_chart()
        resolve_references(top, {"Motor": self.make_motor_chart()})
        sources = {t.source for t in top.transitions}
        assert {"Start", "Run"} <= sources
        assert "PULSE" in top.events and "STEPS" in top.events

    def test_resolved_chart_is_executable(self):
        top = self.make_top_chart()
        resolve_references(top, {"Motor": self.make_motor_chart()})
        validate_chart(top)
        interp = Interpreter(top)
        interp.step({"GO"})
        assert "MoveX" in interp.configuration
        assert "Start" in interp.configuration

    def test_name_clash_disambiguated(self):
        top = self.make_top_chart()
        top.add_state("Start")  # clashes with the subchart's "Start"
        resolve_references(top, {"Motor": self.make_motor_chart()})
        assert "MoveX.Start" in top.states

    def test_missing_library_entry_rejected(self):
        top = self.make_top_chart()
        with pytest.raises(ChartError):
            resolve_references(top, {})
