"""Tests for transition-label parsing (every label style of Figs. 5/6)."""

import pytest

from repro.statechart.expr import Name, Not, Or
from repro.statechart.labels import (
    LabelError,
    action_arguments,
    action_routine_name,
    parse_label,
)


class TestPaperLabels:
    """Each label form that actually appears in the paper's figures."""

    def test_trigger_and_action(self):
        label = parse_label("INIT or ALLRESET/InitializeAll()")
        assert label.trigger == Or(Name("INIT"), Name("ALLRESET"))
        assert label.guard is None
        assert label.action == "InitializeAll()"

    def test_guard_and_action(self):
        label = parse_label("[DATA_VALID]/GetByte()")
        assert label.trigger is None
        assert label.guard == Name("DATA_VALID")
        assert label.action == "GetByte()"

    def test_event_with_argument_action(self):
        label = parse_label("X_PULSE/DeltaT(MX)")
        assert label.trigger == Name("X_PULSE")
        assert label.action == "DeltaT(MX)"

    def test_guard_only(self):
        label = parse_label("[MOVEMENT]")
        assert label.trigger is None
        assert label.guard == Name("MOVEMENT")
        assert label.action is None

    def test_trigger_only(self):
        label = parse_label("END_MOVE")
        assert label.trigger == Name("END_MOVE")
        assert label.guard is None and label.action is None

    def test_action_only_completion(self):
        label = parse_label("/StartMotor(MX, XParams)")
        assert label.trigger is None and label.guard is None
        assert label.action == "StartMotor(MX, XParams)"

    def test_negated_trigger_with_action(self):
        label = parse_label(
            "not (X_PULSE or Y_PULSE)/PhiParameters(PhiParams, NewPhi, OldPhi)")
        assert label.trigger == Not(Or(Name("X_PULSE"), Name("Y_PULSE")))
        assert label.action == "PhiParameters(PhiParams, NewPhi, OldPhi)"

    def test_conjunction_guard(self):
        label = parse_label("[XFINISH and YFINISH and PHIFINISH]")
        assert label.guard is not None
        assert label.guard.names() == {"XFINISH", "YFINISH", "PHIFINISH"}

    def test_error_stop(self):
        label = parse_label("ERROR/Stop()")
        assert label.trigger == Name("ERROR")
        assert label.action == "Stop()"


class TestEdgeCases:
    def test_empty_label(self):
        label = parse_label("")
        assert label.trigger is None and label.guard is None and label.action is None

    def test_whitespace_only(self):
        label = parse_label("   ")
        assert label.trigger is None

    def test_trigger_and_guard_and_action(self):
        label = parse_label("E [C1 and C2] /Handle(x)")
        assert label.trigger == Name("E")
        assert label.guard is not None
        assert label.action == "Handle(x)"

    def test_str_roundtrip(self):
        for text in ["E [C]/F(a, b)", "[MOVEMENT]", "A or B/Go()", "/Done()"]:
            label = parse_label(text)
            again = parse_label(str(label))
            assert again == label

    def test_unbalanced_brackets_rejected(self):
        with pytest.raises(LabelError):
            parse_label("E [C/F()")  # '[' never closed before action split

    def test_slash_inside_parens_not_a_split(self):
        # A '/' inside parentheses must not be taken as the action separator.
        label = parse_label("/Scale(a/b)")
        assert label.action == "Scale(a/b)"


class TestActionHelpers:
    def test_routine_name(self):
        assert action_routine_name("DeltaT(MX)") == "DeltaT"
        assert action_routine_name("Stop()") == "Stop"
        assert action_routine_name("Bare") == "Bare"

    def test_arguments(self):
        assert action_arguments("StartMotor(MX, XParams)") == ("MX", "XParams")
        assert action_arguments("Stop()") == ()
        assert action_arguments("Bare") == ()

    def test_nested_call_arguments(self):
        assert action_arguments("F(g(a, b), c)") == ("g(a, b)", "c")

    def test_bad_call_rejected(self):
        with pytest.raises(LabelError):
            action_arguments("F(a")
