"""Unit tests for :mod:`repro.obs.flowprof` — the per-rung improvement
profile.

``tests/test_obs.py`` only touches the FlowProfile export surface in
passing; these tests pin down the accounting itself with an injected fake
clock: wall attribution per rung, delta computation against the previous
rung (including the first-rung zero conventions and events that appear
mid-ladder), the JSON shape, and the table rows.
"""

from repro.obs.flowprof import FlowProfile, RungProfile


class FakeClock:
    """Deterministic ``perf_counter`` stand-in: returns scripted values."""

    def __init__(self, values):
        self.values = list(values)

    def __call__(self):
        return self.values.pop(0)


def make_profile(clock_values):
    profile = FlowProfile()
    profile._clock = FakeClock(clock_values)
    return profile


class TestRungAccounting:
    def test_wall_seconds_from_begin_to_record(self):
        profile = make_profile([10.0, 10.25])
        started = profile.begin()
        rung = profile.record("baseline", "first build", started,
                              area_clbs=100, n_violations=2,
                              critical_paths={"GO": 7})
        assert started == 10.0
        assert rung.wall_seconds == 0.25

    def test_first_rung_deltas_are_zero(self):
        profile = make_profile([0.0, 1.0])
        rung = profile.record("baseline", "", profile.begin(),
                              area_clbs=100, n_violations=1,
                              critical_paths={"GO": 7, "BACK": 5})
        assert rung.area_delta == 0
        assert rung.critical_path_deltas == {"GO": 0, "BACK": 0}

    def test_deltas_against_previous_rung(self):
        profile = make_profile([0.0, 1.0, 1.0, 3.5])
        profile.record("baseline", "", profile.begin(),
                       area_clbs=100, n_violations=2,
                       critical_paths={"GO": 7, "BACK": 5})
        rung = profile.record("split", "split the chart", profile.begin(),
                              area_clbs=88, n_violations=0,
                              critical_paths={"GO": 4, "BACK": 6})
        assert rung.area_delta == -12
        assert rung.critical_path_deltas == {"GO": -3, "BACK": +1}
        assert rung.wall_seconds == 2.5

    def test_event_new_at_this_rung_gets_zero_delta(self):
        # an event with no previous-path entry compares against itself
        profile = make_profile([0.0, 1.0, 1.0, 2.0])
        profile.record("baseline", "", profile.begin(),
                       area_clbs=100, n_violations=0,
                       critical_paths={"GO": 7})
        rung = profile.record("retarget", "", profile.begin(),
                              area_clbs=100, n_violations=0,
                              critical_paths={"GO": 7, "NEW": 9})
        assert rung.critical_path_deltas == {"GO": 0, "NEW": 0}

    def test_record_copies_the_paths_mapping(self):
        profile = make_profile([0.0, 1.0])
        paths = {"GO": 7}
        rung = profile.record("baseline", "", profile.begin(),
                              area_clbs=100, n_violations=0,
                              critical_paths=paths)
        paths["GO"] = 99
        assert rung.critical_paths == {"GO": 7}

    def test_record_returns_and_appends_the_same_profile(self):
        profile = make_profile([0.0, 1.0])
        rung = profile.record("baseline", "", profile.begin(),
                              area_clbs=1, n_violations=0,
                              critical_paths={})
        assert isinstance(rung, RungProfile)
        assert profile.rungs == [rung]


class TestReadback:
    def ladder(self):
        profile = make_profile([0.0, 0.5, 0.5, 0.75])
        profile.record("baseline", "first build", profile.begin(),
                       area_clbs=100, n_violations=2,
                       critical_paths={"GO": 7})
        profile.record("split", "split the chart", profile.begin(),
                       area_clbs=90, n_violations=0,
                       critical_paths={"GO": 5})
        return profile

    def test_total_wall_seconds_sums_rungs(self):
        assert self.ladder().total_wall_seconds == 0.75

    def test_to_json_shape_and_rounding(self):
        profile = make_profile([0.0, 0.1234567891])
        profile.record("baseline", "first build", profile.begin(),
                       area_clbs=100, n_violations=2,
                       critical_paths={"GO": 7})
        document = profile.to_json()
        assert document["total_wall_seconds"] == 0.123457  # 6 dp
        (rung,) = document["rungs"]
        assert rung == {
            "rung": "baseline",
            "description": "first build",
            "wall_seconds": 0.123457,
            "area_clbs": 100,
            "n_violations": 2,
            "critical_paths": {"GO": 7},
            "area_delta": 0,
            "critical_path_deltas": {"GO": 0},
        }

    def test_rows_blank_delta_on_first_rung_only(self):
        rows = self.ladder().rows()
        assert rows == [
            ("baseline", 100, "", 2, "500.0"),
            ("split", 90, "-10", 0, "250.0"),
        ]

    def test_empty_profile(self):
        profile = FlowProfile()
        assert profile.total_wall_seconds == 0
        assert profile.to_json() == {"total_wall_seconds": 0, "rungs": []}
        assert profile.rows() == []
