"""Tests for the transition-graph view and structural reachability."""

from repro.statechart import (
    ChartBuilder,
    TransitionGraph,
    reachable_states,
)


def fig4_like_chart():
    """Shape of Fig. 4: Assembly = OR(Off, Operating=AND(...), Idle, Errstate)."""
    b = ChartBuilder("fig4")
    b.event("POWER").event("DATA_VALID", period=1500).event("ERROR")
    b.event("INIT")
    with b.or_state("Assembly", default="Off"):
        b.basic("Off").transition("Operating", label="POWER")
        with b.and_state("Operating") as operating:
            with b.or_state("DataPreparation", default="OpReady"):
                b.basic("OpReady").transition("Empty", label="[DATA_VALID]/GetByte()")
                b.basic("Empty").transition("Bounds", label="/Check()")
                b.basic("Bounds").transition("NoData", label="/Consume()")
                b.basic("NoData").transition("OpReady", label="[DATA_VALID]/GetByte()")
            with b.or_state("Reach", default="RIdle"):
                b.basic("RIdle").transition("Run", label="[MOVEMENT]")
                b.basic("Run").transition("RIdle", label="END_MOVE")
        operating.transition("Errstate", label="ERROR/Stop()")
        b.basic("Idle").transition("Operating", label="INIT")
        b.basic("Errstate").transition("Idle", label="INIT")
    b.event("END_MOVE")
    b.condition("MOVEMENT")
    return b.build()


class TestSuccessors:
    def test_direct_successors(self):
        chart = fig4_like_chart()
        graph = TransitionGraph(chart)
        targets = [t for t, _ in graph.successors("OpReady")]
        assert targets == ["Empty"]

    def test_effective_successors_include_inherited(self):
        chart = fig4_like_chart()
        graph = TransitionGraph(chart)
        # From OpReady (inside Operating), the ERROR transition on Operating
        # is inherited.
        targets = {t for t, _ in graph.effective_successors("OpReady")}
        assert targets == {"Empty", "Errstate"}

    def test_effective_successors_dedupe(self):
        chart = fig4_like_chart()
        graph = TransitionGraph(chart)
        pairs = list(graph.effective_successors("OpReady"))
        indices = [t.index for _, t in pairs]
        assert len(indices) == len(set(indices))


class TestConsumingStates:
    def test_data_valid_consumers(self):
        chart = fig4_like_chart()
        graph = TransitionGraph(chart)
        assert set(graph.consuming_states("DATA_VALID")) == {"OpReady", "NoData"}

    def test_error_consumed_by_composite(self):
        chart = fig4_like_chart()
        graph = TransitionGraph(chart)
        assert graph.consuming_states("ERROR") == ["Operating"]

    def test_unknown_signal_has_no_consumers(self):
        chart = fig4_like_chart()
        graph = TransitionGraph(chart)
        assert graph.consuming_states("NOT_A_SIGNAL") == []


class TestParallelContexts:
    def test_inside_and_region(self):
        chart = fig4_like_chart()
        graph = TransitionGraph(chart)
        contexts = graph.parallel_contexts("OpReady")
        assert len(contexts) == 1
        ctx = contexts[0]
        assert ctx.and_state == "Operating"
        assert ctx.own_region == "DataPreparation"
        assert ctx.sibling_regions == ("Reach",)

    def test_outside_and_no_context(self):
        chart = fig4_like_chart()
        graph = TransitionGraph(chart)
        assert graph.parallel_contexts("Idle") == []

    def test_nested_and_contexts_innermost_first(self):
        b = ChartBuilder("nested_and")
        b.event("E")
        with b.or_state("Top", default="W"):
            with b.and_state("W"):
                with b.or_state("R1", default="Inner"):
                    with b.and_state("Inner"):
                        with b.or_state("IR1", default="L1"):
                            b.basic("L1").transition("L1", label="E")
                        with b.or_state("IR2", default="L2"):
                            b.basic("L2")
                with b.or_state("R2", default="X"):
                    b.basic("X")
        chart = b.build()
        contexts = TransitionGraph(chart).parallel_contexts("L1")
        assert [c.and_state for c in contexts] == ["Inner", "W"]
        assert contexts[0].sibling_regions == ("IR2",)
        assert contexts[1].sibling_regions == ("R2",)


class TestReachability:
    def test_all_states_reachable_in_fig4(self):
        chart = fig4_like_chart()
        reached = reachable_states(chart)
        assert set(chart.states) == reached

    def test_dead_state_detected(self):
        b = ChartBuilder("dead")
        b.event("E")
        with b.or_state("Top", default="A"):
            b.basic("A").transition("B", label="E")
            b.basic("B")
            b.basic("Orphan")
        chart = b.build()
        reached = reachable_states(chart)
        assert "Orphan" not in reached
        assert "B" in reached


class TestDot:
    def test_dot_contains_clusters_and_edges(self):
        chart = fig4_like_chart()
        dot = TransitionGraph(chart).to_dot()
        assert "digraph" in dot
        assert 'subgraph "cluster_Operating"' in dot
        assert '"Off" -> "Operating"' in dot

    def test_dot_highlight(self):
        chart = fig4_like_chart()
        dot = TransitionGraph(chart).to_dot(highlight={0})
        assert "color=red" in dot
