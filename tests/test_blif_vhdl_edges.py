"""Edge cases for the BLIF parser and the VHDL emitters."""

import pytest

from repro.hw import emit_decoder_rom_vhdl, emit_sla_vhdl
from repro.isa import DecoderRom, MINIMAL_TEP
from repro.sla.blif import BlifError, BlifModel, parse_blif


class TestBlifParserEdges:
    def test_continuation_lines(self):
        text = (".model m\n"
                ".inputs a \\\n"
                "b\n"
                ".outputs o\n"
                ".names a b o\n"
                "11 1\n"
                ".end\n")
        model = parse_blif(text)
        assert model.inputs == ["a", "b"]
        assert model.evaluate({"a": True, "b": True})["o"] is True

    def test_comments_stripped(self):
        text = (".model m # the model\n"
                ".inputs a\n"
                ".outputs o\n"
                ".names a o  # cover\n"
                "1 1\n"
                ".end\n")
        model = parse_blif(text)
        assert model.evaluate({"a": True})["o"] is True

    def test_dont_care_columns(self):
        text = (".model m\n.inputs a b c\n.outputs o\n"
                ".names a b c o\n1-0 1\n.end\n")
        model = parse_blif(text)
        assert model.evaluate({"a": True, "b": False, "c": False})["o"]
        assert model.evaluate({"a": True, "b": True, "c": False})["o"]
        assert not model.evaluate({"a": True, "b": True, "c": True})["o"]

    def test_constant_zero_output(self):
        text = ".model m\n.inputs a\n.outputs o\n.names o\n.end\n"
        model = parse_blif(text)
        assert model.evaluate({"a": True})["o"] is False

    def test_cover_width_mismatch_rejected(self):
        text = ".model m\n.inputs a b\n.outputs o\n.names a b o\n111 1\n.end\n"
        with pytest.raises(BlifError, match="width"):
            parse_blif(text)

    def test_row_outside_names_rejected(self):
        with pytest.raises(BlifError, match="outside"):
            parse_blif(".model m\n.inputs a\n.outputs o\n1 1\n.end\n")

    def test_unsupported_construct_rejected(self):
        with pytest.raises(BlifError, match="unsupported"):
            parse_blif(".model m\n.latch a b\n.end\n")

    def test_names_without_signals_rejected(self):
        with pytest.raises(BlifError, match="without"):
            parse_blif(".model m\n.names\n.end\n")


class TestVhdlEdges:
    def test_empty_decoder_rom_emits_placeholder(self):
        rom = DecoderRom(MINIMAL_TEP)
        text = emit_decoder_rom_vhdl(rom)
        assert 'x"0000"' in text

    def test_sla_output_without_terms_is_constant_zero(self):
        text = emit_sla_vhdl("sla", ["a"], ["t0"], {"t0": []})
        assert "t0 <= '0';" in text

    def test_term_without_literals_renders_true(self):
        text = emit_sla_vhdl("sla", ["a"], ["t0"], {"t0": [([], [])]})
        assert "when true" in text

    def test_vhdl_entity_ports_separated(self):
        text = emit_sla_vhdl("sla", ["a", "b"], ["t0"], {"t0": []})
        assert "a : in std_logic" in text
        assert "t0 : out std_logic" in text
