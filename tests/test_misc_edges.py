"""Assorted edge cases: one-hot machine, DFS depth guard, ports, encodings."""

import pytest

from repro.action.check import Externals
from repro.flow.timing import TimingValidator
from repro.isa import CodeGenerator, MD16_TEP, NameMaps, prepare_program
from repro.pscp import PscpMachine
from repro.sla import synthesize
from repro.statechart import ChartBuilder, Interpreter


class TestOneHotMachine:
    def test_machine_with_onehot_sla_behaves_identically(self):
        b = ChartBuilder("onehot")
        b.event("GO").event("BACK")
        with b.or_state("Top", default="A"):
            b.basic("A").transition("B", label="GO/Mark()")
            b.basic("B").transition("A", label="BACK/Mark()")
        chart = b.build()
        source = "int:16 marks; void Mark() { marks = marks + 1; }"
        externals = Externals.from_chart(chart)
        checked = prepare_program(source, MD16_TEP, externals)
        compiled = CodeGenerator(checked, MD16_TEP,
                                 maps=NameMaps.from_chart(chart)).compile()
        params = {f.name: [] for f in checked.program.functions}

        binary = PscpMachine(chart, compiled,
                             pla=synthesize(chart, onehot=False),
                             param_names=params)
        onehot = PscpMachine(chart, compiled,
                             pla=synthesize(chart, onehot=True),
                             param_names=params)
        for events in [{"GO"}, set(), {"BACK"}, {"GO"}, {"GO", "BACK"}]:
            binary.step(events)
            onehot.step(events)
            assert binary.cr.configuration == onehot.cr.configuration

    def test_onehot_cr_wider_than_binary(self):
        b = ChartBuilder("width")
        b.event("E")
        with b.or_state("Top", default="S0"):
            for index in range(6):
                b.basic(f"S{index}")
        chart = b.build()
        assert synthesize(chart, onehot=True).layout.width > \
            synthesize(chart, onehot=False).layout.width


class TestDfsDepthGuard:
    def test_long_chain_respects_max_depth(self):
        """A consumer ring longer than max_depth is cut, not infinite."""
        b = ChartBuilder("longchain")
        b.event("T", period=10_000)
        n = 40
        with b.or_state("Top", default="S0"):
            for index in range(n):
                b.basic(f"S{index}")
        chart = b.build()
        from repro.statechart.expr import Name
        for index in range(n):
            chart.add_transition(f"S{index}", f"S{(index + 1) % n}",
                                 trigger=Name("T"))
        validator = TimingValidator(chart, lambda t: 1, max_depth=8)
        cycles = validator.event_cycles("T")
        assert cycles  # adjacent consumers found
        assert all(len(c.states) <= 9 for c in cycles)


class TestBuilderEdges:
    def test_duplicate_event_rejected(self):
        b = ChartBuilder("dup")
        b.event("E")
        with pytest.raises(Exception):
            b.event("E")

    def test_or_state_auto_default(self):
        b = ChartBuilder("auto")
        with b.or_state("Top"):
            b.basic("First")
            b.basic("Second")
        chart = b.build()
        assert chart.states["Top"].default == "First"

    def test_empty_or_state_allowed_as_leaf_composite(self):
        b = ChartBuilder("emptyor")
        with b.or_state("Top"):
            with b.or_state("Inner"):
                b.basic("Leaf")
        chart = b.build()
        assert chart.initial_configuration() == frozenset(
            {"Root", "Top", "Inner", "Leaf"})

    def test_interpreter_on_deeply_nested(self):
        b = ChartBuilder("deep")
        b.event("E")
        with b.or_state("L0"):
            with b.or_state("L1"):
                with b.or_state("L2"):
                    b.basic("Leaf").transition("Leaf", label="E")
        interp = Interpreter(b.build())
        result = interp.step({"E"})
        assert len(result.fired) == 1
