"""Every shipped example must run cleanly and print its headline results."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTATIONS = {
    "quickstart.py": ["Table 2: Timing Constraints", "executing the compiled",
                      "temperature = 6"],
    "smd_pickup_head.py": ["Table 4: Area and Timing Results",
                           "final architecture violations: none",
                           "moves completed: 2/2",
                           "XC4025 floorplan"],
    "pedestrian_crossing.py": ["True", "simulated controller time"],
    "design_space_exploration.py": ["4 parallel servers",
                                    "SLA scaling with decoder width"],
    "hardware_artifacts.py": [".model sla", "entity sla",
                              "assembler listing"],
    "elevator_bank.py": ["improvement trajectory", "solved: True",
                         "cab position: 3"],
}


@pytest.mark.parametrize("script", sorted(EXPECTATIONS))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    for expected in EXPECTATIONS[script]:
        assert expected in result.stdout, (script, expected)


def test_every_example_file_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTATIONS)
