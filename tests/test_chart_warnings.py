"""Tests for the non-fatal chart design-smell warnings."""

from repro.statechart import ChartBuilder, chart_warnings
from repro.workloads import smd_chart


class TestChartWarnings:
    def test_clean_chart_quiet(self):
        b = ChartBuilder("clean")
        b.event("E")
        with b.or_state("T", default="A"):
            b.basic("A").transition("B", label="E")
            b.basic("B").transition("A", label="E")
        assert chart_warnings(b.build()) == []

    def test_unreachable_state_flagged(self):
        b = ChartBuilder("dead")
        b.event("E")
        with b.or_state("T", default="A"):
            b.basic("A").transition("A", label="E")
            b.basic("Orphan")
        warnings = chart_warnings(b.build())
        assert any("Orphan" in w and "unreachable" in w for w in warnings)

    def test_unused_event_flagged(self):
        b = ChartBuilder("unused")
        b.event("E").event("NEVER")
        with b.or_state("T", default="A"):
            b.basic("A").transition("A", label="E")
        warnings = chart_warnings(b.build())
        assert any("NEVER" in w for w in warnings)

    def test_unused_condition_flagged(self):
        b = ChartBuilder("unusedc")
        b.event("E").condition("LONELY")
        with b.or_state("T", default="A"):
            b.basic("A").transition("A", label="E")
        warnings = chart_warnings(b.build())
        assert any("LONELY" in w for w in warnings)

    def test_negated_use_counts_as_use(self):
        b = ChartBuilder("neg")
        b.event("E").event("P")
        with b.or_state("T", default="A"):
            b.basic("A").transition("A", label="E and not P")
        warnings = chart_warnings(b.build())
        assert not any("'P'" in w for w in warnings)

    def test_smd_chart_warns_only_about_grab_release(self):
        """The omitted @GRAB_RELEASE subchart is the single known smell
        (EXPERIMENTS.md deviation #2)."""
        warnings = chart_warnings(smd_chart())
        assert warnings == ["event 'GRAB_RELEASE' triggers no transition"]
