"""Tests for the hardware models: devices, library, area, floorplan, VHDL."""

import pytest

from repro.hw import (
    AppStats,
    FloorplanError,
    SMD_APP_STATS,
    XC4005,
    XC4025,
    clock_period_ns,
    custom_instruction_is_safe,
    emit_decoder_rom_vhdl,
    emit_pscp_skeleton,
    emit_sla_vhdl,
    estimate_area,
    floorplan,
    max_clock_mhz,
    smallest_fitting,
    tep_area_clbs,
    tep_components,
)
from repro.isa import CustomInstruction, DecoderRom, Imm, Instruction, MD16_TEP, MINIMAL_TEP, Op


class TestDevice:
    def test_xc4025_is_32x32(self):
        assert XC4025.clbs == 1024
        assert XC4025.rows == 32 and XC4025.cols == 32

    def test_smallest_fitting(self):
        assert smallest_fitting(100).name == "XC4003"
        assert smallest_fitting(500).name == "XC4013"  # 24x24 = 576
        assert smallest_fitting(1024).name == "XC4025"

    def test_too_big_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            smallest_fitting(2000)

    def test_utilization(self):
        assert XC4025.utilization(512) == 0.5


class TestTepArea:
    def test_minimal_smaller_than_md16(self):
        assert tep_area_clbs(MINIMAL_TEP) < tep_area_clbs(MD16_TEP)

    def test_every_option_costs_area(self):
        base = tep_area_clbs(MD16_TEP)
        for knob in (dict(has_comparator=True), dict(has_negator=True),
                     dict(has_barrel_shifter=True),
                     dict(register_file_size=4),
                     dict(internal_ram_words=256)):
            assert tep_area_clbs(MD16_TEP.with_(**knob)) > base, knob

    def test_custom_instruction_costs_area(self):
        custom = CustomInstruction("c", "(v0+v1)", 2, 2)
        assert tep_area_clbs(MD16_TEP.with_(custom_instructions=(custom,))) \
            > tep_area_clbs(MD16_TEP)

    def test_component_breakdown_sums(self):
        parts = tep_components(MD16_TEP)
        assert sum(p.clbs for p in parts) == tep_area_clbs(MD16_TEP)
        names = {p.name for p in parts}
        assert {"calculation-unit", "microcontrol", "internal-ram",
                "muldiv-unit"} <= names


class TestTable4AreaCalibration:
    """The three Table 4 area rows, within 5 CLBs of the paper."""

    @pytest.mark.parametrize("arch,paper", [
        (MINIMAL_TEP, 224),
        (MD16_TEP, 421),
        (MD16_TEP.with_(n_teps=2), 773),
    ], ids=["minimal", "md16", "2xmd16"])
    def test_calibrated(self, arch, paper):
        measured = estimate_area(arch).total_clbs
        assert abs(measured - paper) <= 5, (measured, paper)

    def test_final_architecture_fits_xc4025(self):
        assert estimate_area(MD16_TEP.with_(n_teps=2)).fits(XC4025)

    def test_shared_area_independent_of_tep_count(self):
        one = estimate_area(MD16_TEP)
        two = estimate_area(MD16_TEP.with_(n_teps=2))
        assert one.shared_clbs == two.shared_clbs
        assert two.total_clbs - one.total_clbs == one.tep_clbs

    def test_mutual_exclusions_add_decode_logic(self):
        arch = MD16_TEP.with_(n_teps=2, mutual_exclusions=frozenset(
            {frozenset({"A", "B"}), frozenset({"C", "D"})}))
        assert estimate_area(arch).shared_clbs > \
            estimate_area(MD16_TEP.with_(n_teps=2)).shared_clbs

    def test_app_stats_validation(self):
        with pytest.raises(ValueError):
            AppStats(product_terms=-1, cr_bits=0, transitions=0, ports=0)

    def test_report_readable(self):
        text = estimate_area(MD16_TEP).report()
        assert "sla" in text and "total" in text


class TestTiming:
    def test_wider_bus_slower_clock(self):
        assert clock_period_ns(MD16_TEP) > clock_period_ns(MINIMAL_TEP)

    def test_15mhz_reference_clock_achievable(self):
        """The SMD example's 15 MHz reference clock must be within reach of
        the final architecture."""
        final = MD16_TEP.with_(n_teps=2, microcode_optimized=True)
        assert max_clock_mhz(final) >= 15.0

    def test_shallow_custom_instruction_safe(self):
        shallow = CustomInstruction("c", "(v0+v1)", 2, 1)
        assert custom_instruction_is_safe(shallow, MD16_TEP)

    def test_deep_custom_instruction_unsafe(self):
        deep = CustomInstruction("c", "((((v0+v1)+v0)+v1)+v0)", 2, 4)
        assert not custom_instruction_is_safe(deep, MD16_TEP)


class TestFloorplan:
    def test_smd_final_architecture_floorplans(self):
        estimate = estimate_area(MD16_TEP.with_(n_teps=2))
        plan = floorplan(estimate)
        assert plan.in_bounds()
        assert plan.overlaps() == []
        assert plan.used_clbs >= estimate.total_clbs

    def test_utilization_close_to_area_estimate(self):
        estimate = estimate_area(MD16_TEP.with_(n_teps=2))
        plan = floorplan(estimate)
        # rectangles may round up a little, but not balloon
        assert plan.used_clbs <= estimate.total_clbs * 1.25

    def test_does_not_fit_small_device(self):
        estimate = estimate_area(MD16_TEP.with_(n_teps=2))
        with pytest.raises(FloorplanError):
            floorplan(estimate, device=XC4005)

    def test_ascii_map_renders(self):
        estimate = estimate_area(MINIMAL_TEP)
        plan = floorplan(estimate)
        text = plan.ascii_map()
        assert "XC4025 floorplan" in text
        rows = [line for line in text.splitlines()
                if line and set(line) <= set(
                    ".ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789")]
        assert len(rows) == 32
        assert all(len(row) == 32 for row in rows)

    def test_every_block_placed_once(self):
        estimate = estimate_area(MD16_TEP)
        plan = floorplan(estimate)
        assert len(plan.placements) == len(estimate.blocks())
        names = [p.name for p in plan.placements]
        assert len(names) == len(set(names))


class TestVhdl:
    def test_sla_vhdl_contains_terms(self):
        text = emit_sla_vhdl(
            "sla", ["e0", "c0", "s0"], ["t0", "t1"],
            {"t0": [(["s0", "e0"], ["c0"])], "t1": []})
        assert "entity sla is" in text
        assert "s0 = '1'" in text and "c0 = '0'" in text
        assert "t1 <= '0';" in text

    def test_decoder_rom_vhdl(self):
        rom = DecoderRom(MINIMAL_TEP)
        rom.add_instruction(Instruction(Op.LDA, Imm(1)))
        text = emit_decoder_rom_vhdl(rom)
        assert "rom_t" in text and 'x"' in text

    def test_pscp_skeleton_instantiates_teps(self):
        text = emit_pscp_skeleton(MD16_TEP.with_(n_teps=2))
        assert "u_tep0" in text and "u_tep1" in text
        assert "WIDTH => 16" in text
