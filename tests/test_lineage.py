"""Causal event lineage: machine-level provenance, the queryable DAG,
deadline critical paths, and cross-process farm stitching.

The load-bearing properties:

* **zero perturbation** — a machine with a lineage tracker attached
  produces the byte-identical step sequence of an uninstrumented one
  (the step-stream analogue of the <5% wall-clock budget the overhead
  guard enforces);
* **complete chains** — an injected event's lineage reaches every latch,
  transition firing, raised event, propagated latch and port write it
  caused, with typed edges;
* **abort semantics** — an aborted dispatch's raises are quarantined
  (mirroring the machine's transactional abort) and its re-execution is
  linked with a ``retry`` edge;
* **determinism** — same stimulus, byte-identical DAG dumps and
  ``render_chain`` output;
* **conservation** — every accepted farm item's lineage terminates in
  exactly one of processed/shed/rejected.
"""

import json
from types import SimpleNamespace

import pytest

from repro.flow import build_system, select_initial_architecture
from repro.obs import (
    CausalDag,
    FarmLineage,
    LineageTracker,
    dag_flow_events,
    load_dag,
    load_forensics_bundle,
    render_chain,
    render_forensics,
)
from repro.pscp.trace import DeadlineMonitor
from repro.workloads.generators import parallel_servers, pipeline_chart


def step_fingerprint(step):
    return (tuple(t.index for t in step.fired), step.configuration,
            step.cycle_length, step.start_time, step.end_time,
            step.events_sampled, step.events_raised,
            step.faults, step.recoveries)


@pytest.fixture(scope="module")
def servers_system():
    chart, routines = parallel_servers(2)
    arch = select_initial_architecture(chart, routines)
    if arch.n_teps < 2:
        arch = arch.with_(n_teps=2)
    return build_system(chart, routines, arch)


@pytest.fixture(scope="module")
def pipeline_system():
    chart, routines = pipeline_chart(3)
    arch = select_initial_architecture(chart, routines)
    return build_system(chart, routines, arch)


def drive(system, stimulus, lineage=None):
    machine = system.make_machine()
    if lineage is not None:
        machine.attach_lineage(lineage)
    steps = []
    for events in stimulus:
        if lineage is not None:
            for name in events:
                lineage.note_injection(name)
        steps.append(machine.step(events))
    return machine, steps


# ---------------------------------------------------------------------------
# machine-level lineage
# ---------------------------------------------------------------------------

class TestMachineLineage:
    def test_lineage_does_not_perturb_the_run(self, servers_system):
        stimulus = [["START"], ["REQ0"], ["REQ1"], ["REQ0"], ["REQ1"]] * 3
        _, plain = drive(servers_system, stimulus)
        _, observed = drive(servers_system, stimulus, LineageTracker())
        assert ([step_fingerprint(s) for s in plain]
                == [step_fingerprint(s) for s in observed])

    def test_injection_to_consumption_chain(self, servers_system):
        lineage = LineageTracker(origin="m0")
        machine = servers_system.make_machine()
        machine.attach_lineage(lineage)
        machine.step(["START"])
        event_id = lineage.note_injection("REQ0")
        machine.step(["REQ0"])
        dag = lineage.dag()
        assert dag.nodes[event_id]["kind"] == "inject"
        descendants = dag.descendants(event_id)
        latch = [n for n in descendants if n.startswith("latch:")]
        fires = [n for n in descendants if n.startswith("fire:")]
        assert latch and fires
        assert dag.nodes[latch[0]]["outcome"] == "consumed"
        kinds = {kind for _s, _d, kind in dag.edges}
        assert {"inject", "enable"} <= kinds

    def test_raise_propagates_to_next_cycle(self, pipeline_system):
        lineage = LineageTracker()
        machine = pipeline_system.make_machine()
        machine.attach_lineage(lineage)
        event_id = lineage.note_injection("FEED")
        machine.step(["FEED"])
        for _ in range(4):
            machine.step([])
        dag = lineage.dag()
        descendants = dag.descendants(event_id)
        raises = [n for n in descendants if n.startswith("raise:")]
        assert raises, "FEED never raised the next stage's event"
        # the raised event was latched the following cycle via a
        # propagate edge, and its latch enabled another firing
        propagate = [(s, d) for s, d, k in dag.edges if k == "propagate"]
        assert propagate
        assert all(s.startswith("raise:") and d.startswith("latch:")
                   for s, d in propagate)

    def test_undeclared_events_still_get_latch_nodes(self, servers_system):
        lineage = LineageTracker()
        machine = servers_system.make_machine()
        machine.attach_lineage(lineage)
        machine.step(["START"])  # no note_injection
        dag = lineage.dag()
        latches = [n for n in dag.nodes if n.startswith("latch:")]
        assert latches
        assert dag.parents(latches[0]) == []  # a root, just unnamed

    def test_same_stimulus_dags_are_byte_identical(self, servers_system):
        stimulus = [["START"], ["REQ0"], ["REQ1"]] * 4

        def once():
            lineage = LineageTracker()
            drive(servers_system, stimulus, lineage)
            return lineage.dag().dumps()

        assert once() == once()

    def test_detached_machine_carries_no_tracker(self, servers_system):
        machine = servers_system.make_machine()
        assert machine.lineage is None
        machine.step(["START"])  # must not touch any lineage state


# ---------------------------------------------------------------------------
# the digester: aborts, retries, port writes (hand-fed hops)
# ---------------------------------------------------------------------------

def fake_step(sampled=(), raised=(), fired=()):
    return SimpleNamespace(events_sampled=tuple(sampled),
                           events_raised=tuple(raised),
                           fired=tuple(fired))


class TestDigester:
    def test_aborted_raises_are_quarantined_and_retry_linked(self):
        lineage = LineageTracker()
        # cycle 3: t0 aborts having raised event 1 — quarantined
        lineage.on_dispatch(3, 0, False, {1}, [])
        lineage.on_step(3, fake_step(sampled=["GO"]))
        # cycle 4: t0 re-executes and completes
        lineage.on_dispatch(4, 0, True, set(), [])
        lineage.on_step(4, fake_step(sampled=["GO"]))
        dag = lineage.dag()
        assert not any(n.startswith("raise:") for n in dag.nodes), \
            "aborted dispatch's raise leaked into the DAG"
        assert dag.nodes["fire:3:t0"]["completed"] is False
        assert ("fire:3:t0", "fire:4:t0", "retry") in dag.edges

    def test_port_writes_become_nodes_reads_do_not(self):
        lineage = LineageTracker()
        lineage.on_dispatch(5, 2, True, set(),
                            [("r", 464, 9), ("w", 464, 7), ("w", 465, 1)])
        lineage.on_step(5, fake_step())
        dag = lineage.dag()
        ports = sorted(n for n in dag.nodes if n.startswith("port:"))
        assert ports == ["port:5:t2:464:1", "port:5:t2:465:2"]
        assert dag.nodes["port:5:t2:464:1"]["value"] == 7
        assert all(("fire:5:t2", port, "write") in dag.edges
                   for port in ports)

    def test_tail_is_bounded_and_chronological(self):
        lineage = LineageTracker(tail_limit=4)
        for cycle in range(6):
            lineage.note_injection("GO")
            lineage.on_dispatch(cycle, 0, True, set(), [])
            lineage.on_step(cycle, fake_step(sampled=["GO"]))
        tail = lineage.tail(16)
        assert len(tail) == 4
        cycles = [hop["cycle"] for hop in tail if "cycle" in hop]
        assert cycles == sorted(cycles)
        assert tail[-1]["kind"] == "step"

    def test_drain_slices_union_to_the_full_dag(self, servers_system):
        stimulus = [["START"], ["REQ0"], ["REQ1"], ["REQ0"]]
        whole = LineageTracker()
        drive(servers_system, stimulus, whole)

        incremental = LineageTracker()
        machine = servers_system.make_machine()
        machine.attach_lineage(incremental)
        merged = CausalDag()
        for events in stimulus:
            for name in events:
                incremental.note_injection(name)
            machine.step(events)
            merged.merge_json(incremental.drain())
        assert merged.to_json() == whole.dag().to_json()
        assert incremental.drain() == {"nodes": [], "edges": []}


# ---------------------------------------------------------------------------
# chain rendering
# ---------------------------------------------------------------------------

class TestRenderChain:
    def test_chain_is_deterministic_and_complete(self, pipeline_system):
        def once():
            lineage = LineageTracker()
            machine = pipeline_system.make_machine()
            machine.attach_lineage(lineage)
            event_id = lineage.note_injection("FEED")
            machine.step(["FEED"])
            for _ in range(4):
                machine.step([])
            return render_chain(lineage.dag(), event_id)

        first, second = once(), once()
        assert first == second
        assert first.startswith("why ev:")
        assert "=>" in first and "raise:" in first

    def test_unknown_node_raises_with_close_matches(self):
        dag = CausalDag()
        dag.add_node("latch:3:GO", "latch", cycle=3, event="GO")
        with pytest.raises(KeyError, match="close matches.*latch:3:GO"):
            render_chain(dag, "latch:3")
        with pytest.raises(KeyError):
            render_chain(dag, "no-such-node")


# ---------------------------------------------------------------------------
# deadline critical paths: DeadlineMonitor.explain
# ---------------------------------------------------------------------------

def make_monitor(period=100):
    chart = SimpleNamespace(constrained_events=lambda: [
        SimpleNamespace(name="GO", period=period)])
    return DeadlineMonitor(chart)


def consuming_step(event, start, length, recoveries=()):
    transition = SimpleNamespace(consumes=lambda name: name == event)
    return SimpleNamespace(events_sampled=(event,),
                           fired=(transition,),
                           start_time=start, end_time=start + length,
                           cycle_length=length, recoveries=recoveries)


def idle_step(start, length, recoveries=()):
    return SimpleNamespace(events_sampled=(), fired=(),
                           start_time=start, end_time=start + length,
                           cycle_length=length, recoveries=recoveries)


class TestExplain:
    def test_segments_split_queued_retry_dispatch(self):
        monitor = make_monitor(period=100)
        monitor.arrival("GO", 0)
        # 2 recovery cycles (watchdog retry), then the consuming cycle
        monitor.observe(idle_step(0, 40, recoveries=(
            SimpleNamespace(kind="watchdog-abort"),)))
        monitor.observe(idle_step(40, 30))
        monitor.observe(consuming_step("GO", 70, 60))
        explanation = monitor.explain("GO")
        segments = {s["kind"]: s["cycles"]
                    for s in explanation["segments"]}
        assert segments == {"queued": 30, "retry": 40, "dispatch": 60}
        assert explanation["dominant"] == "dispatch"
        assert explanation["outcome"] == "late"
        assert explanation["miss"] is True
        assert explanation["latency"] == 130
        assert explanation["deadline"] == 100

    def test_restart_cycles_attributed_separately(self):
        monitor = make_monitor(period=500)
        monitor.arrival("GO", 0)
        monitor.observe(idle_step(0, 80, recoveries=(
            SimpleNamespace(kind="tep-failover"),)))
        monitor.observe(consuming_step("GO", 80, 20))
        explanation = monitor.explain("GO")
        segments = {s["kind"]: s["cycles"]
                    for s in explanation["segments"]}
        assert segments == {"queued": 0, "restart": 80, "dispatch": 20}
        assert explanation["dominant"] == "restart"
        assert explanation["outcome"] == "met"
        assert explanation["miss"] is False

    def test_dropped_arrival_explains_to_its_resolution(self):
        monitor = make_monitor(period=50)
        monitor.arrival("GO", 0)
        # sampled into a cycle that fired nothing: dropped
        step = idle_step(10, 20)
        step.events_sampled = ("GO",)
        monitor.observe(step)
        explanation = monitor.explain("GO")
        assert explanation["outcome"] == "dropped"
        assert explanation["miss"] is True
        assert explanation["latency"] is None
        segments = {s["kind"]: s["cycles"]
                    for s in explanation["segments"]}
        assert segments == {"queued": 30}

    def test_open_arrival_past_deadline_is_expired(self):
        monitor = make_monitor(period=10)
        monitor.arrival("GO", 0)
        monitor.observe(idle_step(0, 40))
        explanation = monitor.explain("GO")
        assert explanation["outcome"] == "expired-open"
        assert explanation["miss"] is True

    def test_picks_the_worst_miss_and_accepts_records(self):
        monitor = make_monitor(period=30)
        monitor.arrival("GO", 0)
        monitor.observe(consuming_step("GO", 0, 10))     # met, latency 10
        monitor.arrival("GO", 100)
        monitor.observe(consuming_step("GO", 100, 80))   # late, latency 80
        explanation = monitor.explain("GO")
        assert explanation["arrival_time"] == 100
        assert explanation["latency"] == 80
        # an explicit EventRecord bypasses the picker
        record = monitor.records["GO"][0]
        assert monitor.explain(record)["outcome"] == "met"
        with pytest.raises(KeyError):
            monitor.explain("NEVER_SEEN")

    def test_ledger_timeline_annotations_are_filtered(self):
        monitor = make_monitor()
        monitor.arrival("GO", 0)
        monitor.observe(consuming_step("GO", 0, 10))
        timeline = [
            {"tick": 3, "kind": "shed", "worker": "shard0"},
            {"tick": 4, "kind": "sample"},
            {"tick": 5, "kind": "process-kill", "worker": "shard1"},
        ]
        explanation = monitor.explain("GO", ledger_timeline=timeline)
        kinds = [a["kind"] for a in explanation["annotations"]]
        assert kinds == ["shed", "process-kill"]


# ---------------------------------------------------------------------------
# farm-wide lineage (supervisor side)
# ---------------------------------------------------------------------------

class TestFarmLineage:
    def test_item_lifecycle_conserves(self):
        lineage = FarmLineage()
        doc = {"seq": 0, "origin": "stream", "events": ["GO"]}
        lineage.on_submit(1, doc)
        lineage.on_dispatch(1, "shard0", doc)
        lineage.on_accept(1, 0)
        lineage.on_processed(2, 0)
        assert lineage.conservation() == []
        chain = render_chain(lineage.dag, "ev:stream:0")
        assert "processed:0" in chain

    def test_double_terminal_is_a_violation(self):
        lineage = FarmLineage()
        doc = {"seq": 0, "origin": "stream", "events": []}
        lineage.on_submit(1, doc)
        lineage.on_accept(1, 0)
        lineage.on_processed(2, 0)
        lineage.on_shed(3, 0, "overload")
        problems = lineage.conservation()
        assert len(problems) == 1 and "2 lineage terminal" in problems[0]

    def test_accepted_without_terminal_is_a_violation(self):
        lineage = FarmLineage()
        lineage.on_submit(1, {"seq": 4, "origin": "stream", "events": []})
        lineage.on_accept(1, 4)
        assert any("accepted item 4" in p for p in lineage.conservation())

    def test_death_feeds_redispatch_and_respawn(self):
        lineage = FarmLineage()
        doc = {"seq": 7, "origin": "stream", "events": ["GO"]}
        lineage.on_submit(1, doc)
        lineage.on_dispatch(1, "shard0", doc)
        lineage.on_accept(1, 7)
        lineage.on_worker_lost(3, "shard0", "SIGKILL")
        lineage.on_dispatch(4, "shard0", doc, redispatch=True)
        lineage.on_respawn(4, "shard0")
        lineage.on_processed(5, 7)
        assert lineage.conservation() == []
        edges = set(lineage.dag.edges)
        assert ("death:3:shard0", "disp:7:1", "redispatch") in edges
        assert ("disp:7:0", "disp:7:1", "redispatch") in edges
        assert ("death:3:shard0", "respawn:4:shard0", "respawn") in edges

    def test_worker_digests_merge_namespaced_ev_ids_stay_global(self):
        lineage = FarmLineage()
        doc = {"seq": 0, "origin": "stream", "events": ["GO"]}
        lineage.on_submit(1, doc)
        lineage.on_dispatch(1, "shard0", doc)
        payload = {
            "nodes": [{"id": "ev:stream:0", "kind": "inject",
                       "event": "GO"},
                      {"id": "latch:2:GO", "kind": "latch", "cycle": 2,
                       "event": "GO"}],
            "edges": [{"src": "ev:stream:0", "dst": "latch:2:GO",
                       "kind": "inject"}],
        }
        lineage.merge_worker("shard0", 1, payload)
        assert "shard0.g1/latch:2:GO" in lineage.dag.nodes
        assert lineage.dag.nodes["shard0.g1/latch:2:GO"]["shard"] \
            == "shard0"
        # the global event id stitched, unprefixed
        assert ("ev:stream:0", "shard0.g1/latch:2:GO", "inject") \
            in lineage.dag.edges

    def test_to_json_round_trips_and_is_canonical(self):
        lineage = FarmLineage()
        doc = {"seq": 0, "origin": "stream", "events": ["GO"]}
        lineage.on_submit(1, doc)
        lineage.on_accept(1, 0)
        lineage.on_shed(2, 0, "overload")
        document = json.loads(lineage.dumps())
        assert document["conservation_violations"] == []
        assert document["terminals"] == {"0": ["shed:0"]}
        reloaded = load_dag(document)
        assert reloaded.to_json() == lineage.dag.to_json()

    def test_flow_events_bind_ids_and_pids(self):
        lineage = FarmLineage()
        doc = {"seq": 0, "origin": "stream", "events": ["GO"]}
        lineage.on_submit(1, doc)
        lineage.on_dispatch(2, "shard0", doc)
        flows = dag_flow_events(lineage.dag, pids={"shard0": 2})
        assert [e["ph"] for e in flows] == ["s", "f"]
        start, finish = flows
        assert start["id"] == finish["id"] == "ev:stream:0->disp:0:0"
        assert start["pid"] == 1      # submit node: supervisor track
        assert finish["pid"] == 2     # dispatch node: shard0's track
        assert finish["bp"] == "e"


# ---------------------------------------------------------------------------
# forensics v2: lineage tails and v1 load-compat
# ---------------------------------------------------------------------------

class TestForensicsLineage:
    def test_bundle_carries_the_lineage_tail(self, servers_system):
        from repro.obs import FlightRecorder

        machine = servers_system.make_machine()
        machine.attach_recorder(FlightRecorder(capacity=8))
        machine.attach_lineage(LineageTracker())
        machine.lineage.note_injection("START")
        machine.step(["START"])
        bundle = machine.recorder.forensics_bundle({"kind": "test"})
        assert bundle["version"] == 2
        assert bundle["lineage"], "v2 bundle missing the lineage tail"
        kinds = [hop["kind"] for hop in bundle["lineage"]]
        assert kinds[0] == "inject" and kinds[-1] == "step"
        rendered = render_forensics(bundle)
        assert "Causal lineage tail" in rendered

    def test_v1_bundle_still_loads(self, tmp_path):
        v1 = {"version": 1, "worker": "worker0",
              "cause": {"kind": "escalation"}, "ring": [],
              "recorded": 0, "dropped": 0, "capacity": 8,
              "last_checkpoint": None, "last_escalation": None,
              "metrics_delta": None, "machine": None}
        path = tmp_path / "old.json"
        path.write_text(json.dumps(v1))
        bundle = load_forensics_bundle(str(path))
        assert bundle["version"] == 1
        assert bundle["lineage"] is None  # normalized, never KeyErrors
        render_forensics(bundle)  # and renders without the tail section

    def test_unsupported_version_is_refused(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError, match="version"):
            load_forensics_bundle(str(path))
