"""Campaign determinism, canary end-to-end, and corpus replay (tier-1)."""

import json
import os
import subprocess
import sys

from repro.fuzz import (
    FUZZ_REPORT_VERSION,
    FuzzCampaign,
    GeneratorConfig,
    replay_corpus,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORPUS = os.path.join(REPO, "tests", "fixtures", "fuzz")

SMALL = GeneratorConfig(max_states=8, max_extra_transitions=2)


class TestCampaignDeterminism:
    def test_same_seed_byte_identical_reports(self):
        """The CI smoke job's contract: two same-seed runs serialize to
        the same bytes."""
        kwargs = dict(seed=5, charts=4, cycles=15, config=SMALL,
                      max_rungs=2)
        first = FuzzCampaign(**kwargs).run().dumps()
        second = FuzzCampaign(**kwargs).run().dumps()
        assert first == second

    def test_different_seeds_differ(self):
        a = FuzzCampaign(seed=5, charts=2, cycles=10, config=SMALL,
                         max_rungs=1).run().dumps()
        b = FuzzCampaign(seed=6, charts=2, cycles=10, config=SMALL,
                         max_rungs=1).run().dumps()
        assert a != b

    def test_report_shape(self):
        report = FuzzCampaign(seed=5, charts=3, cycles=10, config=SMALL,
                              max_rungs=1).run()
        doc = json.loads(report.dumps())
        assert doc["version"] == FUZZ_REPORT_VERSION
        assert doc["seed"] == 5
        assert len(doc["outcomes"]) == 3
        assert report.clean
        assert report.counts() == {"clean": 3}
        # derived per-chart seeds follow the FaultCampaign convention
        assert [o["chart_seed"] for o in doc["outcomes"]] == [
            5 * 7919 + i for i in range(3)]

    def test_render_is_a_table(self):
        report = FuzzCampaign(seed=5, charts=2, cycles=10, config=SMALL,
                              max_rungs=1).run()
        text = report.render()
        assert "Fuzz campaign" in text
        assert "Guilty stage" in text

    def test_default_report_has_no_bmc_key(self):
        # the bmc field only serializes under --bmc: goldens stay stable
        report = FuzzCampaign(seed=5, charts=1, cycles=10, config=SMALL,
                              max_rungs=1).run()
        doc = json.loads(report.dumps())
        assert all("bmc" not in o for o in doc["outcomes"])


class TestBmcStage:
    def test_bmc_cross_check_passes_on_clean_charts(self):
        report = FuzzCampaign(seed=5, charts=3, cycles=12, config=SMALL,
                              max_rungs=1, bmc=True).run()
        assert report.clean
        for outcome in report.outcomes:
            assert outcome.bmc is not None
            assert outcome.bmc["implied_violations"] == []
            assert outcome.bmc["agreement_misses"] == []
            # the canary: a property over states we watched co-occupy
            # must come back violated with a machine-replaying witness
            assert outcome.bmc["canary"] in ("violated-replayed",
                                             "bound-exhausted", "no-pair")
        assert any(o.bmc["canary"] == "violated-replayed"
                   for o in report.outcomes)

    def test_bmc_reports_are_deterministic(self):
        kwargs = dict(seed=7, charts=2, cycles=10, config=SMALL,
                      max_rungs=1, bmc=True)
        first = FuzzCampaign(**kwargs).run().dumps()
        second = FuzzCampaign(**kwargs).run().dumps()
        assert first == second
        assert '"bmc"' in first


class TestCanaryCampaign:
    def test_canary_caught_bisected_and_shrunk(self):
        """End-to-end acceptance shape: planted mutations are detected,
        bisected to the planted stage (verified) and shrunk small."""
        report = FuzzCampaign(seed=1, charts=4, cycles=20,
                              canary_stage="promote-internal").run()
        caught = [o for o in report.outcomes if o.status == "diverged"]
        others = [o for o in report.outcomes
                  if o.status not in ("diverged", "canary-unplantable")]
        assert caught, "no chart caught the canary"
        assert not others, [o.status for o in others]
        for outcome in caught:
            assert outcome.guilty_stage == "promote-internal"
            assert outcome.bisect_verified is True
            assert outcome.shrunk_states is not None
            assert outcome.shrunk_states <= 8
            assert outcome.shrunk_chart  # Fig. 2a textual reproducer
            assert outcome.shrunk_spec is not None

    def test_no_shrink_flag_skips_minimization(self):
        report = FuzzCampaign(seed=1, charts=4, cycles=20,
                              canary_stage="promote-internal",
                              shrink=False).run()
        caught = [o for o in report.outcomes if o.status == "diverged"]
        assert caught
        assert all(o.shrunk_states is None for o in caught)


class TestCorpusReplay:
    def test_regression_corpus_replays_clean(self):
        """Tier-1 corpus replay: every minimized regression chart under
        tests/fixtures/fuzz still behaves as recorded."""
        results = replay_corpus(CORPUS)
        assert results, "regression corpus is empty"
        failed = [r for r in results if not r.ok]
        assert not failed, [(r.name, r.detail) for r in failed]

    def test_corpus_entries_are_versioned(self):
        for filename in sorted(os.listdir(CORPUS)):
            if not filename.endswith(".json"):
                continue
            with open(os.path.join(CORPUS, filename)) as handle:
                doc = json.load(handle)
            assert doc["version"] == FUZZ_REPORT_VERSION, filename
            assert "spec" in doc and "expect" in doc, filename


class TestDeterminismAudit:
    def test_library_is_free_of_ambient_randomness(self):
        """Satellite 4: no global-RNG or wall-clock calls in src/repro."""
        script = os.path.join(REPO, "scripts", "check_determinism.py")
        proc = subprocess.run(
            [sys.executable, script, os.path.join(REPO, "src", "repro")],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_audit_flags_global_rng(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.randint(0, 9)\n"
                       "import time\nt = time.time()\n")
        sys.path.insert(0, os.path.join(REPO, "scripts"))
        try:
            from check_determinism import audit
        finally:
            sys.path.pop(0)
        findings = audit(str(tmp_path))
        assert len(findings) == 2
        assert "global-RNG" in findings[0]
        assert "wall-clock" in findings[1]

    def test_audit_allows_seeded_random(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("import random\nrng = random.Random(7)\n"
                        "x = rng.randint(0, 9)\n"
                        "import time\nt = time.perf_counter()\n")
        sys.path.insert(0, os.path.join(REPO, "scripts"))
        try:
            from check_determinism import audit
        finally:
            sys.path.pop(0)
        findings = audit(str(tmp_path))
        assert findings == []
