"""Ladder bisection: first_true search and guilty-stage attribution."""

from repro.fuzz import (
    OracleHarness,
    bisect_harness,
    first_true,
    generate_spec,
    plant_canary,
)


class TestFirstTrue:
    def test_all_false_returns_none(self):
        assert first_true(8, lambda i: False) is None

    def test_empty_returns_none(self):
        assert first_true(0, lambda i: True) is None

    def test_finds_every_boundary(self):
        for n in (1, 2, 5, 9):
            for boundary in range(n):
                found = first_true(n, lambda i, b=boundary: i >= b)
                assert found == boundary, (n, boundary)

    def test_logarithmic_probe_count(self):
        calls = []

        def predicate(i):
            calls.append(i)
            return i >= 37

        assert first_true(100, predicate) == 37
        # binary search over 100 stages: well under a linear scan
        assert len(calls) <= 10


class TestBisectHarness:
    def _case(self, stage, seeds=range(7919, 7940), cycles=20):
        for seed in seeds:
            spec = generate_spec(seed)
            mutation = plant_canary(spec, stage=stage, cycles=cycles)
            if mutation is not None:
                return OracleHarness(spec, cycles=cycles, mutation=mutation)
        raise AssertionError(f"no plantable seed for {stage!r}")

    def test_attributes_to_exact_planted_rung(self):
        """Satellite 5: a mutation planted at rung R bisects to exactly
        R, with the boundary verified (R diverges, R-1 clean)."""
        harness = self._case("promote-internal")
        verdict = bisect_harness(harness)
        assert verdict.guilty_stage == "promote-internal"
        assert verdict.verified
        assert verdict.divergence is not None
        assert verdict.divergence.stage == "promote-internal"

    def test_attributes_baseline_mutation_to_baseline(self):
        harness = self._case("baseline")
        verdict = bisect_harness(harness)
        assert verdict.guilty_stage == "baseline"
        assert verdict.verified

    def test_clean_harness_yields_no_guilty_stage(self):
        harness = OracleHarness(generate_spec(1), cycles=15)
        verdict = bisect_harness(harness)
        assert verdict.guilty_stage is None
        assert verdict.divergence is None

    def test_probes_fewer_stages_than_linear(self):
        harness = self._case("promote-internal")
        verdict = bisect_harness(harness)
        total = len(harness.stage_names())
        # log2(total) + boundary verification, with margin
        assert len(verdict.stages_checked) < total

    def test_verdict_serializes(self):
        harness = self._case("promote-internal")
        doc = bisect_harness(harness).to_json()
        assert doc["guilty_stage"] == "promote-internal"
        assert doc["verified"] is True
