"""End-to-end tests for the `repro lint` subcommand."""

import io
import json
import pathlib

import pytest

from repro.cli import run

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "lint"
GOLDEN = pathlib.Path(__file__).parent / "golden"


def invoke(argv):
    out = io.StringIO()
    status = run(argv, out=out)
    return status, out.getvalue()


def lint_fixture(name, *extra):
    base = FIXTURES / name
    return invoke(["lint", str(base / "chart.sc"),
                   str(base / "routines.c"), *extra])


class TestFixtures:
    def test_conflict_fixture_errors(self):
        status, text = lint_fixture("conflict")
        assert status == 1
        assert "PSC201" in text
        assert "1 error(s)" in text.splitlines()[-1]

    def test_race_fixture_warns(self):
        status, text = lint_fixture("race")
        assert status == 0
        assert "PSC203" in text
        assert "shared" in text
        assert "0 error(s)" in text.splitlines()[-1]

    def test_truncate_fixture_reports_dataflow(self):
        status, text = lint_fixture("truncate")
        assert status == 1
        for code in ("PSC310", "PSC311", "PSC312", "PSC313"):
            assert code in text
        # Preamble offset correction: lines refer to the user's file.
        assert "routines.c:5" in text

    def test_budget_fixture_reports_timing(self):
        status, text = lint_fixture("budget")
        assert status == 1
        assert "PSC401" in text
        assert "PSC402" in text

    def test_suppress_removes_code(self):
        status, text = lint_fixture("race", "--suppress", "PSC203")
        assert status == 0
        assert "PSC203" not in text

    def test_enable_surfaces_default_suppressed_notes(self):
        _, baseline = lint_fixture("conflict")
        _, enabled = lint_fixture("conflict", "--enable", "PSC202")
        assert "PSC202" not in baseline
        assert "PSC202" in enabled


class TestWorkloads:
    def test_smd_matches_golden(self):
        status, text = invoke(["lint", "--workload", "smd"])
        assert status == 0
        assert text == (GOLDEN / "lint_smd.txt").read_text()

    def test_elevator_matches_golden(self):
        status, text = invoke(["lint", "--workload", "elevator"])
        assert status == 0
        assert text == (GOLDEN / "lint_elevator.txt").read_text()

    def test_output_is_deterministic(self):
        _, first = invoke(["lint", "--workload", "smd", "--format", "sarif"])
        _, second = invoke(["lint", "--workload", "smd", "--format", "sarif"])
        assert first == second


class TestFormats:
    def test_json_format(self):
        _, text = lint_fixture("race", "--format", "json")
        document = json.loads(text)
        assert document["tool"] == "repro-lint"
        assert [d["code"] for d in document["diagnostics"]] == ["PSC203"]

    def test_sarif_format(self):
        _, text = lint_fixture("truncate", "--format", "sarif")
        sarif = json.loads(text)
        assert sarif["version"] == "2.1.0"
        rule_ids = {r["ruleId"] for r in sarif["runs"][0]["results"]}
        assert "PSC313" in rule_ids

    def test_out_writes_file(self, tmp_path):
        target = tmp_path / "report.sarif"
        status, text = lint_fixture("race", "--format", "sarif",
                                    "--out", str(target))
        assert status == 0
        assert json.loads(target.read_text())["version"] == "2.1.0"
        assert "wrote" in text


class TestErrors:
    def test_unknown_suppress_code_exits_2(self):
        status, text = lint_fixture("race", "--suppress", "PSC999")
        assert status == 2
        assert "PSC999" in text

    def test_unparseable_chart_reports_psc100(self, tmp_path):
        bad = tmp_path / "bad.sc"
        bad.write_text("chart broken;\nbasicstate A { nonsense }\n")
        routines = tmp_path / "r.c"
        routines.write_text("int:16 g;\n")
        status, text = invoke(["lint", str(bad), str(routines)])
        assert status == 2
        assert "PSC100" in text

    def test_missing_arguments_error(self):
        with pytest.raises(SystemExit):
            invoke(["lint"])
