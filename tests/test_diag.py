"""Tests for the diagnostic framework core and the report emitters."""

import json

from repro.analysis import (
    CODES,
    Collector,
    DEFAULT_SUPPRESSED,
    Diagnostic,
    Severity,
    SourceLocation,
    count_by_severity,
    default_severity,
    finalize,
    known_code,
    render_json,
    render_sarif,
    render_text,
)


def diag(code, message="m", file=None, line=None, severity=None, hint=""):
    return Diagnostic(code=code,
                      severity=severity or default_severity(code),
                      message=message,
                      location=SourceLocation(file=file, line=line),
                      hint=hint)


class TestFramework:
    def test_every_code_is_banded_and_titled(self):
        for code, info in CODES.items():
            assert code.startswith("PSC") and len(code) == 6
            assert info.title
            assert isinstance(info.severity, Severity)

    def test_known_code(self):
        assert known_code("PSC203")
        assert not known_code("PSC999")

    def test_default_severity_fallback(self):
        assert default_severity("PSC201") is Severity.ERROR
        assert default_severity("PSC999") is Severity.WARNING

    def test_collector_defaults_severity_from_registry(self):
        out = Collector()
        emitted = out.emit("PSC311", "dead store")
        assert emitted.severity is Severity.WARNING
        assert out.diagnostics == [emitted]

    def test_format_includes_location_and_hint(self):
        text = diag("PSC310", "boom", file="a.c", line=3,
                    hint="init it").format()
        assert text == "a.c:3: error PSC310: boom [hint: init it]"

    def test_format_without_line(self):
        assert diag("PSC151", "unused", file="a.sc").format() == \
            "a.sc: warning PSC151: unused"


class TestFinalize:
    def test_sorts_by_file_line_code(self):
        unsorted = [diag("PSC311", file="b.c", line=9),
                    diag("PSC310", file="a.c", line=5),
                    diag("PSC203", file="a.c", line=2)]
        ordered = finalize(unsorted)
        assert [d.code for d in ordered] == ["PSC203", "PSC310", "PSC311"]

    def test_deterministic_for_equal_locations(self):
        diagnostics = [diag("PSC311", message="zz"),
                       diag("PSC311", message="aa")]
        assert finalize(diagnostics) == finalize(list(reversed(diagnostics)))

    def test_psc202_is_suppressed_by_default(self):
        assert "PSC202" in DEFAULT_SUPPRESSED
        assert finalize([diag("PSC202")]) == ()

    def test_enable_wins_over_default_suppression(self):
        kept = finalize([diag("PSC202")], enable=["PSC202"])
        assert [d.code for d in kept] == ["PSC202"]

    def test_suppress_adds_codes(self):
        kept = finalize([diag("PSC203"), diag("PSC311")],
                        suppress=["PSC203"])
        assert [d.code for d in kept] == ["PSC311"]

    def test_count_by_severity(self):
        counts = count_by_severity([diag("PSC310"), diag("PSC311"),
                                    diag("PSC403")])
        assert counts == {"error": 1, "warning": 1, "note": 1}


class TestEmitters:
    def sample(self):
        return finalize([
            diag("PSC310", "read before assign", file="r.c", line=4,
                 hint="init"),
            diag("PSC203", "race on x", file="c.sc", line=12),
            diag("PSC403", "no periods"),
        ])

    def test_text_has_summary_line(self):
        text = render_text(self.sample(), header="demo")
        assert text.splitlines()[0] == "demo"
        assert text.splitlines()[-1] == "1 error(s), 1 warning(s), 1 note(s)"

    def test_json_roundtrips_and_counts(self):
        document = json.loads(render_json(self.sample()))
        assert document["tool"] == "repro-lint"
        assert document["counts"] == {"error": 1, "note": 1, "warning": 1}
        codes = [d["code"] for d in document["diagnostics"]]
        assert codes == ["PSC403", "PSC203", "PSC310"]

    def test_json_is_byte_identical_across_runs(self):
        assert render_json(self.sample()) == render_json(self.sample())

    def test_sarif_shape(self):
        sarif = json.loads(render_sarif(self.sample()))
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert rule_ids == {"PSC203", "PSC310", "PSC403"}
        results = run["results"]
        assert [r["ruleId"] for r in results] == \
            ["PSC403", "PSC203", "PSC310"]
        levels = {r["ruleId"]: r["level"] for r in results}
        assert levels["PSC310"] == "error"
        located = [r for r in results if r["ruleId"] == "PSC310"][0]
        physical = located["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "r.c"
        assert physical["region"]["startLine"] == 4

    def test_sarif_is_byte_identical_across_runs(self):
        assert render_sarif(self.sample()) == render_sarif(self.sample())
