"""Differential tests for mixed-width and wide (32-bit) arithmetic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import MD16_TEP, MINIMAL_TEP
from tests.test_codegen_exec import run_function


def as_signed(value, bits):
    mask = (1 << bits) - 1
    value &= mask
    return value - (1 << bits) if value & (1 << (bits - 1)) else value


class TestMixedWidths:
    def test_narrow_signed_widens_correctly(self):
        src = """
        int:16 f(int:8 a, int:16 b) {
          int:16 t;
          t = a;
          return t + b;
        }
        """
        for arch in (MINIMAL_TEP, MD16_TEP):
            result, *_ = run_function(src, "f", (-5, 100), arch)
            assert result == 95, arch.name

    def test_narrow_signed_comparison(self):
        src = """
        int:16 f(int:8 a, int:16 b) {
          if (a < b) { return 1; }
          return 0;
        }
        """
        for arch in (MINIMAL_TEP, MD16_TEP):
            assert run_function(src, "f", (-3, 2), arch)[0] == 1, arch.name
            assert run_function(src, "f", (3, 2), arch)[0] == 0, arch.name

    def test_unsigned_narrow_zero_extends(self):
        src = """
        int:16 f(uint:8 a) {
          int:16 t;
          t = a;
          return t;
        }
        """
        for arch in (MINIMAL_TEP, MD16_TEP):
            result, *_ = run_function(src, "f", (200,), arch)
            assert result == 200, arch.name

    @settings(max_examples=15, deadline=None)
    @given(st.integers(-128, 127), st.integers(-1000, 1000))
    def test_mixed_width_add_differential(self, a, b):
        src = """
        int:16 f(int:8 a, int:16 b) {
          int:16 t;
          t = a;
          return t + b;
        }
        """
        result, *_ = run_function(src, "f", (a, b), MINIMAL_TEP)
        assert result == as_signed(a + b, 16)


class TestThirtyTwoBit:
    def test_wide_constant_roundtrip(self):
        src = """
        int:32 big = 100000;
        int:32 f() { return big + 23456; }
        """
        for arch in (MINIMAL_TEP, MD16_TEP):
            result, *_ = run_function(src, "f", (), arch)
            assert result == 123456, arch.name

    def test_wide_subtract_borrows_across_words(self):
        src = "int:32 f(int:32 a, int:32 b) { return a - b; }"
        for arch in (MINIMAL_TEP, MD16_TEP):
            result, *_ = run_function(src, "f", (0x10000, 1), arch)
            assert result == 0xFFFF, arch.name

    def test_wide_shift(self):
        src = "int:32 f(int:32 a) { return a << 4; }"
        result, *_ = run_function(src, "f", (0x1234,), MD16_TEP)
        assert result == 0x12340

    def test_wide_comparison(self):
        src = """
        int:16 f(int:32 a, int:32 b) {
          if (a < b) { return 1; }
          return 0;
        }
        """
        assert run_function(src, "f", (100000, 100001), MD16_TEP)[0] == 1
        assert run_function(src, "f", (100001, 100000), MD16_TEP)[0] == 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**20), st.integers(0, 2**20))
    def test_wide_add_differential(self, a, b):
        src = "int:32 f(int:32 a, int:32 b) { return a + b; }"
        result, *_ = run_function(src, "f", (a, b), MD16_TEP)
        assert result == as_signed(a + b, 32)

    def test_time_constraint_width_of_fig2b(self):
        """Fig. 2b's EventCondition carries an int:32 TimeConstraint; a
        routine manipulating it must compile and run."""
        src = """
        int:32 time_constraint = 400;
        int:32 f(int:16 scale) { return time_constraint * scale; }
        """
        result, *_ = run_function(src, "f", (1000,), MD16_TEP)
        assert result == 400000
