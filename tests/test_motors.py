"""Tests for the stepper-motor physics (Fig. 7 parameters)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.motors import (
    DATA_VALID_PERIOD_CYCLES,
    Motor,
    MotorSpec,
    PHI_MOTOR,
    ProfileError,
    REFERENCE_CLOCK_HZ,
    TrapezoidalProfile,
    X_MOTOR,
    XY_DEADLINE_CYCLES,
    Y_MOTOR,
    Z_MOTOR,
    move_duration_cycles,
    steps_for_distance,
)


class TestPaperParameters:
    """Section 5's numbers are encoded faithfully."""

    def test_xy_step_rate(self):
        assert X_MOTOR.max_step_hz == 50_000
        assert Y_MOTOR.max_step_hz == 50_000

    def test_z_phi_step_rate(self):
        assert Z_MOTOR.max_step_hz == 9_000
        assert PHI_MOTOR.max_step_hz == 9_000

    def test_step_sizes(self):
        assert X_MOTOR.step_size == pytest.approx(0.025e-3)
        assert PHI_MOTOR.step_size == pytest.approx(0.1)

    def test_xy_velocity_and_acceleration(self):
        assert X_MOTOR.max_velocity == pytest.approx(1.25)
        assert X_MOTOR.max_acceleration == pytest.approx(10.0)

    def test_reference_clock(self):
        assert REFERENCE_CLOCK_HZ == 15_000_000

    def test_table2_deadlines_derive_from_step_rates(self):
        # 15 MHz / 50 kHz = 300 cycles between X/Y pulses at full speed
        assert REFERENCE_CLOCK_HZ // X_MOTOR.max_step_hz == XY_DEADLINE_CYCLES
        assert DATA_VALID_PERIOD_CYCLES == 1500

    def test_min_step_interval(self):
        assert X_MOTOR.min_step_interval_cycles == 300
        assert PHI_MOTOR.min_step_interval_cycles == 1666

    def test_max_travel_one_metre(self):
        steps = steps_for_distance(X_MOTOR, 1.0)
        assert steps == 40_000  # 1 m at 0.025 mm/step


class TestTrapezoidalProfile:
    def test_step_times_monotonic(self):
        times = TrapezoidalProfile(X_MOTOR, 500).step_times()
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_respects_max_step_rate(self):
        profile = TrapezoidalProfile(X_MOTOR, 2000)
        assert profile.max_step_rate() <= X_MOTOR.max_step_hz * 1.01

    def test_short_move_triangular(self):
        """A short move never reaches max velocity."""
        profile = TrapezoidalProfile(X_MOTOR, 100)
        distance = 100 * X_MOTOR.step_size
        peak = math.sqrt(distance * X_MOTOR.max_acceleration)
        assert peak < X_MOTOR.max_velocity
        # duration of a triangular profile: 2 * sqrt(d / a)
        expected = 2 * math.sqrt(distance / X_MOTOR.max_acceleration)
        assert profile.duration() == pytest.approx(expected, rel=0.01)

    def test_long_move_reaches_cruise(self):
        steps = steps_for_distance(X_MOTOR, 0.5)
        profile = TrapezoidalProfile(X_MOTOR, steps)
        # near-cruise step spacing at the end of the ramp
        rate = profile.max_step_rate()
        assert rate == pytest.approx(
            X_MOTOR.max_velocity / X_MOTOR.step_size, rel=0.02)

    def test_uniform_motor_constant_spacing(self):
        times = TrapezoidalProfile(PHI_MOTOR, 10).step_times()
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(gaps[0]) for g in gaps)
        assert gaps[0] == pytest.approx(1 / PHI_MOTOR.max_step_hz)

    def test_zero_steps(self):
        profile = TrapezoidalProfile(X_MOTOR, 0)
        assert profile.step_times() == []
        assert profile.duration() == 0.0

    def test_negative_steps_rejected(self):
        with pytest.raises(ProfileError):
            TrapezoidalProfile(X_MOTOR, -1)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 3000))
    def test_total_distance_preserved(self, steps):
        profile = TrapezoidalProfile(X_MOTOR, steps)
        assert len(profile.step_times()) == steps

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 2000))
    def test_pulse_gaps_never_beat_deadline(self, steps):
        """No two X pulses are closer than the Table 2 deadline permits."""
        pulses = TrapezoidalProfile(X_MOTOR, steps).pulse_cycles()
        gaps = [b - a for a, b in zip(pulses, pulses[1:])]
        if gaps:
            assert min(gaps) >= XY_DEADLINE_CYCLES - 1


class TestMotorState:
    def test_command_and_pulses(self):
        motor = Motor(PHI_MOTOR)
        motor.command_move(5, start_cycle=1000)
        pulses = motor.pulses_between(0, 10_000_000)
        assert len(pulses) == 5
        assert motor.position_steps == 5
        assert not motor.moving

    def test_direction(self):
        motor = Motor(PHI_MOTOR)
        motor.command_move(-3, start_cycle=0)
        motor.pulses_between(0, 10_000_000)
        assert motor.position_steps == -3

    def test_pulses_delivered_incrementally(self):
        motor = Motor(PHI_MOTOR)
        motor.command_move(10, start_cycle=0)
        first = motor.pulses_between(0, 5000)
        rest = motor.pulses_between(5000, 10_000_000)
        assert len(first) + len(rest) == 10
        assert all(p <= 5000 for p in first)

    def test_double_command_rejected(self):
        motor = Motor(PHI_MOTOR)
        motor.command_move(10, start_cycle=0)
        with pytest.raises(ProfileError):
            motor.command_move(5, start_cycle=10)

    def test_finish_time(self):
        motor = Motor(PHI_MOTOR)
        motor.command_move(4, start_cycle=100)
        finish = motor.finish_time()
        assert finish is not None
        assert finish > 100

    def test_move_duration_helper(self):
        assert move_duration_cycles(PHI_MOTOR, 3) == \
            TrapezoidalProfile(PHI_MOTOR, 3).pulse_cycles()[-1]
