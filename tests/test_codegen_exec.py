"""Differential tests: compiled TEP code vs. Python reference semantics.

These tests compile intermediate-C routines for several architectures and
execute them on the TEP simulator, checking results and the invariant that
measured cycles never exceed the static WCET.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.action.check import Externals
from repro.isa import (
    ArchConfig,
    CodeGenerator,
    CustomInstruction,
    MD16_TEP,
    MINIMAL_TEP,
    NameMaps,
    StorageClass,
    prepare_program,
)
from repro.pscp.tep import SimplePorts, Tep, TepError

ARCHS = [
    MINIMAL_TEP,
    MINIMAL_TEP.with_(name="opt8", microcode_optimized=True),
    MD16_TEP,
    MD16_TEP.with_(name="full16", microcode_optimized=True,
                   has_comparator=True, has_negator=True,
                   has_barrel_shifter=True, register_file_size=4),
]


def run_function(source, function, args=(), arch=MD16_TEP, externals=None,
                 ports=None, globals_out=(), max_cycles=2_000_000):
    """Compile *source*, run *function* with *args*, return results.

    Returns (return value or None, dict of requested globals, cycles, tep,
    compiled).
    """
    checked = prepare_program(source, arch, externals)
    maps = (NameMaps.from_externals(externals) if externals is not None
            else None)
    compiled = CodeGenerator(checked, arch, maps=maps).compile()
    tep = Tep(arch, compiled.flat_instructions(), ports=ports)
    tep.load_memory(compiled.allocator.initial_values)
    fn = checked.program.function(function)
    for param, value in zip(fn.params, args):
        loc = compiled.allocator.locations[f"{function}.{param.name}"]
        tep.write_variable(loc, value)
    cycles = tep.run(function, max_cycles=max_cycles)
    result = None
    ret_key = f"{function}.__ret"
    if ret_key in compiled.allocator.locations:
        result = tep.read_variable(compiled.allocator.locations[ret_key])
    globals_values = {name: tep.read_variable(compiled.allocator.locations[name])
                      for name in globals_out}
    wcets = compiled.wcets()
    assert cycles <= wcets[function], (
        f"measured {cycles} exceeds WCET {wcets[function]} on {arch.name}")
    return result, globals_values, cycles, tep, compiled


@pytest.mark.parametrize("arch", ARCHS, ids=lambda a: a.name)
class TestArithmeticAcrossArchitectures:
    def test_add_sub(self, arch):
        src = "int:16 f(int:16 a, int:16 b) { return a + b - 3; }"
        result, *_ = run_function(src, "f", (1000, 234), arch)
        assert result == 1231

    def test_multiply(self, arch):
        src = "int:16 f(int:16 a, int:16 b) { return a * b; }"
        result, *_ = run_function(src, "f", (123, 45), arch)
        assert result == 5535

    def test_divide_and_mod(self, arch):
        src = """
        int:16 f(int:16 a, int:16 b) { return a / b; }
        int:16 g(int:16 a, int:16 b) { return a % b; }
        """
        result, *_ = run_function(src, "f", (1234, 7), arch)
        assert result == 176
        result, *_ = run_function(src, "g", (1234, 7), arch)
        assert result == 2

    def test_bitwise(self, arch):
        src = "int:16 f(int:16 a, int:16 b) { return (a & b) | (a ^ 255); }"
        result, *_ = run_function(src, "f", (0x1234, 0x00FF), arch)
        assert result == (0x1234 & 0x00FF) | (0x1234 ^ 255)

    def test_shifts_by_constant(self, arch):
        src = "int:16 f(int:16 a) { return (a << 3) + (a >> 2); }"
        result, *_ = run_function(src, "f", (100,), arch)
        assert result == (100 << 3) + (100 >> 2)

    def test_shift_by_variable(self, arch):
        src = "int:16 f(int:16 a, int:16 n) { return a << n; }"
        result, *_ = run_function(src, "f", (3, 5), arch)
        assert result == 96

    def test_negate(self, arch):
        src = "int:16 f(int:16 a) { int:16 x; x = a; x = -x; return x + 500; }"
        result, *_ = run_function(src, "f", (123,), arch)
        assert result == 377

    def test_eight_bit_values(self, arch):
        src = "int:8 f(int:8 a, int:8 b) { return a + b; }"
        result, *_ = run_function(src, "f", (100, 27), arch)
        assert result == 127


class TestControlFlow:
    def test_if_else(self):
        src = """
        int:16 f(int:16 a) {
          if (a > 10) { return a - 10; }
          else { return 10 - a; }
        }
        """
        assert run_function(src, "f", (25,))[0] == 15
        assert run_function(src, "f", (3,))[0] == 7

    def test_if_without_else(self):
        src = "int:16 f(int:16 a) { if (a == 0) { a = 99; } return a; }"
        assert run_function(src, "f", (0,))[0] == 99
        assert run_function(src, "f", (5,))[0] == 5

    def test_elif_chain(self):
        src = """
        int:16 f(int:16 a) {
          if (a == 0) { return 100; }
          else if (a == 1) { return 200; }
          else { return 300; }
        }
        """
        assert run_function(src, "f", (0,))[0] == 100
        assert run_function(src, "f", (1,))[0] == 200
        assert run_function(src, "f", (2,))[0] == 300

    @pytest.mark.parametrize("op,cases", [
        ("==", [(5, 5, 1), (5, 6, 0)]),
        ("!=", [(5, 5, 0), (5, 6, 1)]),
        ("<", [(4, 5, 1), (5, 5, 0), (6, 5, 0)]),
        ("<=", [(4, 5, 1), (5, 5, 1), (6, 5, 0)]),
        (">", [(6, 5, 1), (5, 5, 0), (4, 5, 0)]),
        (">=", [(6, 5, 1), (5, 5, 1), (4, 5, 0)]),
    ])
    def test_all_comparisons(self, op, cases):
        src = f"int:16 f(int:16 a, int:16 b) {{ if (a {op} b) {{ return 1; }} return 0; }}"
        for a, b, expected in cases:
            assert run_function(src, "f", (a, b))[0] == expected, (a, op, b)

    def test_comparisons_with_negative_values(self):
        src = "int:16 f(int:16 a, int:16 b) { if (a < b) { return 1; } return 0; }"
        assert run_function(src, "f", (-5, 3))[0] == 1
        assert run_function(src, "f", (3, -5))[0] == 0

    def test_logical_and_or(self):
        src = """
        int:16 f(int:16 a, int:16 b) {
          if (a > 0 && b > 0) { return 1; }
          if (a > 0 || b > 0) { return 2; }
          return 3;
        }
        """
        assert run_function(src, "f", (1, 1))[0] == 1
        assert run_function(src, "f", (1, 0))[0] == 2
        assert run_function(src, "f", (0, 0))[0] == 3

    def test_logical_not(self):
        src = "int:16 f(int:16 a) { if (!(a == 3)) { return 1; } return 0; }"
        assert run_function(src, "f", (4,))[0] == 1
        assert run_function(src, "f", (3,))[0] == 0

    def test_while_loop(self):
        src = """
        int:16 f(int:16 n) {
          int:16 total = 0;
          @bound(20) while (n > 0) { total = total + n; n = n - 1; }
          return total;
        }
        """
        assert run_function(src, "f", (10,))[0] == 55

    def test_loop_exceeding_bound_is_wcet_violation_not_crash(self):
        # the WCET is computed from @bound; the simulator still runs the
        # real iteration count — here bound is honest so both agree
        src = """
        int:16 f(int:16 n) {
          int:16 i = 0;
          @bound(5) while (i < n) { i = i + 1; }
          return i;
        }
        """
        assert run_function(src, "f", (5,))[0] == 5

    def test_bool_condition_variable(self):
        src = """
        int:16 f(int:16 a) {
          bool big = a > 100;
          if (big) { return 1; }
          return 0;
        }
        """
        assert run_function(src, "f", (101,))[0] == 1
        assert run_function(src, "f", (100,))[0] == 0


class TestCallsAndGlobals:
    def test_nested_calls(self):
        src = """
        int:16 square(int:16 x) { return x * x; }
        int:16 f(int:16 a) { return square(a) + square(a + 1); }
        """
        assert run_function(src, "f", (5,))[0] == 25 + 36

    def test_void_function_with_global_effect(self):
        src = """
        int:16 total;
        void add(int:16 x) { total = total + x; }
        void f() { add(3); add(4); add(5); }
        """
        _, globals_values, *_ = run_function(src, "f", (), globals_out=["total"])
        assert globals_values["total"] == 12

    def test_global_initializer(self):
        src = """
        int:16 base = 1000;
        int:16 f() { return base + 1; }
        """
        assert run_function(src, "f")[0] == 1001

    def test_call_in_expression_position(self):
        src = """
        int:16 two() { return 2; }
        int:16 f(int:16 a) { return a * two() + two(); }
        """
        assert run_function(src, "f", (10,))[0] == 22

    def test_call_side_effects_both_happen(self):
        # Like C, operand evaluation order is unspecified (the accumulator
        # scheme evaluates the non-simple right operand first); both call
        # side effects must still occur exactly once.
        src = """
        int:16 log;
        int:16 mark(int:16 x) { log = log * 10 + x; return x; }
        void f() { int:16 t; t = mark(1) + mark(2); }
        """
        _, globals_values, *_ = run_function(src, "f", (), globals_out=["log"])
        assert globals_values["log"] in (12, 21)


class TestAggregates:
    def test_array_constant_index(self):
        src = """
        int:16 buf[4];
        void f() { buf[0] = 10; buf[3] = 40; }
        int:16 g() { return buf[0] + buf[3]; }
        """
        checkedless = run_function(src + "", "f", ())
        # run both functions on one machine
        _, _, _, tep, compiled = checkedless
        tep.run("g")
        ret = compiled.allocator.locations["g.__ret"]
        assert tep.read_variable(ret) == 50

    def test_array_dynamic_index(self):
        src = """
        int:16 buf[8];
        void fill() {
          int:16 i = 0;
          @bound(8) while (i < 8) { buf[i] = i * i; i = i + 1; }
        }
        int:16 get(int:16 i) { return buf[i]; }
        """
        _, _, _, tep, compiled = run_function(src, "fill", ())
        for index in range(8):
            loc = compiled.allocator.locations["get.i"]
            tep.write_variable(loc, index)
            tep.run("get")
            assert tep.read_variable(
                compiled.allocator.locations["get.__ret"]) == index * index

    def test_struct_fields(self):
        src = """
        typedef struct pt { int:16 x; int:16 y; } Point;
        Point p;
        void f(int:16 a) { p.x = a; p.y = a * 2; }
        int:16 g() { return p.x + p.y; }
        """
        _, _, _, tep, compiled = run_function(src, "f", (7,))
        tep.run("g")
        assert tep.read_variable(compiled.allocator.locations["g.__ret"]) == 21

    def test_array_of_structs(self):
        src = """
        typedef struct m { int:16 pos; int:16 vel; } Motor;
        Motor motors[3];
        void f() {
          motors[1].pos = 100;
          motors[1].vel = 5;
          motors[2].pos = 200;
        }
        int:16 g() { return motors[1].pos + motors[1].vel + motors[2].pos; }
        """
        _, _, _, tep, compiled = run_function(src, "f", ())
        tep.run("g")
        assert tep.read_variable(compiled.allocator.locations["g.__ret"]) == 305


class TestBuiltinsAndPorts:
    EXT = dict(events={"DONE"}, conditions={"READY", "FLAG"},
               ports={"Buffer", "Out"})

    def externals(self):
        return Externals(events=set(self.EXT["events"]),
                         conditions=set(self.EXT["conditions"]),
                         ports=set(self.EXT["ports"]))

    def test_raise_event(self):
        src = "void f() { Raise(DONE); }"
        _, _, _, tep, compiled = run_function(
            src, "f", (), externals=self.externals())
        assert compiled.maps.events["DONE"] in tep.events_raised

    def test_set_and_test_conditions(self):
        src = """
        int:16 f() {
          SetTrue(READY);
          SetFalse(FLAG);
          if (Test(READY)) { return 1; }
          return 0;
        }
        """
        result, _, _, tep, compiled = run_function(
            src, "f", (), externals=self.externals())
        assert result == 1
        assert tep.condition_cache[compiled.maps.conditions["READY"]] is True
        assert tep.condition_cache[compiled.maps.conditions["FLAG"]] is False

    def test_condition_read_as_value(self):
        src = "int:16 f() { if (READY) { return 5; } return 6; }"
        externals = self.externals()
        checked = prepare_program(src, MD16_TEP, externals)
        compiled = CodeGenerator(checked, MD16_TEP,
                                 maps=NameMaps.from_externals(externals)).compile()
        tep = Tep(MD16_TEP, compiled.flat_instructions())
        tep.condition_cache[compiled.maps.conditions["READY"]] = True
        tep.run("f")
        assert tep.read_variable(compiled.allocator.locations["f.__ret"]) == 5

    def test_ports_read_write(self):
        src = """
        void f() {
          int:8 v;
          v = ReadPort(Buffer);
          WritePort(Out, v + 1);
        }
        """
        externals = self.externals()
        maps = NameMaps.from_externals(externals)
        ports = SimplePorts({maps.ports["Buffer"]: 41})
        _, _, _, tep, compiled = run_function(
            src, "f", (), externals=externals, ports=ports)
        assert ports.values[maps.ports["Out"]] == 42

    def test_port_as_variable_sugar(self):
        src = "void f() { Out = Buffer + 1; }"
        externals = self.externals()
        maps = NameMaps.from_externals(externals)
        ports = SimplePorts({maps.ports["Buffer"]: 7})
        run_function(src, "f", (), externals=externals, ports=ports)
        assert ports.values[maps.ports["Out"]] == 8


class TestArchitectureSpecificCode:
    def test_comparator_emits_fused_branch(self):
        from repro.isa import Op
        src = "int:16 f(int:16 a) { if (a == 3) { return 1; } return 0; }"
        arch = MD16_TEP.with_(has_comparator=True)
        checked = prepare_program(src, arch)
        compiled = CodeGenerator(checked, arch).compile()
        ops = [i.op for i in compiled.objects["f"].instructions]
        assert Op.CBNE in ops or Op.CBEQ in ops
        # and it still computes the right thing
        assert run_function(src, "f", (3,), arch)[0] == 1
        assert run_function(src, "f", (4,), arch)[0] == 0

    def test_negator_used_when_available(self):
        from repro.isa import Op
        src = "int:16 f(int:16 a) { int:16 x; x = a; x = -x; return x; }"
        arch = MD16_TEP.with_(has_negator=True)
        checked = prepare_program(src, arch)
        compiled = CodeGenerator(checked, arch).compile()
        ops = [i.op for i in compiled.objects["f"].instructions]
        assert Op.NEG in ops
        assert run_function(src, "f", (9,), arch)[0] == -9

    def test_barrel_shifter_collapses_shift_chain(self):
        src = "int:16 f(int:16 a) { return a << 6; }"
        plain = prepare_program(src, MD16_TEP)
        with_barrel = MD16_TEP.with_(has_barrel_shifter=True)
        n_plain = len(CodeGenerator(plain, MD16_TEP).compile()
                      .objects["f"].instructions)
        n_barrel = len(CodeGenerator(
            prepare_program(src, with_barrel), with_barrel).compile()
            .objects["f"].instructions)
        assert n_barrel < n_plain
        assert run_function(src, "f", (3,), with_barrel)[0] == 192

    def test_custom_instruction_used_and_correct(self):
        from repro.isa import Op
        src = "int:16 f(int:16 a, int:16 b) { return (a + b) << 1; }"
        custom = CustomInstruction("fused", "((v0+v1)<<c1)", 2, 2)
        arch = MD16_TEP.with_(custom_instructions=(custom,))
        checked = prepare_program(src, arch)
        compiled = CodeGenerator(checked, arch).compile()
        ops = [i.op for i in compiled.objects["f"].instructions]
        assert Op.CUSTOM in ops
        assert run_function(src, "f", (10, 20), arch)[0] == 60

    def test_custom_instruction_distinguishes_repeated_variable(self):
        src_xx = "int:16 f(int:16 a) { return (a + a) << 1; }"
        custom = CustomInstruction("fused", "((v0+v1)<<c1)", 2, 2)
        arch = MD16_TEP.with_(custom_instructions=(custom,))
        # (a + a) has signature ((v0+v0)<<c1) which must NOT match
        checked = prepare_program(src_xx, arch)
        compiled = CodeGenerator(checked, arch).compile()
        from repro.isa import Op
        ops = [i.op for i in compiled.objects["f"].instructions]
        assert Op.CUSTOM not in ops
        assert run_function(src_xx, "f", (5,), arch)[0] == 20

    def test_storage_promotion_shrinks_wcet(self):
        src = """
        int:16 hot;
        void f() {
          hot = hot + 1;
          hot = hot + 2;
          hot = hot + 3;
        }
        """
        checked = prepare_program(src, MD16_TEP)
        base = CodeGenerator(checked, MD16_TEP).compile().wcets()["f"]
        promoted = CodeGenerator(
            checked, MD16_TEP,
            storage_map={"hot": StorageClass.INTERNAL}).compile().wcets()["f"]
        register = CodeGenerator(
            checked, MD16_TEP.with_(register_file_size=4),
            storage_map={"hot": StorageClass.REGISTER}).compile().wcets()["f"]
        assert register < promoted < base

    def test_microcode_optimization_shrinks_wcet_uniformly(self):
        src = "int:16 f(int:16 a) { return a + a + a; }"
        checked = prepare_program(src, MD16_TEP)
        compiled = CodeGenerator(checked, MD16_TEP).compile()
        unopt = compiled.wcets()["f"]
        opt_arch = MD16_TEP.with_(microcode_optimized=True)
        opt = CodeGenerator(prepare_program(src, opt_arch), opt_arch)\
            .compile().wcets()["f"]
        assert opt < unopt


MASK16 = 0xFFFF


def as_signed16(value):
    value &= MASK16
    return value - 0x10000 if value & 0x8000 else value


@st.composite
def arith_exprs(draw, depth=0):
    """Random arithmetic expressions with their Python evaluators."""
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            value = draw(st.integers(0, 200))
            return str(value), lambda a, b: value
        return ("a", lambda a, b: a) if choice == 1 else ("b", lambda a, b: b)
    op = draw(st.sampled_from(["+", "-", "&", "|", "^"]))
    left_text, left_fn = draw(arith_exprs(depth=depth + 1))
    right_text, right_fn = draw(arith_exprs(depth=depth + 1))
    fn = {"+": lambda x, y: x + y, "-": lambda x, y: x - y,
          "&": lambda x, y: x & y, "|": lambda x, y: x | y,
          "^": lambda x, y: x ^ y}[op]

    def evaluate(a, b):
        return fn(left_fn(a, b), right_fn(a, b))

    return f"({left_text} {op} {right_text})", evaluate


class TestDifferential:
    """Property: compiled code matches Python reference semantics."""

    @settings(max_examples=25, deadline=None)
    @given(arith_exprs(), st.integers(0, 1000), st.integers(0, 1000))
    def test_random_expressions_16bit(self, expr, a, b):
        text, reference = expr
        src = f"int:16 f(int:16 a, int:16 b) {{ return {text}; }}"
        result, *_ = run_function(src, "f", (a, b), MD16_TEP)
        expected = as_signed16(reference(a, b))
        assert result == expected, text

    @settings(max_examples=15, deadline=None)
    @given(arith_exprs(), st.integers(0, 255), st.integers(0, 255))
    def test_random_expressions_8bit_bus(self, expr, a, b):
        """Same expressions on the 8-bit minimal TEP (multi-word path)."""
        text, reference = expr
        src = f"int:16 f(int:16 a, int:16 b) {{ return {text}; }}"
        result, *_ = run_function(src, "f", (a, b), MINIMAL_TEP)
        expected = as_signed16(reference(a, b))
        assert result == expected, text

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 255), st.integers(1, 255))
    def test_division_differential(self, a, b):
        src = "int:16 f(int:16 a, int:16 b) { return a / b + a % b; }"
        for arch in (MINIMAL_TEP, MD16_TEP):
            result, *_ = run_function(src, "f", (a, b), arch)
            assert result == a // b + a % b
