"""Tests for the resilience subsystem: snapshots, queues, the farm.

The two load-bearing properties:

* **round-trip** — ``restore(snapshot(m))`` at an arbitrary cycle produces
  the exact same ``MachineStep`` sequence as the uninterrupted run from
  that cycle on, for every workload generator and even mid fault campaign;
* **conservation** — the supervised farm never loses work silently: under
  seeded chaos, submitted = accepted + rejected and accepted = processed +
  shed + in-flight, with every drop carrying a reason.
"""

import json

import pytest

from repro.action.check import Externals
from repro.fault import (
    ALL_TEPS_FAILED,
    FaultInjector,
    FaultPlan,
    FaultSurface,
    MachineEscalation,
    MachineGuard,
)
from repro.fault.model import Fault, CR_STATE_FLIP, TEP_FAIL, TEP_RUNAWAY, \
    TEP_STALL
from repro.flow import build_system, select_initial_architecture
from repro.isa import CodeGenerator, MD16_TEP, NameMaps, prepare_program
from repro.obs import MetricsRegistry, Tracer
from repro.pscp import PscpMachine
from repro.pscp.machine import MachineError
from repro.pscp.timers import Timer, TimerBank
from repro.resil import (
    BoundedQueue,
    CircuitBreaker,
    MachineSnapshot,
    RestartPolicy,
    SNAPSHOT_VERSION,
    SnapshotError,
    Supervisor,
    WorkItem,
    generate_event_stream,
)
from repro.resil.queue import REJECT_QUEUE_FULL
from repro.resil.supervisor import FAILED
from repro.fault.campaign import FaultCampaign
from repro.statechart import ChartBuilder
from repro.workloads import (
    SMD_MUTUAL_EXCLUSIONS,
    SMD_ROUTINES,
    smd_chart,
)
from repro.workloads.generators import (
    parallel_servers,
    pipeline_chart,
    wide_decoder,
)
from repro.workloads.motors import MotorSpec
import random


def build_machine(chart, source, arch=MD16_TEP, **kwargs):
    externals = Externals.from_chart(chart)
    checked = prepare_program(source, arch, externals)
    maps = NameMaps.from_chart(chart)
    compiled = CodeGenerator(checked, arch, maps=maps).compile()
    params = {f.name: [p.name for p in f.params]
              for f in checked.program.functions}
    return PscpMachine(chart, compiled, param_names=params, **kwargs)


def pingpong_chart():
    b = ChartBuilder("pingpong")
    b.event("GO", period=500).event("BACK")
    b.condition("FLAG")
    with b.or_state("Top", default="A"):
        b.basic("A").transition("B", label="GO/Work()")
        b.basic("B").transition("A", label="BACK/SetTrue(FLAG)")
    return b.build()


PINGPONG_ROUTINES = """
int:16 total;
void Work() { total = total + 3; }
"""


def step_fingerprint(step):
    return (tuple(t.index for t in step.fired), step.configuration,
            step.cycle_length, step.start_time, step.end_time,
            step.events_sampled, step.events_raised,
            step.faults, step.recoveries)


def round_robin_stimulus(chart, cycles):
    events = sorted(chart.events)
    return [[events[i % len(events)]] for i in range(cycles)]


# ---------------------------------------------------------------------------
# snapshot round-trip
# ---------------------------------------------------------------------------

WORKLOADS = {
    "parallel_servers": lambda: parallel_servers(3),
    "pipeline": lambda: pipeline_chart(3),
    "wide_decoder": lambda: wide_decoder(4),
}


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    @pytest.mark.parametrize("cut", [1, 7, 23])
    def test_restore_reproduces_remaining_steps(self, name, cut):
        chart, routines = WORKLOADS[name]()
        arch = select_initial_architecture(chart, routines)
        system = build_system(chart, routines, arch)
        stimulus = round_robin_stimulus(chart, 40)

        original = system.make_machine()
        for events in stimulus[:cut]:
            original.step(events)
        snapshot = original.snapshot()
        reference = [original.step(events) for events in stimulus[cut:]]

        restored = system.make_machine()
        restored.restore(snapshot)
        continued = [restored.step(events) for events in stimulus[cut:]]

        assert ([step_fingerprint(s) for s in continued]
                == [step_fingerprint(s) for s in reference])
        assert restored.time == original.time
        assert restored.cycle_count == original.cycle_count
        assert restored.executor.internal == original.executor.internal
        assert restored.executor.external == original.executor.external

    def test_json_round_trip_is_byte_identical(self):
        chart, routines = parallel_servers(2)
        arch = select_initial_architecture(chart, routines)
        system = build_system(chart, routines, arch)
        machine = system.make_machine()
        for events in round_robin_stimulus(chart, 9):
            machine.step(events)
        snapshot = machine.snapshot()
        text = snapshot.to_json_str()
        reparsed = MachineSnapshot.from_json_str(text)
        assert reparsed.to_json_str() == text
        # and the reparsed document restores just as well
        machine2 = system.make_machine()
        machine2.restore(reparsed)
        assert machine2.cr.configuration == machine.cr.configuration

    def test_snapshotting_does_not_perturb_the_run(self):
        chart = pingpong_chart()
        stimulus = [{"GO"}, {"BACK"}, set(), {"GO"}, {"BACK"}, {"GO"}]
        plain = build_machine(chart, PINGPONG_ROUTINES)
        observed = build_machine(chart, PINGPONG_ROUTINES)
        plain_steps = [plain.step(events) for events in stimulus]
        observed_steps = []
        for events in stimulus:
            observed.snapshot()  # pure read
            observed_steps.append(observed.step(events))
        assert ([step_fingerprint(s) for s in plain_steps]
                == [step_fingerprint(s) for s in observed_steps])
        assert plain.read_global("total") == observed.read_global("total")

    def test_timer_state_round_trips(self):
        chart = pingpong_chart()
        machine = build_machine(chart, PINGPONG_ROUTINES)
        bank = TimerBank([Timer("GO", period=40), Timer("BACK", period=70)])
        bank.events_between(0, 100)  # advance the counters
        snapshot = machine.snapshot(timer_bank=bank)
        assert snapshot.timers is not None
        bank.events_between(100, 500)  # perturb past the snapshot
        machine2 = build_machine(chart, PINGPONG_ROUTINES)
        bank2 = TimerBank([Timer("GO", period=40), Timer("BACK", period=70)])
        machine2.restore(snapshot, timer_bank=bank2)
        # the restored bank fires exactly like the original did after t=100
        fresh = TimerBank([Timer("GO", period=40), Timer("BACK", period=70)])
        fresh.events_between(0, 100)
        assert (bank2.events_between(100, 300)
                == fresh.events_between(100, 300))


class TestSnapshotValidation:
    def _snapshot(self):
        chart = pingpong_chart()
        machine = build_machine(chart, PINGPONG_ROUTINES)
        machine.step({"GO"})
        return machine, machine.snapshot()

    def test_version_mismatch_is_refused(self):
        machine, snapshot = self._snapshot()
        snapshot.version = SNAPSHOT_VERSION + 1
        with pytest.raises(SnapshotError, match="version"):
            machine.restore(snapshot)
        with pytest.raises(SnapshotError, match="version"):
            MachineSnapshot.from_json(snapshot.to_json())

    def test_wrong_chart_is_refused(self):
        _, snapshot = self._snapshot()
        chart, routines = parallel_servers(2)
        arch = select_initial_architecture(chart, routines)
        other = build_system(chart, routines, arch).make_machine()
        with pytest.raises(SnapshotError, match="chart"):
            other.restore(snapshot)

    def test_missing_field_is_refused(self):
        _, snapshot = self._snapshot()
        document = snapshot.to_json()
        del document["executor"]
        with pytest.raises(SnapshotError, match="missing"):
            MachineSnapshot.from_json(document)

    def test_attachment_state_needs_an_attachment(self):
        chart = pingpong_chart()
        machine = build_machine(chart, PINGPONG_ROUTINES)
        machine.attach_injector(FaultInjector(FaultPlan.empty()))
        machine.step({"GO"})
        snapshot = machine.snapshot()
        bare = build_machine(chart, PINGPONG_ROUTINES)
        with pytest.raises(SnapshotError, match="injector"):
            bare.restore(snapshot)
        # dropping attachment state restores fine
        bare.restore(snapshot, restore_attachments=False)
        assert bare.cycle_count == machine.cycle_count


# ---------------------------------------------------------------------------
# snapshot determinism under faults (the mid-campaign checkpoint property)
# ---------------------------------------------------------------------------

class TestSnapshotUnderFaults:
    CUT = 6

    def _plan(self):
        return FaultPlan((
            Fault(TEP_STALL, 2, None, 900),
            Fault(CR_STATE_FLIP, 4, 0),
            Fault(TEP_STALL, 9, None, 900),
        ))

    def _stimulus(self):
        return [{"GO"} if i % 2 == 0 else {"BACK"} for i in range(20)]

    def _machine(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        machine.attach_injector(FaultInjector(self._plan()))
        machine.attach_guard(MachineGuard())
        return machine

    def test_checkpoint_mid_campaign_continues_byte_identically(self):
        stimulus = self._stimulus()
        reference = self._machine()
        reference_steps = [reference.step(e) for e in stimulus]
        assert reference.injector.injected, "plan never bit; test is vacuous"
        assert reference.guard.detections, "guard never fired"

        interrupted = self._machine()
        for events in stimulus[:self.CUT]:
            interrupted.step(events)
        snapshot = interrupted.snapshot(include_attachments=True)
        text = snapshot.to_json_str()  # survives serialization too

        resumed = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        resumed.attach_injector(FaultInjector(FaultPlan.empty()))
        resumed.attach_guard(MachineGuard())
        resumed.restore(MachineSnapshot.from_json_str(text))
        continued = [resumed.step(e) for e in stimulus[self.CUT:]]

        ref_tail = [step_fingerprint(s)
                    for s in reference_steps[self.CUT:]]
        assert [step_fingerprint(s) for s in continued] == ref_tail
        assert resumed.read_global("total") == reference.read_global("total")
        # detection/injection history carried across the checkpoint
        assert ([d.describe() for d in resumed.guard.detections]
                == [d.describe() for d in reference.guard.detections])
        assert ([f.describe() for f in resumed.injector.injected]
                == [f.describe() for f in reference.injector.injected])


# ---------------------------------------------------------------------------
# guard escalation
# ---------------------------------------------------------------------------

class TestEscalation:
    def test_all_teps_failed_escalates_in_farm_mode(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        machine.attach_guard(MachineGuard(escalate_unrecoverable=True))
        with pytest.raises(MachineEscalation) as info:
            machine.fail_tep(0)
        assert info.value.kind == ALL_TEPS_FAILED
        assert machine.guard.escalation_count == 1

    def test_without_escalation_all_teps_failed_stays_machine_error(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        machine.attach_guard(MachineGuard())
        with pytest.raises(MachineError) as info:
            machine.fail_tep(0)
        assert not isinstance(info.value, MachineEscalation)

    def test_retry_exhaustion_escalates_in_farm_mode(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        plan = FaultPlan(tuple(Fault(TEP_RUNAWAY, 1) for _ in range(6)))
        machine.attach_injector(FaultInjector(plan))
        machine.attach_guard(MachineGuard(max_retries=1,
                                          escalate_unrecoverable=True))
        stimulus = [{"GO"} if i % 2 == 0 else {"BACK"} for i in range(30)]
        with pytest.raises(MachineEscalation) as info:
            for events in stimulus:
                machine.step(events)
        assert info.value.kind == "retry-exhausted"

    def test_reset_transient_clears_inflight_recovery_state(self):
        guard = MachineGuard()
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        machine.attach_guard(guard)
        guard._retry_heap.append((10, 0, 1))
        guard._attempts[1] = 2
        guard._consecutive_illegal = 2
        guard.watchdog_aborts = 5
        guard.reset_transient()
        assert not guard._retry_heap and not guard._attempts
        assert guard._consecutive_illegal == 0
        assert guard.watchdog_aborts == 5  # history survives


# ---------------------------------------------------------------------------
# fail_tep semantics + run() trace flushing (regression coverage)
# ---------------------------------------------------------------------------

class TestFailTep:
    def test_out_of_range_index_is_rejected(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES,
                                arch=MD16_TEP.with_(n_teps=2))
        with pytest.raises(MachineError, match="architecture has 2 TEP"):
            machine.fail_tep(2)
        with pytest.raises(MachineError, match="cannot fail TEP -1"):
            machine.fail_tep(-1)

    def test_failing_twice_is_idempotent(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES,
                                arch=MD16_TEP.with_(n_teps=2))
        machine.fail_tep(0)
        machine.fail_tep(0)  # no error, no double accounting
        assert machine.failed_teps == {0}
        assert machine._available_teps == [1]

    def test_run_flushes_coalesced_idle_spans(self):
        machine = build_machine(pingpong_chart(), PINGPONG_ROUTINES)
        tracer = Tracer()
        machine.attach_tracer(tracer)
        machine.run([{"GO"}, set(), set(), set()])  # ends quiescent
        idle = [e for e in tracer.events if e[2] == "idle"]
        assert idle, "trailing idle span was dropped"


# ---------------------------------------------------------------------------
# queues and breakers
# ---------------------------------------------------------------------------

class TestBoundedQueue:
    def test_accepts_until_full_then_rejects(self):
        queue = BoundedQueue(2, shed_enabled=False)
        assert queue.offer(WorkItem(0, ("E",))).accepted
        assert queue.offer(WorkItem(1, ("E",))).accepted
        verdict = queue.offer(WorkItem(2, ("E",)))
        assert not verdict.accepted
        assert verdict.reason == REJECT_QUEUE_FULL
        assert queue.high_watermark == 2

    def test_sheds_the_cheapest_oldest_item_for_higher_priority(self):
        queue = BoundedQueue(3)
        queue.offer(WorkItem(0, ("E",), priority=1))
        queue.offer(WorkItem(1, ("E",), priority=0))
        queue.offer(WorkItem(2, ("E",), priority=0))
        verdict = queue.offer(WorkItem(3, ("E",), priority=2))
        assert verdict.accepted
        assert verdict.shed is not None and verdict.shed.seq == 1
        # equal priority never sheds: FIFO fairness for same-class traffic
        verdict = queue.offer(WorkItem(4, ("E",), priority=0))
        assert not verdict.accepted

    def test_push_front_and_drain(self):
        queue = BoundedQueue(4)
        queue.offer(WorkItem(0, ("E",)))
        first = queue.pop()
        queue.push_front(first)
        assert queue.pop().seq == 0
        queue.offer(WorkItem(1, ("E",)))
        queue.offer(WorkItem(2, ("E",)))
        assert [i.seq for i in queue.drain()] == [1, 2]
        assert len(queue) == 0


class TestCircuitBreaker:
    def test_opens_after_threshold_and_probes_half_open(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_ticks=5)
        assert breaker.admits(0)
        breaker.record_failure(1)
        assert breaker.admits(1)
        breaker.record_failure(2)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.admits(3)
        assert breaker.admits(7)  # cooldown elapsed -> half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure(7)  # failed probe re-opens immediately
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.admits(12)
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.opened_count == 2


# ---------------------------------------------------------------------------
# the supervised farm
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def farm_system():
    chart, routines = parallel_servers(2)
    arch = select_initial_architecture(chart, routines)
    if arch.n_teps < 2:
        arch = arch.with_(n_teps=2)
    return build_system(chart, routines, arch)


class TestSupervisor:
    def _chaos_factory(self, system, seed):
        surface = FaultSurface.from_system(system)

        def factory(worker_index):
            rng = random.Random(seed * 6271 + worker_index)
            return FaultInjector(FaultPlan.generate(
                rng, surface, [TEP_RUNAWAY, TEP_FAIL],
                n_faults=5, horizon=30))
        return factory

    def _run(self, system, seed=3, items=80, **kwargs):
        supervisor = Supervisor.for_system(
            system, n_workers=2, queue_capacity=4,
            policy=kwargs.pop("policy", RestartPolicy(checkpoint_every=8)),
            guard_factory=lambda: MachineGuard(
                max_retries=1, escalate_unrecoverable=True),
            injector_factory=self._chaos_factory(system, seed),
            **kwargs)
        stream = generate_event_stream(system.chart.events, items, seed=seed)
        return supervisor.run(stream)

    def test_conservation_holds_under_seeded_chaos(self, farm_system):
        report = self._run(farm_system)
        assert report.conservation() == []
        assert report.restarts >= 1, "chaos never forced a restart"
        assert report.processed > 0
        total_shed = sum(report.shed.values())
        total_rejected = sum(report.rejected.values())
        assert (report.submitted
                == report.processed + total_shed + total_rejected
                + report.in_flight)

    def test_chaos_run_is_deterministic(self, farm_system):
        first = self._run(farm_system)
        second = self._run(farm_system)
        assert (json.dumps(first.to_json(), sort_keys=True)
                == json.dumps(second.to_json(), sort_keys=True))

    def test_exhausted_restart_budget_fails_worker_and_sheds_queue(
            self, farm_system):
        report = self._run(farm_system,
                           policy=RestartPolicy(max_restarts=0,
                                                checkpoint_every=8))
        assert report.conservation() == []
        assert report.permanent_failures >= 1
        failed = [w for w in report.workers if w["state"] == FAILED]
        assert failed
        assert report.shed.get("worker-failed", 0) >= 1

    def test_fault_free_farm_processes_everything(self, farm_system):
        supervisor = Supervisor.for_system(farm_system, n_workers=2,
                                           queue_capacity=8)
        stream = generate_event_stream(farm_system.chart.events, 40, seed=1)
        report = supervisor.run(stream)
        assert report.conservation() == []
        assert report.processed == 40
        assert report.restarts == 0 and not report.rejected

    def test_metrics_are_published(self, farm_system):
        metrics = MetricsRegistry()
        supervisor = Supervisor.for_system(farm_system, n_workers=2,
                                           metrics=metrics)
        stream = generate_event_stream(farm_system.chart.events, 20, seed=1)
        supervisor.run(stream)
        assert metrics["farm.processed"].value == 20
        assert "farm.worker0.queue_depth" in metrics
        assert "farm.worker1.processed" in metrics

    def test_event_stream_is_seed_deterministic(self, farm_system):
        events = farm_system.chart.events
        assert (generate_event_stream(events, 25, seed=9)
                == generate_event_stream(events, 25, seed=9))
        assert (generate_event_stream(events, 25, seed=9)
                != generate_event_stream(events, 25, seed=10))


class TestScopedRegistry:
    def test_scoped_names_prefix_into_the_parent(self):
        metrics = MetricsRegistry()
        scoped = metrics.scoped("farm.worker0")
        scoped.counter("processed").inc(3)
        scoped.scoped("queue").gauge("depth").set(2)
        assert metrics["farm.worker0.processed"].value == 3
        assert metrics["farm.worker0.queue.depth"].value == 2


# ---------------------------------------------------------------------------
# restore-from-checkpoint inside the closed loop and the campaign
# ---------------------------------------------------------------------------

FAST_MOTORS = {
    "X": MotorSpec("X", 50_000.0, 0.025e-3, 1.25, 2000.0),
    "Y": MotorSpec("Y", 50_000.0, 0.025e-3, 1.25, 2000.0),
    "Phi": MotorSpec("Phi", 9_000.0, 0.1, 900.0, 0.0),
}


@pytest.fixture(scope="module")
def smd_system():
    arch = MD16_TEP.with_(n_teps=2,
                          mutual_exclusions=SMD_MUTUAL_EXCLUSIONS,
                          microcode_optimized=True)
    return build_system(smd_chart(), SMD_ROUTINES, arch, specialize=True)


class TestCampaignRestore:
    def _campaign(self, system):
        return FaultCampaign(system, seed=2, runs_per_class=1,
                             classes=("tep-fail",), faults_per_run=3,
                             restore_from_checkpoint=True)

    def test_unrecoverable_run_is_restored_not_crashed(self, smd_system):
        report = self._campaign(smd_system).run()
        stats = report.class_stats[0]
        assert stats.restored >= 1
        assert stats.crashed == 0
        assert stats.completed_moves == stats.runs
        run = next(r for r in report.runs if r.restored)
        assert not run.crashed and run.completed_moves

    def test_restored_campaign_is_seed_deterministic(self, smd_system):
        first = self._campaign(smd_system).run()
        second = self._campaign(smd_system).run()
        assert (json.dumps(first.to_json(), sort_keys=True)
                == json.dumps(second.to_json(), sort_keys=True))

    def test_without_restore_the_same_plan_crashes(self, smd_system):
        campaign = FaultCampaign(smd_system, seed=2, runs_per_class=1,
                                 classes=("tep-fail",), faults_per_run=3)
        report = campaign.run()
        assert report.class_stats[0].crashed >= 1
        assert report.class_stats[0].restored == 0
