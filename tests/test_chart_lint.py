"""Tests for the statechart analyses: determinism, races, quiescence, SLA."""

import pytest

from repro.action.check import Externals, check_program
from repro.action.parser import parse_program
from repro.analysis.chart_lint import (
    covers,
    determinism,
    enable_products,
    jointly_satisfiable,
    orthogonal,
    quiescence,
    union_covers,
    wellformedness,
)
from repro.analysis.effects import (
    EffectAnalyzer,
    transition_effects,
    write_conflicts,
)
from repro.analysis.races import and_region_races
from repro.analysis.sla_lint import sla_lint
from repro.sla.encode import StateEncoding
from repro.statechart import parse_chart
from repro.statechart.validate import chart_problems


def product(*positive, neg=()):
    return (frozenset(positive), frozenset(neg))


class TestEnableAlgebra:
    def test_identical_products_cover(self):
        a = [product("GO")]
        assert covers(a, a)
        assert jointly_satisfiable(a, a)

    def test_weaker_covers_stronger(self):
        weaker = [product("GO")]
        stronger = [product("GO", "X")]
        assert covers(weaker, stronger)
        assert not covers(stronger, weaker)

    def test_contradictory_literals_not_satisfiable(self):
        a = [product("GO")]
        b = [product(neg=("GO",))]
        assert not jointly_satisfiable(a, b)

    def test_unsatisfiable_loser_is_covered(self):
        assert covers([product("GO")], [])

    def test_empty_product_lists(self):
        # an empty SOP is FALSE: nothing satisfies it, everything covers it
        assert not jointly_satisfiable([], [product("GO")])
        assert not jointly_satisfiable([product("GO")], [])
        assert not jointly_satisfiable([], [])
        assert covers([], [])
        assert not covers([], [product("GO")])

    def test_negated_condition_products(self):
        chart = parse_chart("""
chart neg;
event GO;
condition X;
condition Y;
orstate Main { contains A, B; default A; }
basicstate A {
  transition { target B; label "GO [not (X and Y)]"; }
}
basicstate B { }
""")
        products = enable_products(chart.transitions[0])
        # De Morgan: GO and (not X or not Y)
        assert set(products) == {
            (frozenset({"GO"}), frozenset({"X"})),
            (frozenset({"GO"}), frozenset({"Y"})),
        }

    def test_contradictory_product_dropped(self):
        chart = parse_chart("""
chart contra;
event GO;
condition X;
orstate Main { contains A, B; default A; }
basicstate A {
  transition { target B; label "GO [X and not X]"; }
}
basicstate B { }
""")
        assert enable_products(chart.transitions[0]) == []


class TestUnionCovers:
    def test_split_on_one_literal(self):
        winners = [[product("GO", "X")], [product("GO", neg=("X",))]]
        assert union_covers(winners, [product("GO")])

    def test_no_single_winner_covers(self):
        winners = [[product("GO", "X")], [product("GO", neg=("X",))]]
        for winner in winners:
            assert not covers(winner, [product("GO")])

    def test_gap_in_union_is_not_covered(self):
        # GO[X] + GO[Y] leave GO[not X and not Y] enabled
        winners = [[product("GO", "X")], [product("GO", "Y")]]
        assert not union_covers(winners, [product("GO")])

    def test_single_winner_still_covers(self):
        assert union_covers([[product("GO")]], [product("GO", "X")])

    def test_empty_loser_is_covered(self):
        assert union_covers([[product("GO")]], [])

    def test_disjoint_winner_removes_nothing(self):
        winners = [[product("HALT")]]
        assert not union_covers(winners, [product("GO", neg=("HALT",))])


class TestDeterminism:
    def chart(self, body):
        return parse_chart("chart t;\nevent GO;\nevent HALT;\n"
                           "condition X;\n" + body)

    def test_identical_enables_shadow(self):
        chart = self.chart("""
orstate Main { contains A, B, C; default A; }
basicstate A {
  transition { target B; label "GO"; }
  transition { target C; label "GO"; }
}
basicstate B { transition { target A; label "HALT"; } }
basicstate C { transition { target A; label "HALT"; } }
""")
        codes = [d.code for d in determinism(chart)]
        assert codes == ["PSC201"]

    def test_partial_overlap_is_note_not_error(self):
        chart = self.chart("""
orstate Main { contains A, B, C; default A; }
basicstate A {
  transition { target B; label "GO [X]"; }
  transition { target C; label "GO"; }
}
basicstate B { transition { target A; label "HALT"; } }
basicstate C { transition { target A; label "HALT"; } }
""")
        codes = [d.code for d in determinism(chart)]
        assert codes == ["PSC202"]

    def test_contradictory_enables_are_clean(self):
        chart = self.chart("""
orstate Main { contains A, B, C; default A; }
basicstate A {
  transition { target B; label "GO"; }
  transition { target C; label "not GO"; }
}
basicstate B { }
basicstate C { }
""")
        assert determinism(chart) == []

    def test_co_firable_triggers_are_only_a_note(self):
        # Distinct events can still co-occur in one cycle, so this is a
        # PSC202 note (suppressed by default), never a PSC201 error.
        chart = self.chart("""
orstate Main { contains A, B, C; default A; }
basicstate A {
  transition { target B; label "GO"; }
  transition { target C; label "HALT"; }
}
basicstate B { }
basicstate C { }
""")
        assert {d.code for d in determinism(chart)} == {"PSC202"}

    def test_exclusive_sources_do_not_conflict(self):
        chart = self.chart("""
orstate Main { contains A, B; default A; }
basicstate A { transition { target B; label "GO"; } }
basicstate B { transition { target A; label "GO"; } }
""")
        assert determinism(chart) == []

    def test_union_shadowing_is_psc205(self):
        # neither GO[X] nor GO[not X] covers bare GO, but together they do
        chart = self.chart("""
orstate Main { contains A, B, C, D; default A; }
basicstate A {
  transition { target B; label "GO [X]"; }
  transition { target C; label "GO [not X]"; }
  transition { target D; label "GO"; }
}
basicstate B { }
basicstate C { }
basicstate D { }
""")
        codes = [d.code for d in determinism(chart)]
        assert codes.count("PSC205") == 1
        assert "PSC201" not in codes
        message = next(d for d in determinism(chart)
                       if d.code == "PSC205").message
        assert "A --GO--> D" in message and "union" in message

    def test_union_with_gap_is_not_psc205(self):
        # GO[X] + HALT[not X] leave GO[not X and not HALT] enabled
        chart = self.chart("""
orstate Main { contains A, B, C, D; default A; }
basicstate A {
  transition { target B; label "GO [X]"; }
  transition { target C; label "HALT [not X]"; }
  transition { target D; label "GO"; }
}
basicstate B { }
basicstate C { }
basicstate D { }
""")
        codes = [d.code for d in determinism(chart)]
        assert "PSC205" not in codes and "PSC201" not in codes

    def test_single_cover_stays_psc201_not_psc205(self):
        chart = self.chart("""
orstate Main { contains A, B, C, D; default A; }
basicstate A {
  transition { target B; label "GO [X]"; }
  transition { target C; label "GO"; }
  transition { target D; label "GO [not X]"; }
}
basicstate B { }
basicstate C { }
basicstate D { }
""")
        codes = [d.code for d in determinism(chart)]
        assert "PSC201" in codes
        assert "PSC205" not in codes

    def test_scope_priority_union_shadows_inner_transition(self):
        # the two outer-scope transitions beat the inner one jointly
        chart = self.chart("""
orstate Main { contains Outer, E; default Outer; }
orstate Outer {
  contains A, B;
  default A;
  transition { target E; label "GO [X]"; }
  transition { target E; label "GO [not X]"; }
}
basicstate A { transition { target B; label "GO"; } }
basicstate B { }
basicstate E { }
""")
        codes = [d.code for d in determinism(chart)]
        assert codes.count("PSC205") == 1


RACE_CHART = """
chart lint_race;
event TICK period 1000;
event TOCK period 1000;
andstate Par { contains Left, Right; }
orstate Left { contains L0; default L0; }
basicstate L0 { transition { target L0; label "TICK/IncLeft()"; } }
orstate Right { contains R0; default R0; }
basicstate R0 { transition { target R0; label "TOCK/IncRight()"; } }
"""

RACE_ROUTINES = """
int:16 shared;
void IncLeft() { shared = shared + 1; }
void IncRight() { shared = shared + 2; }
"""


def checked_for(chart, source):
    return check_program(parse_program(source), Externals.from_chart(chart))


class TestRaces:
    def test_shared_write_races(self):
        chart = parse_chart(RACE_CHART)
        effects = transition_effects(chart, checked_for(chart, RACE_ROUTINES))
        diagnostics = and_region_races(chart, effects)
        assert [d.code for d in diagnostics] == ["PSC203"]
        assert "shared" in diagnostics[0].message

    def test_mutual_exclusion_suppresses(self):
        chart = parse_chart(RACE_CHART)
        effects = transition_effects(chart, checked_for(chart, RACE_ROUTINES))
        exclusions = frozenset({frozenset({"IncLeft", "IncRight"})})
        assert and_region_races(chart, effects, exclusions) == []

    def test_contradictory_triggers_do_not_race(self):
        chart = parse_chart("""
chart t;
event TICK;
andstate Par { contains Left, Right; }
orstate Left { contains L0; default L0; }
basicstate L0 { transition { target L0; label "TICK/IncLeft()"; } }
orstate Right { contains R0; default R0; }
basicstate R0 { transition { target R0; label "not TICK/IncRight()"; } }
""")
        effects = transition_effects(chart, checked_for(chart, RACE_ROUTINES))
        assert and_region_races(chart, effects) == []

    def test_orthogonality_predicate(self):
        chart = parse_chart(RACE_CHART)
        assert orthogonal(chart, "L0", "R0")
        assert not orthogonal(chart, "L0", "Left")


CONSTANT_ARG_ROUTINES = """
int:16 arr[4];
void Bump(int:8 m) { arr[m] = arr[m] + 1; }
"""


class TestEffects:
    def two_region_chart(self, left_action, right_action):
        return parse_chart(f"""
chart t;
event TICK;
event TOCK;
andstate Par {{ contains Left, Right; }}
orstate Left {{ contains L0; default L0; }}
basicstate L0 {{ transition {{ target L0; label "TICK/{left_action}"; }} }}
orstate Right {{ contains R0; default R0; }}
basicstate R0 {{ transition {{ target R0; label "TOCK/{right_action}"; }} }}
""")

    def test_constant_binding_separates_elements(self):
        chart = self.two_region_chart("Bump(0)", "Bump(1)")
        checked = checked_for(chart, CONSTANT_ARG_ROUTINES)
        effects = transition_effects(chart, checked)
        assert effects[0].writes == frozenset({"arr[0]"})
        assert effects[1].writes == frozenset({"arr[1]"})
        assert and_region_races(chart, effects) == []

    def test_same_constant_element_races(self):
        chart = self.two_region_chart("Bump(2)", "Bump(2)")
        checked = checked_for(chart, CONSTANT_ARG_ROUTINES)
        effects = transition_effects(chart, checked)
        assert [d.code for d in and_region_races(chart, effects)] == \
            ["PSC203"]

    def test_unknown_index_overlaps_everything(self):
        assert write_conflicts.__module__ == "repro.analysis.effects"
        from repro.analysis.effects import Effects
        unknown = Effects(writes=frozenset({"arr[*]"}))
        known = Effects(writes=frozenset({"arr[3]"}))
        other = Effects(writes=frozenset({"other"}))
        assert write_conflicts(unknown, known) == ["arr[*]"]
        assert write_conflicts(unknown, other) == []

    def test_condition_writes_conflict_only_on_different_values(self):
        from repro.analysis.effects import Effects
        set_true = Effects(cond_writes=frozenset({("C", True)}))
        set_false = Effects(cond_writes=frozenset({("C", False)}))
        assert write_conflicts(set_true, set_true) == []
        assert write_conflicts(set_true, set_false) == ["condition C"]

    def test_builtin_effects_from_action_text(self):
        chart = self.two_region_chart("Bump(0)", "Bump(1)")
        analyzer = EffectAnalyzer(checked_for(chart, CONSTANT_ARG_ROUTINES))
        assert analyzer.action_effects("Raise(DONE)").raises == \
            frozenset({"DONE"})
        assert analyzer.action_effects("SetTrue(C)").cond_writes == \
            frozenset({("C", True)})


class TestQuiescence:
    def test_mutual_raise_cycle(self):
        chart = parse_chart("""
chart t;
event E1;
event E2;
orstate Main { contains A, B; default A; }
basicstate A { transition { target B; label "E1/RaiseE2()"; } }
basicstate B { transition { target A; label "E2/RaiseE1()"; } }
""")
        raised = {0: frozenset({"E2"}), 1: frozenset({"E1"})}
        diagnostics = quiescence(chart, raised)
        assert [d.code for d in diagnostics] == ["PSC204"]
        assert "E1" in diagnostics[0].message
        assert "E2" in diagnostics[0].message

    def test_acyclic_raises_are_clean(self):
        chart = parse_chart("""
chart t;
event E1;
event E2;
orstate Main { contains A, B; default A; }
basicstate A { transition { target B; label "E1/RaiseE2()"; } }
basicstate B { transition { target A; label "E2"; } }
""")
        assert quiescence(chart, {0: frozenset({"E2"})}) == []


class TestSla:
    def test_duplicate_tat_entry(self):
        chart = parse_chart("""
chart t;
event GO;
orstate Main { contains A, B; default A; }
basicstate A {
  transition { target B; label "GO/Ping()"; }
  transition { target B; label "GO/Ping()"; }
}
basicstate B { transition { target A; label "GO"; } }
""")
        codes = [d.code for d in sla_lint(chart)]
        assert codes.count("PSC501") == 1

    def test_binary_encoding_has_no_collisions(self):
        chart = parse_chart(RACE_CHART)
        assert [d for d in sla_lint(chart) if d.code == "PSC502"] == []

    def test_degenerate_encoding_collides(self):
        chart = parse_chart("""
chart t;
event GO;
orstate Main { contains A, B; default A; }
basicstate A { transition { target B; label "GO"; } }
basicstate B { }
""")
        broken = StateEncoding(chart, 1,
                               {name: () for name in chart.states})
        codes = [d.code for d in sla_lint(chart, encoding=broken)]
        assert "PSC502" in codes


class TestLegacyWrappers:
    def test_chart_problems_matches_wellformedness_messages(self):
        chart = parse_chart("""
chart t;
event GO;
orstate Main { contains A, B; default A; }
basicstate A { transition { target B; label "GO or MISSING"; } }
basicstate B { }
""")
        assert chart_problems(chart) == \
            [d.message for d in wellformedness(chart)]
        assert any("MISSING" in p for p in chart_problems(chart))
