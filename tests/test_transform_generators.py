"""Tests for AST transforms (specialization) and synthetic generators."""

import pytest

from repro.action import check_program, parse_program
from repro.action.transform import (
    TransformError,
    clone_function,
    specialize_call,
)
from repro.flow import build_system, select_initial_architecture
from repro.isa import MD16_TEP
from repro.statechart import Interpreter
from repro.workloads.generators import (
    parallel_servers,
    pipeline_chart,
    wide_decoder,
)


class TestSpecializeCall:
    def get_fn(self, src, name="f"):
        program = parse_program(src)
        check_program(program)
        return program.function(name)

    def test_constants_folded(self):
        fn = self.get_fn("""
        int:16 arr[4];
        void f(int:16 m) { arr[m] = arr[m + 1] + m; }
        """)
        clone = specialize_call(fn, [2], "f_2")
        assert clone.params == []
        assert clone.name == "f_2"
        # re-parseable into a checked program
        program = parse_program("int:16 arr[4]; void g() { }")
        program.functions.append(clone)
        check_program(program)

    def test_wrong_arity_rejected(self):
        fn = self.get_fn("void f(int:16 a, int:16 b) { }")
        with pytest.raises(TransformError, match="parameter"):
            specialize_call(fn, [1], "f_1")

    def test_assigned_parameter_rejected(self):
        fn = self.get_fn("int:16 g; void f(int:16 m) { m = m + 1; g = m; }")
        with pytest.raises(TransformError, match="assigned"):
            specialize_call(fn, [3], "f_3")

    def test_clone_is_deep(self):
        fn = self.get_fn("int:16 g; void f(int:16 m) { if (m > 1) { g = m; } }")
        clone = specialize_call(fn, [5], "f_5")
        assert clone.body is not fn.body
        assert clone.body[0] is not fn.body[0]

    def test_wcet_override_carried(self):
        fn = self.get_fn("void f(int:16 m) @wcet(99) { }")
        assert specialize_call(fn, [1], "f_1").wcet_override == 99

    def test_plain_clone(self):
        fn = self.get_fn("void f(int:16 m) { int:16 t; t = m; }")
        clone = clone_function(fn, "f2")
        assert clone.name == "f2"
        assert len(clone.params) == 1


class TestGenerators:
    def test_parallel_servers_structure(self):
        chart, src = parallel_servers(4)
        assert chart.states["Serving"].children == ["R0", "R1", "R2", "R3"]
        assert len(chart.constrained_events()) == 4
        # chart executes
        interp = Interpreter(chart)
        interp.step({"START"})
        assert interp.in_state("Wait0") and interp.in_state("Wait3")

    def test_parallel_servers_builds_and_validates(self):
        chart, src = parallel_servers(3)
        system = build_system(chart, src, MD16_TEP)
        assert system.critical_paths()["REQ0"] > 0

    def test_more_teps_shrink_parallel_critical_path(self):
        chart, src = parallel_servers(4, work_iterations=10)
        one = build_system(chart, src, MD16_TEP)
        four = build_system(chart, src, MD16_TEP.with_(n_teps=4))
        assert four.critical_paths()["REQ0"] < one.critical_paths()["REQ0"]

    def test_pipeline_serial_little_tep_benefit(self):
        chart, src = pipeline_chart(4)
        one = build_system(chart, src, MD16_TEP)
        two = build_system(chart, src, MD16_TEP.with_(n_teps=2))
        # no parallel regions: identical critical paths
        assert one.critical_paths()["FEED"] == two.critical_paths()["FEED"]

    def test_pipeline_executes(self):
        chart, src = pipeline_chart(3, work_iterations=2)
        system = build_system(chart, src, MD16_TEP)
        machine = system.make_machine()
        machine.step({"FEED"})   # stage 0 runs, raises PASS1
        machine.step()           # stage 1 consumes PASS1
        machine.step()           # stage 2
        assert machine.read_global("token") == 2 * 1 + 2 * 2 + 2 * 3

    def test_wide_decoder_sla_grows(self):
        small = build_system(*wide_decoder(4), MD16_TEP)
        large = build_system(*wide_decoder(16), MD16_TEP)
        assert large.pla.product_terms > small.pla.product_terms
        assert large.pla.layout.width > small.pla.layout.width

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            parallel_servers(1)
        with pytest.raises(ValueError):
            pipeline_chart(1)
        with pytest.raises(ValueError):
            wide_decoder(0)

    def test_initial_architecture_selection_on_generated(self):
        chart, src = parallel_servers(2)
        arch = select_initial_architecture(chart, src)
        assert arch.data_width in (8, 16)
