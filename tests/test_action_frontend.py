"""Tests for the intermediate-C lexer and parser (Fig. 2b dialect)."""

import pytest

from repro.action import (
    ActionParseError,
    ArrayType,
    Assign,
    Binary,
    BinOp,
    BoolType,
    Call,
    EnumType,
    ExprStmt,
    If,
    IntLiteral,
    IntType,
    LexError,
    NameRef,
    Return,
    StructType,
    Unary,
    UnOp,
    VarDecl,
    VoidType,
    While,
    parse_program,
    parse_with_preamble,
    tokenize,
    type_width,
)

FIG_2B = """
enum ECD {Event, Condition, Data};
enum Encoding {Onehot, Binary};
enum PortDir {Input, Output, Bidirectional};
typedef struct port {
  ECD          Type;
  int:8        Width;
  int:8        Address;
  PortDir      Direction;
} Port;
typedef struct ec {
  ECD           Type;
  int:4         Size;
  int:8         Representation;
  int:4         PositionInPort;
  Port          p;
  int:32        TimeConstraint;
} EventCondition;

Port PE0 = {Event, 1, 0700, Output};
Port CE0 = {Condition, 1, 0712, Bidirectional};
Port Buffer = {Data, 8, 0717, Bidirectional};
EventCondition X_PULSE = {Event, 1, B:1, 0, PE0, 400};
"""


class TestLexer:
    def test_binary_literal(self):
        tokens = tokenize("B:001011")
        assert tokens[0].kind == "number"
        assert tokens[0].number == 0b001011
        assert tokens[0].base == 2

    def test_octal_literal(self):
        tokens = tokenize("0717")
        assert tokens[0].number == 0o717
        assert tokens[0].base == 8

    def test_hex_literal(self):
        assert tokenize("0x1F")[0].number == 31

    def test_decimal_zero(self):
        assert tokenize("0")[0].number == 0

    def test_width_type_tokens(self):
        values = [t.value for t in tokenize("int:16 x;")][:-1]
        assert values == ["int", ":", "16", "x", ";"]

    def test_comments_stripped(self):
        tokens = tokenize("a // comment\n/* block\ncomment */ b")
        assert [t.value for t in tokens[:-1]] == ["a", "b"]

    def test_multichar_operators_munch(self):
        values = [t.value for t in tokenize("a <<= b >> c != d")][:-1]
        assert values == ["a", "<<=", "b", ">>", "c", "!=", "d"]

    def test_unknown_char_raises_with_line(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("ok;\n  $bad")
        assert excinfo.value.line == 2

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == "eof"


class TestFig2bParsing:
    """The exact intermediate-C fragment of Fig. 2b parses."""

    def test_enums(self):
        program = parse_program(FIG_2B)
        names = [e.name for e in program.enums]
        assert names == ["ECD", "Encoding", "PortDir"]
        ecd = program.enums[0]
        assert ecd.members == ("Event", "Condition", "Data")
        assert ecd.value_of("Data") == 2

    def test_typedef_structs(self):
        program = parse_program(FIG_2B)
        port = next(s for s in program.structs if s.name == "Port")
        assert [f[0] for f in port.fields] == [
            "Type", "Width", "Address", "Direction"]
        assert port.field_type("Width") == IntType(8)

    def test_nested_struct_field(self):
        program = parse_program(FIG_2B)
        ec = next(s for s in program.structs if s.name == "EventCondition")
        assert isinstance(ec.field_type("p"), StructType)
        assert ec.field_type("TimeConstraint") == IntType(32)

    def test_port_globals_with_initializer_lists(self):
        program = parse_program(FIG_2B)
        pe0 = program.global_var("PE0")
        assert pe0.init_list is not None
        assert isinstance(pe0.init_list[0], NameRef)
        assert pe0.init_list[0].name == "Event"
        assert pe0.init_list[2].value == 0o700

    def test_event_condition_global(self):
        program = parse_program(FIG_2B)
        xp = program.global_var("X_PULSE")
        assert xp.init_list is not None
        assert xp.init_list[-1].value == 400  # TimeConstraint
        assert xp.init_list[1].value == 1

    def test_preamble_helper(self):
        program = parse_with_preamble("int:8 x;")
        assert program.global_var("x").typ == IntType(8)
        assert any(s.name == "Port" for s in program.structs)


class TestTypeSyntax:
    def test_bare_int_is_16_bits(self):
        program = parse_program("int x;")
        assert program.global_var("x").typ == IntType(16)

    def test_uint(self):
        program = parse_program("uint:4 x;")
        assert program.global_var("x").typ == IntType(4, signed=False)

    def test_array_type(self):
        program = parse_program("int:8 buf[16];")
        typ = program.global_var("buf").typ
        assert typ == ArrayType(IntType(8), 16)
        assert type_width(typ) == 128

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            parse_program("int:0 x;")

    def test_struct_width_is_field_sum(self):
        program = parse_program(FIG_2B)
        port = next(s for s in program.structs if s.name == "Port")
        assert type_width(port) == 2 + 8 + 8 + 2  # enum(3 values)=2 bits etc.


class TestStatements:
    def test_function_with_params(self):
        program = parse_program("int:8 add(int:8 a, int:8 b) { return a + b; }")
        f = program.function("add")
        assert [p.name for p in f.params] == ["a", "b"]
        assert isinstance(f.body[0], Return)

    def test_void_param_list(self):
        program = parse_program("void f(void) { return; }")
        assert program.function("f").params == []

    def test_if_else_chain(self):
        program = parse_program("""
        void f(int:8 a, int:8 b) {
          if (a == b) { a = 1; } else if (a < b) { a = 2; } else a = 3;
        }
        """)
        stmt = program.function("f").body[0]
        assert isinstance(stmt, If)
        assert isinstance(stmt.else_body[0], If)

    def test_while_with_bound(self):
        program = parse_program("""
        void f() { int:8 i; i = 0; @bound(10) while (i < 10) { i += 1; } }
        """)
        loop = program.function("f").body[-1]
        assert isinstance(loop, While)
        assert loop.bound == 10

    def test_wcet_annotation(self):
        program = parse_program("void f() @wcet(99) { }")
        assert program.function("f").wcet_override == 99

    def test_compound_assignment(self):
        program = parse_program("void f(int:8 a) { a <<= 2; }")
        stmt = program.function("f").body[0]
        assert isinstance(stmt, Assign)
        assert stmt.op is BinOp.SHL

    def test_local_declaration_with_init(self):
        program = parse_program("void f() { int:16 t = 5; }")
        decl = program.function("f").body[0]
        assert isinstance(decl, VarDecl)
        assert decl.init.value == 5


class TestExpressions:
    def get_expr(self, text):
        program = parse_program(f"void f(int:8 a, int:8 b, int:8 c) {{ a = {text}; }}")
        return program.function("f").body[0].value

    def test_precedence_mul_over_add(self):
        expr = self.get_expr("a + b * c")
        assert expr.op is BinOp.ADD
        assert expr.right.op is BinOp.MUL

    def test_precedence_shift_below_add(self):
        expr = self.get_expr("a << b + c")
        assert expr.op is BinOp.SHL

    def test_comparison_below_bitand(self):
        # C-style: & binds looser than ==, so a & b == c is a & (b == c)
        expr = self.get_expr("a & b == c")
        assert expr.op is BinOp.AND
        assert expr.right.op is BinOp.EQ

    def test_unary_negate(self):
        expr = self.get_expr("-a")
        assert isinstance(expr, Unary)
        assert expr.op is UnOp.NEG

    def test_call_in_expression(self):
        expr = self.get_expr("g(a, b) + 1")
        assert isinstance(expr.left, Call)
        assert expr.left.name == "g"

    def test_field_and_index_postfix(self):
        program = parse_program("""
        typedef struct p { int:8 x; } P;
        P ps[4];
        void f() { int:8 v; v = ps[2].x; }
        """)
        value = program.function("f").body[-1].value
        assert value.field == "x"

    def test_parenthesized(self):
        expr = self.get_expr("(a + b) * c")
        assert expr.op is BinOp.MUL


class TestParseErrors:
    @pytest.mark.parametrize("bad", [
        "void f( {",
        "void f() { int:8 }",
        "void f() { a = ; }",
        "int x",
        "void f() { @bound(3) a = 1; }",
        "void f() { @frob(3) while (1) {} }",
        "enum E {A, B}",
        "void f() { 1 = a; }",
    ])
    def test_rejects(self, bad):
        with pytest.raises(ActionParseError):
            parse_program(bad)

    def test_error_carries_line(self):
        with pytest.raises(ActionParseError) as excinfo:
            parse_program("int:8 ok;\nvoid f() { !!; }")
        assert excinfo.value.line == 2
