"""Tests for the pipelined TEP extension (section 6's future work)."""

import pytest

from repro.flow import Improver, build_system
from repro.hw import tep_area_clbs
from repro.isa import (
    Imm,
    Instruction,
    LabelRef,
    MD16_TEP,
    Mem,
    Op,
    cycle_cost,
    prepare_program,
    CodeGenerator,
)
from repro.isa.microcode import PIPELINE_FLUSH_CYCLES
from repro.pscp.tep import Tep
from repro.statechart import ChartBuilder

PIPELINED = MD16_TEP.with_(pipelined=True, name="md16-pipe")


class TestCycleCosts:
    def test_straight_line_instructions_cheaper(self):
        for instruction in [Instruction(Op.LDA, Imm(1)),
                            Instruction(Op.ADD, Mem(0)),
                            Instruction(Op.STA, Mem(1)),
                            Instruction(Op.NOT)]:
            assert cycle_cost(instruction, PIPELINED) < \
                cycle_cost(instruction, MD16_TEP), instruction

    def test_fetch_fully_hidden(self):
        plain = cycle_cost(Instruction(Op.NOT), MD16_TEP)
        piped = cycle_cost(Instruction(Op.NOT), PIPELINED)
        assert piped == plain - 2  # the two fetch states

    def test_control_transfers_pay_flush(self):
        jump_plain = cycle_cost(Instruction(Op.JMP, LabelRef("x", 0)), MD16_TEP)
        jump_piped = cycle_cost(Instruction(Op.JMP, LabelRef("x", 0)), PIPELINED)
        # fetch hidden (-2) but flush paid (+2): a wash for JMP
        assert jump_piped == jump_plain - 2 + PIPELINE_FLUSH_CYCLES

    def test_minimum_one_cycle(self):
        for op in Op:
            instruction = {
                Op.LDA: Instruction(Op.LDA, Imm(0)),
                Op.JMP: Instruction(Op.JMP, LabelRef("x", 0)),
            }.get(op)
            if instruction is None:
                continue
            assert cycle_cost(instruction, PIPELINED) >= 1


class TestCompiledCode:
    SRC = """
    int:16 total;
    void straight() {
      total = total + 1;
      total = total + 2;
      total = total + 3;
      total = total + 4;
      total = total + 5;
      total = total + 6;
    }
    void loopy(int:16 n) {
      @bound(20) while (n > 0) { total = total + n; n = n - 1; }
    }
    void branchy(int:16 n) {
      if (n == 0) { total = 1; }
      else if (n == 1) { total = 2; }
      else if (n == 2) { total = 3; }
      else if (n == 3) { total = 4; }
      else { total = 5; }
    }
    """

    def _wcets(self, arch):
        checked = prepare_program(self.SRC, arch)
        return CodeGenerator(checked, arch).compile().wcets()

    def test_gains_follow_branch_density(self):
        plain = self._wcets(MD16_TEP)
        piped = self._wcets(PIPELINED)
        gains = {name: plain[name] / piped[name]
                 for name in ("straight", "loopy", "branchy")}
        # everything gains, but branch-dense code gains least — the classic
        # pipelining trade-off
        assert all(gain > 1.0 for gain in gains.values()), gains
        assert gains["straight"] > gains["branchy"]

    def test_simulator_matches_pipelined_costs(self):
        arch = PIPELINED
        checked = prepare_program(self.SRC, arch)
        compiled = CodeGenerator(checked, arch).compile()
        tep = Tep(arch, compiled.flat_instructions())
        tep.load_memory(compiled.allocator.initial_values)
        cycles = tep.run("straight")
        assert cycles <= compiled.wcets()["straight"]
        assert tep.read_variable(compiled.allocator.locations["total"]) == 21


class TestAreaAndFlow:
    def test_pipeline_costs_area(self):
        assert tep_area_clbs(PIPELINED) > tep_area_clbs(MD16_TEP)

    def test_improver_pipeline_rung_opt_in(self):
        b = ChartBuilder("pipe")
        b.event("E", period=220)
        with b.or_state("T", default="S"):
            b.basic("S").transition("S", label="E/Work()")
        chart = b.build()
        src = """
        int:16 a;
        void Work() {
          a = a + 1;
          a = a + 2;
          a = a + 3;
          a = a + 4;
          a = a + 5;
          a = a + 6;
          a = a + 7;
        }
        """
        with_pipe = Improver(chart, src, initial_arch=MD16_TEP,
                             allow_pipelining=True, max_teps=1).run()
        without = Improver(chart, src, initial_arch=MD16_TEP,
                           max_teps=1).run()
        assert "pipeline" not in [s.rung for s in without.steps]
        rungs = [s.rung for s in with_pipe.steps]
        if not without.success:
            assert "pipeline" in rungs
            pipe_step = next(s for s in with_pipe.steps
                             if s.rung == "pipeline")
            previous = with_pipe.steps[rungs.index("pipeline") - 1]
            assert pipe_step.critical_paths["E"] < \
                previous.critical_paths["E"]

    def test_describe_mentions_pipelining(self):
        assert "pipelined" in PIPELINED.describe()
