"""Error paths and edge cases of the PSCP machine and stub generation."""

import pytest

from repro.action.check import Externals
from repro.isa import CodeGenerator, MD16_TEP, NameMaps, prepare_program
from repro.pscp import MachineError, PscpMachine, build_transition_stubs
from repro.pscp.machine import _resolve_argument
from repro.statechart import ChartBuilder


def compile_for(chart, src, arch=MD16_TEP):
    externals = Externals.from_chart(chart)
    checked = prepare_program(src, arch, externals)
    compiled = CodeGenerator(checked, arch,
                             maps=NameMaps.from_chart(chart)).compile()
    params = {f.name: [p.name for p in f.params]
              for f in checked.program.functions}
    return compiled, params


class TestStubGeneration:
    def test_unknown_routine_rejected(self):
        b = ChartBuilder("bad")
        b.event("E")
        with b.or_state("T", default="S"):
            b.basic("S").transition("S", label="E/Ghost()")
        chart = b.build()
        compiled, params = compile_for(chart, "void Other() { }")
        with pytest.raises(MachineError, match="Ghost"):
            build_transition_stubs(chart, compiled, params)

    def test_argument_count_mismatch_rejected(self):
        b = ChartBuilder("bad2")
        b.event("E")
        with b.or_state("T", default="S"):
            b.basic("S").transition("S", label="E/F(1, 2)")
        chart = b.build()
        compiled, params = compile_for(chart, "void F(int:16 a) { }")
        with pytest.raises(MachineError, match="argument"):
            build_transition_stubs(chart, compiled, params)

    def test_non_constant_argument_rejected(self):
        b = ChartBuilder("bad3")
        b.event("E")
        with b.or_state("T", default="S"):
            b.basic("S").transition("S", label="E/F(someVariable)")
        chart = b.build()
        compiled, params = compile_for(chart, "void F(int:16 a) { }")
        with pytest.raises(MachineError, match="cannot resolve"):
            build_transition_stubs(chart, compiled, params)

    def test_builtin_settrue_stub_needs_declared_condition(self):
        b = ChartBuilder("bad4")
        b.event("E")
        with b.or_state("T", default="S"):
            b.basic("S").transition("S", label="E/SetTrue(NOPE)")
        chart = b.build()
        compiled, params = compile_for(chart, "void Unused() { }")
        with pytest.raises(MachineError, match="NOPE"):
            build_transition_stubs(chart, compiled, params)

    def test_resolve_argument_forms(self):
        class FakeCompiled:
            enum_values = {"MX": 0, "MPHI": 2}
        assert _resolve_argument("MX", FakeCompiled) == 0
        assert _resolve_argument(" MPHI ", FakeCompiled) == 2
        assert _resolve_argument("42", FakeCompiled) == 42
        assert _resolve_argument("0x10", FakeCompiled) == 16
        assert _resolve_argument("B:101", FakeCompiled) == 5
        with pytest.raises(MachineError):
            _resolve_argument("notAnEnum", FakeCompiled)

    def test_transition_without_action_gets_bare_tret(self):
        b = ChartBuilder("bare")
        b.event("E")
        with b.or_state("T", default="S"):
            b.basic("S").transition("S", label="E")
        chart = b.build()
        compiled, params = compile_for(chart, "void Unused() { }")
        instructions, entries = build_transition_stubs(chart, compiled, params)
        from repro.isa import Op
        assert [i.op for i in instructions] == [Op.TRET]
        assert entries == {0: "__t0"}


class TestMachineEdgeCases:
    def make_machine(self):
        b = ChartBuilder("edge")
        b.event("E").condition("C")
        with b.or_state("T", default="S"):
            b.basic("S").transition("S", label="E [not C]/Bump()")
        chart = b.build()
        compiled, params = compile_for(
            chart, "int:16 n; void Bump() { n = n + 1; }")
        return chart, PscpMachine(chart, compiled, param_names=params)

    def test_guarded_self_loop(self):
        chart, machine = self.make_machine()
        machine.step({"E"})
        assert machine.read_global("n") == 1
        machine.cr.write_conditions({"C": True})
        machine.step({"E"})  # guard now false
        assert machine.read_global("n") == 1

    def test_write_global_roundtrip(self):
        chart, machine = self.make_machine()
        machine.write_global("n", 41)
        machine.step({"E"})
        assert machine.read_global("n") == 42

    def test_history_records_every_cycle(self):
        chart, machine = self.make_machine()
        machine.step({"E"})
        machine.step()
        assert len(machine.history) == 2
        assert machine.history[0].fired and machine.history[1].quiescent

    def test_step_events_sampled_reported(self):
        chart, machine = self.make_machine()
        step = machine.step({"E"})
        assert step.events_sampled == frozenset({"E"})
