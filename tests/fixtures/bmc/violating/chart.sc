chart bmc_violating;

event ARM period 1000;
event TICK period 1000;
condition ARMED;

property "never Armed while Running";
property "never ARMED in Running";

andstate Sys {
  contains Ctrl, Motor;
}
orstate Ctrl {
  contains CIdle, Armed;
  default CIdle;
}
basicstate CIdle {
  transition {
    target Armed;
    label "ARM/SetTrue(ARMED)";
  }
}
basicstate Armed {
  transition {
    target CIdle;
    label "TICK [not ARMED]";
  }
}
orstate Motor {
  contains MIdle, Running;
  default MIdle;
}
basicstate MIdle {
  transition {
    target Running;
    label "TICK [ARMED]/Spin()";
  }
}
basicstate Running {
  transition {
    target MIdle;
    label "ARM/Halt()";
  }
}
