int:16 spins;

void Spin() {
  spins = spins + 1;
}

void Halt() {
  spins = 0;
  SetFalse(ARMED);
}
