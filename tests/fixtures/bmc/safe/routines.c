int:16 jobs;

void Begin() {
  jobs = jobs + 1;
  SetTrue(BUSY);
}

void Finish() {
  SetFalse(BUSY);
}
