chart bmc_safe;

event GO period 10000;
event STOP period 10000;
condition BUSY;

orstate Main {
  contains Idle, Work, Done;
  default Idle;
}
basicstate Idle {
  transition {
    target Work;
    label "GO/Begin()";
  }
}
basicstate Work {
  transition {
    target Work;
    label "GO";
  }
  transition {
    target Done;
    label "STOP/Finish()";
  }
}
basicstate Done {
  transition {
    target Work;
    label "GO/Begin()";
  }
}
