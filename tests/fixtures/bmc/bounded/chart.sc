chart bmc_bounded;

event TICK period 1000;

orstate Chain {
  contains S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10, S11, S12;
  default S0;
}
basicstate S0 {
  transition {
    target S1;
    label "TICK";
  }
}
basicstate S1 {
  transition {
    target S2;
    label "TICK";
  }
}
basicstate S2 {
  transition {
    target S3;
    label "TICK";
  }
}
basicstate S3 {
  transition {
    target S4;
    label "TICK";
  }
}
basicstate S4 {
  transition {
    target S5;
    label "TICK";
  }
}
basicstate S5 {
  transition {
    target S6;
    label "TICK";
  }
}
basicstate S6 {
  transition {
    target S7;
    label "TICK";
  }
}
basicstate S7 {
  transition {
    target S8;
    label "TICK";
  }
}
basicstate S8 {
  transition {
    target S9;
    label "TICK";
  }
}
basicstate S9 {
  transition {
    target S10;
    label "TICK";
  }
}
basicstate S10 {
  transition {
    target S11;
    label "TICK";
  }
}
basicstate S11 {
  transition {
    target S12;
    label "TICK";
  }
}
basicstate S12 {
  transition {
    target S0;
    label "TICK";
  }
}
