int:16 unused;
