chart lint_truncate;

event GO period 1000;

orstate Main {
  contains S0, S1;
  default S0;
}
basicstate S0 {
  transition {
    target S1;
    label "GO/Narrow()";
  }
}
basicstate S1 {
  transition {
    target S0;
    label "GO/Extra()";
  }
}
