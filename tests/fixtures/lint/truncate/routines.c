int:16 wide;
int:8 narrow;

void Narrow() {
  narrow = wide;
}

void Extra() {
  int:16 t;
  int:16 u;
  u = t + 1;
  u = 5;
  if (1 > 2) {
    narrow = 0;
  }
  wide = u;
}
