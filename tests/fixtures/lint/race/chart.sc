chart lint_race;

event TICK period 1000;
event TOCK period 1000;

andstate Par {
  contains Left, Right;
}
orstate Left {
  contains L0;
  default L0;
}
basicstate L0 {
  transition {
    target L0;
    label "TICK/IncLeft()";
  }
}
orstate Right {
  contains R0;
  default R0;
}
basicstate R0 {
  transition {
    target R0;
    label "TOCK/IncRight()";
  }
}
