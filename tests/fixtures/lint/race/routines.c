int:16 shared;

void IncLeft() {
  shared = shared + 1;
}

void IncRight() {
  shared = shared + 2;
}
