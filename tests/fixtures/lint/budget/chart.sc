chart lint_budget;

event FAST period 4;

orstate Main {
  contains S0, S1;
  default S0;
}
basicstate S0 {
  transition {
    target S1;
    label "FAST/Spin()";
    wcet 1;
  }
}
basicstate S1 {
  transition {
    target S0;
    label "FAST/Spin()";
  }
}
