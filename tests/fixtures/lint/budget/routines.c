int:16 acc;

void Spin() {
  int:16 i;
  i = 0;
  @bound(10) while (i < 10) {
    acc = acc + i;
    i = i + 1;
  }
}
