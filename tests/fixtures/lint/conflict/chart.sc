chart lint_conflict;

event GO period 1000;
event HALT period 1000;

orstate Main {
  contains A, B, C;
  default A;
}
basicstate A {
  transition {
    target B;
    label "GO/Ping()";
  }
  transition {
    target C;
    label "GO/Ping()";
  }
}
basicstate B {
  transition {
    target A;
    label "GO";
  }
  transition {
    target C;
    label "HALT";
  }
}
basicstate C {
  transition {
    target A;
    label "GO";
  }
}
