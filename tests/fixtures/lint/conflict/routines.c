int:16 pings;

void Ping() {
  pings = pings + 1;
}
