"""Tests for farm-wide observability: the flight recorder, forensics
bundles, the farm sampler/dashboard, and the merged multi-machine trace.

The load-bearing properties:

* **near-zero, non-perturbing recorder** — a machine with a flight
  recorder attached produces the byte-identical step sequence of an
  uninstrumented one, and the ring rides through snapshot/restore without
  changing the continuation;
* **forensics completeness** — every escalation dumps a versioned bundle
  whose ring tail is exactly the machine's last executed cycles;
* **conservation at every tick** — the sampler re-checks the ledger
  identities at each sampled tick, not just at the end;
* **idempotent publication** — publishing farm metrics twice changes
  nothing.
"""

import io
import json
import random

import pytest

from repro.fault import (
    FaultInjector,
    FaultPlan,
    FaultSurface,
    MachineGuard,
)
from repro.fault.model import TEP_FAIL, TEP_RUNAWAY
from repro.flow import build_system, select_initial_architecture
from repro.obs import (
    FORENSICS_VERSION,
    FarmLineage,
    FarmSampler,
    FlightRecorder,
    Histogram,
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    dag_flow_events,
    load_forensics_bundle,
    merged_chrome_trace,
    render_dashboard,
    render_forensics,
    sparkline,
    write_forensics_bundle,
)
from repro.obs.export import FIRST_MACHINE_PID, TRACE_PID
from repro.fault.model import ProcessKill
from repro.resil import (
    MachineSnapshot,
    RestartPolicy,
    ShardConfig,
    ShardSupervisor,
    SnapshotError,
    Supervisor,
    generate_event_stream,
)
from repro.workloads.generators import parallel_servers


def step_fingerprint(step):
    return (tuple(t.index for t in step.fired), step.configuration,
            step.cycle_length, step.start_time, step.end_time,
            step.events_sampled, step.events_raised,
            step.faults, step.recoveries)


def round_robin_stimulus(chart, cycles):
    events = sorted(chart.events)
    return [[events[i % len(events)]] for i in range(cycles)]


@pytest.fixture(scope="module")
def system():
    chart, routines = parallel_servers(2)
    arch = select_initial_architecture(chart, routines)
    if arch.n_teps < 2:
        arch = arch.with_(n_teps=2)
    return build_system(chart, routines, arch)


# ---------------------------------------------------------------------------
# the flight recorder
# ---------------------------------------------------------------------------

class TestFlightRecorder:
    def test_ring_is_bounded_and_oldest_first(self, system):
        machine = system.make_machine()
        recorder = FlightRecorder(capacity=8)
        machine.attach_recorder(recorder)
        stimulus = round_robin_stimulus(system.chart, 20)
        for events in stimulus:
            machine.step(events)
        assert len(recorder) == 8
        assert recorder.recorded == 20
        assert recorder.dropped == 12
        entries = recorder.entries()
        assert [e["cycle"] for e in entries] == list(range(12, 20))
        assert all(e["kind"] == "step" for e in entries)

    def test_ring_tail_matches_machine_history(self, system):
        machine = system.make_machine()
        recorder = FlightRecorder(capacity=6)
        machine.attach_recorder(recorder)
        for events in round_robin_stimulus(system.chart, 15):
            machine.step(events)
        tail = machine.history[-6:]
        entries = recorder.entries()
        assert [e["fired"] for e in entries] == \
            [[t.index for t in s.fired] for s in tail]
        assert [e["start"] for e in entries] == \
            [s.start_time for s in tail]
        assert [e["length"] for e in entries] == \
            [s.cycle_length for s in tail]

    def test_recorder_does_not_perturb_the_run(self, system):
        stimulus = round_robin_stimulus(system.chart, 25)
        plain = system.make_machine()
        observed = system.make_machine()
        observed.attach_recorder(FlightRecorder(capacity=4))
        plain_steps = [plain.step(events) for events in stimulus]
        observed_steps = [observed.step(events) for events in stimulus]
        assert ([step_fingerprint(s) for s in plain_steps]
                == [step_fingerprint(s) for s in observed_steps])

    def test_marks_interleave_with_steps(self, system):
        machine = system.make_machine()
        recorder = FlightRecorder(capacity=16)
        machine.attach_recorder(recorder)
        stimulus = round_robin_stimulus(system.chart, 4)
        machine.step(stimulus[0])
        recorder.note_checkpoint(machine.cycle_count, "ckpt1@cycle1")
        machine.step(stimulus[1])
        recorder.note_escalation(machine.cycle_count, "retry-exhausted",
                                 "budget spent")
        kinds = [e["kind"] for e in recorder.entries()]
        assert kinds == ["step", "checkpoint", "step", "escalation"]
        assert recorder.last_checkpoint == "ckpt1@cycle1"
        assert recorder.last_escalation["kind"] == "retry-exhausted"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)


# ---------------------------------------------------------------------------
# forensics bundles
# ---------------------------------------------------------------------------

class TestForensics:
    def _bundle(self, system):
        machine = system.make_machine()
        recorder = FlightRecorder(capacity=8)
        machine.attach_recorder(recorder)
        for events in round_robin_stimulus(system.chart, 10):
            machine.step(events)
        recorder.note_checkpoint(9, "w0:ckpt1@cycle9")
        return recorder.forensics_bundle(
            cause={"kind": "escalation", "tick": 7, "detail": "boom"},
            worker="worker0", metrics_delta={"processed": 3})

    def test_bundle_carries_ring_cause_and_context(self, system):
        bundle = self._bundle(system)
        assert bundle["version"] == FORENSICS_VERSION
        assert bundle["worker"] == "worker0"
        assert bundle["cause"]["detail"] == "boom"
        assert bundle["metrics_delta"] == {"processed": 3}
        assert bundle["machine"]["chart"] == system.chart.name
        assert bundle["machine"]["cycle_count"] == 10
        assert bundle["last_checkpoint"] == "w0:ckpt1@cycle9"
        steps = [e for e in bundle["ring"] if e["kind"] == "step"]
        assert steps[-1]["cycle"] == 9

    def test_write_load_round_trip(self, system, tmp_path):
        bundle = self._bundle(system)
        path = tmp_path / "bundle.json"
        write_forensics_bundle(bundle, str(path))
        assert load_forensics_bundle(str(path)) == bundle

    def test_load_refuses_other_versions(self, system, tmp_path):
        bundle = self._bundle(system)
        bundle["version"] = FORENSICS_VERSION + 1
        path = tmp_path / "bundle.json"
        write_forensics_bundle(bundle, str(path))
        with pytest.raises(ValueError, match="version"):
            load_forensics_bundle(str(path))
        path.write_text(json.dumps(["not", "a", "bundle"]))
        with pytest.raises(ValueError, match="version"):
            load_forensics_bundle(str(path))

    def test_render_mentions_cause_and_every_entry(self, system):
        bundle = self._bundle(system)
        text = render_forensics(bundle)
        assert "worker0" in text
        assert "boom" in text
        assert "w0:ckpt1@cycle9" in text
        assert text.count("step") >= len(
            [e for e in bundle["ring"] if e["kind"] == "step"])


# ---------------------------------------------------------------------------
# snapshot integration
# ---------------------------------------------------------------------------

class TestRecorderSnapshots:
    def test_snapshot_has_explicit_null_without_recorder(self, system):
        machine = system.make_machine()
        machine.step(round_robin_stimulus(system.chart, 1)[0])
        document = machine.snapshot().to_json()
        assert "flight_recorder" in document
        assert document["flight_recorder"] is None

    def test_continuation_is_byte_identical_with_recorder(self, system):
        stimulus = round_robin_stimulus(system.chart, 30)
        cut = 11
        original = system.make_machine()
        original.attach_recorder(FlightRecorder(capacity=8))
        for events in stimulus[:cut]:
            original.step(events)
        snapshot = original.snapshot()
        reference = [original.step(events) for events in stimulus[cut:]]

        restored = system.make_machine()
        restored.attach_recorder(FlightRecorder(capacity=8))
        restored.restore(snapshot)
        continued = [restored.step(events) for events in stimulus[cut:]]

        assert ([step_fingerprint(s) for s in continued]
                == [step_fingerprint(s) for s in reference])
        # both recorders agree on the ring from the continuation on, and
        # re-snapshotting stays byte-identical (digest is a fixpoint)
        assert (restored.recorder.entries()
                == original.recorder.entries())
        assert (restored.snapshot().to_json_str()
                == original.snapshot().to_json_str())

    def test_recorder_state_round_trips_through_json(self, system):
        machine = system.make_machine()
        recorder = FlightRecorder(capacity=4)
        machine.attach_recorder(recorder)
        for events in round_robin_stimulus(system.chart, 9):
            machine.step(events)
        recorder.note_checkpoint(9, "ref")
        text = machine.snapshot().to_json_str()
        reparsed = MachineSnapshot.from_json_str(text)
        assert reparsed.to_json_str() == text
        fresh = system.make_machine()
        fresh.attach_recorder(FlightRecorder(capacity=4))
        fresh.restore(reparsed)
        assert fresh.recorder.entries() == recorder.entries()
        assert fresh.recorder.recorded == recorder.recorded
        assert fresh.recorder.last_checkpoint == "ref"

    def test_restore_without_recorder_is_refused(self, system):
        machine = system.make_machine()
        machine.attach_recorder(FlightRecorder(capacity=4))
        machine.step(round_robin_stimulus(system.chart, 1)[0])
        snapshot = machine.snapshot()
        bare = system.make_machine()
        with pytest.raises(SnapshotError, match="recorder"):
            bare.restore(snapshot)
        # but skipping attachments restores fine
        bare.restore(snapshot, restore_attachments=False)

    def test_old_documents_without_the_field_still_load(self, system):
        machine = system.make_machine()
        machine.step(round_robin_stimulus(system.chart, 1)[0])
        document = machine.snapshot().to_json()
        del document["flight_recorder"]  # a pre-recorder version-1 document
        snapshot = MachineSnapshot.from_json(document)
        assert snapshot.flight_recorder is None


# ---------------------------------------------------------------------------
# trace export: pid threading and the merged document
# ---------------------------------------------------------------------------

class TestTraceExport:
    def _traced_machine(self, system, cycles=10):
        machine = system.make_machine()
        tracer = Tracer()
        machine.attach_tracer(tracer)
        for events in round_robin_stimulus(system.chart, cycles):
            machine.step(events)
        machine.flush_trace()
        return tracer

    def test_default_pid_is_unchanged(self, system):
        tracer = self._traced_machine(system)
        default = chrome_trace_events(tracer)
        explicit = chrome_trace_events(tracer, pid=TRACE_PID)
        assert default == explicit
        assert {e["pid"] for e in default} == {TRACE_PID}

    def test_pid_threads_through_every_event(self, system):
        tracer = self._traced_machine(system)
        events = chrome_trace_events(tracer, pid=7,
                                     process_name="machine seven")
        assert {e["pid"] for e in events} == {7}
        names = [e for e in events if e.get("name") == "process_name"]
        assert names and names[0]["args"]["name"] == "machine seven"

    def test_merged_trace_separates_machines_and_supervisor(self, system):
        tracers = {"worker0": self._traced_machine(system),
                   "worker1": self._traced_machine(system)}
        timeline = [
            {"tick": 3, "kind": "shed", "worker": "worker0",
             "detail": "overload"},
            {"tick": 5, "kind": "escalation", "worker": "worker1",
             "detail": "all-teps-failed"},
            {"tick": 7, "kind": "restart", "worker": "worker1"},
        ]
        document = merged_chrome_trace(tracers, supervisor_events=timeline)
        machines = document["otherData"]["machines"]
        pids = [machines[name]["pid"] for name in ("worker0", "worker1")]
        assert pids == [FIRST_MACHINE_PID, FIRST_MACHINE_PID + 1]
        by_pid = {}
        for event in document["traceEvents"]:
            by_pid.setdefault(event["pid"], []).append(event)
        assert set(by_pid) == {1, FIRST_MACHINE_PID, FIRST_MACHINE_PID + 1}
        instants = [e for e in by_pid[1] if e["ph"] == "i"]
        assert [(e["name"], e["ts"]) for e in instants] == \
            [("shed", 3), ("escalation", 5), ("restart", 7)]
        assert instants[0]["args"]["worker"] == "worker0"

    def test_merged_trace_with_no_supervisor_events(self, system):
        document = merged_chrome_trace(
            {"worker0": self._traced_machine(system)})
        machine_events = [e for e in document["traceEvents"]
                          if e["pid"] == FIRST_MACHINE_PID
                          and e["ph"] != "M"]
        assert machine_events, "machine events missing from merged trace"


# ---------------------------------------------------------------------------
# histogram digests
# ---------------------------------------------------------------------------

class TestHistogramSummary:
    def test_summary_matches_quantiles(self):
        histogram = Histogram("latency", buckets=(1, 2, 4, 8))
        for value in (1, 1, 2, 3, 5, 9):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 6
        assert summary["mean"] == pytest.approx(21 / 6)
        assert summary["p50"] == histogram.quantile(0.50)
        assert summary["p95"] == histogram.quantile(0.95)
        assert summary["p99"] == histogram.quantile(0.99)

    def test_quantile_is_a_bucket_upper_bound(self):
        histogram = Histogram("latency", buckets=(1, 2, 4, 8))
        for value in (3, 3, 5):
            histogram.observe(value)
        # 3 falls in the (2, 4] bucket: the quantile reports the bucket's
        # upper bound — an overestimate bounded by the bucket width,
        # surfaced per percentile in the summary digest
        assert histogram.quantile(0.5) == 4
        assert histogram.quantile_error_bound(0.5) == 4 - 3
        assert (histogram.summary()["quantile_error_bounds"]["p50"]
                == histogram.quantile_error_bound(0.5))
        # the overflow bucket is exact: it reports the observed maximum
        histogram.observe(100)
        assert histogram.quantile(1.0) == 100

    def test_constant_distribution_is_exact(self):
        # a single-sample (or constant) histogram must report its one
        # value, never a bucket bound above anything ever observed
        histogram = Histogram("latency", buckets=(1, 2, 4, 8))
        histogram.observe(3)
        assert histogram.quantile(0.5) == 3
        assert histogram.quantile_error_bound(0.5) == 0
        histogram.observe(3)
        assert histogram.quantile(0.99) == 3

    def test_quantile_clamped_to_observed_max(self):
        # mixed distribution whose top bucket bound exceeds the max: the
        # reported quantile never overshoots the exact observed maximum
        histogram = Histogram("latency", buckets=(1, 2, 4, 8))
        for value in (1, 1, 1, 5):
            histogram.observe(value)
        assert histogram.quantile(0.99) == 5  # bucket bound 8, max 5
        assert histogram.quantile_error_bound(0.99) == 5 - 4

    def test_empty_summary(self):
        summary = Histogram("latency").summary()
        assert summary["count"] == 0
        assert summary["p50"] is None
        assert summary["quantile_error_bounds"]["p50"] is None


# ---------------------------------------------------------------------------
# the sampler, publication idempotence, and the dashboard
# ---------------------------------------------------------------------------

def chaos_factory(system, seed):
    surface = FaultSurface.from_system(system)

    def factory(worker_index):
        rng = random.Random(seed * 6271 + worker_index)
        return FaultInjector(FaultPlan.generate(
            rng, surface, [TEP_RUNAWAY, TEP_FAIL],
            n_faults=5, horizon=30))
    return factory


@pytest.fixture(scope="module")
def chaos_run(system):
    sampler = FarmSampler(every=2)
    supervisor = Supervisor.for_system(
        system, n_workers=2, queue_capacity=4,
        policy=RestartPolicy(checkpoint_every=8),
        guard_factory=lambda: MachineGuard(
            max_retries=1, escalate_unrecoverable=True),
        injector_factory=chaos_factory(system, seed=3),
        tracer_factory=lambda index: Tracer(),
        recorder_factory=lambda index: FlightRecorder(capacity=32),
        sampler=sampler)
    stream = generate_event_stream(system.chart.events, 80, seed=3)
    report = supervisor.run(stream)
    return supervisor, sampler, report


class TestFarmSampler:
    def test_conservation_holds_at_every_sampled_tick(self, chaos_run):
        supervisor, sampler, report = chaos_run
        assert report.conservation() == []
        assert len(sampler) >= 2
        assert sampler.conservation() == []

    def test_samples_land_on_the_period(self, chaos_run):
        _, sampler, _ = chaos_run
        assert all(s["tick"] % sampler.every == 0 for s in sampler.samples)
        ticks = sampler.series("tick")
        assert ticks == sorted(ticks)

    def test_worker_series_and_final_sample_agree_with_report(
            self, chaos_run):
        supervisor, sampler, report = chaos_run
        # the run may end between sampling periods, so the last sample can
        # trail the final report — but never overshoot it
        last = sampler.samples[-1]
        assert last["submitted"] <= report.submitted
        assert last["processed"] <= report.processed
        assert sampler.series("processed") == \
            sorted(sampler.series("processed"))
        for worker in supervisor.workers:
            series = sampler.worker_series(worker.name, "processed")
            assert series[-1] <= worker.processed
            assert series == sorted(series)  # monotone counter

    def test_csv_and_json_exports(self, chaos_run):
        _, sampler, _ = chaos_run
        text = sampler.to_csv()
        lines = text.strip().splitlines()
        assert len(lines) == len(sampler) + 1
        header = lines[0].split(",")
        assert "worker0.queue_depth" in header
        assert "worker1.latency_p95" in header
        assert len(lines[1].split(",")) == len(header)
        buffer = io.StringIO()
        sampler.write_json(buffer)
        document = json.loads(buffer.getvalue())
        assert document["every"] == sampler.every
        assert len(document["samples"]) == len(sampler)

    def test_limit_bounds_memory(self, system):
        sampler = FarmSampler(every=1, limit=3)
        supervisor = Supervisor.for_system(system, n_workers=1,
                                           sampler=sampler)
        stream = generate_event_stream(system.chart.events, 30, seed=1)
        supervisor.run(stream)
        assert len(sampler) == 3
        assert sampler.dropped > 0


class TestEscalationForensics:
    def test_every_escalation_dumps_a_bundle(self, chaos_run):
        supervisor, _, report = chaos_run
        bundles = supervisor.forensics_bundles()
        assert report.escalations >= 1, "chaos never escalated"
        assert len(bundles) == report.escalations
        assert report.forensics_bundles == len(bundles)

    def test_bundle_ring_tail_matches_the_tracer(self, chaos_run):
        supervisor, _, _ = chaos_run
        for worker in supervisor.workers:
            for bundle in worker.forensics:
                steps = [e for e in bundle["ring"] if e["kind"] == "step"]
                assert steps, "escalation with an empty ring"
                # the ring tail is the machine's last completed cycle at
                # dump time: the escalating cycle itself never completed
                assert (steps[-1]["cycle"]
                        == bundle["machine"]["cycle_count"] - 1)
                assert bundle["cause"]["kind"] in (
                    "escalation", "permanent-failure")
                assert bundle["last_checkpoint"].startswith(worker.name)

    def test_supervisor_timeline_names_the_escalations(self, chaos_run):
        _, _, report = chaos_run
        kinds = {entry["kind"] for entry in report.timeline}
        assert "escalation" in kinds
        assert "restart" in kinds
        for entry in report.timeline:
            assert entry["tick"] >= 1


class TestPublishIdempotence:
    def test_publishing_twice_changes_nothing(self, chaos_run):
        supervisor, _, _ = chaos_run
        metrics = MetricsRegistry()
        supervisor.publish(metrics)
        first = json.dumps(metrics.collect(), sort_keys=True)
        supervisor.publish(metrics)
        assert json.dumps(metrics.collect(), sort_keys=True) == first

    def test_latency_histogram_is_copied_not_accumulated(self, chaos_run):
        supervisor, _, _ = chaos_run
        metrics = MetricsRegistry()
        supervisor.publish(metrics)
        supervisor.publish(metrics)
        for worker in supervisor.workers:
            published = metrics.histogram(
                f"farm.{worker.name}.dispatch_latency_ticks")
            assert published.count == worker.latency.count
            assert published.sum == worker.latency.sum


class TestDashboard:
    def test_dashboard_renders_workers_and_sparklines(self, chaos_run):
        supervisor, sampler, _ = chaos_run
        text = render_dashboard(supervisor, sampler)
        assert "Farm dashboard" in text
        for worker in supervisor.workers:
            assert worker.name in text
        for label in ("in-flight", "throughput", "restarts", "worst p95"):
            assert label in text

    def test_sparkline_shapes(self):
        assert sparkline([], width=8) == " " * 8
        assert sparkline([0, 0, 0], width=3) == "▁▁▁"
        strip = sparkline([0, 5, 10], width=3)
        assert len(strip) == 3
        assert strip[0] < strip[-1]
        assert len(sparkline(list(range(100)), width=10)) == 10
        assert len(sparkline([1], width=5)) == 5


# ---------------------------------------------------------------------------
# cross-process lineage in the merged trace
# ---------------------------------------------------------------------------

def run_distributed_lineage(system, seed=7):
    """One seeded distributed chaos run with the farm lineage attached;
    returns (lineage, report) — the shape `repro serve --lineage` wires."""
    lineage = FarmLineage()
    supervisor = ShardSupervisor(
        system, n_shards=2, standby=True,
        config=ShardConfig(checkpoint_every=4, batch=2, lineage=True),
        kill_plan=[ProcessKill(tick=4, shard=0, after_items=1)],
        lineage=lineage)
    stream = generate_event_stream(system.chart.events, 40, seed=seed)
    report = supervisor.run(stream, arrivals_per_tick=5)
    pids = {shard.name: FIRST_MACHINE_PID + index
            for index, shard in enumerate(supervisor.shards)}
    return lineage, report, pids


@pytest.fixture(scope="module")
def distributed_lineage(system):
    return run_distributed_lineage(system)


class TestDistributedLineageTrace:
    def test_conservation_holds_across_the_kill(self, distributed_lineage):
        lineage, report, _ = distributed_lineage
        assert report.kills_fired >= 1, "chaos never killed a shard"
        assert lineage.conservation() == []
        assert any(node.startswith("death:") for node in lineage.dag.nodes)
        # worker digests stitched in under generation namespaces
        assert any("/" in node for node in lineage.dag.nodes)

    def test_flow_events_bind_supervisor_to_shard_pids(
            self, distributed_lineage):
        lineage, _, pids = distributed_lineage
        flows = dag_flow_events(lineage.dag, pids=pids)
        assert flows, "no flow events from a chaos run"
        assert {event["ph"] for event in flows} <= {"s", "f"}
        starts = {e["id"] for e in flows if e["ph"] == "s"}
        finishes = {e["id"] for e in flows if e["ph"] == "f"}
        assert starts == finishes  # every flow arrow has both ends
        seen_pids = {event["pid"] for event in flows}
        assert 1 in seen_pids  # supervisor-side nodes
        assert seen_pids & set(pids.values())  # and shard-side nodes
        # a dispatch flow lands on the dispatched shard's trace track
        dispatch_finishes = [e for e in flows if e["ph"] == "f"
                             and e["id"].endswith("->disp:0:0")]
        assert dispatch_finishes
        assert dispatch_finishes[0]["pid"] in pids.values()

    def test_merged_trace_embeds_the_flows(self, distributed_lineage):
        lineage, _, pids = distributed_lineage
        flows = dag_flow_events(lineage.dag, pids=pids)
        document = merged_chrome_trace({}, flows=flows)
        assert document["otherData"]["lineage_flow_events"] == len(flows)
        lineage_events = [e for e in document["traceEvents"]
                         if e.get("cat") == "lineage"]
        assert len(lineage_events) == len(flows)

    def test_two_same_seed_runs_are_byte_identical(self, system,
                                                   distributed_lineage):
        first_lineage, _, first_pids = distributed_lineage
        second_lineage, _, second_pids = run_distributed_lineage(system)
        assert first_pids == second_pids
        assert first_lineage.dumps() == second_lineage.dumps()
        first_doc = merged_chrome_trace(
            {}, flows=dag_flow_events(first_lineage.dag, pids=first_pids))
        second_doc = merged_chrome_trace(
            {}, flows=dag_flow_events(second_lineage.dag, pids=second_pids))
        assert (json.dumps(first_doc, sort_keys=True)
                == json.dumps(second_doc, sort_keys=True))
