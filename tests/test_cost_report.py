"""Unit tests for the WCET cost trees and the table/figure renderers."""

import pytest

from repro.flow.report import (
    architecture_figure,
    ascii_table,
    comparison_table,
    table1_report,
    table4_report,
)
from repro.isa import (
    Block,
    Branch,
    CallCost,
    FixedCost,
    Imm,
    Instruction,
    Loop,
    MD16_TEP,
    MINIMAL_TEP,
    Mem,
    Op,
    Seq,
    cycle_cost,
    routine_wcets,
)


def block(*instructions):
    return Block(list(instructions))


LDA = Instruction(Op.LDA, Imm(1))
ADD = Instruction(Op.ADD, Mem(0))
JMP_COST = Instruction(Op.JMP)


class TestCostNodes:
    def test_block_sums_instruction_costs(self):
        node = block(LDA, ADD)
        expected = cycle_cost(LDA, MINIMAL_TEP) + cycle_cost(ADD, MINIMAL_TEP)
        assert node.wcet(MINIMAL_TEP, {}) == expected

    def test_seq_sums_parts(self):
        node = Seq([block(LDA), block(ADD)])
        assert node.wcet(MINIMAL_TEP, {}) == block(LDA, ADD).wcet(MINIMAL_TEP, {})

    def test_branch_takes_max_arm(self):
        node = Branch(block(LDA), block(ADD, ADD), block(ADD))
        expected = (cycle_cost(LDA, MINIMAL_TEP)
                    + 2 * cycle_cost(ADD, MINIMAL_TEP))
        assert node.wcet(MINIMAL_TEP, {}) == expected

    def test_loop_counts_test_bound_plus_one(self):
        node = Loop(block(LDA), block(ADD), bound=5)
        expected = (6 * cycle_cost(LDA, MINIMAL_TEP)
                    + 5 * cycle_cost(ADD, MINIMAL_TEP))
        assert node.wcet(MINIMAL_TEP, {}) == expected

    def test_zero_bound_loop_still_tests_once(self):
        node = Loop(block(LDA), block(ADD), bound=0)
        assert node.wcet(MINIMAL_TEP, {}) == cycle_cost(LDA, MINIMAL_TEP)

    def test_call_resolves_from_table(self):
        node = Seq([block(LDA), CallCost("helper")])
        total = node.wcet(MINIMAL_TEP, {"helper": 123})
        assert total == cycle_cost(LDA, MINIMAL_TEP) + 123

    def test_call_without_entry_raises(self):
        with pytest.raises(KeyError, match="callees-first"):
            CallCost("ghost").wcet(MINIMAL_TEP, {})

    def test_fixed_cost(self):
        assert FixedCost(77).wcet(MD16_TEP, {}) == 77

    def test_costs_depend_on_architecture(self):
        node = block(LDA, ADD, ADD)
        unopt = node.wcet(MINIMAL_TEP, {})
        opt = node.wcet(MINIMAL_TEP.with_(microcode_optimized=True), {})
        assert opt == unopt - 3  # one redundant jump per instruction

    def test_routine_wcets_callees_first(self):
        trees = {
            "leaf": block(LDA),
            "top": Seq([block(ADD), CallCost("leaf")]),
        }
        result = routine_wcets(trees, ["leaf", "top"], MINIMAL_TEP)
        assert result["top"] == result["leaf"] + cycle_cost(ADD, MINIMAL_TEP)

    def test_routine_wcets_override(self):
        trees = {"f": block(LDA, ADD)}
        result = routine_wcets(trees, ["f"], MINIMAL_TEP, overrides={"f": 9})
        assert result["f"] == 9


class TestRenderers:
    def test_ascii_table_alignment(self):
        text = ascii_table(["A", "Bee"], [(1, "xx"), (12345, "y")],
                           title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equally wide

    def test_ascii_table_handles_empty_rows(self):
        text = ascii_table(["A"], [])
        assert "| A |" in text

    def test_table1_report_contains_all_groups(self):
        text = table1_report()
        for group in ("arithmetic", "logical", "shift", "single signals",
                      "address bus", "jump, branch"):
            assert group in text

    def test_table4_report_columns(self):
        text = table4_report([("arch-x", 100, 200, 300)])
        assert "Crit. Path X, Y" in text
        assert "arch-x" in text and "300" in text

    def test_comparison_table(self):
        text = comparison_table("t", [("q", 1, 2)],
                                value_names=("paper", "measured"))
        assert "paper" in text and "measured" in text

    def test_architecture_figure_lists_teps(self):
        from repro.flow import build_system
        from repro.statechart import ChartBuilder

        b = ChartBuilder("tiny")
        b.event("E")
        with b.or_state("T", default="S"):
            b.basic("S").transition("S", label="E/N()")
        system = build_system(b.build(), "void N() { }",
                              MD16_TEP.with_(n_teps=2))
        text = architecture_figure(system)
        assert "TEP 0:" in text and "TEP 1:" in text
        assert "total:" in text
