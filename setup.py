"""Shim so `pip install -e .` works on offline hosts without the wheel package."""
from setuptools import setup

setup()
