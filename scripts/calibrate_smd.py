"""Calibration helper: measured vs target transition costs for the SMD
workload on the reference architecture (16-bit M/D, unoptimized, 1 TEP).

Run while tuning the routine bodies in repro/workloads/smd.py.
"""
from repro.workloads.smd import smd_chart, SMD_ROUTINES, TABLE3_PAPER
from repro.flow import build_system
from repro.isa import MD16_TEP

TARGETS = {
    "GetByte": 105, "DecodeOpcode": 207, "PrepareMove": 50,
    "RequestData": 182, "PhiParameters": 33, "AbortMove": 251,
    "StartMove": 338, "LoadNext": 207, "InitializeAll": 130, "Stop": 50,
    "DeltaT": 180, "StartMotor": 160,
}

chart = smd_chart()
system = build_system(chart, SMD_ROUTINES, MD16_TEP)

seen = {}
for t in chart.transitions:
    if not t.action:
        continue
    name = t.action.split("(")[0]
    seen.setdefault(name, system.transition_costs[t.index])

print(f"{'routine':16s} {'measured':>8s} {'target':>8s} {'diff':>6s}")
for name, target in TARGETS.items():
    measured = seen.get(name, -1)
    print(f"{name:16s} {measured:8d} {target:8d} {measured - target:6d}")

print("\npaper cycles vs measured:")
cycles = {c.states: c.length for c in system.validator.all_cycles()}
bytrans = {}
for c in system.validator.all_cycles():
    key = tuple(c.states)
    bytrans[key] = max(bytrans.get(key, 0), c.length)
for states, paper in TABLE3_PAPER:
    measured = bytrans.get(states)
    if measured is None:
        # find closest by endpoints
        cands = [l for s, l in bytrans.items()
                 if s[0] == states[0] and s[-1] == states[-1]
                 and len(s) == len(states)]
        measured = max(cands) if cands else -1
    print(f"  {str(states):58s} paper {paper:5d}  measured {measured:5d}")
