#!/usr/bin/env python
"""Run the seeded perf-bench suite from a checkout.

Thin wrapper over ``python -m repro bench`` that works without installing
the package — it prepends ``src/`` to the path and forwards every argument::

    python scripts/run_benches.py                       # write BENCH_6.json
    python scripts/run_benches.py --compare             # guard vs baseline
    python scripts/run_benches.py --update-baseline     # re-record baseline

See ``python scripts/run_benches.py --help`` for the full option list and
docs/OBSERVABILITY.md for the metric policy.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cli import run_bench  # noqa: E402


if __name__ == "__main__":
    sys.exit(run_bench(sys.argv[1:]))
