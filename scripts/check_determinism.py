#!/usr/bin/env python
"""Determinism audit: no ambient randomness or wall-clock in src/repro.

Every stochastic feature in this repo (fault campaigns, fuzz campaigns,
chaos tests, event traces) must flow through an explicitly seeded
``random.Random(seed)`` instance so that same-seed runs are byte-identical
— the CI smoke jobs ``cmp`` their reports.  This script greps the library
for the constructs that silently break that contract:

* module-level ``random.<fn>(...)`` calls (the shared global RNG) —
  ``random.Random(...)`` construction is the one allowed use;
* ``time.time()`` / ``datetime.now()`` / ``datetime.utcnow()`` — wall
  clock reads that leak into reports (``time.perf_counter`` and friends
  are fine: they measure durations, never serialized timestamps... and
  the perf observatory quarantines them behind recorded baselines).

Exit status 0 when clean, 1 with one ``path:line`` finding per line.
"""

from __future__ import annotations

import os
import re
import sys
from typing import List

#: constructs that break seeded determinism, with human-readable reasons
FORBIDDEN = [
    (re.compile(r"\brandom\.(?!Random\b)[a-z_]+\s*\("),
     "global-RNG call (use an explicitly seeded random.Random instance)"),
    (re.compile(r"\btime\.time\s*\("),
     "wall-clock read (use time.perf_counter for durations)"),
    (re.compile(r"\bdatetime\.(?:now|utcnow)\s*\("),
     "wall-clock read (pass timestamps in explicitly)"),
]


def audit(root: str) -> List[str]:
    """All violations under *root* as ``path:line: reason`` strings."""
    findings: List[str] = []
    for dirpath, _dirnames, filenames in sorted(os.walk(root)):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path) as handle:
                for number, line in enumerate(handle, start=1):
                    stripped = line.lstrip()
                    if stripped.startswith("#"):
                        continue
                    for pattern, reason in FORBIDDEN:
                        if pattern.search(line):
                            findings.append(
                                f"{path}:{number}: {reason}\n"
                                f"    {line.rstrip()}")
    return findings


def main(argv: List[str]) -> int:
    root = argv[1] if len(argv) > 1 else os.path.join("src", "repro")
    if not os.path.isdir(root):
        print(f"error: {root!r} is not a directory", file=sys.stderr)
        return 2
    findings = audit(root)
    if findings:
        print(f"{len(findings)} determinism violation(s):")
        for finding in findings:
            print(finding)
        return 1
    print(f"determinism audit clean under {root}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
