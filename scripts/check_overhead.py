#!/usr/bin/env python
"""Observability-overhead guard for the closed-loop benchmark.

Runs the bench_closed_loop workload (the paper's final architecture against
the fast-motor physics) in five legs, using the shared warmup + interleaved
timing discipline of :mod:`repro.perf.timing`:

* **disabled** — no instrumentation at all;
* **recorder** — flight recorder attached, tracing off (the always-on
  production configuration);
* **profiler** — routine-level :class:`~repro.obs.perfprof.PerfProfiler`
  attached (the cheap hot-path attribution level);
* **lineage** — :class:`~repro.obs.lineage.LineageTracker` attached (the
  causal-provenance recorder: hot path appends raw hop tuples only, all
  DAG digestion is deferred to query time);
* **enabled** — tracer attached.

Checks, against ``scripts/overhead_baseline.json``:

* **determinism** (always): total reference-clock cycles, configuration
  cycles and final motor positions must match across all five legs and the
  baseline exactly — observability must not perturb the simulation;
* **leg overhead** (always): the recorder, profiler and lineage legs must
  stay within ``--threshold`` (default 5%) of the disabled leg — a *hard*
  failure.  Overhead is the median of per-round ratios
  (:func:`repro.perf.timing.paired_overhead`): within a round the legs
  run back-to-back so load drift cancels in the ratio.  When a budget
  overshoots, the measurement is *extended* (another full set of rounds,
  pooled with the first) up to ``--retries`` times before failing: the
  cumulative median converges on the true overhead, so a noise burst
  that swamps a few rounds washes out while a real regression only
  firms up.  The tracer leg is advisory: it may cost something, a
  warning is printed when it does;
* **wall clock** (only when the environment fingerprint matches the
  baseline's): the disabled leg's median-of-N must not regress more than
  ``--wall-threshold`` over the recorded baseline median.  Absolute wall
  time on a shared host drifts far more than back-to-back legs do, so
  this check is a smoke alarm for gross regressions (default 15%), not
  the fine-grained budget the paired legs enforce.  A host-speed
  calibration — a fixed pure-Python spin loop
  (:func:`repro.perf.timing.calibration_spin`) timed as a sixth leg of
  the same interleaved rounds — can *excuse* a slow host (the smaller of
  the raw and normalized ratios is used) but never convicts a run the
  raw comparison would pass.

Refresh the baseline after an intended simulator change::

    PYTHONPATH=src python scripts/check_overhead.py --update
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.flow import build_system
from repro.isa import MD16_TEP
from repro.obs import FlightRecorder, LineageTracker, PerfProfiler, Tracer
from repro.perf import (
    calibration_spin,
    fingerprint,
    measure_interleaved,
    paired_overhead,
)
from repro.workloads import (
    MoveCommand,
    SMD_MUTUAL_EXCLUSIONS,
    SMD_ROUTINES,
    SmdClosedLoop,
    smd_chart,
)
from repro.workloads.motors import MotorSpec

BASELINE_PATH = Path(__file__).with_name("overhead_baseline.json")

# mirror benchmarks/bench_closed_loop.py exactly
FAST_MOTORS = {
    "X": MotorSpec("X", 50_000.0, 0.025e-3, 1.25, 2000.0),
    "Y": MotorSpec("Y", 50_000.0, 0.025e-3, 1.25, 2000.0),
    "Phi": MotorSpec("Phi", 9_000.0, 0.1, 900.0, 0.0),
}
COMMANDS = [MoveCommand(60, 45, 8), MoveCommand(25, 30, 4)]


def build_final_system():
    arch = MD16_TEP.with_(n_teps=2, microcode_optimized=True,
                          mutual_exclusions=SMD_MUTUAL_EXCLUSIONS)
    return build_system(smd_chart(), SMD_ROUTINES, arch, specialize=True)


def run_once(system, tracer=None, recorder=None, profiler=None,
             lineage=None):
    loop = SmdClosedLoop(system, motor_specs=FAST_MOTORS, tracer=tracer)
    if recorder is not None:
        loop.machine.attach_recorder(recorder)
    if profiler is not None:
        loop.machine.attach_profiler(profiler)
    if lineage is not None:
        loop.machine.attach_lineage(lineage)
    return loop.run(COMMANDS, max_configuration_cycles=40000)


def determinism_record(report):
    return {
        "total_cycles": report.total_cycles,
        "configuration_cycles": report.configuration_cycles,
        "final_positions": report.final_positions,
        "commands_completed": report.commands_completed,
        "misses": sum(d.misses for d in report.deadline_reports),
    }


def measure(system, rounds):
    """One full interleaved measurement: the five legs plus the
    host-speed calibration spin riding the same rounds."""
    print(f"timing disabled/recorder/profiler/lineage/enabled + "
          f"calibration interleaved ({rounds} rounds each) ...")
    legs = measure_interleaved({
        "disabled": lambda: run_once(system),
        "recorder": lambda: run_once(system, recorder=FlightRecorder()),
        "profiler": lambda: run_once(
            system, profiler=PerfProfiler(level="routine")),
        "lineage": lambda: run_once(system, lineage=LineageTracker()),
        "enabled": lambda: run_once(system, Tracer()),
        "calibration": calibration_spin,
    }, rounds=rounds, warmup=1)
    disabled = legs["disabled"]
    print(f"  disabled median {disabled.median_ns / 1e6:.1f} ms, "
          f"{disabled.payload.total_cycles} cycles")
    overheads = {}
    for name in ("recorder", "profiler", "lineage", "enabled"):
        overheads[name] = paired_overhead(legs[name], disabled)
        print(f"  {name:8s} median {legs[name].median_ns / 1e6:.1f} ms "
              f"({overheads[name] * 100:+.1f}% vs disabled, paired)")
    return legs, overheads


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="record the current run as the new baseline")
    parser.add_argument("--rounds", type=int, default=12,
                        help="timing rounds per leg (interleaved with a "
                             "rotating schedule; a multiple of the six "
                             "legs keeps the position balance exact)")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="allowed paired-leg overhead fraction")
    parser.add_argument("--wall-threshold", type=float, default=0.15,
                        help="allowed absolute wall-clock regression over "
                             "the baseline (a gross-regression smoke "
                             "alarm: absolute time on a shared host is "
                             "far noisier than the paired legs)")
    parser.add_argument("--retries", type=int, default=2,
                        help="re-measurements allowed before a busted leg "
                             "budget becomes a failure")
    args = parser.parse_args(argv)

    print("building the final SMD architecture ...")
    system = build_final_system()

    # a busted hard budget extends the measurement rather than failing:
    # the pooled median converges on the true overhead, so a noise burst
    # washes out while a real regression only firms up
    legs = None
    for attempt in range(args.retries + 1):
        fresh, overheads = measure(system, args.rounds)
        if legs is None:
            legs = fresh
        else:
            for name, timing in fresh.items():
                legs[name].times_ns.extend(timing.times_ns)
                legs[name].payload = timing.payload
            overheads = {
                name: paired_overhead(legs[name], legs["disabled"])
                for name in ("recorder", "profiler", "lineage", "enabled")}
            print("  pooled   " + ", ".join(
                f"{name} {overheads[name] * 100:+.1f}%"
                for name in ("recorder", "profiler", "lineage", "enabled")))
        if all(overheads[name] <= args.threshold
               for name in ("recorder", "profiler", "lineage")):
            break
        if attempt < args.retries:
            print("hard-budget overshoot; extending the measurement to "
                  "wash out machine-load bursts ...")

    disabled = legs["disabled"]
    record = determinism_record(disabled.payload)
    for name in ("recorder", "profiler", "lineage", "enabled"):
        if determinism_record(legs[name].payload) != record:
            print(f"FAIL: {name} run diverged from disabled run")
            return 1
    # the flight recorder is always-on in production farms, the
    # routine-level profiler is the attachable hot-path attribution, and
    # the lineage tracker rides every farm run under --lineage: all three
    # overhead budgets are hard failures, the full tracer's is advisory
    for name in ("recorder", "profiler", "lineage"):
        if overheads[name] > args.threshold:
            print(f"FAIL: {name} overhead {overheads[name] * 100:.1f}% "
                  f"exceeds {args.threshold * 100:.0f}% budget")
            return 1
    if overheads["enabled"] > args.threshold:
        print(f"warning: tracing-enabled overhead "
              f"{overheads['enabled'] * 100:.1f}% exceeds "
              f"{args.threshold * 100:.0f}% target")

    if args.update or not BASELINE_PATH.exists():
        baseline = {
            "fingerprint": fingerprint(),
            "wall_seconds_median": disabled.median_seconds,
            "calibration_ns": int(legs["calibration"].median_ns),
            "determinism": record,
            "rounds": args.rounds,
        }
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2,
                                            sort_keys=True) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())

    if record != baseline["determinism"]:
        print("FAIL: simulation diverged from the recorded baseline:")
        for key, expected in baseline["determinism"].items():
            if record.get(key) != expected:
                print(f"  {key}: expected {expected}, got {record.get(key)}")
        print("(if the change is intended, re-record with --update)")
        return 1
    print("determinism: OK (cycles and positions match the baseline)")

    if fingerprint() != baseline["fingerprint"]:
        print("environment differs from the baseline's; skipping the "
              "wall-clock comparison")
        return 0

    reference = baseline["wall_seconds_median"]
    measured = disabled.median_seconds
    baseline_cal = baseline.get("calibration_ns")
    if baseline_cal:
        # the calibration leg rode the same rounds, so a genuinely slow
        # host shows up in it too — but a tight spin loop and an
        # allocation-heavy workload don't scale identically under every
        # kind of load, so normalization may only excuse, never convict
        speed = legs["calibration"].median_ns / baseline_cal
        normalized = disabled.median_seconds / speed
        if normalized < measured:
            measured = normalized
            print(f"host-speed ratio {speed:.2f} vs baseline "
                  f"(wall normalized {disabled.median_seconds * 1e3:.1f} "
                  f"-> {measured * 1e3:.1f} ms)")
    allowed = reference * (1.0 + args.wall_threshold)
    ratio = measured / reference
    if measured > allowed:
        print(f"FAIL: tracing-disabled run regressed: "
              f"{measured * 1e3:.1f} ms vs baseline "
              f"{reference * 1e3:.1f} ms ({(ratio - 1) * 100:+.1f}%, "
              f"allowed {args.wall_threshold * 100:.0f}%)")
        print("(if the change is intended, re-record with --update)")
        return 1
    print(f"wall clock: OK ({(ratio - 1) * 100:+.1f}% vs baseline, "
          f"allowed {args.wall_threshold * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
