#!/usr/bin/env python
"""Tracing-overhead guard for the closed-loop benchmark.

Runs the bench_closed_loop workload (the paper's final architecture against
the fast-motor physics) with tracing *disabled* and compares it against the
recorded baseline in ``scripts/overhead_baseline.json``:

* **determinism** (always checked): total reference-clock cycles,
  configuration cycles and final motor positions must match the baseline
  exactly — the observability hooks must not perturb the simulation;
* **wall clock** (checked only when the environment fingerprint matches the
  baseline's): the best-of-N run time must not regress more than
  ``--threshold`` (default 5%) over the baseline.

It also measures the *flight-recorder-attached* (tracing off) run — the
always-on production configuration — and **fails** when its overhead over
disabled exceeds the threshold, and the tracing-*enabled* run, warning when
it exceeds the same threshold (informational: the enabled path is allowed
to cost something; the disabled and recorder paths are not).

Refresh the baseline after an intended simulator change::

    PYTHONPATH=src python scripts/check_overhead.py --update
"""

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.flow import build_system
from repro.isa import MD16_TEP
from repro.obs import FlightRecorder, Tracer
from repro.workloads import (
    MoveCommand,
    SMD_MUTUAL_EXCLUSIONS,
    SMD_ROUTINES,
    SmdClosedLoop,
    smd_chart,
)
from repro.workloads.motors import MotorSpec

BASELINE_PATH = Path(__file__).with_name("overhead_baseline.json")

# mirror benchmarks/bench_closed_loop.py exactly
FAST_MOTORS = {
    "X": MotorSpec("X", 50_000.0, 0.025e-3, 1.25, 2000.0),
    "Y": MotorSpec("Y", 50_000.0, 0.025e-3, 1.25, 2000.0),
    "Phi": MotorSpec("Phi", 9_000.0, 0.1, 900.0, 0.0),
}
COMMANDS = [MoveCommand(60, 45, 8), MoveCommand(25, 30, 4)]


def fingerprint():
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


def build_final_system():
    arch = MD16_TEP.with_(n_teps=2, microcode_optimized=True,
                          mutual_exclusions=SMD_MUTUAL_EXCLUSIONS)
    return build_system(smd_chart(), SMD_ROUTINES, arch, specialize=True)


def run_once(system, tracer=None, recorder=None):
    loop = SmdClosedLoop(system, motor_specs=FAST_MOTORS, tracer=tracer)
    if recorder is not None:
        loop.machine.attach_recorder(recorder)
    started = time.perf_counter()
    report = loop.run(COMMANDS, max_configuration_cycles=40000)
    elapsed = time.perf_counter() - started
    return elapsed, report


def measure_interleaved(system, rounds):
    """Alternate disabled/recorder/enabled rounds so machine-load drift hits
    all three measurements equally; returns their best times and reports.

    The *recorder* leg runs with a flight recorder attached and tracing off
    — the always-on production configuration, held to the same wall-clock
    budget as fully uninstrumented."""
    disabled, recorded, enabled = [], [], []
    disabled_report = recorder_report = enabled_report = None
    for _ in range(rounds):
        elapsed, disabled_report = run_once(system)
        disabled.append(elapsed)
        elapsed, recorder_report = run_once(system,
                                            recorder=FlightRecorder())
        recorded.append(elapsed)
        elapsed, enabled_report = run_once(system, Tracer())
        enabled.append(elapsed)
    return (min(disabled), min(recorded), min(enabled),
            disabled_report, recorder_report, enabled_report)


def determinism_record(report):
    return {
        "total_cycles": report.total_cycles,
        "configuration_cycles": report.configuration_cycles,
        "final_positions": report.final_positions,
        "commands_completed": report.commands_completed,
        "misses": sum(d.misses for d in report.deadline_reports),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="record the current run as the new baseline")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timing rounds (best-of is compared)")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="allowed wall-clock regression fraction")
    args = parser.parse_args(argv)

    print("building the final SMD architecture ...")
    system = build_final_system()

    print(f"timing disabled/recorder/enabled interleaved ({args.rounds} "
          "rounds each) ...")
    run_once(system)  # warm caches before timing anything
    (best, recorder_best, traced_best,
     report, recorder_report, traced_report) = measure_interleaved(
        system, args.rounds)
    record = determinism_record(report)
    print(f"  disabled best {best * 1e3:.1f} ms, "
          f"{record['total_cycles']} cycles")
    recorder_overhead = (recorder_best - best) / best if best else 0.0
    print(f"  recorder best {recorder_best * 1e3:.1f} ms "
          f"({recorder_overhead * 100:+.1f}% vs disabled)")
    overhead = (traced_best - best) / best if best else 0.0
    print(f"  enabled  best {traced_best * 1e3:.1f} ms "
          f"({overhead * 100:+.1f}% vs disabled)")

    if determinism_record(traced_report) != record:
        print("FAIL: tracing-enabled run diverged from disabled run")
        return 1
    if determinism_record(recorder_report) != record:
        print("FAIL: recorder-attached run diverged from disabled run")
        return 1
    if recorder_overhead > args.threshold:
        # the flight recorder is always-on in production farms: unlike the
        # tracer, its overhead budget is a hard failure, not advisory
        print(f"FAIL: flight-recorder overhead {recorder_overhead * 100:.1f}%"
              f" exceeds {args.threshold * 100:.0f}% budget")
        return 1
    if overhead > args.threshold:
        print(f"warning: tracing-enabled overhead {overhead * 100:.1f}% "
              f"exceeds {args.threshold * 100:.0f}% target")

    if args.update or not BASELINE_PATH.exists():
        baseline = {
            "fingerprint": fingerprint(),
            "wall_seconds_best": best,
            "determinism": record,
            "rounds": args.rounds,
        }
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2,
                                            sort_keys=True) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())

    if record != baseline["determinism"]:
        print("FAIL: simulation diverged from the recorded baseline:")
        for key, expected in baseline["determinism"].items():
            if record.get(key) != expected:
                print(f"  {key}: expected {expected}, got {record.get(key)}")
        print("(if the change is intended, re-record with --update)")
        return 1
    print("determinism: OK (cycles and positions match the baseline)")

    if fingerprint() != baseline["fingerprint"]:
        print("environment differs from the baseline's; skipping the "
              "wall-clock comparison")
        return 0

    allowed = baseline["wall_seconds_best"] * (1.0 + args.threshold)
    ratio = best / baseline["wall_seconds_best"]
    if best > allowed:
        print(f"FAIL: tracing-disabled run regressed: {best * 1e3:.1f} ms "
              f"vs baseline {baseline['wall_seconds_best'] * 1e3:.1f} ms "
              f"({(ratio - 1) * 100:+.1f}%, allowed "
              f"{args.threshold * 100:.0f}%)")
        print("(if the change is intended, re-record with --update)")
        return 1
    print(f"wall clock: OK ({(ratio - 1) * 100:+.1f}% vs baseline, "
          f"allowed {args.threshold * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
