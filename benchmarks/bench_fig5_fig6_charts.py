"""Fig. 5 / Fig. 6: the SMD statecharts themselves.

The two figures are the *inputs* of the evaluation; this benchmark verifies
that the reconstructed chart contains exactly the states and label elements
the figures show, emits the textual format (the Fig. 2a view of Fig. 5/6)
and the DOT rendering, and round-trips through the parser.  The benchmarked
kernel is chart construction + validation + emission.
"""

from repro.statechart import TransitionGraph, emit_chart, parse_chart
from repro.workloads import smd_chart

#: state inventory of Fig. 5 (motor control; Start/End names per figure)
FIG5_STATES = {
    "XStart2", "RunX", "XEnd2",
    "YStart2", "RunY", "YEnd2",
    "PhiStart", "RunPhi", "PhiEnd",
    "Idle2",
}

#: state inventory of Fig. 6 (top level)
FIG6_STATES = {
    "Idle1", "Operation", "DataPreparation", "ReachPosition",
    "OpcodeReady", "EmptyBuf", "Bounds", "NoData", "Errstate",
}

#: label fragments that appear verbatim in the figures
FIGURE_LABELS = [
    "INIT or ALLRESET/InitializeAll()",
    "ERROR/Stop()",
    "[DATA_VALID]/GetByte()",
    "X_PULSE/DeltaT(MX)",
    "Y_PULSE/DeltaT(MY)",
    "PHI_PULSE/DeltaT(MPHI)",
    "X_STEPS/SetTrue(XFINISH)",
    "Y_STEPS/SetTrue(YFINISH)",
    "PHI_STEPS/SetTrue(PHIFINISH)",
    "not (X_PULSE or Y_PULSE)",
    "XFINISH and YFINISH and PHIFINISH",
]


def test_fig5_fig6_charts(benchmark):
    def build_and_emit():
        chart = smd_chart()
        text = emit_chart(chart)
        reparsed = parse_chart(text)
        dot = TransitionGraph(chart).to_dot()
        return chart, text, reparsed, dot

    chart, text, reparsed, dot = benchmark(build_and_emit)

    print()
    print(f"chart {chart.name!r}: {len(chart.states)} states, "
          f"{len(chart.transitions)} transitions, "
          f"{len(chart.events)} events, {len(chart.conditions)} conditions")
    print()
    print(text[:1200] + "\n  ...")

    assert FIG5_STATES <= set(chart.states)
    assert FIG6_STATES <= set(chart.states)
    labels = [t.label for t in chart.transitions]
    for fragment in FIGURE_LABELS:
        assert any(fragment in label for label in labels), fragment

    # structural facts the figures show
    assert chart.states["Operation"].kind.value == "and"
    assert chart.states["Moving"].kind.value == "and"
    assert chart.states["DataPreparation"].default == "OpcodeReady"
    assert set(chart.states["Operation"].children) == \
        {"DataPreparation", "ReachPosition"}
    assert set(chart.states["Moving"].children) == \
        {"MoveX", "MoveY", "MovePhi"}

    # round trip preserved everything
    assert set(reparsed.states) == set(chart.states)
    assert len(reparsed.transitions) == len(chart.transitions)
    assert "cluster_Operation" in dot
    benchmark.extra_info["states"] = len(chart.states)
    benchmark.extra_info["transitions"] = len(chart.transitions)
