"""Ablation: each rung of the optimization ladder in isolation (section 4).

The paper applies its improvements "in increasing order of difficulty" but
reports only aggregated points; this ablation measures every rung's
individual contribution to the two critical paths of the SMD example:

* microcode peephole (redundant-jump removal),
* storage promotion (external -> internal -> registers),
* constant-argument routine specialization,
* a second TEP (with the declared mutual exclusions),

each applied *alone* on top of the 16-bit M/D baseline, plus the full
Improver trajectory for comparison.
"""

from repro.flow import Improver, ascii_table, build_system
from repro.flow.improve import hot_globals
from repro.isa import MD16_TEP, StorageClass
from repro.workloads import SMD_MUTUAL_EXCLUSIONS, SMD_ROUTINES


def _paths(system):
    paths = system.critical_paths()
    return max(paths["X_PULSE"], paths["Y_PULSE"]), paths["DATA_VALID"]


def test_ablation_ladder(smd, reference_system, benchmark):
    def ablate():
        baseline_xy, baseline_dv = _paths(reference_system)
        promotion_map = {name: StorageClass.INTERNAL
                         for name in hot_globals(reference_system)}
        variants = {
            "baseline (none)": build_system(smd, SMD_ROUTINES, MD16_TEP),
            "peephole only": build_system(
                smd, SMD_ROUTINES, MD16_TEP.with_(microcode_optimized=True)),
            "promotion only": build_system(
                smd, SMD_ROUTINES, MD16_TEP, storage_map=promotion_map),
            "specialization only": build_system(
                smd, SMD_ROUTINES, MD16_TEP, specialize=True),
            "second TEP only": build_system(
                smd, SMD_ROUTINES,
                MD16_TEP.with_(n_teps=2,
                               mutual_exclusions=SMD_MUTUAL_EXCLUSIONS)),
        }
        return baseline_xy, baseline_dv, {
            name: (_paths(system) + (system.area().total_clbs,))
            for name, system in variants.items()}

    baseline_xy, baseline_dv, results = benchmark.pedantic(
        ablate, rounds=1, iterations=1)

    rows = []
    for name, (xy, dv, area) in results.items():
        rows.append((name, area, xy, f"{xy / baseline_xy:.2f}x",
                     dv, f"{dv / baseline_dv:.2f}x"))
    print()
    print(ascii_table(
        ["Rung (alone)", "Area", "X/Y", "vs base", "DATA_VALID", "vs base"],
        rows, title="Ablation: individual optimization rungs"))

    # every rung except the baseline improves both paths
    for name, (xy, dv, _) in results.items():
        if name == "baseline (none)":
            continue
        assert xy < baseline_xy, name
        assert dv < baseline_dv, name
    # the second TEP is the strongest single rung on the X/Y path (it is
    # the paper's "last resort" precisely because it is the big hammer)
    xy_by_rung = {name: xy for name, (xy, _, _) in results.items()
                  if name != "baseline (none)"}
    assert min(xy_by_rung, key=xy_by_rung.get) == "second TEP only"
    benchmark.extra_info["ablation"] = {
        name: values[:2] for name, values in results.items()}


def test_improver_trajectory(smd, benchmark):
    """The automated ladder: from the selected architecture to a solution."""
    def improve():
        improver = Improver(smd, SMD_ROUTINES,
                            mutual_exclusions=SMD_MUTUAL_EXCLUSIONS,
                            max_teps=2)
        return improver.run()

    result = benchmark.pedantic(improve, rounds=1, iterations=1)

    rows = [(step.rung, step.area_clbs,
             max(step.critical_paths["X_PULSE"],
                 step.critical_paths["Y_PULSE"]),
             step.critical_paths["DATA_VALID"], step.n_violations)
            for step in result.steps]
    print()
    print(ascii_table(
        ["Rung", "Area", "X/Y", "DATA_VALID", "violations"],
        rows, title="Improver trajectory (automated ladder)"))

    assert result.steps[0].rung == "baseline"
    assert result.steps[0].n_violations > 0
    # violations never increase along the ladder's committed steps
    # (each rung keeps the previous ones)
    assert result.steps[-1].n_violations <= result.steps[0].n_violations
    benchmark.extra_info["rungs"] = [step.rung for step in result.steps]
    benchmark.extra_info["solved"] = result.success
