"""Closed-loop validation (beyond the paper's tables): static vs dynamic.

The paper validates its static timing analysis only statically; this
benchmark closes the loop: the compiled controller runs cycle-accurately
against the motor physics, and we check that

* the final architecture misses no deadline (the paper's "fulfils all
  timing requirements", observed dynamically);
* the worst *observed* latency of every constrained event is bounded by the
  static critical path — the soundness of the section-4 heuristic;
* the unoptimized single-TEP architecture, which the static analysis flags,
  actually misses X/Y deadlines under pulse load.
"""

from repro.flow import ascii_table
from repro.workloads import MoveCommand, SmdClosedLoop
from repro.workloads.motors import MotorSpec

FAST_MOTORS = {
    "X": MotorSpec("X", 50_000.0, 0.025e-3, 1.25, 2000.0),
    "Y": MotorSpec("Y", 50_000.0, 0.025e-3, 1.25, 2000.0),
    "Phi": MotorSpec("Phi", 9_000.0, 0.1, 900.0, 0.0),
}

COMMANDS = [MoveCommand(60, 45, 8), MoveCommand(25, 30, 4)]


def test_closed_loop_final_architecture(final_system, benchmark):
    def run():
        loop = SmdClosedLoop(final_system, motor_specs=FAST_MOTORS)
        return loop.run(COMMANDS, max_configuration_cycles=40000)

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    static = final_system.critical_paths()
    rows = []
    for deadline in report.deadline_reports:
        rows.append((deadline.event, deadline.period,
                     static[deadline.event], deadline.worst_latency,
                     deadline.misses))
    print()
    print(ascii_table(
        ["Event", "Period", "Static bound", "Worst observed", "Misses"],
        rows, title="Closed loop: static bound vs observed latency"))
    print(f"\nmoves completed: {report.commands_completed}"
          f"/{report.commands_issued}; positions {report.final_positions}; "
          f"{report.total_cycles} cycles simulated")

    assert report.all_moves_completed
    assert report.final_positions == {"X": 85, "Y": 75, "Phi": 12}
    assert report.all_deadlines_met
    for deadline in report.deadline_reports:
        if deadline.worst_latency is not None:
            # allow one scheduler window of slack for the cycle that was in
            # flight when the event arrived
            assert deadline.worst_latency <= static[deadline.event] + 50
    benchmark.extra_info["worst_latencies"] = report.worst_latencies


def test_closed_loop_unoptimized_misses(reference_system, benchmark):
    """The flagged architecture really does miss X/Y deadlines."""
    def run():
        loop = SmdClosedLoop(reference_system, motor_specs=FAST_MOTORS)
        return loop.run([MoveCommand(80, 80, 6)],
                        max_configuration_cycles=30000)

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    xy_misses = sum(d.misses for d in report.deadline_reports
                    if d.event in ("X_PULSE", "Y_PULSE"))
    print(f"\nunoptimized 1-TEP architecture: {xy_misses} X/Y deadline "
          f"misses observed (static analysis predicted violations)")
    assert xy_misses > 0
    benchmark.extra_info["xy_misses"] = xy_misses
