"""Fig. 4: the partial statechart graph with parallel-sibling upper bounds.

Regenerates the annotated transition graph for DATA_VALID: the DFS-explored
cycles highlighted, the arrival period (1500), and the recursively computed
upper bounds for the parallel regions — the paper's figure shows bounds of
300 and 275 next to the two regions of ``Operating``; the reproduction's
bounds come from the reconstructed routine costs and are checked for the
figure's *structure* (both regions bounded, AND = sum of motor regions,
bounds of the same order as the figure's).
"""

from repro.workloads import TABLE2_PAPER


def test_fig4_parallel_bounds(reference_system, benchmark):
    validator = reference_system.validator

    dot = benchmark(validator.annotated_dot, "DATA_VALID")

    reach = validator.region_upper_bound("ReachPosition")
    prep = validator.region_upper_bound("DataPreparation")
    move_x = validator.region_upper_bound("MoveX")
    print()
    print(dot)
    print()
    print(f"upper bound ReachPosition (sibling of DataPreparation): {reach}")
    print(f"upper bound DataPreparation (sibling of ReachPosition): {prep}")
    print(f"  (paper's Fig. 4 annotates 300 and 275 for its partial view)")
    print(f"upper bound of one motor region (MoveX): {move_x}")

    assert "digraph" in dot
    assert f"period {TABLE2_PAPER['DATA_VALID']}" in dot
    assert "upper bound" in dot
    # structure: the AND composition sums its three motor regions
    assert reach == 3 * move_x
    assert prep > 0 and reach > 0
    # the DATA_VALID cycles traverse DataPreparation: its sibling bound is
    # what inflates each step (the Fig. 4 mechanism)
    per_step = validator.region_upper_bound("ReachPosition")
    cycles = validator.event_cycles("DATA_VALID")
    self_loop = next(c for c in cycles
                     if c.states == ("OpcodeReady", "OpcodeReady"))
    own_cost = reference_system.transition_costs[
        self_loop.transition_indices[0]]
    assert self_loop.length == own_cost + per_step
    benchmark.extra_info["bound_reach"] = reach
    benchmark.extra_info["bound_prep"] = prep
