"""Program-memory and decoder-ROM footprints (beyond the paper's tables).

Fig. 1 gives every TEP a program memory and the PSCP a microprogram decoder;
the paper reports only CLB totals.  This benchmark quantifies the software
side: assembled program-image size (16-bit Harvard program-memory words) and
decoder-ROM size (microinstruction words) per architecture — the quantities
that bound the memories a real PSCP version would need.
"""

from repro.flow import ascii_table, build_system
from repro.isa import MD16_TEP, MINIMAL_TEP, assemble, program_size_words
from repro.pscp.machine import build_transition_stubs
from repro.workloads import SMD_ROUTINES, smd_chart


def test_program_memory_footprints(smd, benchmark):
    def measure():
        rows = []
        for name, arch, specialize in [
                ("minimal 8-bit", MINIMAL_TEP, False),
                ("16-bit M/D", MD16_TEP, False),
                ("16-bit M/D optimized",
                 MD16_TEP.with_(microcode_optimized=True), True)]:
            system = build_system(smd, SMD_ROUTINES, arch,
                                  specialize=specialize)
            code = system.compiled.flat_instructions()
            stubs, _ = build_transition_stubs(
                system.chart, system.compiled, system.param_names)
            assembled = assemble(code + stubs)
            rows.append((name,
                         len(code) + len(stubs),
                         assembled.size_words,
                         system.decoder_rom().size_words))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    print()
    print(ascii_table(
        ["Architecture", "instructions", "program words (16-bit)",
         "decoder ROM words"],
        rows, title="Program memory and decoder ROM footprints"))

    by_name = {row[0]: row for row in rows}
    # the 8-bit machine needs far more instructions (multi-word sequences
    # plus the software multiply/divide helpers)
    assert by_name["minimal 8-bit"][1] > 1.5 * by_name["16-bit M/D"][1]
    # every image must be addressable by the 16-bit PC model
    for name, n_instr, words, rom in rows:
        assert words < 65536
        # the decoder ROM must fit the 8-bit microaddress space
        assert rom <= 256
    # specialization adds clones: more instructions, same decoder ROM order
    assert by_name["16-bit M/D optimized"][1] > 0
    benchmark.extra_info["rows"] = rows
