"""Scalability: TEP count and bus width on synthetic workloads.

The paper claims scalability "with respect to the number of processing
elements as well as parameters such as bus widths and register file sizes"
but evaluates a single example.  This benchmark sweeps the knobs over
synthetic chart families and checks the expected scaling laws:

* embarrassingly parallel workloads: critical path shrinks with TEP count
  (saturating at the region count);
* serial pipelines: TEP count does not help;
* SLA-bound workloads: shared area grows linearly with transition count
  while the TEP is unaffected.
"""

from repro.flow import ascii_table, build_system
from repro.isa import ArchConfig
from repro.workloads import parallel_servers, pipeline_chart, wide_decoder


def _arch(n_teps=1, width=16):
    return ArchConfig(name=f"{width}b{n_teps}t", data_width=width,
                      internal_ram_words=64, n_teps=n_teps)


def test_tep_scaling_parallel_workload(benchmark):
    chart, source = parallel_servers(4, work_iterations=8)

    def sweep():
        return {n: build_system(chart, source, _arch(n_teps=n))
                .critical_paths()["REQ0"]
                for n in (1, 2, 4, 8)}

    paths = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [(n, path, f"{paths[1] / path:.2f}x") for n, path in paths.items()]
    print()
    print(ascii_table(["TEPs", "crit. path REQ0", "speedup"],
                      rows, title="4 parallel servers"))

    assert paths[2] < paths[1]
    assert paths[4] < paths[2]
    # saturation: regions = 4, so 8 TEPs buy nothing more
    assert paths[8] == paths[4]
    # at 4 TEPs every sibling overlaps: near-ideal speedup (>= 2.5x)
    assert paths[1] / paths[4] >= 2.5
    benchmark.extra_info["speedup_4tep"] = round(paths[1] / paths[4], 2)


def test_tep_scaling_serial_workload(benchmark):
    chart, source = pipeline_chart(4, work_iterations=6)

    def sweep():
        return {n: build_system(chart, source, _arch(n_teps=n))
                .critical_paths()["FEED"]
                for n in (1, 2, 4)}

    paths = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(ascii_table(["TEPs", "crit. path FEED"],
                      [(n, p) for n, p in paths.items()],
                      title="4-stage pipeline (serial)"))
    assert paths[1] == paths[2] == paths[4]


def test_bus_width_scaling(benchmark):
    chart, source = parallel_servers(2, work_iterations=8)

    def sweep():
        return {w: build_system(chart, source, _arch(width=w))
                .critical_paths()["REQ0"]
                for w in (8, 16)}

    paths = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(ascii_table(["bus width", "crit. path REQ0"],
                      [(w, p) for w, p in paths.items()],
                      title="bus-width sweep (16-bit arithmetic workload)"))
    # 16-bit data on an 8-bit bus needs multi-word sequences: slower
    assert paths[8] > paths[16]
    benchmark.extra_info["widening_gain"] = round(paths[8] / paths[16], 2)


def test_sla_scaling(benchmark):
    def sweep():
        results = []
        for n in (4, 8, 16, 32):
            chart, source = wide_decoder(n)
            system = build_system(chart, source, _arch())
            results.append((n, system.pla.product_terms,
                            system.pla.layout.width,
                            system.area().shared_clbs,
                            system.area().tep_clbs))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(ascii_table(
        ["commands", "product terms", "CR bits", "shared CLBs", "TEP CLBs"],
        results, title="SLA scaling with decoder width"))

    terms = [r[1] for r in results]
    shared = [r[3] for r in results]
    tep = [r[4] for r in results]
    assert terms == sorted(terms) and terms[-1] > terms[0]
    assert shared == sorted(shared) and shared[-1] > shared[0]
    # the TEP itself is application-independent
    assert len(set(tep)) == 1
