"""Table 3: the event cycles found by the timing validator.

Runs the section-4 heuristic on the SMD chart (reference architecture:
one 16-bit M/D TEP, unoptimized code) and compares every cycle length to the
paper's printed value.  The benchmarked kernel is the full event-cycle
search over all four constrained events.
"""

from repro.flow import comparison_table, table3_report
from repro.workloads import TABLE3_PAPER

TOLERANCE = 0.05


def _best_match(lengths, states):
    candidates = [length for s, length in lengths.items()
                  if s[0] == states[0] and s[-1] == states[-1]
                  and len(s) == len(states)]
    return max(candidates) if candidates else None


def test_table3_event_cycles(reference_system, benchmark):
    validator = reference_system.validator

    cycles = benchmark(validator.all_cycles)

    lengths = {}
    for cycle in cycles:
        key = tuple(cycle.states)
        lengths[key] = max(lengths.get(key, 0), cycle.length)

    print()
    print(table3_report(cycles))
    print()

    rows = []
    max_error = 0.0
    for states, paper in TABLE3_PAPER:
        measured = _best_match(lengths, states)
        assert measured is not None, f"cycle {states} not found"
        rows.append(("{" + ", ".join(states) + "}", paper, measured))
        max_error = max(max_error, abs(measured - paper) / paper)
        assert abs(measured - paper) <= TOLERANCE * paper, (states, measured)
    print(comparison_table("Table 3: paper vs measured", rows))
    print(f"\nmax relative error: {max_error:.1%} "
          f"(tolerance {TOLERANCE:.0%}); "
          f"{len(cycles)} cycles found in total "
          f"({len(cycles) - len(TABLE3_PAPER)} beyond the paper's list)")

    # the paper's conclusion: violations on the first three constraints only
    violated = {v.cycle.event for v in reference_system.violations()}
    assert violated == {"DATA_VALID", "X_PULSE", "Y_PULSE"}
    benchmark.extra_info["max_relative_error"] = round(max_error, 4)
    benchmark.extra_info["cycles_found"] = len(cycles)
