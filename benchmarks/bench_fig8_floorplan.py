"""Fig. 8: the floorplan of the final PSCP on the XC4025.

Places every macro block of the final (2 x 16-bit M/D, optimized)
architecture on the 32x32 CLB grid and renders the occupancy map — the
textual equivalent of the paper's figure.  Checks: the design fits a single
XC4025 (the paper's headline result), no overlaps, all blocks placed, and
utilization in the 70-90% band the paper's 773/1024 implies.
"""

from repro.hw import XC4025, floorplan


def test_fig8_floorplan(final_system, benchmark):
    estimate = final_system.area()

    plan = benchmark(floorplan, estimate)

    print()
    print(plan.ascii_map())

    assert plan.device is XC4025
    assert plan.in_bounds()
    assert plan.overlaps() == []
    assert len(plan.placements) == len(estimate.blocks())
    # paper: 773 of 1024 CLBs = 75%; rectangles round up a little
    assert 0.60 <= plan.utilization <= 0.95
    # two TEPs: every per-TEP block appears twice
    tep0 = {p.name for p in plan.placements if p.name.startswith("tep0.")}
    tep1 = {p.name for p in plan.placements if p.name.startswith("tep1.")}
    assert {n.replace("tep0.", "") for n in tep0} == \
        {n.replace("tep1.", "") for n in tep1}
    benchmark.extra_info["utilization"] = round(plan.utilization, 3)
    benchmark.extra_info["clbs"] = estimate.total_clbs
