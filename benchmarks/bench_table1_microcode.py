"""Table 1: the microcode format.

Regenerates the microinstruction group/signal encoding table and checks it
against the paper's rows verbatim.  The benchmarked kernel is decoder-ROM
synthesis for the full basic instruction set ("the associated microprogram
decoder can be synthesized from the combination of all the microinstruction
sequences involved").
"""

from repro.flow import table1_report
from repro.isa import (
    DecoderRom,
    Imm,
    Instruction,
    LabelRef,
    MD16_TEP,
    Mem,
    Op,
    PortRef,
    SignalRef,
    format_table1,
)

PAPER_TABLE1 = {
    "arithmetic": ("001", "01x00"),
    "logical": ("001", "000xx"),
    "shift": ("010", "0xxxx"),
    "single signals": ("011", "xxxxx"),
    "address bus": ("100", "0xxxx"),
    "jump, branch": ("101", "0xxxx"),
}


def _basic_instruction_inventory():
    return [
        Instruction(Op.LDA, Imm(1)), Instruction(Op.LDA, Mem(0)),
        Instruction(Op.LDO, Mem(1)), Instruction(Op.STA, Mem(2)),
        Instruction(Op.ADD, Mem(3)), Instruction(Op.SUB, Imm(1)),
        Instruction(Op.AND, Mem(4)), Instruction(Op.ORR, Mem(5)),
        Instruction(Op.XOR, Imm(7)), Instruction(Op.CMP, Imm(0)),
        Instruction(Op.SHL), Instruction(Op.SHR),
        Instruction(Op.JMP, LabelRef("x", 0)),
        Instruction(Op.JZ, LabelRef("x", 0)),
        Instruction(Op.JNZ, LabelRef("x", 0)),
        Instruction(Op.CALL, LabelRef("x", 0)), Instruction(Op.RET),
        Instruction(Op.TRET),
        Instruction(Op.INP, PortRef(0x700)),
        Instruction(Op.OUTP, PortRef(0x701)),
        Instruction(Op.EVSET, SignalRef(0)),
        Instruction(Op.CSET, SignalRef(1)),
        Instruction(Op.CCLR, SignalRef(2)),
        Instruction(Op.CTST, SignalRef(3)),
    ]


def test_table1_microcode_format(benchmark):
    def synthesize_decoder():
        rom = DecoderRom(MD16_TEP)
        rom.add_program(_basic_instruction_inventory())
        return rom

    rom = benchmark(synthesize_decoder)

    report = table1_report()
    print()
    print(report)
    print(f"\ndecoder ROM for the basic instruction set: "
          f"{rom.size_words} microinstruction words")

    measured = {symbolic: (bits, pattern)
                for symbolic, bits, pattern in format_table1()}
    assert measured == PAPER_TABLE1
    benchmark.extra_info["rom_words"] = rom.size_words
    benchmark.extra_info["table1_matches_paper"] = True
