"""Fig. 7: the SMD pickup head's motors.

Regenerates the physical picture behind the example: four motors, their step
rates, resolutions and kinematic limits, and the derived quantities the
paper quotes (maximum velocity 1.25 m/s, 1 m max travel, the pulse-spacing
deadlines).  The benchmarked kernel is trapezoidal-profile generation for a
full-travel X move (40 000 steps).
"""

import math

from repro.flow import ascii_table
from repro.workloads.motors import (
    PHI_MOTOR,
    REFERENCE_CLOCK_HZ,
    SMD_MOTORS,
    TrapezoidalProfile,
    X_MOTOR,
    steps_for_distance,
)


def test_fig7_motor_model(benchmark):
    full_travel_steps = steps_for_distance(X_MOTOR, 1.0)

    def profile_full_travel():
        return TrapezoidalProfile(X_MOTOR, full_travel_steps).step_times()

    times = benchmark.pedantic(profile_full_travel, rounds=3, iterations=1)

    rows = []
    for motor in SMD_MOTORS.values():
        rows.append((motor.name, f"{motor.max_step_hz / 1000:.0f} kHz",
                     motor.step_size,
                     motor.max_velocity if motor.max_acceleration else "uniform",
                     motor.min_step_interval_cycles))
    print()
    print(ascii_table(
        ["Motor", "max step rate", "step size", "max velocity", "min pulse gap (cycles)"],
        rows, title="Fig. 7: the pickup-head motors"))

    duration = times[-1]
    print(f"\n1 m X travel: {full_travel_steps} steps in {duration:.3f} s")

    # paper's kinematics: 1.25 m/s, 10 m/s^2 => 1 m takes t = d/v + v/a
    expected = 1.0 / 1.25 + 1.25 / 10.0
    assert math.isclose(duration, expected, rel_tol=0.02)
    assert full_travel_steps == 40_000
    # peak step rate = vmax / step size = 50 kHz exactly
    profile = TrapezoidalProfile(X_MOTOR, full_travel_steps)
    assert math.isclose(profile.max_step_rate(), 50_000, rel_tol=0.02)
    # phi: uniform 9 kHz
    phi_times = TrapezoidalProfile(PHI_MOTOR, 100).step_times()
    gaps = {round(b - a, 9) for a, b in zip(phi_times, phi_times[1:])}
    assert len(gaps) == 1
    benchmark.extra_info["full_travel_seconds"] = round(duration, 4)
