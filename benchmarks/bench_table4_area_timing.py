"""Table 4: area and timing results across the five architectures.

Rebuilds the SMD system at each of the paper's five architecture points and
regenerates the full table: CLB area, X/Y critical path, DATA_VALID critical
path.  Checks:

* areas within 5% of the paper (the CLB model is calibrated once, globally);
* the unoptimized 16-bit M/D row within 5% on both critical paths (the
  Table 3 reference point);
* the *shape*: every optimization rung improves both paths, the minimal TEP
  is beyond both constraints ("> 1000 / > 3000"), and the final architecture
  meets every constraint and fits the XC4025.
"""

from repro.flow import build_system, table4_report
from repro.hw import XC4025
from repro.isa import MD16_TEP, MINIMAL_TEP
from repro.workloads import (
    SMD_MUTUAL_EXCLUSIONS,
    SMD_ROUTINES,
    TABLE2_PAPER,
    TABLE4_PAPER,
)

AREA_TOLERANCE = 0.05
REFERENCE_TOLERANCE = 0.05


def _architecture_points():
    md2 = MD16_TEP.with_(n_teps=2, mutual_exclusions=SMD_MUTUAL_EXCLUSIONS)
    return [
        ("1 minimal TEP", MINIMAL_TEP, False),
        ("16bit M/D TEP, unoptimized code", MD16_TEP, False),
        ("16bit M/D TEP, optimized code",
         MD16_TEP.with_(microcode_optimized=True), True),
        ("2 16bit M/D TEP, unoptimized code", md2, False),
        ("2 16bit M/D TEP, optimized code",
         md2.with_(microcode_optimized=True), True),
    ]


def test_table4_area_and_timing(smd, benchmark):
    def sweep():
        rows = []
        for name, arch, specialize in _architecture_points():
            system = build_system(smd, SMD_ROUTINES, arch,
                                  specialize=specialize)
            paths = system.critical_paths()
            rows.append((name, system.area().total_clbs,
                         max(paths["X_PULSE"], paths["Y_PULSE"]),
                         paths["DATA_VALID"], system))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print(table4_report([row[:4] for row in rows]))
    print("\npaper:")
    print(table4_report([(name, *values)
                         for name, values in TABLE4_PAPER.items()]))

    by_name = {row[0]: row for row in rows}

    # areas within tolerance everywhere
    for name, (paper_area, _, _) in TABLE4_PAPER.items():
        measured_area = by_name[name][1]
        assert abs(measured_area - paper_area) <= AREA_TOLERANCE * paper_area

    # the reference row matches the paper closely
    _, _, xy_ref, dv_ref, _ = by_name["16bit M/D TEP, unoptimized code"]
    assert abs(xy_ref - 878) <= REFERENCE_TOLERANCE * 878
    assert abs(dv_ref - 2041) <= REFERENCE_TOLERANCE * 2041

    # minimal TEP: beyond the paper's "> 1000 / > 3000"
    _, _, xy_min, dv_min, _ = by_name["1 minimal TEP"]
    assert xy_min > 1000 and dv_min > 3000

    # monotone improvement along the ladder (both optimizations help)
    ladder = ["16bit M/D TEP, unoptimized code",
              "16bit M/D TEP, optimized code",
              "2 16bit M/D TEP, optimized code"]
    xy_values = [by_name[n][2] for n in ladder]
    dv_values = [by_name[n][3] for n in ladder]
    assert xy_values == sorted(xy_values, reverse=True)
    assert dv_values == sorted(dv_values, reverse=True)

    # the final architecture fulfils all timing requirements and fits
    final = by_name["2 16bit M/D TEP, optimized code"]
    _, final_area, final_xy, final_dv, final_system = final
    assert final_xy <= TABLE2_PAPER["X_PULSE"]
    assert final_dv <= TABLE2_PAPER["DATA_VALID"]
    assert final_system.violations() == []
    assert XC4025.fits(final_area)

    benchmark.extra_info["rows"] = [row[:4] for row in rows]
