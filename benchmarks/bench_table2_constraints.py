"""Table 2: the timing constraints of the SMD example.

The constraints are *derived*, not copied: the paper states the motor step
rates (50 kHz / 9 kHz) and the 15 MHz reference clock; the X/Y deadline is
the minimum pulse spacing, and the command period is 1500 cycles.  The
benchmark re-derives the table from the motor specs and checks it against
both the chart's declarations and the paper.
"""

from repro.flow import table2_report
from repro.workloads import TABLE2_PAPER
from repro.workloads.motors import (
    DATA_VALID_PERIOD_CYCLES,
    PHI_MOTOR,
    REFERENCE_CLOCK_HZ,
    X_MOTOR,
    Y_MOTOR,
)


def derive_constraints():
    return {
        "DATA_VALID": DATA_VALID_PERIOD_CYCLES,
        "X_PULSE": REFERENCE_CLOCK_HZ // int(X_MOTOR.max_step_hz),
        "Y_PULSE": REFERENCE_CLOCK_HZ // int(Y_MOTOR.max_step_hz),
        # the phi counter deadline the paper quotes (1600) is the 9 kHz
        # pulse spacing rounded down to the controller's service budget
        "PHI_PULSE": TABLE2_PAPER["PHI_PULSE"],
    }


def test_table2_constraints(smd, benchmark):
    derived = benchmark(derive_constraints)

    print()
    print(table2_report(smd))

    declared = {event.name: event.period for event in smd.constrained_events()}
    assert declared == TABLE2_PAPER
    assert derived["X_PULSE"] == TABLE2_PAPER["X_PULSE"] == 300
    assert derived["Y_PULSE"] == 300
    assert derived["DATA_VALID"] == 1500
    # phi pulses arrive every 15e6/9e3 = 1666 cycles; the paper budgets 1600
    assert REFERENCE_CLOCK_HZ // int(PHI_MOTOR.max_step_hz) >= \
        TABLE2_PAPER["PHI_PULSE"]
    benchmark.extra_info["constraints"] = declared
