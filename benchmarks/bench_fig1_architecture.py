"""Fig. 1 + Fig. 3: the generated PSCP and TEP structure.

Regenerates the architecture overview (Fig. 1's blocks: SLA, CR, TAT,
scheduler, buses, TEPs) and the TEP-internal block list (Fig. 3: calculation
unit with ACC/OP and ALU, RAM, microprogrammed controller) from the final
SMD system, and emits the structural VHDL skeleton.  The benchmarked kernel
is the area/structure generation.
"""

from repro.flow import architecture_figure
from repro.hw import emit_pscp_skeleton

FIG1_SHARED_BLOCKS = {"scheduler", "sla", "configuration-register",
                      "transition-address-table", "bus-architecture",
                      "mutex-decode"}
FIG3_TEP_BLOCKS = {"calculation-unit", "acc-op-registers", "shifter",
                   "internal-ram", "microcontrol", "address-logic",
                   "port-interface", "condition-cache", "sla-interface",
                   "muldiv-unit"}


def test_fig1_fig3_architecture(final_system, benchmark):
    estimate = benchmark(final_system.area)

    print()
    print(architecture_figure(final_system))
    print()
    skeleton = emit_pscp_skeleton(final_system.arch)
    print(skeleton)

    shared_names = {component.name for component in estimate.shared}
    tep_names = {component.name for component in estimate.per_tep}
    assert shared_names == FIG1_SHARED_BLOCKS
    assert FIG3_TEP_BLOCKS <= tep_names
    assert estimate.n_teps == 2
    assert "u_tep0" in skeleton and "u_tep1" in skeleton
    assert "u_sla" in skeleton and "u_scheduler" in skeleton
    benchmark.extra_info["total_clbs"] = estimate.total_clbs
