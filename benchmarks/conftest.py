"""Shared fixtures for the reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper.  The
expensive build artifacts are session-cached here so the benchmark timings
measure the interesting kernel (analysis/synthesis), not repeated setup.
"""

import pytest

from repro.flow import build_system
from repro.isa import MD16_TEP, MINIMAL_TEP
from repro.workloads import (
    SMD_MUTUAL_EXCLUSIONS,
    SMD_ROUTINES,
    smd_chart,
)


@pytest.fixture(scope="session")
def smd():
    """The SMD chart (Figs. 5/6) used by every evaluation benchmark."""
    return smd_chart()


@pytest.fixture(scope="session")
def reference_system(smd):
    """Table 3's reference point: one 16-bit M/D TEP, unoptimized code."""
    return build_system(smd, SMD_ROUTINES, MD16_TEP)


@pytest.fixture(scope="session")
def final_system(smd):
    """The paper's final architecture: 2 x 16-bit M/D TEP, optimized code."""
    arch = MD16_TEP.with_(n_teps=2, microcode_optimized=True,
                          mutual_exclusions=SMD_MUTUAL_EXCLUSIONS)
    return build_system(smd, SMD_ROUTINES, arch, specialize=True)


@pytest.fixture(scope="session")
def minimal_system(smd):
    return build_system(smd, SMD_ROUTINES, MINIMAL_TEP)
