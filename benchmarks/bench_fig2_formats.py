"""Fig. 2a / Fig. 2b: the textual statechart format and the intermediate C.

Round-trips the Fig. 2a fragment through the parser/emitter and regenerates
the Fig. 2b artifacts (the preamble types and the port declarations with
their addresses).  The benchmarked kernel is the full front end on the SMD
chart + routine sources.
"""

from repro.action import parse_with_preamble
from repro.action.check import Externals, check_program
from repro.statechart import emit_chart, parse_chart
from repro.workloads import SMD_ROUTINES, smd_chart

FIG_2A_FRAGMENT = """
basicstate Errstate {
  transition {
    target Idle1;
    label "INIT or ALLRESET/InitializeAll()"
  }
}
andstate Operation {
  contains DataPreparation, ReachPosition;
  transition {
    target Idle1;
    label "INIT or ALLRESET/InitializeAll()";
  }
  transition {
    target Errstate;
    label "ERROR/Stop()";
  }
}
orstate DataPreparation {
  contains OpcodeReady, EmptyBuf, Bounds, NoData;
  default OpcodeReady;
}
basicstate OpcodeReady {}
basicstate EmptyBuf {}
basicstate Bounds {}
basicstate NoData {}
basicstate ReachPosition {}
basicstate Idle1 {}
event INIT; event ALLRESET; event ERROR;
"""


def test_fig2_formats(smd, benchmark):
    def front_end():
        chart = parse_chart(FIG_2A_FRAGMENT, name="fig2a")
        text = emit_chart(chart)
        again = parse_chart(text)
        program = parse_with_preamble(SMD_ROUTINES)
        checked = check_program(program, Externals.from_chart(smd))
        return chart, again, checked

    chart, again, checked = benchmark(front_end)

    print()
    print("--- Fig. 2a round-trip (emitted form) ---")
    print(emit_chart(chart))
    print("--- Fig. 2b: preamble types present ---")
    struct_names = [s.name for s in checked.program.structs]
    enum_names = [e.name for e in checked.program.enums]
    print("enums:", enum_names)
    print("structs:", struct_names)
    print("--- Fig. 2b: port architecture (addresses in octal) ---")
    for port in smd.ports.values():
        print(f"  Port {port.name} = {{{port.kind.value}, {port.width}, "
              f"0{port.address:o}, {port.direction.value}}}")

    assert set(again.states) == set(chart.states)
    assert again.states["DataPreparation"].default == "OpcodeReady"
    assert {"ECD", "Encoding", "PortDir"} <= set(enum_names)
    assert {"Port", "EventCondition"} <= set(struct_names)
    # Fig. 2b's example addresses appear in the SMD port map
    addresses = {port.address for port in smd.ports.values()}
    assert 0o700 in addresses and 0o712 in addresses and 0o717 in addresses
    benchmark.extra_info["ports"] = len(smd.ports)
