chart smd_pickup_head;

event POWER;
event INIT;
event ALLRESET;
event ERROR;
event DATA_VALID period 1500 port PE_DATA;
event END_DATA;
event BUF_EMPTY;
event X_PULSE period 300 port PE_XPULSE;
event Y_PULSE period 300 port PE_YPULSE;
event PHI_PULSE period 1600 port PE_PHIPULSE;
event X_STEPS;
event Y_STEPS;
event PHI_STEPS;
event END_MOVE;
event GRAB_RELEASE;
condition MOVEMENT;
condition XFINISH;
condition YFINISH;
condition PHIFINISH;
port PE_DATA : event width 1 address 448 in;
port PE_XPULSE : event width 1 address 449 in;
port PE_YPULSE : event width 1 address 450 in;
port PE_PHIPULSE : event width 1 address 451 in;
port CE0 : condition width 1 address 458 inout;
port Buffer : data width 8 address 463 inout;
port Status : data width 8 address 464 out;
port XMotor : data width 8 address 465 out;
port YMotor : data width 8 address 466 out;
port PhiMotor : data width 8 address 467 out;

orstate Assembly {
  contains Off, Idle1, Operation, Errstate;
  default Off;
}
basicstate Off {
  transition {
    target Idle1;
    label "POWER";
  }
}
basicstate Idle1 {
  transition {
    target Operation;
    label "[DATA_VALID]/GetByte()";
  }
}
andstate Operation {
  contains DataPreparation, ReachPosition;
  transition {
    target Idle1;
    label "INIT or ALLRESET/InitializeAll()";
  }
  transition {
    target Errstate;
    label "ERROR/Stop()";
  }
}
orstate DataPreparation {
  contains OpcodeReady, EmptyBuf, Bounds, NoData;
  default OpcodeReady;
}
basicstate OpcodeReady {
  transition {
    target OpcodeReady;
    label "[DATA_VALID]/DecodeOpcode()";
  }
  transition {
    target EmptyBuf;
    label "END_DATA/PrepareMove()";
  }
}
basicstate EmptyBuf {
  transition {
    target Idle1;
    label "BUF_EMPTY/RequestData()";
  }
  transition {
    target Bounds;
    label "not (X_PULSE or Y_PULSE)/PhiParameters()";
  }
}
basicstate Bounds {
  transition {
    target Idle1;
    label "not (X_PULSE or Y_PULSE) [not MOVEMENT]/AbortMove()";
  }
  transition {
    target NoData;
    label "not (X_PULSE or Y_PULSE) [MOVEMENT]/StartMove()";
  }
}
basicstate NoData {
  transition {
    target OpcodeReady;
    label "[DATA_VALID]/LoadNext()";
  }
}
orstate ReachPosition {
  contains Idle2, Moving;
  default Idle2;
}
basicstate Idle2 {
  transition {
    target Moving;
    label "[MOVEMENT]";
  }
}
andstate Moving {
  contains MoveX, MoveY, MovePhi;
  transition {
    target Idle2;
    label "END_MOVE [XFINISH and YFINISH and PHIFINISH]/FinishMove()";
  }
}
orstate MoveX {
  contains XStart2, RunX, XEnd2;
  default XStart2;
}
basicstate XStart2 {
  transition {
    target RunX;
    label "/StartMotor(MX, XPARAMS)";
  }
}
basicstate RunX {
  transition {
    target RunX;
    label "X_PULSE/DeltaT(MX)";
  }
  transition {
    target XEnd2;
    label "X_STEPS/SetTrue(XFINISH)";
  }
}
basicstate XEnd2 {
}
orstate MoveY {
  contains YStart2, RunY, YEnd2;
  default YStart2;
}
basicstate YStart2 {
  transition {
    target RunY;
    label "/StartMotor(MY, YPARAMS)";
  }
}
basicstate RunY {
  transition {
    target RunY;
    label "Y_PULSE/DeltaT(MY)";
  }
  transition {
    target YEnd2;
    label "Y_STEPS/SetTrue(YFINISH)";
  }
}
basicstate YEnd2 {
}
orstate MovePhi {
  contains PhiStart, RunPhi, PhiEnd;
  default PhiStart;
}
basicstate PhiStart {
  transition {
    target RunPhi;
    label "/StartMotor(MPHI, PHIPARAMS)";
  }
}
basicstate RunPhi {
  transition {
    target RunPhi;
    label "PHI_PULSE/DeltaT(MPHI)";
  }
  transition {
    target PhiEnd;
    label "PHI_STEPS/SetTrue(PHIFINISH)";
  }
}
basicstate PhiEnd {
}
basicstate Errstate {
  transition {
    target Idle1;
    label "INIT or ALLRESET/InitializeAll()";
  }
}
