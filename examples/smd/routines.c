enum Motor {MX, MY, MPHI};
enum ParamSet {XPARAMS, YPARAMS, PHIPARAMS};

int:16 cmd_buffer[8];
int:16 buf_len;
int:16 opcode;
int:16 checksum;

int:16 target[3];
int:16 vmax[3];
int:16 accel[3];
int:16 velocity[3];
int:16 remaining[3];
int:16 reload[3];

int:16 NewPhi;
int:16 OldPhi;
int:16 PhiParam;

void GetByte() {
  cmd_buffer[buf_len & 7] = Buffer;
  buf_len = buf_len + 1;
  checksum = checksum + 1;
}

void DecodeOpcode() {
  opcode = cmd_buffer[0] & 63;
  checksum = cmd_buffer[0] + cmd_buffer[1];
  checksum = checksum + cmd_buffer[2];
  checksum = checksum + cmd_buffer[3];
  checksum = (checksum + cmd_buffer[4]) & 255;
  buf_len = buf_len & 7;
  opcode = opcode + 1;
}

void PrepareMove() {
  target[MX] = cmd_buffer[1];
  buf_len = 0;
  SetTrue(MOVEMENT);
}

void RequestData() {
  cmd_buffer[0] = 0;
  cmd_buffer[1] = 0;
  cmd_buffer[2] = 0;
  cmd_buffer[3] = 0;
  cmd_buffer[4] = 0;
  cmd_buffer[5] = 0;
  buf_len = 0;
  checksum = 0;
  opcode = 0;
  PhiParam = 0;
  OldPhi = 0;
  NewPhi = 0;
  target[MX] = 0;
  target[MY] = 0;
  SetFalse(MOVEMENT);
  Status = 1;
}

void PhiParameters() {
  PhiParam = NewPhi - OldPhi;
}

void AbortMove() {
  velocity[MX] = 0;
  velocity[MY] = 0;
  velocity[MPHI] = 0;
  remaining[MX] = 0;
  remaining[MY] = 0;
  remaining[MPHI] = 0;
  reload[MX] = 0;
  reload[MY] = 0;
  reload[MPHI] = 0;
  target[MX] = 0;
  target[MY] = 0;
  target[MPHI] = 0;
  XMotor = 0;
  YMotor = 0;
  PhiMotor = 0;
  buf_len = 0;
  checksum = 0;
  opcode = 0;
  PhiParam = 0;
  OldPhi = 0;
  NewPhi = 0;
  SetFalse(MOVEMENT);
  Status = 2;
}

void StartMove() {
  int:16 ramp;
  ramp = (vmax[MX] * vmax[MX]) / (accel[MX] + 1);
  if (ramp > target[MX]) { vmax[MX] = ramp - target[MX]; }
  ramp = (vmax[MY] * vmax[MY]) / (accel[MY] + 1);
  if (ramp > target[MY]) { vmax[MY] = ramp - target[MY]; }
  remaining[MX] = target[MX];
  remaining[MY] = target[MY];
  remaining[MPHI] = target[MPHI];
  velocity[MX] = accel[MX];
  velocity[MY] = accel[MY];
  velocity[MPHI] = accel[MPHI];
  OldPhi = NewPhi;
  SetFalse(XFINISH);
  SetTrue(MOVEMENT);
}

void LoadNext() {
  cmd_buffer[0] = cmd_buffer[1];
  cmd_buffer[1] = cmd_buffer[2];
  cmd_buffer[2] = cmd_buffer[3];
  cmd_buffer[3] = cmd_buffer[4];
  cmd_buffer[4] = cmd_buffer[5];
  cmd_buffer[5] = cmd_buffer[6];
  cmd_buffer[6] = cmd_buffer[7];
  cmd_buffer[7] = 0;
  opcode = cmd_buffer[0] & 63;
  checksum = checksum + cmd_buffer[1];
  buf_len = buf_len - 1;
}

void InitializeAll() {
  velocity[MX] = 0;
  velocity[MY] = 0;
  velocity[MPHI] = 0;
  remaining[MX] = 0;
  remaining[MY] = 0;
  buf_len = 0;
  checksum = 0;
  opcode = 0;
  Status = 0;
  SetFalse(MOVEMENT);
  SetFalse(XFINISH);
  SetFalse(YFINISH);
  SetFalse(PHIFINISH);
}

void Stop() {
  XMotor = 0;
  YMotor = 0;
  PhiMotor = 0;
}

void DeltaT(int:16 m) {
  int:16 v;
  v = velocity[m] + accel[m];
  velocity[m] = v;
  reload[m] = (15000 / (v + 1)) + 1;
}

void StartMotor(int:16 m, int:16 p) {
  velocity[m] = accel[m];
  reload[m] = 15000 / (accel[m] + 1);
}

void FinishMove() {
  SetFalse(MOVEMENT);
  SetFalse(XFINISH);
  SetFalse(YFINISH);
  SetFalse(PHIFINISH);
  Raise(END_DATA);
  Status = 4;
}
