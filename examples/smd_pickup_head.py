"""The paper's industrial example end to end (section 5).

Reproduces the complete SMD pickup-head story:

1. the timing constraints of Table 2;
2. the event cycles the static validator finds (Table 3) on the reference
   architecture, with the violations the paper reports;
3. the iterative improvement to the final two-TEP architecture and the
   area/timing trajectory (Table 4);
4. a closed-loop run of the final controller against the stepper-motor
   physics — every deadline met, the head arrives where commanded;
5. the floorplan on the XC4025 (Fig. 8).

Run:  python examples/smd_pickup_head.py
"""

from repro.flow import build_system, table2_report, table3_report, table4_report
from repro.hw import floorplan
from repro.isa import MD16_TEP, MINIMAL_TEP
from repro.workloads import (
    MoveCommand,
    SMD_MUTUAL_EXCLUSIONS,
    SMD_ROUTINES,
    SmdClosedLoop,
    smd_chart,
)
from repro.workloads.motors import MotorSpec

FAST_MOTORS = {
    "X": MotorSpec("X", 50_000.0, 0.025e-3, 1.25, 2000.0),
    "Y": MotorSpec("Y", 50_000.0, 0.025e-3, 1.25, 2000.0),
    "Phi": MotorSpec("Phi", 9_000.0, 0.1, 900.0, 0.0),
}


def main() -> None:
    chart = smd_chart()
    print(table2_report(chart))
    print()

    # --- static analysis on the reference architecture -------------------
    reference = build_system(chart, SMD_ROUTINES, MD16_TEP)
    print(table3_report(reference.validator.all_cycles()))
    print()
    print("violations on the 16-bit M/D TEP (unoptimized):")
    for violation in reference.violations():
        print(" ", violation.describe())
    print()

    # --- the Table 4 sweep -------------------------------------------------
    md2 = MD16_TEP.with_(n_teps=2, mutual_exclusions=SMD_MUTUAL_EXCLUSIONS)
    points = [
        ("1 minimal TEP", MINIMAL_TEP, False),
        ("16bit M/D TEP, unoptimized code", MD16_TEP, False),
        ("16bit M/D TEP, optimized code",
         MD16_TEP.with_(microcode_optimized=True), True),
        ("2 16bit M/D TEP, unoptimized code", md2, False),
        ("2 16bit M/D TEP, optimized code",
         md2.with_(microcode_optimized=True), True),
    ]
    rows = []
    final_system = None
    for name, arch, specialize in points:
        system = build_system(chart, SMD_ROUTINES, arch,
                              specialize=specialize)
        paths = system.critical_paths()
        rows.append((name, system.area().total_clbs,
                     max(paths["X_PULSE"], paths["Y_PULSE"]),
                     paths["DATA_VALID"]))
        final_system = system
    print(table4_report(rows))
    print()
    assert final_system is not None
    print("final architecture violations:",
          [v.describe() for v in final_system.violations()] or "none")
    print()

    # --- closed loop ---------------------------------------------------------
    print("closed-loop run (final architecture, 2 moves):")
    loop = SmdClosedLoop(final_system, motor_specs=FAST_MOTORS)
    report = loop.run([MoveCommand(60, 45, 8), MoveCommand(25, 30, 4)],
                      max_configuration_cycles=40000)
    print(f"  moves completed: {report.commands_completed}"
          f"/{report.commands_issued}")
    print(f"  final positions: {report.final_positions}")
    print(f"  simulated time: {report.total_cycles} cycles "
          f"({report.total_cycles / 15_000_000 * 1000:.2f} ms at 15 MHz)")
    for deadline in report.deadline_reports:
        status = "MET" if deadline.misses == 0 else "MISSED"
        print(f"  {deadline.event:12s} worst latency "
              f"{str(deadline.worst_latency):>6s} / period "
              f"{deadline.period:5d}  {status}")
    print()

    # --- floorplan (Fig. 8) ----------------------------------------------------
    plan = floorplan(final_system.area())
    print(plan.ascii_map())


if __name__ == "__main__":
    main()
