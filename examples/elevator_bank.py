"""Elevator bank: a safety-critical second case study through the full flow.

Two cabs + a dispatcher run in parallel; a door-obstruction event while
closing must reopen the door within 400 reference-clock cycles.  The script:

1. runs the static timing validation on the baseline architecture — the
   door deadline is violated;
2. lets the iterative improvement ladder find an architecture that meets
   every constraint (it escalates to multiple TEPs: the cabs are parallel);
3. drives the final controller through a full trip — call, travel, door
   cycle, an obstruction, reopening — and measures the observed reaction
   time against the static bound.

Run:  python examples/elevator_bank.py
"""

from repro.flow import Improver, ascii_table, build_system
from repro.isa import MD16_TEP
from repro.workloads.elevator import (
    ELEVATOR_CONSTRAINTS,
    ELEVATOR_MUTUAL_EXCLUSIONS,
    ELEVATOR_ROUTINES,
    elevator_chart,
)


def main() -> None:
    chart = elevator_chart()
    baseline = build_system(chart, ELEVATOR_ROUTINES, MD16_TEP)

    print("baseline (one 16-bit M/D TEP):")
    for violation in baseline.violations():
        print(f"  VIOLATION {violation.describe()}")
    print()

    improver = Improver(chart, ELEVATOR_ROUTINES, initial_arch=MD16_TEP,
                        mutual_exclusions=ELEVATOR_MUTUAL_EXCLUSIONS,
                        max_teps=3)
    result = improver.run()
    rows = [(step.rung, step.area_clbs,
             step.critical_paths["DOOR_BLOCKED0"],
             step.critical_paths["HALL_CALL"], step.n_violations)
            for step in result.steps]
    print(ascii_table(
        ["Rung", "Area", "door bound", "call bound", "violations"],
        rows, title="improvement trajectory"))
    print(f"\nsolved: {result.success} with "
          f"{result.final.arch.describe()}")
    print()

    system = result.final
    machine = system.make_machine()
    machine.ports.map_latch(system.compiled.maps.ports["CallFloor"], 3)

    script = [
        ({"POWER_ON"}, "power on"),
        ({"HALL_CALL"}, "hall call for floor 3"),
        (set(), "dispatcher assigns cab 0"),
        ({"FLOOR_SENSOR0"}, "floor sensor"),
        ({"FLOOR_SENSOR0"}, "floor sensor"),
        ({"FLOOR_SENSOR0"}, "floor sensor (arrives)"),
        (set(), "stop at floor"),
        ({"DOOR_TIMER0"}, "door fully open"),
        ({"DOOR_TIMER0"}, "door starts closing"),
        ({"DOOR_BLOCKED0"}, "OBSTRUCTION while closing"),
        ({"DOOR_TIMER0"}, "door fully open again"),
        ({"DOOR_TIMER0"}, "door starts closing"),
        ({"DOORS_SHUT0"}, "doors shut, cab parks"),
    ]
    print("trip of cab 0:")
    reaction = None
    for events, note in script:
        before = machine.time
        step = machine.step(events)
        if "OBSTRUCTION" in note:
            reaction = step.end_time - before
        leaf = [s for s in step.configuration
                if s.startswith(("Parked0", "Moving0", "Opening0",
                                 "DoorOpen0", "Closing0"))]
        print(f"  t={step.start_time:5d} {note:28s} -> {leaf[0] if leaf else '?'}")
    print()
    print(f"cab position: {machine.read_global('position0')} (called to 3)")
    print(f"door reopened after obstruction in {reaction} cycles "
          f"(deadline {ELEVATOR_CONSTRAINTS['DOOR_BLOCKED0']}, "
          f"static bound {system.critical_paths()['DOOR_BLOCKED0']})")


if __name__ == "__main__":
    main()
