"""Quickstart: specify a reactive system, run the codesign flow, execute it.

A minimal but complete pass through the PSCP flow:

1. write a statechart in the textual format (Fig. 2a);
2. write the transition routines in the intermediate C dialect (Fig. 2b);
3. build the system for an architecture — this compiles the routines,
   synthesizes the SLA, and runs the static timing validation;
4. inspect the event cycles and the area estimate;
5. execute the compiled controller on the cycle-counting PSCP machine.

Run:  python examples/quickstart.py
"""

from repro.flow import build_system, table2_report, table3_report
from repro.isa import MD16_TEP
from repro.statechart import parse_chart

CHART = """
chart thermostat;

event TICK period 2000;
event TOO_HOT;
event TOO_COLD;
condition HEATING;

orstate Control {
  contains Idle, Heat, Cool;
  default Idle;
}
basicstate Idle {
  transition { target Heat; label "TOO_COLD/HeaterOn()"; }
  transition { target Cool; label "TOO_HOT/HeaterOff()"; }
}
basicstate Heat {
  transition { target Idle; label "TICK/Sample()"; }
}
basicstate Cool {
  transition { target Idle; label "TICK/Sample()"; }
}
"""

ROUTINES = """
int:16 temperature;
int:16 samples;

void HeaterOn()  { SetTrue(HEATING); }
void HeaterOff() { SetFalse(HEATING); }

void Sample() {
  temperature = temperature + 3;
  samples = samples + 1;
}
"""


def main() -> None:
    chart = parse_chart(CHART)
    system = build_system(chart, ROUTINES, MD16_TEP)

    print(table2_report(chart))
    print()
    print(table3_report(system.validator.all_cycles()))
    print()

    violations = system.violations()
    print(f"timing violations: {len(violations)}")
    for violation in violations:
        print(" ", violation.describe())

    print()
    print(system.area().report())

    print()
    print("executing the compiled controller:")
    machine = system.make_machine()
    trace = [{"TOO_COLD"}, {"TICK"}, {"TOO_HOT"}, {"TICK"}]
    for events in trace:
        step = machine.step(events)
        fired = ", ".join(t.label for t in step.fired) or "(quiescent)"
        print(f"  t={step.start_time:5d}  events={sorted(events)}  "
              f"fired: {fired}")
    print(f"  temperature = {machine.read_global('temperature')}, "
          f"samples = {machine.read_global('samples')}, "
          f"HEATING = {machine.condition('HEATING')}")
    print(f"  total: {machine.time} reference-clock cycles over "
          f"{machine.cycle_count} configuration cycles")


if __name__ == "__main__":
    main()
