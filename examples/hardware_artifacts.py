"""Every hardware/software artifact the flow generates, for one system.

Section 2: "In total, our system contains two system-level notations
(graphical and textual statechart representation), three levels of
representation for software (C code, assembler code, and microinstructions),
and three formats to represent hardware (PSCP macro blocks, schematics, and
VHDL)."  This example materializes each of them for a small controller:

* the textual statechart (round-tripped through the parser),
* the intermediate C routines,
* the compiled assembler listing,
* one instruction's microprogram (Table 1 encoding),
* the SLA as BLIF and as VHDL,
* the decoder ROM as VHDL,
* the PSCP macro-block breakdown and floorplan.

Run:  python examples/hardware_artifacts.py
"""

from repro.flow import build_system
from repro.hw import emit_decoder_rom_vhdl, emit_sla_vhdl, floorplan
from repro.isa import MD16_TEP, emit_text, microprogram
from repro.sla import emit_blif
from repro.statechart import emit_chart, parse_chart

CHART = """
chart valve;

event OPEN_CMD period 3000;
event CLOSE_CMD;
condition INTERLOCK;

orstate Valve {
  contains Closed, Open;
  default Closed;
}
basicstate Closed {
  transition { target Open; label "OPEN_CMD [not INTERLOCK]/DriveOpen()"; }
}
basicstate Open {
  transition { target Closed; label "CLOSE_CMD/DriveClosed()"; }
}
"""

ROUTINES = """
int:16 position;
void DriveOpen()   { position = position + 10; }
void DriveClosed() { position = 0; }
"""


def banner(title: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    chart = parse_chart(CHART)
    system = build_system(chart, ROUTINES, MD16_TEP)

    banner("textual statechart (round-tripped)")
    print(emit_chart(chart))

    banner("assembler listing: DriveOpen")
    print(emit_text(system.compiled.objects["DriveOpen"].instructions))

    banner("microprogram of the first instruction (Table 1 format)")
    first = system.compiled.objects["DriveOpen"].instructions[0]
    for micro_op in microprogram(first, system.arch):
        print(f"  {micro_op}")
    print()

    banner("SLA as BLIF")
    print(emit_blif(system.pla))

    banner("SLA as VHDL")
    print(emit_sla_vhdl("sla", system.pla.layout.input_names(),
                        system.pla.output_names(),
                        system.pla.as_products_by_output()))

    banner("microprogram decoder ROM as VHDL (first lines)")
    vhdl = emit_decoder_rom_vhdl(system.decoder_rom())
    print("\n".join(vhdl.splitlines()[:18]))
    print("  ...")

    banner("PSCP macro blocks")
    print(system.area().report())
    print()

    banner("floorplan")
    print(floorplan(system.area()).ascii_map())


if __name__ == "__main__":
    main()
