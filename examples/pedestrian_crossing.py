"""A pedestrian-crossing controller: parallel regions + timers + interrupts.

A second reactive-system scenario (the class of applications the paper's
intro motivates): a road/pedestrian signal pair with a request button and a
fault watchdog.  Shows:

* parallel AND-regions (lamp controller ∥ request latcher),
* the timer extension (section 6 "future work") driving the phase events,
* the interrupt controller prioritizing the FAULT event,
* machine-vs-interpreter agreement on the same chart.

Run:  python examples/pedestrian_crossing.py
"""

from repro.flow import build_system
from repro.isa import MD16_TEP
from repro.pscp import InterruptController, Timer, TimerBank
from repro.statechart import ChartBuilder, Interpreter


def build_chart():
    b = ChartBuilder("crossing")
    b.event("PHASE", period=50_000)   # phase timer tick
    b.event("BUTTON")
    b.event("FAULT")
    b.event("CLEARED")
    b.condition("REQUESTED")
    with b.or_state("Controller", default="Run"):
        with b.and_state("Run") as run:
            with b.or_state("Lights", default="RoadGreen"):
                b.basic("RoadGreen").transition(
                    "RoadYellow", label="PHASE [REQUESTED]/LogPhase()")
                b.basic("RoadYellow").transition(
                    "WalkOn", label="PHASE/WalkLights()")
                b.basic("WalkOn").transition(
                    "RoadGreen", label="PHASE/RoadLights()")
            with b.or_state("Request", default="Waiting"):
                b.basic("Waiting").transition(
                    "Latched", label="BUTTON/Latch()")
                b.basic("Latched").transition(
                    "Waiting", label="PHASE [not REQUESTED]")
        run.transition("Failed", label="FAULT/AllRed()")
        b.basic("Failed").transition("Run", label="CLEARED/Recover()")
    return b.build()


ROUTINES = """
int:16 phase_count;
int:16 walk_count;

void LogPhase()   { phase_count = phase_count + 1; }
void WalkLights() { walk_count = walk_count + 1; SetFalse(REQUESTED); }
void RoadLights() { phase_count = phase_count + 1; }
void Latch()      { SetTrue(REQUESTED); }
void AllRed()     { phase_count = 0; }
void Recover()    { walk_count = 0; }
"""


def main() -> None:
    chart = build_chart()
    system = build_system(chart, ROUTINES, MD16_TEP)
    machine = system.make_machine()

    # reference interpreter with mirrored Python actions
    def mirror(name):
        def handler(interp, transition):
            if name == "WalkLights":
                interp.set_condition("REQUESTED", False)
            elif name == "Latch":
                interp.set_condition("REQUESTED", True)
        return handler

    interp = Interpreter(chart, actions={
        name: mirror(name)
        for name in ("LogPhase", "WalkLights", "RoadLights", "Latch",
                     "AllRed", "Recover")})

    timers = TimerBank([Timer("PHASE", 50_000)])
    interrupts = InterruptController({"FAULT"})

    # scripted external stimuli: a button press, then a fault mid-cycle
    external = {2: {"BUTTON"}, 7: {"FAULT"}, 9: {"CLEARED"},
                11: {"BUTTON"}}

    print("cycle  events              machine-state          agree")
    previous = 0
    for cycle in range(16):
        due = set(external.get(cycle, set()))
        due |= timers.pending_events(previous, previous + 60_000)
        previous += 60_000
        due = interrupts.filter(due)

        machine_step = machine.step(due)
        interp_step = interp.step(due)
        state = sorted(s for s in machine.cr.configuration
                       if not machine.chart.states[s].children)
        agree = machine.cr.configuration == interp.configuration
        print(f"{cycle:5d}  {','.join(sorted(due)) or '-':18s}  "
              f"{'+'.join(state):22s} {agree}")
        assert agree, "machine diverged from the reference interpreter!"

    print()
    print(f"phase_count = {machine.read_global('phase_count')}, "
          f"walk_count = {machine.read_global('walk_count')}")
    print(f"held during interrupt: {sorted(interrupts.held_events)}")
    print(f"simulated controller time: {machine.time} cycles")


if __name__ == "__main__":
    main()
