"""Design-space exploration: TEP count and bus width across workload shapes.

The PSCP is "scalable with respect to the number of processing elements as
well as parameters such as bus widths and register file sizes".  This
example sweeps both knobs over three synthetic workload shapes
(:mod:`repro.workloads.generators`) and prints the resulting
critical-path/area Pareto data — the kind of exploration the iterative
improvement loop automates for one application.

Run:  python examples/design_space_exploration.py
"""

from repro.flow import ascii_table, build_system
from repro.isa import ArchConfig
from repro.workloads import parallel_servers, pipeline_chart, wide_decoder


def sweep(name, chart, source, event):
    rows = []
    for n_teps in (1, 2, 4):
        for width in (8, 16):
            arch = ArchConfig(
                name=f"{width}b-{n_teps}t",
                data_width=width,
                has_muldiv=False,
                internal_ram_words=64,
                n_teps=n_teps,
            )
            system = build_system(chart, source, arch)
            rows.append((
                f"{n_teps} TEP / {width}-bit",
                system.area().total_clbs,
                system.critical_paths()[event],
                "yes" if not system.violations() else "no",
            ))
    print(ascii_table(
        ["Architecture", "Area (CLBs)", f"crit. path {event}", "meets"],
        rows, title=f"-- {name} --"))
    print()


def main() -> None:
    chart, source = parallel_servers(4, work_iterations=8)
    sweep("4 parallel servers (TEPs should help)", chart, source, "REQ0")

    chart, source = pipeline_chart(4, work_iterations=6)
    sweep("4-stage pipeline (TEPs should NOT help)", chart, source, "FEED")

    chart, source = wide_decoder(12)
    sweep("12-command decoder (SLA-bound)", chart, source, "CMD0")

    # SLA growth with decoder width
    rows = []
    for n_commands in (4, 8, 16, 32):
        chart, source = wide_decoder(n_commands)
        system = build_system(chart, source, ArchConfig(data_width=16))
        rows.append((n_commands, system.pla.product_terms,
                     system.pla.layout.width,
                     system.area().shared_clbs))
    print(ascii_table(
        ["commands", "SLA product terms", "CR bits", "shared CLBs"],
        rows, title="-- SLA scaling with decoder width --"))


if __name__ == "__main__":
    main()
