"""Fault models: what can go wrong, where, and when.

The paper targets reactive embedded controllers whose real hazard is not
average speed but behaviour under faults: lost or duplicated bus events,
corrupted CR bits, runaway transition routines.  This module defines the
*static* side of the fault subsystem — a taxonomy of fault kinds, a seeded
generator, and the :class:`FaultPlan` a
:class:`~repro.fault.injector.FaultInjector` executes against a running
:class:`~repro.pscp.machine.PscpMachine`.

Every fault is **cycle-addressed**: it names the configuration cycle at
which it arms.  Faults that need a victim that may not be present at that
exact cycle (an event on the bus, a transition dispatch) stay armed and bite
at the first opportunity at or after their cycle, so a plan's effect is a
deterministic function of (plan, stimulus) — the property the campaign
runner and the CI smoke job assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

# ---------------------------------------------------------------------------
# fault kinds
# ---------------------------------------------------------------------------

#: external-event bus faults (the port/event bus between environment and CR)
EVENT_DROP = "event-drop"
EVENT_DUPLICATE = "event-duplicate"
EVENT_DELAY = "event-delay"
#: single-bit upsets in the Configuration Register
CR_EVENT_FLIP = "cr-event-flip"
CR_CONDITION_FLIP = "cr-condition-flip"
CR_STATE_FLIP = "cr-state-flip"
#: condition-cache corruption around the copy-in / copy-back traffic
CACHE_IN_FLIP = "cache-in-flip"
CACHE_BACK_FLIP = "cache-back-flip"
#: TEP-side faults: RAM bit flip, routine stall, routine runaway, dead TEP
RAM_FLIP = "ram-flip"
TEP_STALL = "tep-stall"
TEP_RUNAWAY = "tep-runaway"
TEP_FAIL = "tep-fail"
#: stuck-at faults on SLA product-term outputs
SLA_STUCK_ON = "sla-stuck-on"
SLA_STUCK_OFF = "sla-stuck-off"
#: a data port that reads a stuck value
PORT_STUCK = "port-stuck"

ALL_FAULT_KINDS: Tuple[str, ...] = (
    EVENT_DROP, EVENT_DUPLICATE, EVENT_DELAY,
    CR_EVENT_FLIP, CR_CONDITION_FLIP, CR_STATE_FLIP,
    CACHE_IN_FLIP, CACHE_BACK_FLIP,
    RAM_FLIP, TEP_STALL, TEP_RUNAWAY, TEP_FAIL,
    SLA_STUCK_ON, SLA_STUCK_OFF, PORT_STUCK,
)

#: kinds the machine's detection machinery can catch, keyed by detector
WATCHDOG_KINDS = frozenset({TEP_STALL, TEP_RUNAWAY})
ILLEGAL_CONFIG_KINDS = frozenset({CR_STATE_FLIP, SLA_STUCK_ON})
FAILOVER_KINDS = frozenset({TEP_FAIL})
DETECTABLE_KINDS = WATCHDOG_KINDS | ILLEGAL_CONFIG_KINDS | FAILOVER_KINDS

#: cycles a runaway routine is charged when no watchdog bounds it
DEFAULT_RUNAWAY_CYCLES = 50_000


class FaultError(Exception):
    """Raised for malformed fault plans."""


@dataclass(frozen=True)
class Fault:
    """One seeded fault.

    ``cycle`` is the configuration-cycle index at which the fault arms.
    ``target`` names the victim (event/condition name, CR state bit, cache
    slot, transition index, TEP index, port address or memory word,
    depending on ``kind``); ``param`` carries the kind-specific magnitude
    (delay in cycles, stall cycles, stuck port value, bit index …).
    """

    kind: str
    cycle: int
    target: object = None
    param: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise FaultError(f"unknown fault kind {self.kind!r}")
        if self.cycle < 0:
            raise FaultError(f"fault cycle must be >= 0, got {self.cycle}")

    def describe(self) -> str:
        text = f"{self.kind}@{self.cycle}"
        if self.target is not None:
            text += f" target={self.target}"
        if self.param:
            text += f" param={self.param}"
        return text


#: a farm-level fault: SIGKILL a worker process mid-dispatch.  This is
#: deliberately NOT in :data:`ALL_FAULT_KINDS` — it is injected by the
#: :class:`~repro.resil.shardfarm.ShardSupervisor`, not by the machine's
#: :class:`~repro.fault.injector.FaultInjector`, because a process death
#: is not observable from inside the machine it kills.
PROCESS_KILL = "process-kill"

KILL_TARGET_PRIMARY = "primary"
KILL_TARGET_STANDBY = "standby"


@dataclass(frozen=True)
class ProcessKill:
    """One seeded process kill in a distributed-farm chaos plan.

    ``tick`` is the supervisor tick at which the kill fires; ``shard``
    names the victim shard; ``target`` picks the primary or its standby.
    For a primary the kill rides the tick's dispatch: the worker SIGKILLs
    *itself* after processing ``after_items`` items — a real, uncatchable
    death at a deterministic stream position, so two same-seed runs die at
    identical points and produce byte-identical ledgers.
    """

    tick: int
    shard: int
    target: str = KILL_TARGET_PRIMARY
    after_items: int = 0

    def __post_init__(self) -> None:
        if self.tick < 1:
            raise FaultError(f"kill tick must be >= 1, got {self.tick}")
        if self.shard < 0:
            raise FaultError(f"kill shard must be >= 0, got {self.shard}")
        if self.target not in (KILL_TARGET_PRIMARY, KILL_TARGET_STANDBY):
            raise FaultError(f"unknown kill target {self.target!r}")
        if self.after_items < 0:
            raise FaultError(
                f"after_items must be >= 0, got {self.after_items}")

    def describe(self) -> str:
        return (f"{PROCESS_KILL}@tick{self.tick} shard={self.shard} "
                f"target={self.target} after={self.after_items}")


def generate_kill_plan(n_shards: int, n_kills: int, seed: int = 1,
                       max_tick: int = 40, max_after_items: int = 2,
                       standby_fraction: float = 0.0
                       ) -> List["ProcessKill"]:
    """A seeded chaos plan of :class:`ProcessKill` events.

    Deterministic for identical arguments; at most one kill per
    (tick, shard) so two kills never race for the same dispatch.
    """
    import random

    if n_shards < 1:
        raise FaultError("a kill plan needs >= 1 shard")
    rng = random.Random(seed)
    kills: List[ProcessKill] = []
    used = set()
    attempts = 0
    while len(kills) < n_kills and attempts < n_kills * 20:
        attempts += 1
        tick = rng.randrange(2, max(3, max_tick + 1))
        shard = rng.randrange(n_shards)
        if (tick, shard) in used:
            continue
        used.add((tick, shard))
        target = (KILL_TARGET_STANDBY
                  if rng.random() < standby_fraction
                  else KILL_TARGET_PRIMARY)
        kills.append(ProcessKill(
            tick=tick, shard=shard, target=target,
            after_items=rng.randrange(max_after_items + 1)))
    return sorted(kills, key=lambda k: (k.tick, k.shard))


@dataclass(frozen=True)
class InjectedFault:
    """One fault that actually bit, as logged by the injector."""

    kind: str
    cycle: int
    target: object = None
    detail: str = ""

    def describe(self) -> str:
        text = f"{self.kind}@{self.cycle}"
        if self.target is not None:
            text += f" target={self.target}"
        if self.detail:
            text += f" ({self.detail})"
        return text


# ---------------------------------------------------------------------------
# the fault surface: what a machine exposes to corruption
# ---------------------------------------------------------------------------

@dataclass
class FaultSurface:
    """The addressable victims of one built system.

    The generator draws targets from here; everything is materialized in a
    deterministic order so a seeded plan is identical across runs.
    """

    events: List[str]
    conditions: List[str]
    state_bits: int
    #: state bits belonging to OR-selector fields with unused code points —
    #: flipping one of these *can* decode to no active child, the illegal
    #: configuration the exclusivity checker catches
    fragile_state_bits: List[int]
    n_teps: int
    n_transitions: int
    cache_slots: List[int]
    memory_words: List[object]  # Mem operands, allocation order
    port_addresses: List[int]

    @classmethod
    def from_system(cls, system) -> "FaultSurface":
        """Derive the surface from a :class:`~repro.flow.build.BuiltSystem`."""
        return cls.from_parts(system.chart, system.compiled, system.pla,
                              system.arch)

    @classmethod
    def from_machine(cls, machine) -> "FaultSurface":
        return cls.from_parts(machine.chart, machine.compiled, machine.pla,
                              machine.arch)

    @classmethod
    def from_parts(cls, chart, compiled, pla, arch) -> "FaultSurface":
        from repro.isa.isa import Mem

        encoding = pla.layout.encoding
        memory_words = []
        for loc in compiled.allocator.locations.values():
            for operand in loc.words:
                if isinstance(operand, Mem):
                    memory_words.append(operand)
        return cls(
            events=sorted(chart.events),
            conditions=sorted(chart.conditions),
            state_bits=encoding.width,
            fragile_state_bits=_fragile_state_bits(chart, encoding),
            n_teps=arch.n_teps,
            n_transitions=len(chart.transitions),
            cache_slots=sorted(compiled.maps.conditions.values()),
            memory_words=memory_words,
            port_addresses=sorted(compiled.maps.ports.values()),
        )


def _fragile_state_bits(chart, encoding) -> List[int]:
    """Selector bits whose OR-state has unused code points (non-power-of-2
    child counts) — the flips most likely to decode to an illegal
    configuration."""
    fragile = set()
    seen = set()
    for constraints in encoding.constraints.values():
        for constraint in constraints:
            key = (constraint.offset, constraint.width)
            if key in seen or constraint.width == 0:
                continue
            seen.add(key)
            # count the distinct values used for this selector field
            values = {c.value for cs in encoding.constraints.values()
                      for c in cs
                      if (c.offset, c.width) == key}
            if len(values) < (1 << constraint.width):
                fragile.update(range(constraint.offset,
                                     constraint.offset + constraint.width))
    return sorted(fragile)


# ---------------------------------------------------------------------------
# the plan
# ---------------------------------------------------------------------------

@dataclass
class FaultPlan:
    """An ordered, seeded set of faults for one run."""

    faults: Tuple[Fault, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.faults = tuple(sorted(self.faults,
                                   key=lambda f: (f.cycle, f.kind)))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def by_kind(self) -> Dict[str, List[Fault]]:
        grouped: Dict[str, List[Fault]] = {}
        for fault in self.faults:
            grouped.setdefault(fault.kind, []).append(fault)
        return grouped

    def describe(self) -> List[str]:
        return [fault.describe() for fault in self.faults]

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def generate(cls, rng, surface: FaultSurface, kinds: Sequence[str],
                 n_faults: int = 1, horizon: int = 1000,
                 warmup: int = 2) -> "FaultPlan":
        """Draw *n_faults* faults of the given *kinds* from *surface*.

        ``rng`` is a ``random.Random``; identical (rng state, surface,
        arguments) produce an identical plan.  Cycles are drawn uniformly in
        ``[warmup, horizon)``.
        """
        faults = []
        for index in range(n_faults):
            kind = kinds[index % len(kinds)]
            cycle = rng.randrange(warmup, max(warmup + 1, horizon))
            faults.append(_generate_one(rng, surface, kind, cycle))
        return cls(tuple(faults))


def _generate_one(rng, surface: FaultSurface, kind: str, cycle: int) -> Fault:
    if kind in (EVENT_DROP, EVENT_DUPLICATE, EVENT_DELAY):
        if not surface.events:
            raise FaultError("surface has no events to fault")
        target = rng.choice(surface.events)
        param = rng.randrange(1, 5) if kind != EVENT_DROP else 0
        return Fault(kind, cycle, target, param)
    if kind == CR_EVENT_FLIP:
        return Fault(kind, cycle, rng.choice(surface.events))
    if kind == CR_CONDITION_FLIP:
        if not surface.conditions:
            raise FaultError("surface has no conditions to fault")
        return Fault(kind, cycle, rng.choice(surface.conditions))
    if kind == CR_STATE_FLIP:
        pool = surface.fragile_state_bits or list(range(surface.state_bits))
        if not pool:
            raise FaultError("surface has no state bits to fault")
        return Fault(kind, cycle, rng.choice(pool))
    if kind in (CACHE_IN_FLIP, CACHE_BACK_FLIP):
        if not surface.cache_slots:
            raise FaultError("surface has no condition-cache slots")
        return Fault(kind, cycle, rng.choice(surface.cache_slots))
    if kind == RAM_FLIP:
        if not surface.memory_words:
            raise FaultError("surface has no RAM words to fault")
        word = surface.memory_words[rng.randrange(len(surface.memory_words))]
        return Fault(kind, cycle, word, rng.randrange(0, 8))
    if kind == TEP_STALL:
        return Fault(kind, cycle, None, rng.randrange(500, 5000))
    if kind == TEP_RUNAWAY:
        return Fault(kind, cycle, None, DEFAULT_RUNAWAY_CYCLES)
    if kind == TEP_FAIL:
        if surface.n_teps < 2:
            raise FaultError("TEP failover needs at least two TEPs")
        return Fault(kind, cycle, rng.randrange(surface.n_teps))
    if kind in (SLA_STUCK_ON, SLA_STUCK_OFF):
        return Fault(kind, cycle, rng.randrange(surface.n_transitions))
    if kind == PORT_STUCK:
        if not surface.port_addresses:
            raise FaultError("surface has no ports to fault")
        return Fault(kind, cycle, rng.choice(surface.port_addresses),
                     rng.randrange(0, 256))
    raise FaultError(f"unknown fault kind {kind!r}")
