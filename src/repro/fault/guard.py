"""Detection and recovery: watchdog, exclusivity checker, retry, failover.

The dynamic counterpart of the static timing/verification work: a
:class:`MachineGuard` attached with
:meth:`~repro.pscp.machine.PscpMachine.attach_guard` arms three detectors
inside the machine's configuration cycle:

* **configuration-cycle watchdog** — every transition dispatch gets a cycle
  budget derived from its static ``stub_wcet`` bound (``margin *`` WCET
  ``+ slack``).  A routine exceeding it is aborted at the budget: its
  condition-cache copy-back is suppressed, its raised events dropped, and a
  bounded-retry policy re-posts the routine to the Transition Address Table
  after an exponential backoff;
* **exclusivity-set checker** — the Drusinsky encoding leaves unused code
  points in OR-selector fields, so many corrupted CR state parts decode to
  configurations that violate the chart's exclusivity sets (an active
  OR-state with no — or several — active children, an orphan state, an
  AND-state missing a region).  The checker validates the configuration
  after every state update and recovers to a designer-declared safe state;
* **TEP failover accounting** — when a TEP is marked failed mid-run
  (:meth:`PscpMachine.fail_tep`) the scheduler re-plans over the survivors;
  the guard records the failover and whether survivors remain.

Aborted routines keep whatever RAM writes they performed before the abort —
a real watchdog cannot undo memory either — so retried routines must
tolerate re-execution; the condition/event effects are transactional
(suppressed on abort) because they travel through the cache bridge.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.pscp.machine import MachineError

#: detection kinds
WATCHDOG_ABORT = "watchdog-abort"
ILLEGAL_CONFIGURATION = "illegal-configuration"
TEP_FAILOVER = "tep-failover"
RETRY_EXHAUSTED = "retry-exhausted"
ALL_TEPS_FAILED = "all-teps-failed"


class MachineEscalation(MachineError):
    """An unrecoverable fault, escalated for supervision.

    Raised out of :meth:`PscpMachine.step` when a guard constructed with
    ``escalate_unrecoverable=True`` exhausts its in-cycle recovery options:
    retries exhausted, repeated failed exclusivity recovery, or every TEP
    failed.  Subclasses :class:`~repro.pscp.machine.MachineError`, so code
    that treats machine errors as crashes keeps working; a supervisor
    catches it specifically and restarts the machine from its last
    checkpoint instead.
    """

    def __init__(self, kind: str, cycle: int, target: object = None,
                 detail: str = "") -> None:
        self.kind = kind
        self.cycle = cycle
        self.target = target
        self.detail = detail
        super().__init__(self.describe())

    def describe(self) -> str:
        text = f"unrecoverable {self.kind}@{self.cycle}"
        if self.target is not None:
            text += f" target={self.target}"
        if self.detail:
            text += f" ({self.detail})"
        return text


@dataclass
class Detection:
    """One detector firing (and, eventually, its recovery outcome)."""

    kind: str
    cycle: int
    target: object = None
    detail: str = ""
    #: flipped to True when the recovery completed (retry succeeded, safe
    #: state restored, surviving TEPs took over)
    recovered: bool = False

    def describe(self) -> str:
        text = f"{self.kind}@{self.cycle}"
        if self.target is not None:
            text += f" target={self.target}"
        if self.detail:
            text += f" ({self.detail})"
        return text + (" [recovered]" if self.recovered else "")


def configuration_problems(chart, configuration: FrozenSet[str]) -> List[str]:
    """Exclusivity-set violations of *configuration* against *chart*.

    A legal configuration contains the root, exactly one active child per
    active OR-state, every region of every active AND-state, and no state
    whose parent is inactive.
    """
    problems: List[str] = []
    states = chart.states
    active = set(configuration)
    unknown = active - set(states)
    if unknown:
        problems.append(f"unknown states {sorted(unknown)}")
        active -= unknown
    if chart.root not in active:
        problems.append("root state inactive")
    for name in sorted(active):
        state = states[name]
        if state.parent is not None and state.parent not in active:
            problems.append(f"{name} active but parent {state.parent} is not")
        if not state.children:
            continue
        active_children = [c for c in state.children if c in active]
        from repro.statechart.model import StateKind
        if state.kind is StateKind.AND:
            if len(active_children) != len(state.children):
                missing = sorted(set(state.children) - set(active_children))
                problems.append(f"AND-state {name} missing regions {missing}")
        elif len(active_children) == 0:
            problems.append(f"OR-state {name} has no active child")
        elif len(active_children) > 1:
            problems.append(
                f"OR-state {name} has {len(active_children)} active "
                f"children {active_children} (exclusivity violation)")
    return problems


class MachineGuard:
    """Watchdog + exclusivity checker + retry policy + failover accounting."""

    def __init__(
        self,
        watchdog_margin: float = 4.0,
        watchdog_slack: int = 64,
        max_retries: int = 3,
        backoff_base: int = 1,
        safe_state: Optional[Iterable[str]] = None,
        escalate_unrecoverable: bool = False,
        max_consecutive_illegal: int = 3,
    ) -> None:
        if watchdog_margin < 1.0:
            raise ValueError("watchdog margin must be >= 1 (the WCET bound)")
        self.watchdog_margin = watchdog_margin
        self.watchdog_slack = watchdog_slack
        self.max_retries = max_retries
        self.backoff_base = max(1, backoff_base)
        #: raise :class:`MachineEscalation` out of the cycle when in-cycle
        #: recovery is exhausted, instead of limping on (farm mode)
        self.escalate_unrecoverable = escalate_unrecoverable
        #: consecutive failed exclusivity recoveries before escalating
        self.max_consecutive_illegal = max(1, max_consecutive_illegal)
        self._consecutive_illegal = 0
        self.escalation_count = 0
        self._safe_state_override = (frozenset(safe_state)
                                     if safe_state is not None else None)
        self.machine = None
        self.tracer = None
        self._track: Optional[int] = None
        #: per-transition watchdog budgets (cycles), computed at bind time
        self.budgets: Dict[int, int] = {}
        self.safe_state: FrozenSet[str] = frozenset()
        self.detections: List[Detection] = []
        self._cycle_log: List[Detection] = []
        #: (due cycle, seq, transition index) heap of scheduled retries
        self._retry_heap: List[Tuple[int, int, int]] = []
        self._retry_seq = 0
        self._attempts: Dict[int, int] = {}
        #: transition index -> the Detection awaiting a successful retry
        self._open_aborts: Dict[int, Detection] = {}
        # counters (also published to the metrics registry)
        self.watchdog_aborts = 0
        self.retries_scheduled = 0
        self.retries_succeeded = 0
        self.retries_exhausted = 0
        self.illegal_configurations = 0
        self.safe_state_recoveries = 0
        self.tep_failovers = 0

    # -- wiring ------------------------------------------------------------
    def bind(self, machine) -> None:
        """Called by :meth:`PscpMachine.attach_guard`: pre-compute the
        per-transition watchdog budgets and resolve the safe state."""
        from repro.pscp.machine import stub_wcet

        self.machine = machine
        self.safe_state = (self._safe_state_override
                           if self._safe_state_override is not None
                           else machine.chart.initial_configuration())
        problems = configuration_problems(machine.chart, self.safe_state)
        if problems:
            raise ValueError(f"declared safe state is illegal: {problems}")
        self.budgets = {
            transition.index: int(
                self.watchdog_margin
                * stub_wcet(transition, machine.compiled,
                            machine._param_names or None)
            ) + self.watchdog_slack
            for transition in machine.chart.transitions
        }

    def attach_tracer(self, tracer) -> None:
        self.tracer = tracer
        self._track = None if tracer is None else tracer.track("recovery")

    # -- logging -----------------------------------------------------------
    def _record(self, detection: Detection) -> Detection:
        self.detections.append(detection)
        self._cycle_log.append(detection)
        if self.tracer is not None:
            time = self.machine.time if self.machine is not None else 0
            self.tracer.instant(self._track, detection.describe(), time,
                                {"kind": detection.kind,
                                 "cycle": detection.cycle})
        return detection

    def _note_escalation(self, cycle: int, kind: str, detail: str) -> None:
        """Mark the escalation in the machine's flight recorder (if any) so
        the forensics bundle carries the cause inline with the ring."""
        if self.machine is not None and self.machine.recorder is not None:
            self.machine.recorder.note_escalation(cycle, kind, detail)

    def drain_cycle_log(self) -> Tuple[Detection, ...]:
        if not self._cycle_log:
            return ()
        log = tuple(self._cycle_log)
        self._cycle_log.clear()
        return log

    # -- watchdog + retry --------------------------------------------------
    def on_watchdog_abort(self, cycle: int, transition_index: int) -> None:
        """A dispatch exceeded its budget and was aborted at the budget."""
        self.watchdog_aborts += 1
        attempts = self._attempts.get(transition_index, 0) + 1
        self._attempts[transition_index] = attempts
        detection = self._open_aborts.get(transition_index)
        if detection is None:
            detection = self._record(Detection(
                WATCHDOG_ABORT, cycle, transition_index,
                f"budget {self.budgets.get(transition_index, '?')} exceeded"))
            self._open_aborts[transition_index] = detection
        if attempts > self.max_retries:
            detail = f"gave up after {attempts - 1} retries"
            self._record(Detection(
                RETRY_EXHAUSTED, cycle, transition_index, detail))
            self.retries_exhausted += 1
            del self._open_aborts[transition_index]
            del self._attempts[transition_index]
            if self.escalate_unrecoverable:
                self.escalation_count += 1
                self._note_escalation(cycle, RETRY_EXHAUSTED, detail)
                raise MachineEscalation(
                    RETRY_EXHAUSTED, cycle, transition_index, detail)
            return
        # exponential backoff in configuration cycles: 1, 2, 4, ...
        backoff = self.backoff_base * (1 << (attempts - 1))
        heapq.heappush(self._retry_heap,
                       (cycle + backoff, self._retry_seq, transition_index))
        self._retry_seq += 1
        self.retries_scheduled += 1

    def due_retries(self, cycle: int) -> List[int]:
        """Aborted transitions to re-post to the TAT this cycle."""
        due: List[int] = []
        while self._retry_heap and self._retry_heap[0][0] <= cycle:
            _, _, index = heapq.heappop(self._retry_heap)
            due.append(index)
        return due

    def has_open_abort(self, transition_index: int) -> bool:
        return transition_index in self._open_aborts

    def on_retry_success(self, cycle: int, transition_index: int) -> None:
        """A previously aborted transition completed within budget."""
        detection = self._open_aborts.pop(transition_index, None)
        if detection is not None:
            detection.recovered = True
            detection.detail += f"; retry succeeded at cycle {cycle}"
        self._attempts.pop(transition_index, None)
        self.retries_succeeded += 1
        if self.tracer is not None and detection is not None:
            # the recovery window as a span: abort cycle -> success time
            self.tracer.instant(
                self._track, f"retry-ok t{transition_index}",
                self.machine.time if self.machine is not None else cycle,
                {"transition": transition_index})

    # -- exclusivity checker -----------------------------------------------
    def check_configuration(self, configuration: FrozenSet[str]) -> List[str]:
        problems = configuration_problems(self.machine.chart, configuration)
        if not problems:
            self._consecutive_illegal = 0
        return problems

    def on_illegal_configuration(self, cycle: int,
                                 problems: List[str]) -> FrozenSet[str]:
        """Record the detection; returns the configuration to recover to.

        Safe-state recovery normally succeeds in one shot; if the very next
        checks keep finding an illegal configuration, recovery itself is
        failing (e.g. the corruption re-bites every cycle) and, in farm
        mode, the guard escalates instead of looping forever.
        """
        self.illegal_configurations += 1
        self._consecutive_illegal += 1
        if (self.escalate_unrecoverable
                and self._consecutive_illegal >= self.max_consecutive_illegal):
            detail = (f"safe-state recovery failed "
                      f"{self._consecutive_illegal} consecutive times: "
                      + "; ".join(problems))
            self._record(Detection(
                ILLEGAL_CONFIGURATION, cycle, None, detail))
            self.escalation_count += 1
            self._note_escalation(cycle, ILLEGAL_CONFIGURATION, detail)
            raise MachineEscalation(ILLEGAL_CONFIGURATION, cycle, None,
                                    detail)
        self.safe_state_recoveries += 1
        self._record(Detection(
            ILLEGAL_CONFIGURATION, cycle, None,
            "; ".join(problems), recovered=True))
        return self.safe_state

    def on_all_teps_failed(self, cycle: int) -> None:
        """The last TEP failed: nothing can execute routines any more.

        Records the terminal detection; in farm mode raises
        :class:`MachineEscalation` so a supervisor restarts from snapshot,
        otherwise returns and the machine raises its usual fatal
        :class:`MachineError`.
        """
        self._record(Detection(
            ALL_TEPS_FAILED, cycle, None, "no executor survives"))
        if self.escalate_unrecoverable:
            self.escalation_count += 1
            self._note_escalation(cycle, ALL_TEPS_FAILED,
                                  "no executor survives")
            raise MachineEscalation(ALL_TEPS_FAILED, cycle, None,
                                    "no executor survives")

    # -- failover ----------------------------------------------------------
    def on_tep_failed(self, cycle: int, tep_index: int,
                      survivors: List[int]) -> None:
        self.tep_failovers += 1
        self._record(Detection(
            TEP_FAILOVER, cycle, tep_index,
            f"survivors {survivors}", recovered=bool(survivors)))

    # -- supervision -------------------------------------------------------
    def reset_transient(self) -> None:
        """Clear in-flight recovery state after a restart-from-snapshot.

        Scheduled retries, open aborts, attempt counts and the
        consecutive-illegal streak refer to the timeline the restore just
        discarded; cumulative counters and the detection log are history and
        survive.
        """
        self._retry_heap.clear()
        self._attempts.clear()
        self._open_aborts.clear()
        self._cycle_log.clear()
        self._consecutive_illegal = 0

    # -- reporting ---------------------------------------------------------
    def publish(self, metrics) -> None:
        """Publish detection/recovery counters into a metrics registry."""
        metrics.counter("guard.watchdog_aborts",
                        "dispatches aborted at their cycle budget").value = \
            self.watchdog_aborts
        metrics.counter("guard.retries_scheduled").value = \
            self.retries_scheduled
        metrics.counter("guard.retries_succeeded").value = \
            self.retries_succeeded
        metrics.counter("guard.retries_exhausted").value = \
            self.retries_exhausted
        metrics.counter("guard.illegal_configurations",
                        "exclusivity-set violations detected").value = \
            self.illegal_configurations
        metrics.counter("guard.safe_state_recoveries").value = \
            self.safe_state_recoveries
        metrics.counter("guard.tep_failovers").value = self.tep_failovers
        metrics.counter("guard.escalations",
                        "unrecoverable faults escalated").value = \
            self.escalation_count
