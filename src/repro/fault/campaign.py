"""Seeded fault campaigns over the SMD closed loop.

A campaign answers the question the ROADMAP's "behaviour under faults"
north-star poses: for each fault class, how often does the detection
machinery catch the fault, how often does recovery complete the workload
anyway, and how often does the fault slip through?

The runner is deterministic end to end: per-run plans are drawn from
``random.Random(seed * 7919 + run_number)`` (integer seeding, stable across
processes), the fault horizon is the fault-free baseline's configuration
cycle count, and the report's :meth:`CampaignReport.to_json` is directly
comparable — the CI smoke job runs the same seed twice and asserts equality.

Vocabulary (per run):

* **injected** — faults from the plan that actually bit;
* **detected** — the class's expected detector fired (watchdog abort for
  stall/runaway, the exclusivity checker for CR state corruption and stuck
  SLA terms, failover accounting for a dead TEP);
* **recovered** — detected *and* the recovery completed (retry succeeded,
  safe state restored, survivors finished the work);
* **missed** — a detectable class bit but its detector stayed silent (e.g.
  a CR state flip that decodes to a *legal* configuration);
* **silent** — the class has no detector claiming it (data corruption such
  as RAM/cache/port faults degrades results rather than structure); these
  runs are reported by workload outcome only;
* **restored** — with ``restore_from_checkpoint=True``, an unrecoverable
  fault escalated out of the machine and the closed loop restarted it from
  its last checkpoint at least once (the fourth rung of the degradation
  ladder: detect, recover in-cycle, restore-from-checkpoint, crash).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fault.guard import (
    ILLEGAL_CONFIGURATION,
    MachineGuard,
    TEP_FAILOVER,
    WATCHDOG_ABORT,
)
from repro.fault.injector import FaultInjector
from repro.fault.model import (
    ALL_FAULT_KINDS,
    DETECTABLE_KINDS,
    FAILOVER_KINDS,
    FaultPlan,
    FaultSurface,
    ILLEGAL_CONFIG_KINDS,
    WATCHDOG_KINDS,
)

#: the detector each detectable fault class is expected to trip
EXPECTED_DETECTOR: Dict[str, str] = {}
for _kind in WATCHDOG_KINDS:
    EXPECTED_DETECTOR[_kind] = WATCHDOG_ABORT
for _kind in ILLEGAL_CONFIG_KINDS:
    EXPECTED_DETECTOR[_kind] = ILLEGAL_CONFIGURATION
for _kind in FAILOVER_KINDS:
    EXPECTED_DETECTOR[_kind] = TEP_FAILOVER

DEFAULT_CLASSES: Tuple[str, ...] = ALL_FAULT_KINDS


@dataclass
class RunResult:
    """One fault run of the closed loop."""

    fault_class: str
    run_number: int
    plan: List[str]
    injected: int
    detections: List[str]
    detected: bool
    recovered: bool
    missed: bool
    silent: bool
    crashed: bool
    completed_moves: bool
    truncated: bool
    deadline_misses: int
    restored: bool = False

    def to_json(self) -> Dict[str, object]:
        return {
            "class": self.fault_class,
            "run": self.run_number,
            "plan": self.plan,
            "injected": self.injected,
            "detections": self.detections,
            "detected": self.detected,
            "recovered": self.recovered,
            "missed": self.missed,
            "silent": self.silent,
            "crashed": self.crashed,
            "completed_moves": self.completed_moves,
            "truncated": self.truncated,
            "deadline_misses": self.deadline_misses,
            "restored": self.restored,
        }


@dataclass
class ClassStats:
    """Aggregate outcome of one fault class across its runs."""

    fault_class: str
    runs: int = 0
    injected: int = 0
    detected: int = 0
    recovered: int = 0
    missed: int = 0
    silent: int = 0
    crashed: int = 0
    completed_moves: int = 0
    deadline_misses: int = 0
    restored: int = 0

    def absorb(self, result: RunResult) -> None:
        self.runs += 1
        self.injected += result.injected
        self.detected += int(result.detected)
        self.recovered += int(result.recovered)
        self.missed += int(result.missed)
        self.silent += int(result.silent)
        self.crashed += int(result.crashed)
        self.completed_moves += int(result.completed_moves)
        self.deadline_misses += result.deadline_misses
        self.restored += int(result.restored)

    def to_json(self) -> Dict[str, object]:
        return {
            "class": self.fault_class,
            "runs": self.runs,
            "injected": self.injected,
            "detected": self.detected,
            "recovered": self.recovered,
            "missed": self.missed,
            "silent": self.silent,
            "crashed": self.crashed,
            "completed_moves": self.completed_moves,
            "deadline_misses": self.deadline_misses,
            "restored": self.restored,
        }


@dataclass
class CampaignReport:
    """The full campaign: baseline facts plus per-class breakdowns."""

    seed: int
    runs_per_class: int
    classes: Tuple[str, ...]
    baseline_cycles: int
    baseline_deadline_misses: int
    class_stats: List[ClassStats]
    runs: List[RunResult] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        """A deterministic, seed-comparable document (the CI smoke job
        asserts two same-seed campaigns serialize identically)."""
        return {
            "seed": self.seed,
            "runs_per_class": self.runs_per_class,
            "classes": list(self.classes),
            "baseline": {
                "configuration_cycles": self.baseline_cycles,
                "deadline_misses": self.baseline_deadline_misses,
            },
            "class_stats": [stats.to_json() for stats in self.class_stats],
            "runs": [result.to_json() for result in self.runs],
        }

    def render(self) -> str:
        from repro.flow import ascii_table

        rows = [
            (stats.fault_class, stats.runs, stats.injected, stats.detected,
             stats.recovered, stats.restored, stats.missed, stats.silent,
             f"{stats.completed_moves}/{stats.runs}", stats.deadline_misses)
            for stats in self.class_stats
        ]
        return ascii_table(
            ["Fault class", "Runs", "Injected", "Detected", "Recovered",
             "Restored", "Missed", "Silent", "Moves done", "DL misses"],
            rows,
            title=(f"Fault campaign: seed {self.seed}, "
                   f"{self.runs_per_class} run(s)/class, baseline "
                   f"{self.baseline_cycles} configuration cycles"))

    def publish(self, metrics) -> None:
        total = ClassStats("total")
        for stats in self.class_stats:
            for name in ("runs", "injected", "detected", "recovered",
                         "missed", "silent", "crashed", "completed_moves",
                         "deadline_misses", "restored"):
                setattr(total, name,
                        getattr(total, name) + getattr(stats, name))
        metrics.counter("campaign.runs", "fault runs executed").value = \
            total.runs
        metrics.counter("campaign.injected").value = total.injected
        metrics.counter("campaign.detected").value = total.detected
        metrics.counter("campaign.recovered").value = total.recovered
        metrics.counter("campaign.missed").value = total.missed
        metrics.counter("campaign.silent").value = total.silent
        metrics.counter("campaign.crashed").value = total.crashed
        metrics.counter("campaign.completed_moves").value = \
            total.completed_moves
        metrics.counter("campaign.deadline_misses").value = \
            total.deadline_misses
        metrics.counter("campaign.restored",
                        "runs restarted from a checkpoint").value = \
            total.restored


class FaultCampaign:
    """Runs the SMD closed loop under seeded per-class fault plans."""

    def __init__(
        self,
        system,
        seed: int = 1,
        runs_per_class: int = 3,
        classes: Sequence[str] = DEFAULT_CLASSES,
        commands=None,
        motor_specs=None,
        max_configuration_cycles: int = 20000,
        faults_per_run: int = 1,
        tracer=None,
        metrics=None,
        restore_from_checkpoint: bool = False,
        checkpoint_every: int = 50,
        max_restarts: int = 3,
    ) -> None:
        unknown = set(classes) - set(ALL_FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault classes {sorted(unknown)}")
        self.system = system
        self.seed = seed
        self.runs_per_class = runs_per_class
        self.classes = tuple(classes)
        self.commands = commands
        self.motor_specs = motor_specs
        self.max_configuration_cycles = max_configuration_cycles
        self.faults_per_run = faults_per_run
        self.tracer = tracer
        self.metrics = metrics
        #: escalate unrecoverable faults and restart the loop from its last
        #: checkpoint instead of counting the run as crashed
        self.restore_from_checkpoint = restore_from_checkpoint
        self.checkpoint_every = checkpoint_every
        self.max_restarts = max_restarts
        self.surface = FaultSurface.from_system(system)

    # -- pieces ------------------------------------------------------------
    def _default_commands(self):
        from repro.workloads import MoveCommand

        return [MoveCommand(60, 45, 8)]

    def _default_motor_specs(self):
        # the fast motor profile the trace/stats CLI uses — keeps a full
        # 15-class campaign inside a CI smoke budget
        from repro.workloads import MotorSpec

        return {
            "X": MotorSpec("X", 50_000.0, 0.025e-3, 1.25, 2000.0),
            "Y": MotorSpec("Y", 50_000.0, 0.025e-3, 1.25, 2000.0),
            "Phi": MotorSpec("Phi", 9_000.0, 0.1, 900.0, 0.0),
        }

    def _closed_loop(self, injector=None, guard=None, tracer=None):
        from repro.workloads import SmdClosedLoop

        specs = (self.motor_specs if self.motor_specs is not None
                 else self._default_motor_specs())
        return SmdClosedLoop(self.system, motor_specs=specs, tracer=tracer,
                             injector=injector, guard=guard)

    def _one_run(self, fault_class: str, run_number: int,
                 horizon: int) -> RunResult:
        from repro.pscp.machine import MachineError

        rng = random.Random(self.seed * 7919 + run_number)
        plan = FaultPlan.generate(rng, self.surface, [fault_class],
                                  n_faults=self.faults_per_run,
                                  horizon=horizon)
        injector = FaultInjector(plan)
        guard = MachineGuard(
            escalate_unrecoverable=self.restore_from_checkpoint)
        loop = self._closed_loop(injector=injector, guard=guard,
                                 tracer=self.tracer)
        commands = (self.commands if self.commands is not None
                    else self._default_commands())
        crashed = False
        report = None
        try:
            report = loop.run(commands,
                              max_configuration_cycles=
                              self.max_configuration_cycles,
                              restore_from_checkpoint=
                              self.restore_from_checkpoint,
                              checkpoint_every=self.checkpoint_every,
                              max_restarts=self.max_restarts)
        except MachineError:
            crashed = True

        expected = EXPECTED_DETECTOR.get(fault_class)
        detections = [d for d in guard.detections if d.kind == expected] \
            if expected is not None else []
        injected = len(injector.injected)
        detected = bool(detections)
        recovered = any(d.recovered for d in detections)
        missed = (fault_class in DETECTABLE_KINDS and injected > 0
                  and not detected)
        return RunResult(
            fault_class=fault_class,
            run_number=run_number,
            plan=plan.describe(),
            injected=injected,
            detections=[d.describe() for d in guard.detections],
            detected=detected,
            recovered=recovered,
            missed=missed,
            silent=fault_class not in DETECTABLE_KINDS,
            crashed=crashed,
            completed_moves=(report is not None
                             and report.all_moves_completed),
            truncated=report.truncated if report is not None else True,
            deadline_misses=(sum(d.misses for d in report.deadline_reports)
                             if report is not None else 0),
            restored=report is not None and report.restarts > 0,
        )

    # -- the campaign ------------------------------------------------------
    def run(self) -> CampaignReport:
        commands = (self.commands if self.commands is not None
                    else self._default_commands())
        baseline = self._closed_loop().run(
            commands, max_configuration_cycles=self.max_configuration_cycles)
        if not baseline.all_moves_completed:
            raise RuntimeError(
                "fault-free baseline did not complete its moves; a fault "
                "campaign over a broken workload is meaningless")
        horizon = baseline.configuration_cycles
        baseline_misses = sum(d.misses for d in baseline.deadline_reports)

        class_stats: List[ClassStats] = []
        runs: List[RunResult] = []
        run_number = 0
        for fault_class in self.classes:
            stats = ClassStats(fault_class)
            for _ in range(self.runs_per_class):
                result = self._one_run(fault_class, run_number, horizon)
                stats.absorb(result)
                runs.append(result)
                run_number += 1
            class_stats.append(stats)

        report = CampaignReport(
            seed=self.seed,
            runs_per_class=self.runs_per_class,
            classes=self.classes,
            baseline_cycles=horizon,
            baseline_deadline_misses=baseline_misses,
            class_stats=class_stats,
            runs=runs,
        )
        if self.metrics is not None:
            report.publish(self.metrics)
        return report
