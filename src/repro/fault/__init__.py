"""Fault injection, detection and recovery for the PSCP machine.

Three layers (see docs/ROBUSTNESS.md):

* :mod:`repro.fault.model` — the fault taxonomy, the :class:`FaultSurface`
  of one built system, and seeded :class:`FaultPlan` generation;
* :mod:`repro.fault.injector` + :mod:`repro.fault.guard` — the runtime
  halves: a :class:`FaultInjector` executes a plan through hook points in
  the machine, while a :class:`MachineGuard` arms the watchdog, the
  exclusivity-set checker, bounded retry and TEP-failover accounting;
* :mod:`repro.fault.campaign` — seeded campaigns over the SMD closed loop
  with detected/recovered/missed reporting per fault class.
"""

from repro.fault.campaign import (
    CampaignReport,
    ClassStats,
    DEFAULT_CLASSES,
    EXPECTED_DETECTOR,
    FaultCampaign,
    RunResult,
)
from repro.fault.guard import (
    ALL_TEPS_FAILED,
    Detection,
    ILLEGAL_CONFIGURATION,
    MachineEscalation,
    MachineGuard,
    RETRY_EXHAUSTED,
    TEP_FAILOVER,
    WATCHDOG_ABORT,
    configuration_problems,
)
from repro.fault.injector import FaultInjector
from repro.fault.model import (
    ALL_FAULT_KINDS,
    DETECTABLE_KINDS,
    FAILOVER_KINDS,
    Fault,
    FaultError,
    FaultPlan,
    FaultSurface,
    ILLEGAL_CONFIG_KINDS,
    InjectedFault,
    WATCHDOG_KINDS,
)

__all__ = [
    "ALL_FAULT_KINDS",
    "ALL_TEPS_FAILED",
    "CampaignReport",
    "ClassStats",
    "DEFAULT_CLASSES",
    "DETECTABLE_KINDS",
    "Detection",
    "EXPECTED_DETECTOR",
    "FAILOVER_KINDS",
    "Fault",
    "FaultCampaign",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultSurface",
    "ILLEGAL_CONFIGURATION",
    "ILLEGAL_CONFIG_KINDS",
    "InjectedFault",
    "MachineEscalation",
    "MachineGuard",
    "RETRY_EXHAUSTED",
    "RunResult",
    "TEP_FAILOVER",
    "WATCHDOG_ABORT",
    "WATCHDOG_KINDS",
    "configuration_problems",
]
