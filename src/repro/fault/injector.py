"""The fault injector: executes a :class:`~repro.fault.model.FaultPlan`
against a running machine.

The injector is attached with
:meth:`~repro.pscp.machine.PscpMachine.attach_injector`, mirroring the
tracer protocol: every hook site in the machine, the condition-cache bridge
and the port bus is guarded by a single ``if injector is not None`` test, so
the detached path performs no extra work and an attached injector with an
**empty plan** is byte-identical to no injector at all (asserted by the
fault-free parity test).

Faults stay *armed* from their cycle until their victim shows up:

* bus faults (drop/duplicate/delay) bite on the next occurrence of their
  target event at or after their cycle;
* dispatch faults (stall/runaway) bite on the next transition dispatch;
* everything else (CR flips, RAM flips, cache flips, TEP failure, stuck
  ports, stuck SLA outputs) applies at the first cycle >= its arm cycle.

Every fault that bites is logged as an
:class:`~repro.fault.model.InjectedFault` (and, when a tracer is attached,
emitted as an instant on the dedicated ``faults`` track), so campaigns can
correlate injections with the guard's detections.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.fault.model import (
    CACHE_BACK_FLIP,
    CACHE_IN_FLIP,
    CR_CONDITION_FLIP,
    CR_EVENT_FLIP,
    CR_STATE_FLIP,
    EVENT_DELAY,
    EVENT_DROP,
    EVENT_DUPLICATE,
    Fault,
    FaultPlan,
    InjectedFault,
    PORT_STUCK,
    RAM_FLIP,
    SLA_STUCK_OFF,
    SLA_STUCK_ON,
    TEP_FAIL,
    TEP_RUNAWAY,
    TEP_STALL,
)


class FaultInjector:
    """Deterministic, cycle-addressed fault injection for one machine."""

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan if plan is not None else FaultPlan.empty()
        self.machine = None
        self.tracer = None
        self._track: Optional[int] = None
        #: every fault that actually bit, in bite order
        self.injected: List[InjectedFault] = []
        self._cycle_log: List[InjectedFault] = []
        #: True while the current cycle corrupted the CR state part or
        #: forced an SLA output — the machine consults this to decide
        #: whether the guard must re-check configuration legality
        self.state_touched = False
        self._load_plan()

    # -- wiring ------------------------------------------------------------
    def _load_plan(self) -> None:
        self._event_faults: List[Fault] = []
        self._cycle_faults: List[Fault] = []
        self._dispatch_faults: List[Fault] = []
        self._sla_faults: List[Fault] = []
        for fault in self.plan:
            if fault.kind in (EVENT_DROP, EVENT_DUPLICATE, EVENT_DELAY):
                self._event_faults.append(fault)
            elif fault.kind in (TEP_STALL, TEP_RUNAWAY):
                self._dispatch_faults.append(fault)
            elif fault.kind in (SLA_STUCK_ON, SLA_STUCK_OFF):
                self._sla_faults.append(fault)
            else:
                self._cycle_faults.append(fault)
        #: events the bus re-delivers later: cycle -> event names
        self._reinjections: Dict[int, Set[str]] = {}
        #: port address -> stuck value
        self._stuck_ports: Dict[int, int] = {}

    def bind(self, machine) -> None:
        """Called by :meth:`PscpMachine.attach_injector`."""
        self.machine = machine

    def attach_tracer(self, tracer) -> None:
        self.tracer = tracer
        self._track = None if tracer is None else tracer.track("faults")

    @property
    def exhausted(self) -> bool:
        """True once every planned fault has bitten."""
        return not (self._event_faults or self._cycle_faults
                    or self._dispatch_faults or self._sla_faults
                    or self._reinjections)

    # -- logging -----------------------------------------------------------
    def _record(self, kind: str, cycle: int, target, detail: str) -> None:
        record = InjectedFault(kind, cycle, target, detail)
        self.injected.append(record)
        self._cycle_log.append(record)
        if self.tracer is not None:
            time = self.machine.time if self.machine is not None else cycle
            self.tracer.instant(self._track, record.describe(), time,
                                {"kind": kind, "cycle": cycle})

    def drain_cycle_log(self) -> Tuple[InjectedFault, ...]:
        """Faults that bit during the current configuration cycle."""
        if not self._cycle_log:
            return ()
        log = tuple(self._cycle_log)
        self._cycle_log.clear()
        return log

    # -- hook: the external event bus --------------------------------------
    def filter_events(self, cycle: int, events: Set[str]) -> Set[str]:
        """Apply drop/duplicate/delay faults to this cycle's bus sample."""
        due = self._reinjections.pop(cycle, None)
        if due:
            # the originating drop/duplicate/delay fault was already logged
            events = set(events) | due
        if not self._event_faults:
            return events
        remaining: List[Fault] = []
        for fault in self._event_faults:
            if cycle < fault.cycle or fault.target not in events:
                remaining.append(fault)
                continue
            if fault.kind == EVENT_DROP:
                events = set(events)
                events.discard(fault.target)
                self._record(fault.kind, cycle, fault.target, "dropped")
            elif fault.kind == EVENT_DUPLICATE:
                later = cycle + max(1, fault.param)
                self._reinjections.setdefault(later, set()).add(fault.target)
                self._record(fault.kind, cycle, fault.target,
                             f"duplicate at cycle {later}")
            else:  # EVENT_DELAY
                events = set(events)
                events.discard(fault.target)
                later = cycle + max(1, fault.param)
                self._reinjections.setdefault(later, set()).add(fault.target)
                self._record(fault.kind, cycle, fault.target,
                             f"delayed to cycle {later}")
        self._event_faults = remaining
        return events

    # -- hook: cycle-addressed state corruption ----------------------------
    def apply_cycle_faults(self, cycle: int, machine) -> None:
        """CR bit flips, RAM flips, TEP failures and port stuck-ats due at
        or before *cycle*.  Called right after event sampling.

        Exception-safe on purpose: a TEP_FAIL that kills the last TEP makes
        :meth:`PscpMachine.fail_tep` raise (possibly a
        :class:`~repro.fault.guard.MachineEscalation`), and the fault that
        bit must stay consumed — otherwise a restore-from-checkpoint would
        re-arm it and escalate forever.
        """
        self.state_touched = False
        if not self._cycle_faults:
            return
        pending = self._cycle_faults
        remaining: List[Fault] = []
        try:
            self._apply_cycle_faults(cycle, machine, pending, remaining)
        finally:
            self._cycle_faults = remaining + pending

    def _apply_cycle_faults(self, cycle: int, machine,
                            pending: List[Fault],
                            remaining: List[Fault]) -> None:
        while pending:
            fault = pending.pop(0)
            if cycle < fault.cycle:
                remaining.append(fault)
                continue
            if fault.kind == CR_EVENT_FLIP:
                present = machine.cr.flip_event(fault.target)
                self._record(fault.kind, cycle, fault.target,
                             "set" if present else "cleared")
            elif fault.kind == CR_CONDITION_FLIP:
                present = machine.cr.flip_condition(fault.target)
                self._record(fault.kind, cycle, fault.target,
                             "set" if present else "cleared")
            elif fault.kind == CR_STATE_FLIP:
                before = machine.cr.configuration
                after = machine.cr.corrupt_state_bit(fault.target)
                self.state_touched = True
                self._record(fault.kind, cycle, fault.target,
                             f"{sorted(before - after)}"
                             f"->{sorted(after - before)}")
            elif fault.kind == RAM_FLIP:
                value = machine.executor.flip_memory_bit(fault.target,
                                                         fault.param)
                self._record(fault.kind, cycle, fault.target,
                             f"bit {fault.param} -> {value}")
            elif fault.kind == TEP_FAIL:
                # log first: fail_tep raises when no TEP survives, and the
                # bite must be on record (and the fault consumed) even then
                self._record(fault.kind, cycle, fault.target, "TEP failed")
                machine.fail_tep(fault.target)
            elif fault.kind == PORT_STUCK:
                self._stuck_ports[fault.target] = fault.param
                self._record(fault.kind, cycle, fault.target,
                             f"stuck at {fault.param}")
            elif fault.kind in (CACHE_IN_FLIP, CACHE_BACK_FLIP):
                # armed; bites at the bridge hooks below
                remaining.append(fault)
                continue
            else:  # pragma: no cover - defensive
                remaining.append(fault)
                continue

    # -- hook: the SLA outputs ---------------------------------------------
    def filter_enabled(self, cycle: int, enabled: List[int]) -> List[int]:
        """Stuck-at faults on SLA product-term outputs."""
        if not self._sla_faults:
            return enabled
        remaining: List[Fault] = []
        for fault in self._sla_faults:
            if cycle < fault.cycle:
                remaining.append(fault)
                continue
            if fault.kind == SLA_STUCK_ON:
                if fault.target not in enabled:
                    enabled = sorted(set(enabled) | {fault.target})
                self.state_touched = True
                self._record(fault.kind, cycle, fault.target, "forced t=1")
            else:  # SLA_STUCK_OFF: suppress the next natural firing
                if fault.target not in enabled:
                    remaining.append(fault)
                    continue
                enabled = [i for i in enabled if i != fault.target]
                self._record(fault.kind, cycle, fault.target, "forced t=0")
        self._sla_faults = remaining
        return enabled

    # -- hook: dispatch (TEP stall / runaway) ------------------------------
    def dispatch_effect(self, cycle: int, transition_index: int
                        ) -> Optional[Fault]:
        """The stall/runaway fault biting this dispatch, if any."""
        if not self._dispatch_faults:
            return None
        for position, fault in enumerate(self._dispatch_faults):
            if cycle >= fault.cycle:
                del self._dispatch_faults[position]
                self._record(fault.kind, cycle, transition_index,
                             f"{fault.param} extra cycles"
                             if fault.kind == TEP_STALL else "never returns")
                return fault
        return None

    # -- hook: the condition-cache bridge ----------------------------------
    def _cache_flip(self, kind: str, cache: List[bool]) -> None:
        cycle = self.machine.cycle_count if self.machine is not None else 0
        remaining: List[Fault] = []
        for fault in self._cycle_faults:
            if fault.kind == kind and cycle >= fault.cycle:
                cache[fault.target] = not cache[fault.target]
                self._record(kind, cycle, fault.target,
                             f"slot now {cache[fault.target]}")
            else:
                remaining.append(fault)
        self._cycle_faults = remaining

    def on_cache_copy_in(self, cache: List[bool]) -> None:
        """Called by the bridge after CR -> cache copy-in."""
        if self._cycle_faults:
            self._cache_flip(CACHE_IN_FLIP, cache)

    def on_cache_copy_back(self, cache: List[bool]) -> None:
        """Called by the bridge before cache -> CR copy-back."""
        if self._cycle_faults:
            self._cache_flip(CACHE_BACK_FLIP, cache)

    # -- hook: the port bus ------------------------------------------------
    def on_port_read(self, address: int, value: int) -> int:
        if not self._stuck_ports:
            return value
        return self._stuck_ports.get(address, value)

    # -- reporting ---------------------------------------------------------
    def publish(self, metrics) -> None:
        """Publish injection counts into a metrics registry."""
        by_kind: Dict[str, int] = {}
        for record in self.injected:
            by_kind[record.kind] = by_kind.get(record.kind, 0) + 1
        metrics.counter("fault.injected",
                        "faults that bit during the run").value = \
            len(self.injected)
        for kind in sorted(by_kind):
            metrics.counter(f"fault.injected.{kind}").value = by_kind[kind]
