"""Hot-path performance observatory: where the *simulator's own* time goes.

The tracer (:mod:`repro.obs.tracer`) records where the *simulated*
reference-clock cycles go; this module records where the *host's*
wall-clock nanoseconds go while producing them — the measurement rung under
every raw-speed optimization (ROADMAP: the compiled execution backend).
A :class:`PerfProfiler` attaches to a :class:`~repro.pscp.machine.PscpMachine`
and attributes call counts, self/cumulative wall time and modeled cycle
cost along three axes:

* **step phases** — the fixed stations of ``machine.step()``:
  ``sample-events`` (CR sampling + fault injection), ``sla-eval`` (the PLA
  enable product + TAT post), ``dispatch`` (the TAT drain: condition-cache
  copies and TEP routine execution), ``state-update`` (entry/exit sets +
  exclusivity check) and ``finalize`` (trace/record/history bookkeeping);
* **routines** — per TEP entry label (transition stubs ``__tN`` and, at
  the ``opcode`` level, the compiled action routines they CALL), with
  *self* vs *cumulative* wall time separated by a frame stack;
* **opcodes** — per ISA opcode (``opcode`` level only): retire counts,
  modeled microprogram cycles (:func:`repro.isa.microcode.cycle_cost`) and
  measured wall time, the table that says which interpreter arms a
  compiled backend must win.

Two detail levels trade attribution depth for overhead:

* ``level="routine"`` (default) costs two clock reads per dispatched
  routine plus a *stride-sampled* set of phase boundaries — clock reads
  on one configuration cycle in ``phase_stride`` (default 8), everything
  else inline integer bookkeeping — cheap enough that
  ``scripts/check_overhead.py`` holds it to the same hard <5% budget as
  the flight recorder.  Sampled phase wall times are scaled estimates
  (``steps / sampled_steps``); calls and modeled cycles stay exact;
* ``level="opcode"`` wraps every executed instruction in clock reads and
  samples every step (``phase_stride=1``, so phase walls are exact).
  Expect whole-multiples of overhead; use it for offline hot-spot hunts
  (``repro bench`` profile reps), never in a timed leg.

Detached (``machine.attach_profiler(None)``, the default) every hook is a
single ``is None`` guard and the simulation is byte-identical to an
un-instrumented machine — the same zero-overhead discipline as the tracer.
The profiler is a pure observer: it never mutates architectural state, so
attached runs produce identical :class:`~repro.pscp.machine.MachineStep`
sequences (asserted by ``tests/test_perfprof.py``).

Rendering: :meth:`PerfProfiler.hotspot_table` (sorted text),
:meth:`PerfProfiler.to_json` (the ``profile`` section of ``BENCH_6.json``)
and :meth:`PerfProfiler.chrome_trace_events` (a self-profile track set that
:func:`repro.obs.export.chrome_trace` merges into the Perfetto export).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

#: fixed station order of ``machine.step()`` (also the rendering order)
STEP_PHASES: Tuple[str, ...] = (
    "sample-events", "sla-eval", "dispatch", "state-update", "finalize")

#: profiler detail levels
ROUTINE_LEVEL = "routine"
OPCODE_LEVEL = "opcode"


class PhaseStat:
    """One ``machine.step()`` station, over the *sampled* steps only:
    sampled count and raw (unscaled) wall ns."""

    __slots__ = ("samples", "wall_ns")

    def __init__(self) -> None:
        self.samples = 0
        self.wall_ns = 0


class RoutineStat:
    """One TEP entry label / called routine."""

    __slots__ = ("calls", "self_ns", "cum_ns", "cycles", "instructions")

    def __init__(self) -> None:
        self.calls = 0
        self.self_ns = 0
        self.cum_ns = 0
        self.cycles = 0
        self.instructions = 0


class OpcodeStat:
    """One ISA opcode: retire count, modeled cycles, measured wall ns."""

    __slots__ = ("calls", "wall_ns", "modeled_cycles")

    def __init__(self) -> None:
        self.calls = 0
        self.wall_ns = 0
        self.modeled_cycles = 0


class PerfProfiler:
    """Collects host-time attribution for one machine's hot path.

    ``clock`` must return integer nanoseconds (default
    :func:`time.perf_counter_ns`); tests inject a fake for deterministic
    assertions.  ``level`` is ``"routine"`` (cheap, production-safe) or
    ``"opcode"`` (per-instruction, offline only) — see the module
    docstring for the cost model.

    Self/cumulative accounting uses a frame stack at the ``opcode`` level:
    a CALL opens a frame for the callee, the matching RET closes it, and
    every instruction's wall time lands in the innermost frame's *self*
    while closed frames roll their cumulative total up into the caller.
    (Recursive routines would double-count cumulative time; the TEP's
    64-deep call stack makes deep recursion an execution fault anyway.)
    """

    def __init__(self, level: str = ROUTINE_LEVEL,
                 clock: Optional[Callable[[], int]] = None,
                 phase_stride: Optional[int] = None) -> None:
        if level not in (ROUTINE_LEVEL, OPCODE_LEVEL):
            raise ValueError(f"unknown profiler level {level!r}")
        self.level = level
        self.per_opcode = level == OPCODE_LEVEL
        self.clock: Callable[[], int] = (clock if clock is not None
                                         else time.perf_counter_ns)
        if phase_stride is None:
            phase_stride = 1 if self.per_opcode else 8
        if phase_stride < 1:
            raise ValueError(f"phase_stride must be >= 1, got {phase_stride}")
        #: phase boundaries get clock reads on one step in ``phase_stride``
        self.phase_stride = phase_stride
        self.phases: Dict[str, PhaseStat] = {name: PhaseStat()
                                             for name in STEP_PHASES}
        self.routines: Dict[str, RoutineStat] = {}
        self.opcodes: Dict[str, OpcodeStat] = {}
        #: configuration cycles observed while attached
        self.steps = 0
        #: configuration cycles whose phase boundaries were clocked
        self.sampled_steps = 0
        #: exact modeled cycles charged by the scheduler while attached
        #: (SLA overhead per step / the per-step dispatch makespan)
        self.sla_cycles = 0
        self.dispatch_cycles = 0
        #: pretty names for entry labels (``__t3`` -> ``t3 Work``), bound
        #: by :meth:`repro.pscp.machine.PscpMachine.attach_profiler`
        self.label_names: Dict[str, str] = {}

    # -- hooks (hot path) --------------------------------------------------
    def phase_sample(self, t0: int, t1: int, t2: int, t3: int,
                     t4: int, t5: int) -> None:
        """Record one sampled step's phase boundary timestamps (the five
        stations of ``machine.step()``, in :data:`STEP_PHASES` order).
        ``machine.step()`` takes the clock reads inline and hands them over
        in a single call so the unsampled steps pay only integer
        bookkeeping."""
        phases = self.phases
        stat = phases["sample-events"]
        stat.samples += 1
        stat.wall_ns += t1 - t0
        stat = phases["sla-eval"]
        stat.samples += 1
        stat.wall_ns += t2 - t1
        stat = phases["dispatch"]
        stat.samples += 1
        stat.wall_ns += t3 - t2
        stat = phases["state-update"]
        stat.samples += 1
        stat.wall_ns += t4 - t3
        stat = phases["finalize"]
        stat.samples += 1
        stat.wall_ns += t5 - t4
        self.sampled_steps += 1

    def note_run(self, entry: str, ns: int, cycles: int,
                 instructions: int) -> None:
        """Routine-level attribution: one whole ``Tep.run`` call."""
        stat = self.routines.get(entry)
        if stat is None:
            stat = self.routines[entry] = RoutineStat()
        stat.calls += 1
        stat.self_ns += ns
        stat.cum_ns += ns
        stat.cycles += cycles
        stat.instructions += instructions

    def note_opcode(self, name: str, cycles: int, ns: int) -> None:
        """Opcode-level attribution: one retired instruction."""
        stat = self.opcodes.get(name)
        if stat is None:
            stat = self.opcodes[name] = OpcodeStat()
        stat.calls += 1
        stat.wall_ns += ns
        stat.modeled_cycles += cycles

    # frame records: [name, self_ns, child_cum_ns, cycles, instructions]
    def open_frame(self, frames: List[List[Any]], name: str) -> None:
        frames.append([name, 0, 0, 0, 0])

    def close_frame(self, frames: List[List[Any]]) -> None:
        name, self_ns, child_cum, cycles, instructions = frames.pop()
        cum_ns = self_ns + child_cum
        stat = self.routines.get(name)
        if stat is None:
            stat = self.routines[name] = RoutineStat()
        stat.calls += 1
        stat.self_ns += self_ns
        stat.cum_ns += cum_ns
        stat.cycles += cycles
        stat.instructions += instructions
        if frames:
            frames[-1][2] += cum_ns

    # -- reading back ------------------------------------------------------
    def reset(self) -> None:
        """Forget everything (keep level/clock/stride/name bindings)."""
        self.phases = {name: PhaseStat() for name in STEP_PHASES}
        self.routines.clear()
        self.opcodes.clear()
        self.steps = 0
        self.sampled_steps = 0
        self.sla_cycles = 0
        self.dispatch_cycles = 0

    @property
    def phase_scale(self) -> float:
        """Sampled-wall → estimated-total scale (1.0 when every step was
        sampled, i.e. ``phase_stride == 1``)."""
        if not self.sampled_steps:
            return 0.0
        return self.steps / self.sampled_steps

    def phase_report(self) -> List[Tuple[str, int, int, int]]:
        """``(phase, steps, estimated wall ns, modeled cycles)`` rows in
        station order.  Wall is the stride-scaled estimate (exact at
        stride 1); steps and modeled cycles are exact."""
        scale = self.phase_scale
        modeled = {"sla-eval": self.sla_cycles,
                   "dispatch": self.dispatch_cycles}
        return [(name, self.steps,
                 int(self.phases[name].wall_ns * scale),
                 modeled.get(name, 0))
                for name in STEP_PHASES]

    @property
    def wall_ns(self) -> int:
        """Total instrumented wall time (stride-scaled sum over phases)."""
        return sum(row[2] for row in self.phase_report())

    def display(self, label: str) -> str:
        return self.label_names.get(label, label)

    def _routine_rows(self) -> List[Tuple[str, RoutineStat]]:
        return sorted(self.routines.items(),
                      key=lambda item: (-item[1].cum_ns, item[0]))

    def _opcode_rows(self) -> List[Tuple[str, OpcodeStat]]:
        return sorted(self.opcodes.items(),
                      key=lambda item: (-item[1].wall_ns, item[0]))

    def to_json(self, top: int = 20) -> Dict[str, Any]:
        """The ``profile`` section of ``BENCH_6.json``: phases in station
        order, the *top* routines by cumulative wall time, the *top*
        opcodes by wall time.  Wall numbers are host-dependent; the
        regression guard compares structure, not these values."""
        return {
            "level": self.level,
            "steps": self.steps,
            "phase_stride": self.phase_stride,
            "sampled_steps": self.sampled_steps,
            "wall_ns": self.wall_ns,
            "phases": [
                {"phase": name, "calls": calls, "wall_ns": wall_ns,
                 "modeled_cycles": modeled_cycles}
                for name, calls, wall_ns, modeled_cycles
                in self.phase_report()],
            "routines": [
                {"routine": self.display(name), "calls": stat.calls,
                 "self_ns": stat.self_ns, "cum_ns": stat.cum_ns,
                 "modeled_cycles": stat.cycles,
                 "instructions": stat.instructions}
                for name, stat in self._routine_rows()[:top]],
            "opcodes": [
                {"opcode": name, "calls": stat.calls,
                 "wall_ns": stat.wall_ns,
                 "modeled_cycles": stat.modeled_cycles}
                for name, stat in self._opcode_rows()[:top]],
        }

    def hotspot_table(self, top: int = 12) -> str:
        """Sorted plain-text hot-spot report (phases, routines, opcodes)."""
        from repro.flow.report import ascii_table  # deferred: avoids the
        # repro.flow import cycle, same as repro.obs.export

        total = self.wall_ns or 1
        sampled = (" (exact)" if self.phase_stride == 1 else
                   f" (wall sampled 1/{self.phase_stride})")
        parts: List[str] = []
        parts.append(ascii_table(
            ["Phase", "Steps", "Wall ms", "%", "Modeled cycles"],
            [(name, calls, f"{wall_ns / 1e6:.2f}",
              f"{100.0 * wall_ns / total:.1f}", modeled_cycles)
             for name, calls, wall_ns, modeled_cycles
             in self.phase_report()],
            title=f"Step phases ({self.steps} configuration "
                  f"cycles{sampled})"))
        if self.routines:
            parts.append(ascii_table(
                ["Routine", "Calls", "Self ms", "Cum ms", "Cycles",
                 "Instr"],
                [(self.display(name), stat.calls,
                  f"{stat.self_ns / 1e6:.2f}", f"{stat.cum_ns / 1e6:.2f}",
                  stat.cycles, stat.instructions)
                 for name, stat in self._routine_rows()[:top]],
                title=f"Hottest routines (top {top} by cumulative wall)"))
        if self.opcodes:
            parts.append(ascii_table(
                ["Opcode", "Retired", "Wall ms", "%", "Modeled cycles"],
                [(name, stat.calls, f"{stat.wall_ns / 1e6:.2f}",
                  f"{100.0 * stat.wall_ns / total:.1f}",
                  stat.modeled_cycles)
                 for name, stat in self._opcode_rows()[:top]],
                title=f"Hottest opcodes (top {top} by wall)"))
        return "\n\n".join(parts)

    # -- Chrome-trace self-profile track -----------------------------------
    def chrome_trace_events(self, pid: int, top: int = 12
                            ) -> List[Dict[str, Any]]:
        """The profile as one extra trace-event *process*: three tracks
        (step phases, routines, opcodes) of spans laid end to end, one
        microsecond of trace time per microsecond of measured host time.
        :func:`repro.obs.export.chrome_trace` merges these into the
        simulated-cycle tracks' document so a single Perfetto page shows
        both where the simulated cycles went and where the simulator's own
        time went."""
        events: List[Dict[str, Any]] = [{
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": f"self-profile ({self.level})"},
        }]
        tracks: List[Tuple[str, List[Tuple[str, int, Dict[str, Any]]]]] = [
            ("step phases",
             [(name, wall_ns,
               {"steps": calls, "modeled_cycles": modeled_cycles})
              for name, calls, wall_ns, modeled_cycles
              in self.phase_report() if calls]),
            ("routines (cumulative)",
             [(self.display(name), stat.cum_ns,
               {"calls": stat.calls, "self_ns": stat.self_ns,
                "modeled_cycles": stat.cycles})
              for name, stat in self._routine_rows()[:top]]),
            ("opcodes (self)",
             [(name, stat.wall_ns,
               {"retired": stat.calls,
                "modeled_cycles": stat.modeled_cycles})
              for name, stat in self._opcode_rows()[:top]]),
        ]
        tid = 0
        for track_name, spans in tracks:
            if not spans:
                continue
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid, "args": {"name": track_name}})
            events.append({"ph": "M", "name": "thread_sort_index",
                           "pid": pid, "tid": tid,
                           "args": {"sort_index": tid}})
            cursor = 0.0
            for name, ns, args in spans:
                duration = ns / 1000.0  # ns -> trace µs
                events.append({"ph": "X", "name": name, "pid": pid,
                               "tid": tid, "ts": cursor, "dur": duration,
                               "args": args})
                cursor += duration
            tid += 1
        return events
