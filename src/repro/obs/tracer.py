"""Structured cycle tracing for the PSCP simulator.

The tracer is the dynamic counterpart of the static timing analysis: it
records *where the reference-clock cycles go* — configuration cycles, SLA
evaluations, scheduler dispatch, per-TEP routine execution, condition-cache
copy traffic — as timestamped events on named tracks, one track per
architectural unit.  The event stream exports to Chrome trace-event JSON
(:mod:`repro.obs.export`) and loads directly in Perfetto.

Zero overhead when disabled
---------------------------

Instrumented components hold a ``tracer`` attribute that is ``None`` by
default.  Every hook site is guarded by a single ``if tracer is not None:``
test — the disabled path performs no dict allocation, no string formatting
and no function call, so cycle-exact benchmark numbers are unchanged.
Components that trace per configuration cycle pre-register their tracks
(and pre-render their span names) at attach time, so the enabled path is a
tuple append per event.

Timestamps are reference-clock cycles.  The exporter maps one cycle to one
microsecond of trace time, so Perfetto's time axis reads directly in cycles.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: event-record kinds (mirror the Chrome trace-event phases they export to)
SPAN = "X"
INSTANT = "i"
COUNTER = "C"


class Tracer:
    """An in-memory event sink with named tracks.

    Events are stored as flat tuples ``(kind, track_id, name, ts, dur,
    args)`` — cheap to append on the hot path, structured enough for the
    exporters to consume without re-parsing.
    """

    __slots__ = ("events", "_track_ids", "track_names", "metadata")

    def __init__(self) -> None:
        self.events: List[Tuple[str, int, str, int, int,
                                Optional[Dict[str, Any]]]] = []
        self._track_ids: Dict[str, int] = {}
        self.track_names: List[str] = []
        self.metadata: Dict[str, Any] = {}

    # -- tracks -----------------------------------------------------------
    def track(self, name: str) -> int:
        """Return (registering on first use) the integer id of a track."""
        track_id = self._track_ids.get(name)
        if track_id is None:
            track_id = len(self.track_names)
            self._track_ids[name] = track_id
            self.track_names.append(name)
        return track_id

    # -- recording --------------------------------------------------------
    def span(self, track_id: int, name: str, start: int, duration: int,
             args: Optional[Dict[str, Any]] = None) -> None:
        """A complete span: *name* occupied *track* for *duration* cycles."""
        self.events.append((SPAN, track_id, name, start, duration, args))

    def instant(self, track_id: int, name: str, ts: int,
                args: Optional[Dict[str, Any]] = None) -> None:
        """A point event at *ts*."""
        self.events.append((INSTANT, track_id, name, ts, 0, args))

    def counter(self, track_id: int, name: str, ts: int, value: int) -> None:
        """A sampled counter value (renders as a counter track)."""
        self.events.append((COUNTER, track_id, name, ts, value, None))

    # -- inspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def spans(self) -> List[Tuple[str, int, str, int, int,
                                  Optional[Dict[str, Any]]]]:
        return [event for event in self.events if event[0] == SPAN]

    def events_on(self, track_name: str):
        track_id = self._track_ids.get(track_name)
        return [event for event in self.events if event[1] == track_id]

    def clear(self) -> None:
        self.events.clear()
