"""Flow profiling: structured per-rung records of the improvement ladder.

The iterative improvement loop (:mod:`repro.flow.improve`) walks the
paper's optimization ladder, rebuilding and re-validating the system at
every rung — exactly the trajectory Table 4 reports.  The profile captures
that trajectory as *data*: for each rung, the wall-clock cost of the
rebuild, the area and critical paths it produced, and the deltas against
the previous rung.  ``repro CHART ROUTINES --improve --json`` and the flow
reports render it; nothing here touches the simulated cycle counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class RungProfile:
    """One evaluated rung of the ladder, with costs and deltas."""

    rung: str
    description: str
    wall_seconds: float
    area_clbs: int
    n_violations: int
    critical_paths: Dict[str, int]
    area_delta: int
    critical_path_deltas: Dict[str, int]

    def to_json(self) -> Dict[str, Any]:
        return {
            "rung": self.rung,
            "description": self.description,
            "wall_seconds": round(self.wall_seconds, 6),
            "area_clbs": self.area_clbs,
            "n_violations": self.n_violations,
            "critical_paths": dict(self.critical_paths),
            "area_delta": self.area_delta,
            "critical_path_deltas": dict(self.critical_path_deltas),
        }


class FlowProfile:
    """Collects :class:`RungProfile` records during an improvement run."""

    def __init__(self) -> None:
        self.rungs: List[RungProfile] = []
        self._clock = time.perf_counter

    def begin(self) -> float:
        """Timestamp the start of a rung evaluation."""
        return self._clock()

    def record(self, rung: str, description: str, started: float,
               area_clbs: int, n_violations: int,
               critical_paths: Dict[str, int]) -> RungProfile:
        previous = self.rungs[-1] if self.rungs else None
        area_delta = (area_clbs - previous.area_clbs) if previous else 0
        path_deltas = {
            event: length - previous.critical_paths.get(event, length)
            for event, length in critical_paths.items()} if previous else {
            event: 0 for event in critical_paths}
        profile = RungProfile(
            rung=rung,
            description=description,
            wall_seconds=self._clock() - started,
            area_clbs=area_clbs,
            n_violations=n_violations,
            critical_paths=dict(critical_paths),
            area_delta=area_delta,
            critical_path_deltas=path_deltas,
        )
        self.rungs.append(profile)
        return profile

    # -- reading back -----------------------------------------------------
    @property
    def total_wall_seconds(self) -> float:
        return sum(rung.wall_seconds for rung in self.rungs)

    def to_json(self) -> Dict[str, Any]:
        return {
            "total_wall_seconds": round(self.total_wall_seconds, 6),
            "rungs": [rung.to_json() for rung in self.rungs],
        }

    def rows(self) -> List[Tuple[str, int, str, int, str]]:
        """(rung, area, Δarea, violations, wall ms) table rows."""
        rows = []
        for rung in self.rungs:
            delta = f"{rung.area_delta:+d}" if rung is not self.rungs[0] else ""
            rows.append((rung.rung, rung.area_clbs, delta,
                         rung.n_violations,
                         f"{rung.wall_seconds * 1e3:.1f}"))
        return rows
