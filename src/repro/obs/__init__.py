"""Observability: structured tracing, metrics, and exporters.

The measurement layer above the cycle-exact simulator::

    from repro.obs import Tracer, MetricsRegistry, write_chrome_trace

    tracer = Tracer()
    machine.attach_tracer(tracer)
    machine.run(stimulus)
    write_chrome_trace(tracer, "trace.json")   # open in ui.perfetto.dev

Design rule: instrumented components hold a ``tracer`` attribute that is
``None`` by default and every hook is guarded by ``if tracer is not None``,
so the disabled path allocates nothing and benchmark numbers are
byte-identical with tracing off.
"""

from repro.obs.causal import (
    CausalDag,
    DAG_VERSION,
    FarmLineage,
    dag_flow_events,
    load_dag,
    render_chain,
)
from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    merged_chrome_trace,
    metrics_summary,
    trace_summary,
    write_chrome_trace,
    write_merged_chrome_trace,
)
from repro.obs.farm import FarmSampler, ShardAggregator, render_dashboard, \
    sparkline
from repro.obs.flightrec import (
    FORENSICS_VERSION,
    SUPPORTED_FORENSICS_VERSIONS,
    FlightRecorder,
    load_forensics_bundle,
    render_forensics,
    write_forensics_bundle,
)
from repro.obs.flowprof import FlowProfile, RungProfile
from repro.obs.lineage import LineageTracker
from repro.obs.perfprof import (
    OPCODE_LEVEL,
    ROUTINE_LEVEL,
    STEP_PHASES,
    PerfProfiler,
)
from repro.obs.metrics import (
    DEFAULT_CYCLE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ScopedRegistry,
)
from repro.obs.tracer import COUNTER, INSTANT, SPAN, Tracer

__all__ = [
    "COUNTER", "CausalDag", "Counter", "DAG_VERSION",
    "DEFAULT_CYCLE_BUCKETS", "FORENSICS_VERSION", "FarmLineage",
    "FarmSampler",
    "ShardAggregator", "FlightRecorder", "FlowProfile", "Gauge",
    "Histogram", "INSTANT", "LineageTracker", "MetricsRegistry",
    "OPCODE_LEVEL",
    "PerfProfiler", "ROUTINE_LEVEL", "RungProfile",
    "STEP_PHASES", "SUPPORTED_FORENSICS_VERSIONS", "ScopedRegistry",
    "SPAN",
    "Tracer", "chrome_trace", "chrome_trace_events", "dag_flow_events",
    "load_dag",
    "load_forensics_bundle", "merged_chrome_trace", "metrics_summary",
    "render_chain",
    "render_dashboard", "render_forensics", "sparkline", "trace_summary",
    "write_chrome_trace", "write_forensics_bundle",
    "write_merged_chrome_trace",
]
