"""Trace and metrics exporters.

Two consumers:

* **Perfetto / chrome://tracing** — :func:`chrome_trace` renders a
  :class:`~repro.obs.tracer.Tracer`'s event stream as Chrome trace-event
  JSON (the ``{"traceEvents": [...]}`` object format).  Each tracer track
  becomes a named thread under one "PSCP machine" process, so the TEPs, the
  SLA, the scheduler and the condition-cache bus appear as parallel swim
  lanes.  One reference-clock cycle maps to one microsecond of trace time.

* **terminals** — :func:`trace_summary` aggregates the same stream into the
  plain-text table style of :mod:`repro.flow.report`.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import COUNTER, INSTANT, SPAN, Tracer

#: the single trace-event process all tracks live under
TRACE_PID = 1


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """The tracer's events in Chrome trace-event form (list of dicts)."""
    events: List[Dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": TRACE_PID, "tid": 0,
        "args": {"name": "PSCP machine"},
    }]
    for track_id, track_name in enumerate(tracer.track_names):
        events.append({
            "ph": "M", "name": "thread_name", "pid": TRACE_PID,
            "tid": track_id, "args": {"name": track_name}})
        events.append({
            "ph": "M", "name": "thread_sort_index", "pid": TRACE_PID,
            "tid": track_id, "args": {"sort_index": track_id}})
    for kind, track_id, name, ts, dur, args in tracer.events:
        if kind == SPAN:
            event = {"ph": "X", "name": name, "pid": TRACE_PID,
                     "tid": track_id, "ts": ts, "dur": dur}
        elif kind == INSTANT:
            event = {"ph": "i", "name": name, "pid": TRACE_PID,
                     "tid": track_id, "ts": ts, "s": "t"}
        elif kind == COUNTER:
            event = {"ph": "C", "name": name, "pid": TRACE_PID,
                     "tid": track_id, "ts": ts, "args": {name: dur}}
        else:  # pragma: no cover - tracer only emits the three kinds
            continue
        if args:
            event.setdefault("args", {}).update(args)
        events.append(event)
    return events


def chrome_trace(tracer: Tracer,
                 metrics: Optional[MetricsRegistry] = None) -> Dict[str, Any]:
    """The full trace JSON object (``traceEvents`` + metadata)."""
    document: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": dict(tracer.metadata),
    }
    if metrics is not None:
        document["otherData"]["metrics"] = metrics.collect()
    return document


def write_chrome_trace(tracer: Tracer, destination: Union[str, IO[str]],
                       metrics: Optional[MetricsRegistry] = None) -> None:
    """Serialize :func:`chrome_trace` to a path or file object."""
    document = chrome_trace(tracer, metrics)
    if hasattr(destination, "write"):
        json.dump(document, destination)
    else:
        with open(destination, "w") as handle:
            json.dump(document, handle)


def trace_summary(tracer: Tracer,
                  metrics: Optional[MetricsRegistry] = None) -> str:
    """Plain-text roll-up: per-track span totals, busiest span names, and
    (when given) the metrics registry."""
    from repro.flow.report import ascii_table  # deferred: avoids a cycle
    # through repro.flow.__init__, which imports modules that use repro.obs

    per_track: Dict[int, List[int]] = {}
    per_name: Dict[str, List[int]] = {}
    instants = 0
    for kind, track_id, name, _ts, dur, _args in tracer.events:
        if kind == SPAN:
            per_track.setdefault(track_id, [0, 0])
            per_name.setdefault(name, [0, 0])
            for bucket in (per_track[track_id], per_name[name]):
                bucket[0] += 1
                bucket[1] += dur
        elif kind == INSTANT:
            instants += 1

    parts: List[str] = []
    track_rows = [
        (tracer.track_names[track_id], count, cycles)
        for track_id, (count, cycles) in sorted(per_track.items())]
    parts.append(ascii_table(["Track", "Spans", "Busy cycles"], track_rows,
                             title="Trace summary (per track)"))
    name_rows = sorted(per_name.items(), key=lambda item: -item[1][1])[:12]
    parts.append(ascii_table(
        ["Span", "Count", "Total cycles"],
        [(name, count, cycles) for name, (count, cycles) in name_rows],
        title="Busiest spans"))
    parts.append(f"{len(tracer.events)} events total "
                 f"({instants} instants) on {len(tracer.track_names)} tracks")
    if metrics is not None:
        parts.append(metrics_summary(metrics))
    return "\n\n".join(parts)


def metrics_summary(metrics: MetricsRegistry) -> str:
    from repro.flow.report import ascii_table  # deferred (see trace_summary)

    return ascii_table(["Metric", "Type", "Value"], metrics.summary_rows(),
                       title="Metrics")
