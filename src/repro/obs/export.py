"""Trace and metrics exporters.

Two consumers:

* **Perfetto / chrome://tracing** — :func:`chrome_trace` renders a
  :class:`~repro.obs.tracer.Tracer`'s event stream as Chrome trace-event
  JSON (the ``{"traceEvents": [...]}`` object format).  Each tracer track
  becomes a named thread under one "PSCP machine" process, so the TEPs, the
  SLA, the scheduler and the condition-cache bus appear as parallel swim
  lanes.  One reference-clock cycle maps to one microsecond of trace time.

* **terminals** — :func:`trace_summary` aggregates the same stream into the
  plain-text table style of :mod:`repro.flow.report`.

Multi-machine traces
--------------------

A farm run produces one tracer per machine.  :func:`chrome_trace_events`
threads a ``pid`` through every event (defaulting to the historical single
``TRACE_PID``, which keeps single-machine output byte-identical), and
:func:`merged_chrome_trace` lays many tracers out as separate trace-event
*processes* — ``worker0`` is pid 2, ``worker1`` pid 3, ... — with the
supervisor's shed/restart/escalation instants on a dedicated pid-1 track,
so one Perfetto page shows the whole farm timeline.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import COUNTER, INSTANT, SPAN, Tracer

#: the default trace-event process single-machine tracks live under (the
#: supervisor claims it in merged farm traces; machines get pid 2, 3, ...)
TRACE_PID = 1

#: first pid handed to a machine in a merged farm trace
FIRST_MACHINE_PID = TRACE_PID + 1

#: pid of the profiler's self-profile process in a merged export — far
#: above any farm's machine pids so the processes never collide
SELF_PROFILE_PID = 1000


def chrome_trace_events(tracer: Tracer, pid: int = TRACE_PID,
                        process_name: str = "PSCP machine",
                        process_sort_index: Optional[int] = None
                        ) -> List[Dict[str, Any]]:
    """The tracer's events in Chrome trace-event form (list of dicts).

    *pid* names the trace-event process all this tracer's tracks live
    under; the default keeps the historical single-machine output
    byte-identical.  *process_sort_index* orders processes in the viewer
    (emitted only when given, again to preserve the default output).
    """
    events: List[Dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": process_name},
    }]
    if process_sort_index is not None:
        events.append({
            "ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
            "args": {"sort_index": process_sort_index}})
    for track_id, track_name in enumerate(tracer.track_names):
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid,
            "tid": track_id, "args": {"name": track_name}})
        events.append({
            "ph": "M", "name": "thread_sort_index", "pid": pid,
            "tid": track_id, "args": {"sort_index": track_id}})
    for kind, track_id, name, ts, dur, args in tracer.events:
        if kind == SPAN:
            event = {"ph": "X", "name": name, "pid": pid,
                     "tid": track_id, "ts": ts, "dur": dur}
        elif kind == INSTANT:
            event = {"ph": "i", "name": name, "pid": pid,
                     "tid": track_id, "ts": ts, "s": "t"}
        elif kind == COUNTER:
            event = {"ph": "C", "name": name, "pid": pid,
                     "tid": track_id, "ts": ts, "args": {name: dur}}
        else:  # pragma: no cover - tracer only emits the three kinds
            continue
        if args:
            event.setdefault("args", {}).update(args)
        events.append(event)
    return events


def chrome_trace(tracer: Tracer,
                 metrics: Optional[MetricsRegistry] = None,
                 profile=None) -> Dict[str, Any]:
    """The full trace JSON object (``traceEvents`` + metadata).

    *profile* — a :class:`~repro.obs.perfprof.PerfProfiler` — adds its
    self-profile tracks as a separate trace-event process (pid
    :data:`SELF_PROFILE_PID`), so the host-time attribution rides in the
    same Perfetto page as the simulated-cycle timeline.  ``None`` (the
    default) keeps the output byte-identical to the historical export.
    """
    document: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": dict(tracer.metadata),
    }
    if profile is not None:
        document["traceEvents"].extend(
            profile.chrome_trace_events(SELF_PROFILE_PID))
        document["otherData"]["self_profile"] = profile.to_json()
    if metrics is not None:
        document["otherData"]["metrics"] = metrics.collect()
    return document


def write_chrome_trace(tracer: Tracer, destination: Union[str, IO[str]],
                       metrics: Optional[MetricsRegistry] = None,
                       profile=None) -> None:
    """Serialize :func:`chrome_trace` to a path or file object."""
    document = chrome_trace(tracer, metrics, profile)
    if hasattr(destination, "write"):
        json.dump(document, destination)
    else:
        with open(destination, "w") as handle:
            json.dump(document, handle)


def merged_chrome_trace(tracers: Mapping[str, Tracer],
                        supervisor_events: Optional[
                            Iterable[Dict[str, Any]]] = None,
                        metrics: Optional[MetricsRegistry] = None,
                        dropped_events: int = 0,
                        flows: Optional[
                            Iterable[Dict[str, Any]]] = None
                        ) -> Dict[str, Any]:
    """One trace document for a whole farm.

    *tracers* maps machine names (``worker0``, ...) to their tracers; each
    becomes its own trace-event process (pid 2, 3, ... in mapping order) so
    the tracks of different machines never collide.  *supervisor_events* —
    dicts with ``tick``, ``kind`` and optional ``worker``/``detail`` keys,
    as recorded on :attr:`~repro.resil.supervisor.FarmLedger.timeline` —
    land as instants on a dedicated pid-1 "farm supervisor" track (one
    supervisor tick maps to one microsecond, like one machine cycle does).

    *flows* — ready-made Chrome flow-event dicts (``ph: "s"``/``"f"``
    pairs from :func:`repro.obs.causal.dag_flow_events`) — are appended
    verbatim, drawing the causal lineage as arrows across the farm's
    process tracks in Perfetto.  ``None`` (the default) keeps the output
    byte-identical to the historical export.

    The supervisor timeline is a bounded ring; when events aged out, pass
    the ledger's ``timeline_dropped`` as *dropped_events* — the trace then
    carries the truncation honestly (metadata plus a leading instant)
    instead of silently presenting a partial timeline as complete.
    """
    events: List[Dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": TRACE_PID, "tid": 0,
         "args": {"name": "farm supervisor"}},
        {"ph": "M", "name": "process_sort_index", "pid": TRACE_PID,
         "tid": 0, "args": {"sort_index": 0}},
        {"ph": "M", "name": "thread_name", "pid": TRACE_PID, "tid": 0,
         "args": {"name": "supervisor"}},
    ]
    for event in supervisor_events or ():
        args = {key: value for key, value in event.items()
                if key not in ("tick", "kind") and value is not None}
        record: Dict[str, Any] = {
            "ph": "i", "name": event["kind"], "pid": TRACE_PID, "tid": 0,
            "ts": event["tick"], "s": "t"}
        if args:
            record["args"] = args
        events.append(record)
    metadata: Dict[str, Any] = {"machines": {}}
    if dropped_events:
        metadata["supervisor_timeline_dropped"] = dropped_events
        events.append({
            "ph": "i", "name": "timeline-truncated", "pid": TRACE_PID,
            "tid": 0, "ts": 0, "s": "t",
            "args": {"dropped": dropped_events,
                     "detail": f"{dropped_events} oldest supervisor "
                               f"event(s) aged out of the ring"}})
    for index, (name, tracer) in enumerate(tracers.items()):
        pid = FIRST_MACHINE_PID + index
        events.extend(chrome_trace_events(
            tracer, pid=pid, process_name=name,
            process_sort_index=index + 1))
        metadata["machines"][name] = {"pid": pid,
                                      **dict(tracer.metadata)}
    if flows is not None:
        flow_events = list(flows)
        events.extend(flow_events)
        metadata["lineage_flow_events"] = len(flow_events)
    document: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": metadata,
    }
    if metrics is not None:
        document["otherData"]["metrics"] = metrics.collect()
    return document


def write_merged_chrome_trace(tracers: Mapping[str, Tracer],
                              destination: Union[str, IO[str]],
                              supervisor_events: Optional[
                                  Iterable[Dict[str, Any]]] = None,
                              metrics: Optional[MetricsRegistry] = None,
                              dropped_events: int = 0,
                              flows: Optional[
                                  Iterable[Dict[str, Any]]] = None) -> None:
    """Serialize :func:`merged_chrome_trace` to a path or file object."""
    document = merged_chrome_trace(tracers, supervisor_events, metrics,
                                   dropped_events=dropped_events,
                                   flows=flows)
    if hasattr(destination, "write"):
        json.dump(document, destination)
    else:
        with open(destination, "w") as handle:
            json.dump(document, handle)


def trace_summary(tracer: Tracer,
                  metrics: Optional[MetricsRegistry] = None) -> str:
    """Plain-text roll-up: per-track span totals, busiest span names, and
    (when given) the metrics registry."""
    from repro.flow.report import ascii_table  # deferred: avoids a cycle
    # through repro.flow.__init__, which imports modules that use repro.obs

    per_track: Dict[int, List[int]] = {}
    per_name: Dict[str, List[int]] = {}
    instants = 0
    for kind, track_id, name, _ts, dur, _args in tracer.events:
        if kind == SPAN:
            per_track.setdefault(track_id, [0, 0])
            per_name.setdefault(name, [0, 0])
            for bucket in (per_track[track_id], per_name[name]):
                bucket[0] += 1
                bucket[1] += dur
        elif kind == INSTANT:
            instants += 1

    parts: List[str] = []
    track_rows = [
        (tracer.track_names[track_id], count, cycles)
        for track_id, (count, cycles) in sorted(per_track.items())]
    parts.append(ascii_table(["Track", "Spans", "Busy cycles"], track_rows,
                             title="Trace summary (per track)"))
    name_rows = sorted(per_name.items(), key=lambda item: -item[1][1])[:12]
    parts.append(ascii_table(
        ["Span", "Count", "Total cycles"],
        [(name, count, cycles) for name, (count, cycles) in name_rows],
        title="Busiest spans"))
    parts.append(f"{len(tracer.events)} events total "
                 f"({instants} instants) on {len(tracer.track_names)} tracks")
    if metrics is not None:
        parts.append(metrics_summary(metrics))
    return "\n\n".join(parts)


def metrics_summary(metrics: MetricsRegistry) -> str:
    from repro.flow.report import ascii_table  # deferred (see trace_summary)

    return ascii_table(["Metric", "Type", "Value"], metrics.summary_rows(),
                       title="Metrics")
