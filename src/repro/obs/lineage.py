"""Causal event-lineage tracking: who caused what, cycle by cycle.

The tracer (:mod:`repro.obs.tracer`) answers *what happened when*; the
:class:`LineageTracker` answers *why*: every externally injected event
gets a stable ``ev:<origin>:<seq>`` identity, and the machine records the
causal hops it takes — latched into the CR, enabling a fired SOP term,
the transition's dispatch to a TEP, the routine's raised events and port
writes, a watchdog abort and its retry — as an append-only **hop log**.
Nothing is digested on the hot path: building the queryable causal DAG
(:class:`repro.obs.causal.CausalDag`) happens at query time, the same
lazy-digest discipline the :class:`~repro.obs.flightrec.FlightRecorder`
uses.

Zero overhead when detached
---------------------------

``PscpMachine.lineage`` is ``None`` by default and every hook is a
``None`` guard.  Attached, the cost per configuration cycle is one tuple
append plus two appends per dispatched transition — enforced by the
``lineage`` leg of ``scripts/check_overhead.py`` under the same hard <5%
paired budget as the recorder and profiler legs.

Identity scheme
---------------

* ``ev:<origin>:<seq>`` — an injected event instance.  The farm stamps
  ``origin``/``seq`` from the :class:`~repro.resil.queue.WorkItem` trace
  context so the id is stable across processes, worker death and
  redispatch; stand-alone drivers get ``ev:<tracker-origin>:<n>`` from a
  local counter.  Timer-driven stimuli use origin ``timer``.
* ``latch:<cycle>:<name>`` — the event was sampled into the CR.
* ``fire:<cycle>:t<index>`` — transition *index* was dispatched.
* ``raise:<cycle>:t<index>:<name>`` — the routine raised *name*.
* ``port:<cycle>:t<index>:<addr>:<k>`` — the routine's *k*-th port
  access in that dispatch wrote ``addr``.

All ids derive from ``(origin, seq, cycle, transition index, name)``
only — no ambient randomness or wall clock — so two same-seed runs
produce byte-identical DAGs.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

#: hop tags (first element of every hop tuple)
INJECT = "inject"
DISPATCH = "dispatch"
STEP = "step"

#: how many digested hops :meth:`LineageTracker.tail` keeps for forensics
DEFAULT_TAIL = 64


class LineageTracker:
    """One machine's append-only causal hop log.

    Attach with :meth:`PscpMachine.attach_lineage`.  The machine appends
    compact tuples; :meth:`dag` digests them into a
    :class:`~repro.obs.causal.CausalDag`, :meth:`drain` ships the digest
    incrementally (the shard-farm worker does this per reply), and
    :meth:`tail` keeps the last few digested hops for forensics bundles.
    """

    __slots__ = ("origin", "hops", "_seq", "_digester", "_tail",
                 "_transitions", "_event_index_to_name", "chart")

    def __init__(self, origin: str = "m0",
                 tail_limit: int = DEFAULT_TAIL) -> None:
        self.origin = origin
        #: the hot-path hop log; cleared on every ingest
        self.hops: List[Tuple] = []
        self._seq = 0
        self._digester: Optional[_Digester] = None
        self._tail: Deque[Dict[str, Any]] = deque(maxlen=tail_limit)
        self._transitions = None
        self._event_index_to_name: Dict[int, str] = {}
        self.chart = None

    # -- wiring ------------------------------------------------------------
    def bind(self, machine) -> None:
        """Called by :meth:`PscpMachine.attach_lineage`."""
        self.chart = machine.chart
        self._transitions = machine.chart.transitions
        self._event_index_to_name = machine._event_index_to_name
        self._digester = _Digester(self._transitions,
                                   self._event_index_to_name, self._tail)

    # -- injection identities ----------------------------------------------
    def note_injection(self, name: str,
                       event_id: Optional[str] = None) -> str:
        """Declare one injected event instance before stepping the machine.

        *event_id* carries a cross-process trace context (``ev:stream:12``
        from a :class:`~repro.resil.queue.WorkItem`); when omitted a local
        ``ev:<origin>:<n>`` id is minted.  Returns the id.  Events stepped
        without a declared injection still appear in the DAG (their latch
        node is a root) — declaring simply names the source.
        """
        if event_id is None:
            event_id = f"ev:{self.origin}:{self._seq}"
            self._seq += 1
        self.hops.append((INJECT, event_id, name))
        return event_id

    # -- machine hooks (the hot path) --------------------------------------
    def on_dispatch(self, cycle: int, index: int, completed: bool,
                    events_raised, port_accesses) -> None:
        """One TAT dispatch retired (or aborted).  *events_raised* is the
        executor's per-dispatch set (rebound, never mutated, so storing
        the reference is safe); *port_accesses* is the slice of the port
        bus access log this dispatch appended."""
        self.hops.append((DISPATCH, cycle, index, completed,
                          events_raised, port_accesses))

    def on_step(self, cycle: int, step) -> None:
        """The configuration cycle completed; *step* is its MachineStep."""
        self.hops.append((STEP, cycle, step))

    # -- digestion ---------------------------------------------------------
    def _ingest(self) -> None:
        if not self.hops:
            return
        hops, self.hops = self.hops, []
        self._require_digester().feed(hops)

    def _require_digester(self) -> "_Digester":
        if self._digester is None:
            # unbound tracker (tests feeding hops by hand): digest with
            # no chart knowledge — enable edges simply cannot be derived
            self._digester = _Digester(None, self._event_index_to_name,
                                       self._tail)
        return self._digester

    def dag(self):
        """The full causal DAG digested so far (a
        :class:`~repro.obs.causal.CausalDag`)."""
        self._ingest()
        return self._require_digester().dag

    def drain(self) -> Dict[str, Any]:
        """Digest pending hops and return only the *new* nodes and edges
        since the previous drain — the shard-farm wire payload."""
        digester = self._require_digester()
        nodes_before = len(digester.dag.nodes)
        edges_before = len(digester.dag.edges)
        self._ingest()
        return digester.dag.slice_json(nodes_before, edges_before)

    def tail(self, k: int = 16) -> List[Dict[str, Any]]:
        """The last *k* digested hops, JSON-ready (forensics bundles)."""
        self._ingest()
        items = list(self._tail)
        return items[-k:] if k < len(items) else items


# ---------------------------------------------------------------------------
# the digester: hop log -> causal DAG (query time, never the hot path)
# ---------------------------------------------------------------------------

class _Digester:
    """Replays a hop log into a CausalDag, carrying cross-cycle state
    (pending injections, one-cycle raised events, open watchdog aborts)
    so incremental drains stitch seamlessly."""

    def __init__(self, transitions, event_index_to_name: Dict[int, str],
                 tail: Deque[Dict[str, Any]]) -> None:
        from repro.obs.causal import CausalDag

        self.dag = CausalDag()
        self._transitions = transitions
        self._names = event_index_to_name
        self._tail = tail
        #: event name -> injected ids awaiting their latch
        self._pending_inject: Dict[str, List[str]] = {}
        #: event name -> raise node ids from the previous cycle
        self._pending_raise: Dict[str, List[str]] = {}
        #: transition index -> fire node id of the open (aborted) dispatch
        self._open_abort: Dict[int, str] = {}
        #: dispatch hops of the cycle whose step hop has not arrived yet
        self._cycle_dispatches: List[Tuple] = []

    def feed(self, hops: List[Tuple]) -> None:
        for hop in hops:
            tag = hop[0]
            if tag == DISPATCH:
                self._cycle_dispatches.append(hop)
            elif tag == STEP:
                self._feed_step(hop[1], hop[2])
            else:  # INJECT
                _, event_id, name = hop
                self.dag.add_node(event_id, "inject", event=name)
                self._pending_inject.setdefault(name, []).append(event_id)
                self._tail.append({"kind": INJECT, "id": event_id,
                                   "event": name})

    def _feed_step(self, cycle: int, step) -> None:
        dag = self.dag
        sampled = sorted(step.events_sampled)
        # latch nodes, fed by pending injections and last cycle's raises
        latch_of: Dict[str, str] = {}
        for name in sampled:
            latch_id = f"latch:{cycle}:{name}"
            latch_of[name] = latch_id
            dag.add_node(latch_id, "latch", cycle=cycle, event=name)
            for source in self._pending_inject.pop(name, ()):
                dag.add_edge(source, latch_id, "inject")
            for source in self._pending_raise.get(name, ()):
                dag.add_edge(source, latch_id, "propagate")
        # raised events live exactly one cycle (CR resets the event part)
        self._pending_raise = {}

        consumed: set = set()
        raised_forward: Dict[str, List[str]] = {}
        dispatch_digests: List[Dict[str, Any]] = []
        for _, dcycle, index, completed, events_raised, accesses \
                in self._cycle_dispatches:
            fire_id = f"fire:{dcycle}:t{index}"
            dag.add_node(fire_id, "fire", cycle=dcycle, transition=index,
                         completed=completed)
            transition = (self._transitions[index]
                          if self._transitions is not None else None)
            for name in sampled:
                if transition is not None and transition.consumes(name):
                    dag.add_edge(latch_of[name], fire_id, "enable")
                    consumed.add(name)
            previous = self._open_abort.pop(index, None)
            if previous is not None:
                dag.add_edge(previous, fire_id, "retry")
            if not completed:
                self._open_abort[index] = fire_id
            raised_names: List[str] = []
            if completed:
                for event_index in sorted(events_raised):
                    name = self._names.get(event_index,
                                           f"event{event_index}")
                    raise_id = f"raise:{dcycle}:t{index}:{name}"
                    dag.add_node(raise_id, "raise", cycle=dcycle,
                                 transition=index, event=name)
                    dag.add_edge(fire_id, raise_id, "raise")
                    raised_forward.setdefault(name, []).append(raise_id)
                    raised_names.append(name)
            writes = 0
            for k, access in enumerate(accesses):
                kind, addr, value = access
                if kind != "w":
                    continue
                port_id = f"port:{dcycle}:t{index}:{addr}:{k}"
                dag.add_node(port_id, "port", cycle=dcycle,
                             transition=index, addr=addr, value=value)
                dag.add_edge(fire_id, port_id, "write")
                writes += 1
            dispatch_digests.append({
                "kind": DISPATCH, "cycle": dcycle, "transition": index,
                "completed": completed, "raised": raised_names,
                "writes": writes})
        self._cycle_dispatches = []
        self._pending_raise = raised_forward

        # terminal attribution on latches: consumed by a fired transition
        # or dropped when the CR resets at end of cycle
        for name in sampled:
            dag.nodes[latch_of[name]]["outcome"] = (
                "consumed" if name in consumed else "dropped")
        self._tail.extend(dispatch_digests)
        self._tail.append({"kind": STEP, "cycle": cycle,
                           "sampled": sampled,
                           "raised": sorted(step.events_raised),
                           "fired": [t.index for t in step.fired]})
