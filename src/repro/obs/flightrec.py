"""An always-on flight recorder for post-mortem forensics.

Where the :class:`~repro.obs.tracer.Tracer` records *everything* (and is
therefore attached only when someone is watching), the
:class:`FlightRecorder` is designed to run **always**, even in production
farms: a bounded ring buffer holding the last N configuration-cycle
digests plus checkpoint and escalation marks.  When a machine escalates an
unrecoverable fault, the ring is dumped as a versioned **forensics
bundle** — the reconstructable execution history Harel-style reactive
debugging needs, at near-zero steady-state cost.

Near-zero overhead
------------------

The hot path appends one tuple per configuration cycle, referencing the
:class:`~repro.pscp.machine.MachineStep` the machine built anyway — no
digesting, no string formatting, no dict allocation.  Digesting into
JSON-ready form happens only when a bundle is dumped or the ring is
captured into a snapshot.  ``scripts/check_overhead.py`` enforces the
budget: a recorder-attached, tracing-off run must stay within the same
wall-clock envelope as an uninstrumented one.

The ring participates in checkpoint/restore: ``snapshot_state`` /
``restore_state`` round-trip the digested ring through
:class:`~repro.resil.snapshot.MachineSnapshot` attachment state, so a
restored machine's recorder continues with the pre-snapshot history intact
and a restore-then-escalate still produces a complete bundle.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Union

#: bump when the bundle layout changes; the pretty-printer refuses others.
#: v1 (PR 4) had no ``lineage`` key; v2 adds the escalating machine's
#: last-K causal lineage hops.  Loading stays compatible with every
#: version in :data:`SUPPORTED_FORENSICS_VERSIONS`.
FORENSICS_VERSION = 2
SUPPORTED_FORENSICS_VERSIONS = (1, 2)

#: ring entry kinds
STEP = "step"
CHECKPOINT = "checkpoint"
ESCALATION = "escalation"


class FlightRecorder:
    """A bounded ring of configuration-cycle digests.

    Attach with :meth:`PscpMachine.attach_recorder`; the machine then calls
    :meth:`record_step` once per cycle.  Checkpoint and escalation marks
    arrive from the supervision layer (:meth:`note_checkpoint`,
    :meth:`note_escalation`).  ``capacity`` bounds memory: the ring keeps
    the last *capacity* entries, and the bundle reports how many older
    entries were dropped.
    """

    __slots__ = ("capacity", "_ring", "_head", "recorded",
                 "last_checkpoint", "last_escalation", "machine")

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        #: fixed-size ring written round-robin: one preallocated list plus
        #: an integer head keeps the hot path to an index store
        self._ring: List[Any] = [None] * capacity
        self._head = 0
        self.recorded = 0
        self.last_checkpoint: Optional[str] = None
        self.last_escalation: Optional[Dict[str, Any]] = None
        self.machine = None

    # -- wiring ------------------------------------------------------------
    def bind(self, machine) -> None:
        """Called by :meth:`PscpMachine.attach_recorder`."""
        self.machine = machine

    # -- the hot path ------------------------------------------------------
    def record_step(self, cycle: int, step) -> None:
        """Append one cycle digest (a reference, digested lazily)."""
        head = self._head
        self._ring[head] = (cycle, step)
        head += 1
        self._head = 0 if head == self.capacity else head
        self.recorded += 1

    # -- marks -------------------------------------------------------------
    def note_checkpoint(self, cycle: int, ref: str) -> None:
        """A checkpoint was taken at *cycle*; *ref* names it."""
        self.last_checkpoint = ref
        self._append_entry({"kind": CHECKPOINT, "cycle": cycle, "ref": ref})

    def note_escalation(self, cycle: int, kind: str, detail: str) -> None:
        """An unrecoverable fault escalated out of the machine."""
        self.last_escalation = {"kind": kind, "cycle": cycle,
                                "detail": detail}
        self._append_entry({"kind": ESCALATION, "cycle": cycle,
                            "escalation": kind, "detail": detail})

    def _append_entry(self, entry: Dict[str, Any]) -> None:
        head = self._head
        self._ring[head] = entry
        head += 1
        self._head = 0 if head == self.capacity else head
        self.recorded += 1

    # -- reading back ------------------------------------------------------
    def __len__(self) -> int:
        return min(self.recorded, self.capacity)

    @property
    def dropped(self) -> int:
        """Entries that aged out of the ring."""
        return max(0, self.recorded - self.capacity)

    def entries(self) -> List[Dict[str, Any]]:
        """The ring contents, oldest first, as JSON-ready digests."""
        length = len(self)
        start = (self._head - length) % self.capacity
        out: List[Dict[str, Any]] = []
        for offset in range(length):
            out.append(_digest(self._ring[(start + offset) % self.capacity]))
        return out

    def step_entries(self) -> List[Dict[str, Any]]:
        return [e for e in self.entries() if e["kind"] == STEP]

    def clear(self) -> None:
        self._ring = [None] * self.capacity
        self._head = 0
        self.recorded = 0
        self.last_checkpoint = None
        self.last_escalation = None

    # -- checkpoint/restore ------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """JSON-ready state for ``MachineSnapshot`` attachment capture."""
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "entries": self.entries(),
            "last_checkpoint": self.last_checkpoint,
            "last_escalation": self.last_escalation,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Load a :meth:`snapshot_state` document back (digested entries
        re-digest to identical JSON, so snapshot round-trips stay
        byte-identical)."""
        self.capacity = state["capacity"]
        entries = list(state["entries"])[-self.capacity:]
        self._ring = [None] * self.capacity
        for index, entry in enumerate(entries):
            self._ring[index] = entry
        self._head = len(entries) % self.capacity
        self.recorded = state["recorded"]
        self.last_checkpoint = state["last_checkpoint"]
        self.last_escalation = state["last_escalation"]

    # -- the bundle --------------------------------------------------------
    def forensics_bundle(self, cause: Dict[str, Any],
                         worker: Optional[str] = None,
                         metrics_delta: Optional[Dict[str, Any]] = None
                         ) -> Dict[str, Any]:
        """Dump the ring as a versioned post-mortem document.

        *cause* describes why the dump happened (escalation detail,
        permanent failure, an operator's request); *metrics_delta* carries
        whatever progress counters the caller tracked since the last
        checkpoint.  When the machine also carries a
        :class:`~repro.obs.lineage.LineageTracker`, the bundle includes
        its last-K causal hops (``lineage``, v2) so the post-mortem shows
        *why* the escalating cycles happened, not just what they did.
        """
        lineage_tail = None
        if self.machine is not None \
                and getattr(self.machine, "lineage", None) is not None:
            lineage_tail = self.machine.lineage.tail(16)
        bundle: Dict[str, Any] = {
            "version": FORENSICS_VERSION,
            "worker": worker,
            "cause": cause,
            "ring": self.entries(),
            "recorded": self.recorded,
            "dropped": self.dropped,
            "capacity": self.capacity,
            "last_checkpoint": self.last_checkpoint,
            "last_escalation": self.last_escalation,
            "metrics_delta": metrics_delta,
            "lineage": lineage_tail,
        }
        if self.machine is not None:
            bundle["machine"] = {
                "chart": self.machine.chart.name,
                "arch": self.machine.arch.describe(),
                "cycle_count": self.machine.cycle_count,
                "time": self.machine.time,
            }
        else:
            bundle["machine"] = None
        return bundle


# ---------------------------------------------------------------------------
# digesting
# ---------------------------------------------------------------------------

def _digest(entry) -> Dict[str, Any]:
    """Normalize one ring entry to its canonical JSON-ready form.

    Hot-path step entries are ``(cycle, MachineStep)`` tuples; marks and
    restored entries are already dicts and pass through unchanged (so a
    snapshot round trip re-digests to identical JSON).
    """
    if isinstance(entry, dict):
        return entry
    cycle, step = entry
    return {
        "kind": STEP,
        "cycle": cycle,
        "start": step.start_time,
        "length": step.cycle_length,
        "fired": [t.index for t in step.fired],
        "sampled": sorted(step.events_sampled),
        "raised": sorted(step.events_raised),
        "faults": [f.describe() for f in step.faults],
        "recoveries": [r.describe() for r in step.recoveries],
    }


# ---------------------------------------------------------------------------
# bundle I/O and rendering
# ---------------------------------------------------------------------------

def write_forensics_bundle(bundle: Dict[str, Any],
                           destination: Union[str, IO[str]]) -> None:
    """Serialize a bundle to a path or file object (canonical key order).

    Path writes are **atomic** (temp file + ``os.replace``): a process
    killed mid-dump leaves either the previous bundle or none, never a
    torn JSON file.
    """
    if hasattr(destination, "write"):
        json.dump(bundle, destination, indent=2, sort_keys=True)
        return
    import os

    tmp = f"{destination}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as handle:
            json.dump(bundle, handle, indent=2, sort_keys=True)
        os.replace(tmp, destination)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_forensics_bundle(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        try:
            bundle = json.load(handle)
        except json.JSONDecodeError as exc:
            # a torn or truncated file gets an attributed error, not a
            # bare JSONDecodeError the caller cannot act on
            raise ValueError(
                f"forensics bundle {path!r} is truncated or corrupt "
                f"(not valid JSON at line {exc.lineno} column {exc.colno}): "
                f"{exc.msg}") from None
    version = bundle.get("version") if isinstance(bundle, dict) else None
    if version not in SUPPORTED_FORENSICS_VERSIONS:
        supported = "/".join(str(v) for v in SUPPORTED_FORENSICS_VERSIONS)
        raise ValueError(
            f"not a version-{supported} forensics bundle "
            f"(found version {version!r})")
    if version < FORENSICS_VERSION:
        # pre-PR9 bundles carry no lineage tail; normalize the shape so
        # every consumer sees one layout
        bundle.setdefault("lineage", None)
    return bundle


def render_forensics(bundle: Dict[str, Any]) -> str:
    """The ``repro forensics`` pretty-printer: cause, context, ring tail."""
    from repro.flow.report import ascii_table  # deferred: avoids a cycle

    parts: List[str] = []
    cause = bundle.get("cause") or {}
    head = ["Forensics bundle"
            + (f" from {bundle['worker']}" if bundle.get("worker") else "")]
    head.append("  cause: " + ", ".join(
        f"{key}={cause[key]}" for key in sorted(cause)))
    machine = bundle.get("machine")
    if machine:
        head.append(f"  machine: chart {machine['chart']!r} on "
                    f"{machine['arch']} at cycle {machine['cycle_count']} "
                    f"(time {machine['time']})")
    head.append(f"  ring: {len(bundle['ring'])} of {bundle['recorded']} "
                f"entries recorded ({bundle['dropped']} dropped, "
                f"capacity {bundle['capacity']})")
    if bundle.get("last_checkpoint"):
        head.append(f"  last checkpoint: {bundle['last_checkpoint']}")
    delta = bundle.get("metrics_delta")
    if delta:
        head.append("  since checkpoint: " + ", ".join(
            f"{key}={delta[key]}" for key in sorted(delta)))
    parts.append("\n".join(head))

    def clip(text: str, width: int = 96) -> str:
        return text if len(text) <= width else text[:width - 3] + "..."

    rows = []
    for entry in bundle["ring"]:
        if entry["kind"] == STEP:
            what = (f"fired {entry['fired']}" if entry["fired"] else "idle")
            extra = []
            if entry["sampled"]:
                extra.append("in " + "+".join(entry["sampled"]))
            if entry["raised"]:
                extra.append("out " + "+".join(entry["raised"]))
            extra.extend(entry["faults"])
            extra.extend(entry["recoveries"])
            rows.append((entry["cycle"], "step", clip(
                what + (": " + "; ".join(extra) if extra else ""))))
        elif entry["kind"] == CHECKPOINT:
            rows.append((entry["cycle"], "checkpoint", entry["ref"]))
        else:
            rows.append((entry["cycle"], "escalation", clip(
                f"{entry['escalation']}: {entry['detail']}")))
    parts.append(ascii_table(["Cycle", "Kind", "What"], rows,
                             title="Flight-recorder ring (oldest first)"))
    lineage = bundle.get("lineage")
    if lineage:
        hop_rows = []
        for hop in lineage:
            if hop.get("kind") == "inject":
                hop_rows.append(("-", "inject",
                                 f"{hop['event']} as {hop['id']}"))
            elif hop.get("kind") == "dispatch":
                what = (f"t{hop['transition']} "
                        + ("ok" if hop.get("completed", True)
                           else "aborted"))
                if hop.get("raised"):
                    what += " raised " + "+".join(hop["raised"])
                if hop.get("writes"):
                    what += f" ({hop['writes']} port write(s))"
                hop_rows.append((hop["cycle"], "dispatch", clip(what)))
            else:
                hop_rows.append((hop.get("cycle", "-"), "cycle", clip(
                    "in " + "+".join(hop.get("sampled", [])) + " fired "
                    + str(hop.get("fired", [])))))
        parts.append(ascii_table(["Cycle", "Hop", "What"], hop_rows,
                                 title="Causal lineage tail (oldest first)"))
    return "\n\n".join(parts)
