"""Farm-wide observability: the time-series sampler and the dashboard.

The supervisor's :class:`~repro.resil.supervisor.FarmReport` is an
end-of-run summary; the :class:`FarmSampler` is its time axis.  Hooked into
:meth:`Supervisor.run`, it snapshots the farm every *every* supervisor
ticks — farm-level counters, per-worker gauges, and the dispatch-latency
distribution digests — into an in-memory series with CSV/JSON export.
Every sample carries the conservation identities, so the no-silent-loss
ledger can be asserted *at every tick*, not just at the end.

:func:`render_dashboard` turns the series plus the live worker states into
the ``repro serve --dashboard`` text dashboard: sparkline strips for the
farm-level series and a worker table with states, latency digests and the
last escalation.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Sequence, Union

#: the sparkline ramp, lowest to highest
_SPARK = "▁▂▃▄▅▆▇█"


class FarmSampler:
    """Per-tick farm time series with bounded memory.

    ``every`` is the sampling period in supervisor ticks; ``limit`` (when
    set) keeps only the most recent samples, ring-buffer style, so an
    unbounded soak cannot grow without bound.
    """

    def __init__(self, every: int = 1, limit: Optional[int] = None) -> None:
        if every < 1:
            raise ValueError("sampling period must be >= 1 tick")
        if limit is not None and limit < 1:
            raise ValueError("sample limit must be >= 1")
        self.every = every
        self.limit = limit
        self.samples: List[Dict[str, Any]] = []
        self.dropped = 0

    # -- sampling ----------------------------------------------------------
    def on_tick(self, supervisor, tick: int) -> None:
        """Called by the supervisor at the end of every tick."""
        if tick % self.every:
            return
        self.samples.append(self.sample(supervisor, tick))
        if self.limit is not None and len(self.samples) > self.limit:
            del self.samples[0]
            self.dropped += 1

    def sample(self, supervisor, tick: int) -> Dict[str, Any]:
        """One snapshot of the farm (does not append; ``on_tick`` does)."""
        ledger = supervisor.ledger
        workers = []
        for worker in supervisor.workers:
            workers.append({
                "name": worker.name,
                "state": worker.state,
                "queue_depth": len(worker.queue),
                "processed": worker.processed,
                "restarts": worker.restarts_used,
                "breaker": worker.breaker.state,
                "latency": worker.latency.summary(),
            })
        return {
            "tick": tick,
            "submitted": ledger.submitted,
            "accepted": ledger.accepted,
            "processed": ledger.processed,
            "rejected": ledger.rejected_total,
            "shed": ledger.shed_total,
            "in_flight": sum(len(w.queue) for w in supervisor.workers),
            "escalations": ledger.escalations,
            "restarts": ledger.restarts,
            "permanent_failures": ledger.permanent_failures,
            "checkpoints": ledger.checkpoints,
            "workers": workers,
        }

    # -- reading back ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.samples)

    def series(self, field: str) -> List[Any]:
        """One farm-level column over time (``queue depth`` etc.)."""
        return [sample[field] for sample in self.samples]

    def worker_series(self, name: str, field: str) -> List[Any]:
        out = []
        for sample in self.samples:
            for worker in sample["workers"]:
                if worker["name"] == name:
                    out.append(worker[field])
                    break
        return out

    def conservation(self) -> List[str]:
        """Ledger-identity violations across **every** sample; empty when
        the farm never lost an item silently at any sampled tick."""
        problems: List[str] = []
        for sample in self.samples:
            if sample["submitted"] != (sample["accepted"]
                                       + sample["rejected"]):
                problems.append(
                    f"tick {sample['tick']}: submitted "
                    f"{sample['submitted']} != accepted "
                    f"{sample['accepted']} + rejected {sample['rejected']}")
            if sample["accepted"] != (sample["processed"] + sample["shed"]
                                      + sample["in_flight"]):
                problems.append(
                    f"tick {sample['tick']}: accepted {sample['accepted']} "
                    f"!= processed {sample['processed']} + shed "
                    f"{sample['shed']} + in-flight {sample['in_flight']}")
        return problems

    # -- export ------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        return {
            "every": self.every,
            "dropped": self.dropped,
            "samples": self.samples,
        }

    def to_csv(self) -> str:
        """Flat CSV: farm columns plus ``<worker>.queue_depth`` /
        ``.processed`` / ``.latency_p95`` per worker."""
        if not self.samples:
            return ""
        farm_fields = ["tick", "submitted", "accepted", "processed",
                       "rejected", "shed", "in_flight", "escalations",
                       "restarts", "permanent_failures", "checkpoints"]
        worker_names = [w["name"] for w in self.samples[0]["workers"]]
        header = list(farm_fields)
        for name in worker_names:
            header += [f"{name}.queue_depth", f"{name}.processed",
                       f"{name}.restarts", f"{name}.latency_p95"]
        lines = [",".join(header)]
        for sample in self.samples:
            row = [str(sample[field]) for field in farm_fields]
            by_name = {w["name"]: w for w in sample["workers"]}
            for name in worker_names:
                worker = by_name[name]
                p95 = worker["latency"]["p95"]
                row += [str(worker["queue_depth"]), str(worker["processed"]),
                        str(worker["restarts"]),
                        "" if p95 is None else str(p95)]
            lines.append(",".join(row))
        return "\n".join(lines) + "\n"

    def write_csv(self, destination: Union[str, IO[str]]) -> None:
        text = self.to_csv()
        if hasattr(destination, "write"):
            destination.write(text)
        else:
            with open(destination, "w") as handle:
                handle.write(text)

    def write_json(self, destination: Union[str, IO[str]]) -> None:
        if hasattr(destination, "write"):
            json.dump(self.to_json(), destination, indent=2)
        else:
            with open(destination, "w") as handle:
                json.dump(self.to_json(), handle, indent=2)


class ShardAggregator:
    """The distributed farm's time series: per-shard rows merged under the
    global ledger counters.

    The :class:`~repro.resil.shardfarm.ShardSupervisor` cannot reach into
    its workers' memory the way the in-process :class:`FarmSampler` does —
    shards live in other OS processes and report through their dispatch
    replies.  The supervisor therefore feeds this aggregator what it
    *knows*: its own conservation counters plus the last-reported row per
    shard.  Every sample still carries both distributed conservation
    identities (``submitted = accepted + rejected + in-dispatch`` and
    ``accepted = processed + shed + queued``), so the no-silent-loss
    ledger is assertable at every sampled tick even while a worker
    process is dead or mid-failover.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError("sample limit must be >= 1")
        self.limit = limit
        self.samples: List[Dict[str, Any]] = []
        self.dropped = 0

    def on_tick(self, tick: int, counters: Dict[str, int],
                shards: Dict[str, Dict[str, Any]]) -> None:
        sample = dict(counters)
        sample["tick"] = tick
        sample["shards"] = {name: dict(row)
                            for name, row in sorted(shards.items())}
        self.samples.append(sample)
        if self.limit is not None and len(self.samples) > self.limit:
            del self.samples[0]
            self.dropped += 1

    def __len__(self) -> int:
        return len(self.samples)

    def series(self, field: str) -> List[Any]:
        return [sample[field] for sample in self.samples]

    def shard_series(self, name: str, field: str) -> List[Any]:
        return [sample["shards"][name][field]
                for sample in self.samples if name in sample["shards"]]

    def conservation(self) -> List[str]:
        """Distributed ledger-identity violations across every sample."""
        problems: List[str] = []
        for sample in self.samples:
            if sample["submitted"] != (sample["accepted"]
                                       + sample["rejected"]
                                       + sample["in_dispatch"]):
                problems.append(
                    f"tick {sample['tick']}: submitted "
                    f"{sample['submitted']} != accepted "
                    f"{sample['accepted']} + rejected "
                    f"{sample['rejected']} + in-dispatch "
                    f"{sample['in_dispatch']}")
            if sample["accepted"] != (sample["processed"] + sample["shed"]
                                      + sample["queued"]):
                problems.append(
                    f"tick {sample['tick']}: accepted {sample['accepted']} "
                    f"!= processed {sample['processed']} + shed "
                    f"{sample['shed']} + queued {sample['queued']}")
        return problems

    def to_json(self) -> Dict[str, Any]:
        return {"dropped": self.dropped, "samples": self.samples}

    def write_json(self, destination: Union[str, IO[str]]) -> None:
        if hasattr(destination, "write"):
            json.dump(self.to_json(), destination, indent=2)
        else:
            with open(destination, "w") as handle:
                json.dump(self.to_json(), handle, indent=2)


# ---------------------------------------------------------------------------
# the text dashboard
# ---------------------------------------------------------------------------

def sparkline(values: Sequence[float], width: int = 48) -> str:
    """Render *values* as a fixed-width sparkline strip (mean-bucketed
    when longer than *width*; padded when shorter)."""
    values = [0 if v is None else v for v in values]
    if not values:
        return " " * width
    if len(values) > width:
        bucketed = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max(lo + 1, (i + 1) * len(values) // width)
            chunk = values[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        values = bucketed
    top = max(values)
    if top <= 0:
        strip = _SPARK[0] * len(values)
    else:
        strip = "".join(
            _SPARK[min(len(_SPARK) - 1,
                       int(v / top * (len(_SPARK) - 1) + 0.5))]
            for v in values)
    return strip.ljust(width)


def _rate(series: Sequence[int]) -> List[int]:
    """Per-sample deltas of a cumulative series."""
    out = []
    previous = 0
    for value in series:
        out.append(value - previous)
        previous = value
    return out


def render_dashboard(supervisor, sampler: FarmSampler) -> str:
    """The ``repro serve --dashboard`` view: farm sparklines + workers."""
    from repro.flow.report import ascii_table  # deferred: avoids a cycle

    ledger = supervisor.ledger
    lines = [
        f"Farm dashboard — tick {supervisor.tick}: "
        f"{ledger.submitted} submitted, {ledger.processed} processed, "
        f"{ledger.rejected_total} rejected, {ledger.shed_total} shed, "
        f"{ledger.restarts} restart(s), "
        f"{ledger.escalations} escalation(s)",
        f"  {len(sampler)} sample(s) every {sampler.every} tick(s)"
        + (f", {sampler.dropped} aged out" if sampler.dropped else ""),
        "",
    ]
    if sampler.samples:
        in_flight = sampler.series("in_flight")
        throughput = _rate(sampler.series("processed"))
        restarts = _rate(sampler.series("restarts"))
        p95 = [max((w["latency"]["p95"] or 0 for w in s["workers"]),
                   default=0) for s in sampler.samples]
        for label, series in (("in-flight", in_flight),
                              ("throughput", throughput),
                              ("restarts", restarts),
                              ("worst p95", p95)):
            peak = max((0 if v is None else v) for v in series)
            lines.append(f"  {label:<11} {sparkline(series)}  peak {peak}")
        lines.append("")
    rows = []
    for worker in supervisor.workers:
        digest = worker.latency.summary()
        latency = ("-" if not digest["count"] else
                   f"p50={digest['p50']} p95={digest['p95']} "
                   f"p99={digest['p99']}")
        rows.append((worker.name, worker.state, worker.processed,
                     len(worker.queue), worker.restarts_used,
                     worker.breaker.state, latency,
                     worker.last_escalation or "-"))
    lines.append(ascii_table(
        ["Worker", "State", "Processed", "Queue", "Restarts", "Breaker",
         "Latency (ticks)", "Last escalation"],
        rows, title="Workers"))
    return "\n".join(lines)
