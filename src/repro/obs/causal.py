"""The causal DAG: query layer over lineage hops, farm-wide stitching.

:class:`CausalDag` is the queryable artifact the
:class:`~repro.obs.lineage.LineageTracker` digests into: nodes are event
instances, latches, dispatches, raises, port writes and farm lifecycle
marks; edges are typed causal hops.  Serialization is canonical (sorted
nodes and edges, ``sort_keys`` JSON) so two same-seed runs produce
byte-identical documents — the property the CI lineage-soak ``cmp``\\ s.

:class:`FarmLineage` is the supervisor-side recorder: it stamps every
:class:`~repro.resil.queue.WorkItem` with a ``ev:<origin>:<seq>`` trace
context, records routing, redispatch after worker death, standby
promotion, shedding and rejection as DAG nodes, and merges the
per-worker machine digests (namespaced by shard and generation, so a
respawned worker replaying pre-death cycles cannot collide with the
hops its predecessor already shipped).  :meth:`FarmLineage.conservation`
asserts the lineage identity: **every accepted item's lineage terminates
in exactly one of processed / shed / rejected** — no orphan, no dangle,
no double-count.

:func:`dag_flow_events` renders the DAG's edges as Chrome trace *flow
events* (``ph: "s"``/``"f"`` pairs — arrows in Perfetto) that
:func:`repro.obs.export.merged_chrome_trace` lays over the farm tracks.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: bump when the DAG JSON layout changes
DAG_VERSION = 1


class CausalDag:
    """Typed nodes + typed edges, canonically serializable."""

    def __init__(self) -> None:
        #: node id -> attributes (always includes ``kind``)
        self.nodes: Dict[str, Dict[str, Any]] = {}
        #: (source id, destination id, edge kind), insertion order
        self.edges: List[Tuple[str, str, str]] = []
        self._out: Dict[str, List[Tuple[str, str]]] = {}
        self._in: Dict[str, List[Tuple[str, str]]] = {}

    # -- construction ------------------------------------------------------
    def add_node(self, node_id: str, kind: str, **attrs: Any) -> str:
        node = self.nodes.get(node_id)
        if node is None:
            self.nodes[node_id] = {"kind": kind, **attrs}
        else:
            node.update(attrs)
        return node_id

    def add_edge(self, src: str, dst: str, kind: str) -> None:
        self.edges.append((src, dst, kind))
        self._out.setdefault(src, []).append((dst, kind))
        self._in.setdefault(dst, []).append((src, kind))

    # -- queries -----------------------------------------------------------
    def parents(self, node_id: str) -> List[Tuple[str, str]]:
        """``(source id, edge kind)`` pairs pointing at *node_id*."""
        return sorted(self._in.get(node_id, []))

    def children(self, node_id: str) -> List[Tuple[str, str]]:
        return sorted(self._out.get(node_id, []))

    def ancestors(self, node_id: str) -> List[str]:
        """All transitive causes of *node_id* (excludes itself), sorted."""
        return self._closure(node_id, self._in)

    def descendants(self, node_id: str) -> List[str]:
        """All transitive effects of *node_id* (excludes itself), sorted."""
        return self._closure(node_id, self._out)

    def _closure(self, node_id: str,
                 adjacency: Dict[str, List[Tuple[str, str]]]) -> List[str]:
        seen: set = set()
        frontier = [node_id]
        while frontier:
            current = frontier.pop()
            for neighbour, _kind in adjacency.get(current, ()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        seen.discard(node_id)
        return sorted(seen)

    def find(self, fragment: str) -> List[str]:
        """Node ids containing *fragment*, sorted (the ``repro why``
        port-write lookup: ``--find port:`` style queries)."""
        return sorted(nid for nid in self.nodes if fragment in nid)

    def sort_key(self, node_id: str) -> Tuple[int, str]:
        """Deterministic chronological-ish order: cycle (or tick) then id."""
        node = self.nodes.get(node_id, {})
        when = node.get("cycle", node.get("tick", -1))
        return (when if isinstance(when, int) else -1, node_id)

    # -- serialization -----------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        nodes = [{"id": nid, **self.nodes[nid]}
                 for nid in sorted(self.nodes)]
        edges = [{"src": src, "dst": dst, "kind": kind}
                 for src, dst, kind in sorted(self.edges)]
        return {"version": DAG_VERSION, "nodes": nodes, "edges": edges}

    def slice_json(self, nodes_before: int, edges_before: int
                   ) -> Dict[str, Any]:
        """The nodes/edges appended since the given counts (incremental
        drain payloads; node insertion order is dict order)."""
        new_ids = list(self.nodes)[nodes_before:]
        return {
            "nodes": [{"id": nid, **self.nodes[nid]} for nid in new_ids],
            "edges": [{"src": s, "dst": d, "kind": k}
                      for s, d, k in self.edges[edges_before:]],
        }

    def merge_json(self, payload: Dict[str, Any],
                   prefix: str = "", **extra: Any) -> None:
        """Merge a :meth:`to_json`/:meth:`slice_json` payload in.

        Non-global node ids (everything not starting with ``ev:``) are
        namespaced with *prefix*; *extra* attributes (``shard=...``) are
        stamped on every merged node.
        """
        def rename(nid: str) -> str:
            return nid if nid.startswith("ev:") else prefix + nid

        for node in payload.get("nodes", ()):
            attrs = dict(node)
            nid = rename(attrs.pop("id"))
            kind = attrs.pop("kind")
            self.add_node(nid, kind, **attrs, **extra)
        for edge in payload.get("edges", ()):
            self.add_edge(rename(edge["src"]), rename(edge["dst"]),
                          edge["kind"])

    @classmethod
    def from_json(cls, document: Dict[str, Any]) -> "CausalDag":
        version = document.get("version")
        if version != DAG_VERSION:
            raise ValueError(
                f"not a version-{DAG_VERSION} causal DAG "
                f"(found version {version!r})")
        dag = cls()
        dag.merge_json(document)
        return dag

    def dumps(self) -> str:
        """Canonical string form — byte-identical across same-seed runs."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# chain rendering (the `repro why` answer)
# ---------------------------------------------------------------------------

def _describe(node_id: str, node: Dict[str, Any]) -> str:
    kind = node.get("kind", "?")
    if kind == "inject" or kind == "submit":
        events = node.get("events")
        what = "+".join(events) if events else node.get("event", "?")
        return f"injected {what}"
    if kind == "latch":
        return f"latched {node.get('event', '?')} in the CR" + (
            f" [{node['outcome']}]" if "outcome" in node else "")
    if kind == "fire":
        state = "dispatched" if node.get("completed", True) else "aborted"
        return f"t{node.get('transition', '?')} {state}"
    if kind == "raise":
        return f"raised {node.get('event', '?')}"
    if kind == "port":
        return (f"wrote port {node.get('addr', '?')} = "
                f"{node.get('value', '?')}")
    if kind in ("processed", "shed", "rejected"):
        reason = node.get("reason")
        return kind + (f" ({reason})" if reason else "")
    detail = node.get("detail")
    return kind + (f": {detail}" if detail else "")


def _stamp(node: Dict[str, Any]) -> str:
    if "cycle" in node:
        where = f"cycle {node['cycle']}"
    elif "tick" in node:
        where = f"tick {node['tick']}"
    else:
        where = "origin"
    shard = node.get("shard")
    return f"{where}, {shard}" if shard else where


def render_chain(dag: CausalDag, node_id: str) -> str:
    """The complete causal chain through *node_id*, deterministic text.

    Causes (transitive ancestors) first, then the node, then its effects
    — each line stamped with its cycle/tick and shard and annotated with
    the edge kinds that feed it.
    """
    if node_id not in dag.nodes:
        candidates = dag.find(node_id)
        hint = ("; close matches: " + ", ".join(candidates[:6])
                if candidates else "")
        raise KeyError(f"no lineage node {node_id!r}{hint}")

    def line(nid: str, marker: str) -> str:
        node = dag.nodes[nid]
        via = dag.parents(nid)
        source = (" <- " + ", ".join(f"{src} [{kind}]"
                                     for src, kind in via) if via else "")
        return (f"{marker} {nid} ({_stamp(node)}): "
                f"{_describe(nid, node)}{source}")

    lines = [f"why {node_id}"]
    causes = sorted(dag.ancestors(node_id), key=dag.sort_key)
    effects = sorted(dag.descendants(node_id), key=dag.sort_key)
    for nid in causes:
        lines.append(line(nid, "  "))
    lines.append(line(node_id, "=>"))
    for nid in effects:
        lines.append(line(nid, "  ->"))
    if not causes and not effects:
        lines.append("  (isolated node: no recorded causes or effects)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# farm-wide lineage (supervisor side)
# ---------------------------------------------------------------------------

class FarmLineage:
    """Item-level provenance across worker processes.

    Not a hot path: the supervisor touches it once per item lifecycle
    event, so nodes and edges are built eagerly.  Machine-level digests
    shipped in worker replies merge under a ``<shard>.g<generation>/``
    namespace — generations advance on respawn and promotion, keeping a
    restarted worker's replayed cycles distinct from its predecessor's.
    """

    def __init__(self) -> None:
        self.dag = CausalDag()
        self.accepted: set = set()
        #: seq -> terminal node ids (conservation wants exactly one)
        self.terminals: Dict[int, List[str]] = {}
        self._last: Dict[int, str] = {}
        self._attempts: Dict[int, int] = {}
        self._last_death: Dict[str, str] = {}

    # -- trace-context stamping -------------------------------------------
    @staticmethod
    def item_id(origin: str, seq: int) -> str:
        return f"ev:{origin}:{seq}"

    # -- submission and routing -------------------------------------------
    def on_submit(self, tick: int, doc: Dict[str, Any]) -> None:
        seq = doc["seq"]
        node_id = self.item_id(doc.get("origin", "stream"), seq)
        self.dag.add_node(node_id, "submit", tick=tick, seq=seq,
                          events=list(doc.get("events", ())))
        self._last[seq] = node_id

    def on_dispatch(self, tick: int, shard_name: str, doc: Dict[str, Any],
                    redispatch: bool = False) -> None:
        seq = doc["seq"]
        attempt = self._attempts.get(seq, 0)
        self._attempts[seq] = attempt + 1
        node_id = f"disp:{seq}:{attempt}"
        self.dag.add_node(node_id, "dispatch", tick=tick, seq=seq,
                          shard=shard_name, attempt=attempt,
                          redispatch=redispatch)
        previous = self._last.get(seq)
        if previous is not None:
            self.dag.add_edge(previous, node_id,
                              "redispatch" if redispatch else "dispatch")
        death = self._last_death.get(shard_name)
        if redispatch and death is not None:
            self.dag.add_edge(death, node_id, "redispatch")
        self._last[seq] = node_id

    # -- outcomes ----------------------------------------------------------
    def on_accept(self, tick: int, seq: int) -> None:
        self.accepted.add(seq)

    def _terminal(self, tick: int, seq: int, kind: str,
                  reason: Optional[str] = None) -> None:
        node_id = f"{kind}:{seq}"
        attrs: Dict[str, Any] = {"tick": tick, "seq": seq}
        if reason is not None:
            attrs["reason"] = reason
        self.dag.add_node(node_id, kind, **attrs)
        previous = self._last.get(seq)
        if previous is not None:
            self.dag.add_edge(previous, node_id, kind)
        self.terminals.setdefault(seq, [])
        if node_id not in self.terminals[seq]:
            self.terminals[seq].append(node_id)
        self._last[seq] = node_id

    def on_processed(self, tick: int, seq: int) -> None:
        self._terminal(tick, seq, "processed")

    def on_shed(self, tick: int, seq: int, reason: str) -> None:
        self._terminal(tick, seq, "shed", reason)

    def on_reject(self, tick: int, seq: int, reason: str) -> None:
        self._terminal(tick, seq, "rejected", reason)

    # -- farm lifecycle ----------------------------------------------------
    def on_worker_lost(self, tick: int, shard_name: str,
                       cause: str) -> None:
        node_id = f"death:{tick}:{shard_name}"
        self.dag.add_node(node_id, "death", tick=tick, shard=shard_name,
                          detail=cause)
        self._last_death[shard_name] = node_id

    def on_promotion(self, tick: int, shard_name: str) -> None:
        node_id = f"promote:{tick}:{shard_name}"
        self.dag.add_node(node_id, "promotion", tick=tick,
                          shard=shard_name)
        death = self._last_death.get(shard_name)
        if death is not None:
            self.dag.add_edge(death, node_id, "promote")

    def on_respawn(self, tick: int, shard_name: str) -> None:
        node_id = f"respawn:{tick}:{shard_name}"
        self.dag.add_node(node_id, "respawn", tick=tick, shard=shard_name)
        death = self._last_death.get(shard_name)
        if death is not None:
            self.dag.add_edge(death, node_id, "respawn")

    # -- worker digests ----------------------------------------------------
    def merge_worker(self, shard_name: str, generation: int,
                     payload: Dict[str, Any]) -> None:
        self.dag.merge_json(payload, prefix=f"{shard_name}.g{generation}/",
                            shard=shard_name)

    # -- the lineage identity ---------------------------------------------
    def conservation(self) -> List[str]:
        """Violations of the lineage identity; empty when sound.

        Every accepted item terminates in exactly one of
        processed/shed/rejected; every submitted item either terminates
        or was accepted (whose rule then applies).  An item both
        processed and shed, or accepted with no terminal at all, is a
        conservation hole.
        """
        problems: List[str] = []
        for seq in sorted(self.accepted):
            terminals = self.terminals.get(seq, [])
            if len(terminals) != 1:
                problems.append(
                    f"accepted item {seq} has {len(terminals)} lineage "
                    f"terminal(s): {terminals or 'none'}")
        for node_id, node in sorted(self.dag.nodes.items()):
            if node.get("kind") != "submit":
                continue
            seq = node["seq"]
            if seq not in self.accepted and not self.terminals.get(seq):
                problems.append(
                    f"submitted item {seq} ({node_id}) has no terminal "
                    f"and was never accepted")
        return problems

    def to_json(self) -> Dict[str, Any]:
        document = self.dag.to_json()
        document["accepted"] = sorted(self.accepted)
        document["terminals"] = {
            str(seq): sorted(ids)
            for seq, ids in sorted(self.terminals.items())}
        document["conservation_violations"] = self.conservation()
        return document

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


def load_dag(document: Dict[str, Any]) -> CausalDag:
    """A :class:`CausalDag` from either a bare DAG document or a
    :meth:`FarmLineage.to_json` document (same nodes/edges layout)."""
    return CausalDag.from_json(document)


# ---------------------------------------------------------------------------
# Chrome-trace flow events (Perfetto arrows)
# ---------------------------------------------------------------------------

def dag_flow_events(dag: CausalDag,
                    pids: Optional[Mapping[str, int]] = None,
                    supervisor_pid: int = 1,
                    category: str = "lineage"
                    ) -> List[Dict[str, Any]]:
    """The DAG's edges as Chrome trace flow-event pairs.

    Each edge becomes a ``ph: "s"`` (start) at the source node's
    timestamp and a ``ph: "f"`` (finish, ``bp: "e"``) at the destination,
    sharing a deterministic string binding id ``<src>-><dst>`` — Perfetto
    draws these as arrows across tracks.  *pids* maps shard names to
    trace-event pids (machine-level nodes land on their worker's
    process); unmapped nodes land on the supervisor pid.
    """
    pids = pids or {}

    def place(node_id: str) -> Tuple[int, int]:
        node = dag.nodes.get(node_id, {})
        pid = pids.get(node.get("shard"), supervisor_pid)
        when = node.get("cycle", node.get("tick", 0))
        return pid, when if isinstance(when, int) else 0

    events: List[Dict[str, Any]] = []
    for src, dst, kind in sorted(dag.edges):
        bind_id = f"{src}->{dst}"
        src_pid, src_ts = place(src)
        dst_pid, dst_ts = place(dst)
        events.append({"ph": "s", "cat": category, "name": kind,
                       "id": bind_id, "pid": src_pid, "tid": 0,
                       "ts": src_ts})
        events.append({"ph": "f", "bp": "e", "cat": category, "name": kind,
                       "id": bind_id, "pid": dst_pid, "tid": 0,
                       "ts": dst_ts})
    return events
