"""A process-local metrics registry: counters, gauges, histograms.

The registry is the aggregation layer above the tracer: where the tracer
records *individual* events on a timeline, the registry keeps *summaries* —
how many transitions fired, how many cache words moved, the distribution of
event-consumption latencies in reference-clock cycles.  The
:class:`~repro.pscp.trace.DeadlineMonitor` and the benchmarks publish into
one, and the ``repro stats`` CLI subcommand renders it.

Instruments are plain mutable objects with ``__slots__``; reading them back
(:meth:`MetricsRegistry.collect`) produces JSON-ready dictionaries.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: default histogram bucket upper bounds, in cycles (powers of two so the
#: buckets line up across architectures; the last bucket is open-ended)
DEFAULT_CYCLE_BUCKETS: Tuple[int, ...] = (
    8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount


class Histogram:
    """A cycle-bucketed latency histogram.

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in the overflow bucket.  Count, sum, min and max are kept
    exactly, so means are exact even though the distribution is bucketed.
    """

    __slots__ = ("name", "help", "buckets", "counts", "overflow",
                 "count", "sum", "min", "max")

    def __init__(self, name: str, help: str = "",
                 buckets: Optional[Sequence[int]] = None) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(buckets if buckets is not None
                             else DEFAULT_CYCLE_BUCKETS)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be sorted")
        self.counts = [0] * len(self.buckets)
        self.overflow = 0
        self.count = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def reset(self) -> None:
        """Forget all observations (publishers that snapshot a whole run
        call this so republishing does not double-count)."""
        self.counts = [0] * len(self.buckets)
        self.overflow = 0
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = None

    def observe(self, value: int) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[int]:
        """Upper bound of the bucket containing the q-quantile, clamped to
        the exact observed ``max``.

        **Error bound:** the result *overestimates* the true q-quantile by
        at most :meth:`quantile_error_bound` — the true value lies in
        ``(previous bound, returned value]``.  With the default
        power-of-two buckets that means the estimate is within 2x of the
        true quantile (tight for values just above a bound).  The clamp
        keeps degenerate distributions exact: a single-sample (or
        constant) histogram reports its one value, never a bucket bound
        above anything ever observed, and values beyond the last bucket
        report the exact ``max``.  ``count``/``sum``/``min``/``max``/
        ``mean`` are exact regardless of bucketing.
        """
        if not self.count:
            return None
        if self.min == self.max:
            return self.max  # single sample / constant: exact
        target = q * self.count
        running = 0
        for index, bound in enumerate(self.buckets):
            running += self.counts[index]
            if running >= target:
                return min(bound, self.max)
        return self.max

    def quantile_error_bound(self, q: float) -> Optional[int]:
        """Worst-case overestimate of :meth:`quantile` — the returned
        value minus the largest value provably <= the true q-quantile
        (the previous bucket bound, floored at the observed ``min``).
        ``0`` means the reported quantile is exact.
        """
        if not self.count:
            return None
        estimate = self.quantile(q)
        if self.min == self.max:
            return 0
        target = q * self.count
        running = 0
        previous = self.min
        for index, bound in enumerate(self.buckets):
            running += self.counts[index]
            if running >= target:
                return max(0, estimate - max(previous, self.min))
            previous = bound
        # overflow bucket: the exact max is reported, but the true
        # quantile may sit anywhere above the last bound
        return max(0, estimate - max(previous, self.min))

    def summary(self) -> Dict[str, Any]:
        """The dashboard/summary digest: ``{count, mean, p50, p95, p99,
        quantile_error_bounds}``.

        Percentiles carry :meth:`quantile`'s bucket-upper-bound error;
        ``quantile_error_bounds`` states that error per percentile (``0``
        = exact).  Mean and count are exact.  All values are ``None`` when
        empty except ``count``.
        """
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "quantile_error_bounds": {
                "p50": self.quantile_error_bound(0.50),
                "p95": self.quantile_error_bound(0.95),
                "p99": self.quantile_error_bound(0.99),
            },
        }


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, factory, kind):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}")
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, lambda: Gauge(name, help), Gauge)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[int]] = None) -> Histogram:
        return self._get(name, lambda: Histogram(name, help, buckets),
                         Histogram)

    def scoped(self, prefix: str) -> "ScopedRegistry":
        """A view creating instruments under ``prefix.`` — the idiom for
        per-worker metrics (``farm.worker0.queue_depth``) without every
        publisher hand-formatting names."""
        return ScopedRegistry(self, prefix)

    # -- reading back -----------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __getitem__(self, name: str):
        return self._instruments[name]

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def collect(self) -> Dict[str, Dict[str, Any]]:
        """All instruments as JSON-ready dictionaries."""
        result: Dict[str, Dict[str, Any]] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                result[name] = {"type": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                result[name] = {"type": "gauge", "value": instrument.value}
            else:
                result[name] = {
                    "type": "histogram",
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "min": instrument.min,
                    "max": instrument.max,
                    "mean": instrument.mean,
                    "buckets": {str(bound): count for bound, count in
                                zip(instrument.buckets, instrument.counts)},
                    "overflow": instrument.overflow,
                }
            if instrument.help:
                result[name]["help"] = instrument.help
        return result

    def summary_rows(self) -> List[Tuple[str, str, str]]:
        """(name, type, rendered value) rows for the ASCII summary table."""
        rows: List[Tuple[str, str, str]] = []
        for name, data in self.collect().items():
            if data["type"] == "histogram":
                if data["count"]:
                    summary = self._instruments[name].summary()
                    rendered = (f"n={data['count']} min={data['min']} "
                                f"mean={data['mean']:.1f} "
                                f"p50={summary['p50']} "
                                f"p95={summary['p95']} "
                                f"p99={summary['p99']} max={data['max']}")
                else:
                    rendered = "n=0"
            else:
                rendered = str(data["value"])
            rows.append((name, data["type"], rendered))
        return rows


class ScopedRegistry:
    """A name-prefixing view over a :class:`MetricsRegistry`.

    Instruments live in (and are collected from) the parent registry; the
    view only joins ``prefix`` onto every name.
    """

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix

    def counter(self, name: str, help: str = "") -> Counter:
        return self._registry.counter(f"{self._prefix}.{name}", help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._registry.gauge(f"{self._prefix}.{name}", help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[int]] = None) -> Histogram:
        return self._registry.histogram(f"{self._prefix}.{name}", help,
                                        buckets)

    def scoped(self, prefix: str) -> "ScopedRegistry":
        return ScopedRegistry(self._registry, f"{self._prefix}.{prefix}")
