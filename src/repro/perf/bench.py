"""Seeded perf-bench harness: pinned workloads, reproducible numbers.

``repro bench`` (and ``scripts/run_benches.py``) runs a fixed set of
workloads — the SMD closed loop on the paper's final architecture, the
elevator chart under its periodic stimulus, and a supervised machine farm
over a seeded event stream — with the warmup + interleaved median-of-k
discipline of :mod:`repro.perf.timing`, and emits one machine-readable
document (``BENCH_6.json``).

Every workload contributes four sections:

* ``determinism`` — simulated outcomes (cycles, positions, items
  processed).  Byte-exact run to run and machine to machine; any drift is
  a simulator bug, not noise.
* ``latency`` — dispatch/deadline latency digests straight from
  :meth:`repro.obs.metrics.Histogram.summary` (simulated cycles/ticks, so
  also exact).
* ``wall`` + derived throughput — host nanoseconds.  Only comparable
  within a declared tolerance, and across processes only when the
  environment fingerprints match.
* ``profile`` — the opcode-level :class:`~repro.obs.perfprof.PerfProfiler`
  top-N from one untimed repetition: where the *host* time goes.  Modeled
  cycles and call counts are exact; wall shares are informational.

The committed baseline lives at ``benchmarks/perf_baseline.json``;
``repro bench --compare`` (see :mod:`repro.perf.compare`) diffs a fresh
run against it and fails on regressions.
"""

from __future__ import annotations

import platform
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.perf.timing import (
    LegTiming,
    calibration_spin,
    measure_interleaved,
)

#: reserved leg name for the host-speed yardstick timed alongside the
#: workloads (parenthesized so it can never collide with a workload)
CALIBRATION_LEG = "(calibration)"

#: bump when the shape of the emitted document changes
BENCH_SCHEMA_VERSION = 1

#: the document name (and default output filename stem) for this PR's bench
BENCH_ID = "BENCH_6"

WORKLOAD_NAMES = ("smd", "elevator", "farm")


def fingerprint() -> Dict[str, str]:
    """The environment key wall-clock comparisons are gated on."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


# ---------------------------------------------------------------------------
# workloads
# ---------------------------------------------------------------------------

class BenchWorkload:
    """One pinned workload: built once, run once per repetition.

    ``run_rep()`` simulates from a fresh machine and returns the rep's
    ``{"determinism": ..., "latency": ..., "counts": ...}`` record —
    everything in it is simulated state, so identical across reps.
    ``profile(top)`` runs one extra untimed rep with an opcode-level
    profiler attached and returns its JSON digest.
    """

    name: str = "?"

    def run_rep(self) -> Dict[str, Any]:
        raise NotImplementedError

    def profile(self, top: int) -> Dict[str, Any]:
        raise NotImplementedError


def _latency_digest(metrics, suffix: str) -> Dict[str, Any]:
    """``Histogram.summary()`` for every histogram named ``*.{suffix}``."""
    digest: Dict[str, Any] = {}
    for name in metrics.names():
        if not name.endswith(suffix):
            continue
        instrument = metrics[name]
        if hasattr(instrument, "summary"):
            digest[name] = instrument.summary()
    return digest


class SmdBench(BenchWorkload):
    """The paper's final architecture against the fast-motor physics.

    One move command, bounded at 20000 configuration cycles — the same
    closed loop as ``benchmarks/bench_closed_loop.py`` but sized so a
    median-of-k measurement stays in CI budget.
    """

    name = "smd"

    def __init__(self) -> None:
        from repro.flow import build_system
        from repro.isa import MD16_TEP
        from repro.workloads import (
            SMD_MUTUAL_EXCLUSIONS,
            SMD_ROUTINES,
            smd_chart,
        )

        arch = MD16_TEP.with_(n_teps=2, microcode_optimized=True,
                              mutual_exclusions=SMD_MUTUAL_EXCLUSIONS)
        self.system = build_system(smd_chart(), SMD_ROUTINES, arch,
                                   specialize=True)

    # mirror scripts/check_overhead.py's fast motors
    def _motors(self):
        from repro.workloads.motors import MotorSpec

        return {
            "X": MotorSpec("X", 50_000.0, 0.025e-3, 1.25, 2000.0),
            "Y": MotorSpec("Y", 50_000.0, 0.025e-3, 1.25, 2000.0),
            "Phi": MotorSpec("Phi", 9_000.0, 0.1, 900.0, 0.0),
        }

    def _run(self, profiler=None) -> Dict[str, Any]:
        from repro.obs import MetricsRegistry
        from repro.workloads import MoveCommand, SmdClosedLoop

        metrics = MetricsRegistry()
        loop = SmdClosedLoop(self.system, motor_specs=self._motors(),
                             metrics=metrics)
        if profiler is not None:
            loop.machine.attach_profiler(profiler)
        report = loop.run([MoveCommand(60, 45, 8)],
                          max_configuration_cycles=20000)
        return {
            "determinism": {
                "total_cycles": report.total_cycles,
                "configuration_cycles": report.configuration_cycles,
                "final_positions": report.final_positions,
                "commands_completed": report.commands_completed,
                "misses": sum(d.misses for d in report.deadline_reports),
            },
            "latency": _latency_digest(metrics, ".latency_cycles"),
            "counts": {
                "reference_cycles": report.total_cycles,
                "configuration_cycles": report.configuration_cycles,
                "instructions_retired":
                    loop.machine.executor.instructions_executed,
            },
        }

    def run_rep(self) -> Dict[str, Any]:
        return self._run()

    def profile(self, top: int) -> Dict[str, Any]:
        from repro.obs import PerfProfiler

        profiler = PerfProfiler(level="opcode")
        self._run(profiler)
        return profiler.to_json(top=top)


class ElevatorBench(BenchWorkload):
    """The elevator chart under a pinned-seed stimulus.

    ``POWER_ON`` wakes the bank, then every configuration cycle offers the
    constrained events at their declared periods (their consumption
    latencies feed the deadline histograms) plus one seeded driver event —
    dispatches, floor arrivals, door timers — so the cabs actually ride.
    """

    name = "elevator"
    # sized so one rep is >~100 ms: tiny legs drown in scheduler noise
    # and flake the two-run stability tolerance on busy hosts
    CYCLES = 2000
    SEED = 3

    def __init__(self) -> None:
        from repro.flow import build_system
        from repro.isa import MD16_TEP
        from repro.workloads.elevator import (
            ELEVATOR_MUTUAL_EXCLUSIONS,
            ELEVATOR_ROUTINES,
            elevator_chart,
        )

        arch = MD16_TEP.with_(
            n_teps=2, microcode_optimized=True,
            mutual_exclusions=ELEVATOR_MUTUAL_EXCLUSIONS)
        self.system = build_system(elevator_chart(), ELEVATOR_ROUTINES,
                                   arch, specialize=True)

    def _run(self, profiler=None) -> Dict[str, Any]:
        import random

        from repro.obs import MetricsRegistry
        from repro.pscp.trace import DeadlineMonitor

        machine = self.system.make_machine()
        if profiler is not None:
            machine.attach_profiler(profiler)
        monitor = DeadlineMonitor(self.system.chart)
        constrained = sorted(monitor.periods)
        next_arrival = {event: 0 for event in constrained}
        rng = random.Random(self.SEED)
        driver = sorted(set(self.system.chart.events)
                        - set(monitor.periods) - {"POWER_ON"})
        machine.step({"POWER_ON"})
        for _ in range(self.CYCLES - 1):
            due = {rng.choice(driver)}
            for event in constrained:
                if next_arrival[event] <= machine.time:
                    due.add(event)
                    monitor.arrival(event, machine.time)
                    next_arrival[event] = (machine.time
                                           + monitor.periods[event])
            monitor.observe(machine.step(due))
        machine.flush_trace()
        metrics = MetricsRegistry()
        monitor.publish(metrics)
        reports = monitor.reports()
        return {
            "determinism": {
                "reference_cycles": machine.time,
                "configuration_cycles": machine.cycle_count,
                "instructions_retired":
                    machine.executor.instructions_executed,
                "consumed": {r.event: r.consumed for r in reports},
                "misses": sum(r.misses for r in reports),
            },
            "latency": _latency_digest(metrics, ".latency_cycles"),
            "counts": {
                "reference_cycles": machine.time,
                "configuration_cycles": machine.cycle_count,
                "instructions_retired":
                    machine.executor.instructions_executed,
            },
        }

    def run_rep(self) -> Dict[str, Any]:
        return self._run()

    def profile(self, top: int) -> Dict[str, Any]:
        from repro.obs import PerfProfiler

        profiler = PerfProfiler(level="opcode")
        self._run(profiler)
        return profiler.to_json(top=top)


class FarmBench(BenchWorkload):
    """A supervised two-worker farm over a seeded event stream.

    No chaos: this bench measures the steady-state farm machinery
    (admission, dispatch, checkpointing), not fault recovery.  Dispatch
    latency comes from the workers' ``dispatch_latency_ticks`` histograms.
    """

    name = "farm"
    WORKERS = 2
    ITEMS = 96
    SEED = 1

    def __init__(self) -> None:
        from repro.flow import build_system
        from repro.isa import MD16_TEP
        from repro.workloads import (
            SMD_MUTUAL_EXCLUSIONS,
            SMD_ROUTINES,
            smd_chart,
        )

        arch = MD16_TEP.with_(n_teps=2, microcode_optimized=True,
                              mutual_exclusions=SMD_MUTUAL_EXCLUSIONS)
        self.system = build_system(smd_chart(), SMD_ROUTINES, arch,
                                   specialize=True)

    def _run(self, profiler=None) -> Dict[str, Any]:
        from repro.obs import MetricsRegistry
        from repro.resil import RestartPolicy, Supervisor, \
            generate_event_stream

        metrics = MetricsRegistry()
        supervisor = Supervisor.for_system(
            self.system, n_workers=self.WORKERS, queue_capacity=8,
            policy=RestartPolicy(max_restarts=3, checkpoint_every=16),
            metrics=metrics)
        if profiler is not None:
            for worker in supervisor.workers:
                # one shared profiler: attribution aggregates the farm
                worker.machine.attach_profiler(profiler)
        stream = generate_event_stream(self.system.chart.events,
                                       self.ITEMS, seed=self.SEED)
        report = supervisor.run(stream, arrivals_per_tick=4,
                                batch_per_worker=2)
        latency = {}
        for worker in supervisor.workers:
            latency[worker.latency.name] = worker.latency.summary()
        return {
            "determinism": {
                "ticks": report.ticks,
                "submitted": report.submitted,
                "accepted": report.accepted,
                "processed": report.processed,
                "shed": dict(sorted(report.shed.items())),
                "restarts": report.restarts,
                "conservation_violations": report.conservation(),
            },
            "latency": latency,
            "counts": {
                "items_processed": report.processed,
                "supervisor_ticks": report.ticks,
                "reference_cycles": sum(
                    w.machine.time for w in supervisor.workers),
            },
        }

    def run_rep(self) -> Dict[str, Any]:
        return self._run()

    def profile(self, top: int) -> Dict[str, Any]:
        from repro.obs import PerfProfiler

        # routine level: the farm rep dispatches thousands of routines and
        # the opcode level's per-instruction clock reads would dominate
        profiler = PerfProfiler(level="routine")
        self._run(profiler)
        return profiler.to_json(top=top)


_WORKLOAD_FACTORIES: Dict[str, Callable[[], BenchWorkload]] = {
    "smd": SmdBench,
    "elevator": ElevatorBench,
    "farm": FarmBench,
}


# ---------------------------------------------------------------------------
# the harness
# ---------------------------------------------------------------------------

def _throughput(counts: Dict[str, Any], wall_median_ns: float,
                wall_best_ns: int) -> Dict[str, Any]:
    result: Dict[str, Any] = {}
    reference = counts.get("reference_cycles")
    if reference:
        result["ns_per_reference_cycle"] = wall_median_ns / reference
    config = counts.get("configuration_cycles")
    if config:
        result["configuration_cycles_per_second"] = \
            config / (wall_median_ns / 1e9)
    items = counts.get("items_processed")
    if items:
        result["items_per_second"] = items / (wall_median_ns / 1e9)
    return result


def run_bench(workloads: Optional[Sequence[str]] = None, repeats: int = 3,
              warmup: int = 1, profile_top: int = 10,
              progress: Optional[Callable[[str], None]] = None
              ) -> Dict[str, Any]:
    """Run the bench suite and return the ``BENCH_6`` document.

    *workloads* defaults to all of :data:`WORKLOAD_NAMES`; *repeats* is the
    ``k`` of median-of-k (``warmup`` extra untimed reps precede it).  The
    returned document is JSON-ready.
    """
    names = list(workloads) if workloads else list(WORKLOAD_NAMES)
    unknown = [name for name in names if name not in _WORKLOAD_FACTORIES]
    if unknown:
        raise ValueError(
            f"unknown workload(s) {unknown}; known: {WORKLOAD_NAMES}")
    say = progress if progress is not None else (lambda message: None)

    built: Dict[str, BenchWorkload] = {}
    for name in names:
        say(f"building workload {name} ...")
        built[name] = _WORKLOAD_FACTORIES[name]()

    say(f"timing {len(names)} workload(s) + calibration interleaved "
        f"({repeats} rep(s) + {warmup} warmup) ...")
    legs: Dict[str, Callable[[], Any]] = {
        name: built[name].run_rep for name in names}
    # the host-speed yardstick rides the same rounds as the workloads so
    # it samples the same bursts of machine-load noise
    legs[CALIBRATION_LEG] = calibration_spin
    timings = measure_interleaved(legs, rounds=repeats, warmup=warmup)

    document: Dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench_id": BENCH_ID,
        "fingerprint": fingerprint(),
        # wall comparisons normalize by this (see repro.perf.compare)
        "calibration_ns": int(timings[CALIBRATION_LEG].median_ns),
        "config": {"repeats": repeats, "warmup": warmup,
                   "profile_top": profile_top},
        "workloads": {},
    }
    for name in names:
        timing: LegTiming = timings[name]
        rep = timing.payload
        say(f"profiling workload {name} ...")
        profile = built[name].profile(profile_top)
        document["workloads"][name] = {
            "determinism": rep["determinism"],
            "latency": rep["latency"],
            "counts": rep["counts"],
            "wall": {
                "repeats": repeats,
                "median_ns": timing.median_ns,
                "best_ns": timing.best_ns,
                "samples_ns": list(timing.times_ns),
            },
            "throughput": _throughput(rep["counts"], timing.median_ns,
                                      timing.best_ns),
            "profile": profile,
        }
    return document
