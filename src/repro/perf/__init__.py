"""Performance measurement: seeded benches and the regression guard.

The wall-clock layer of the observability stack::

    from repro.perf import run_bench, compare_documents

    document = run_bench(repeats=3)            # BENCH_6 document
    report = compare_documents(document, baseline)
    assert report.ok, report.render()

:mod:`repro.perf.timing` holds the shared warmup + interleaved
measurement discipline (``scripts/check_overhead.py`` reuses it),
:mod:`repro.perf.bench` the pinned workloads and document format, and
:mod:`repro.perf.compare` the per-metric comparison policy.
"""

from repro.perf.bench import (
    BENCH_ID,
    BENCH_SCHEMA_VERSION,
    WORKLOAD_NAMES,
    fingerprint,
    run_bench,
)
from repro.perf.compare import (
    DEFAULT_TOLERANCE,
    ComparisonReport,
    compare_documents,
)
from repro.perf.timing import (
    LegTiming,
    calibrate,
    calibration_spin,
    measure_interleaved,
    median,
    paired_overhead,
    relative_overhead,
)

__all__ = [
    "BENCH_ID", "BENCH_SCHEMA_VERSION", "ComparisonReport",
    "DEFAULT_TOLERANCE", "LegTiming", "WORKLOAD_NAMES", "calibrate",
    "calibration_spin", "compare_documents", "fingerprint",
    "measure_interleaved", "median", "paired_overhead",
    "relative_overhead", "run_bench",
]
