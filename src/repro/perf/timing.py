"""Shared wall-clock measurement: warmup + interleaved repetitions.

One timing discipline for every harness that compares wall-clock numbers
(``repro bench`` and ``scripts/check_overhead.py``): run every leg a few
*untimed* warmup repetitions first (bytecode caches, allocator pools and
branch predictors all settle), then time the legs **interleaved** —
round-robin, one timed repetition per leg per round — so machine-load
drift hits every leg equally instead of biasing whichever happened to run
last.

Two estimators come out of a measurement, used for different jobs:

* ``best_ns`` — the minimum over rounds.  The low-noise estimator for
  comparing legs measured *in the same process moments apart* (overhead
  checks): noise only ever adds time, so the minimum is the closest
  observable to the true cost.
* ``median_ns`` — the median over rounds.  The robust estimator recorded
  in baselines that *later* runs compare against: a single lucky minimum
  makes a baseline unbeatable, the median does not.
"""

from __future__ import annotations

import gc
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple


def median(values: List[float]) -> float:
    """The sample median (mean of the middle pair for even counts)."""
    if not values:
        raise ValueError("median of an empty sample")
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[middle])
    return (ordered[middle - 1] + ordered[middle]) / 2.0


class LegTiming:
    """Per-leg result of :func:`measure_interleaved`."""

    __slots__ = ("name", "times_ns", "payload")

    def __init__(self, name: str) -> None:
        self.name = name
        #: one wall-clock sample per timed round, in nanoseconds
        self.times_ns: List[int] = []
        #: the leg callable's return value from the last timed round
        self.payload: Any = None

    @property
    def best_ns(self) -> int:
        return min(self.times_ns)

    @property
    def median_ns(self) -> float:
        return median(self.times_ns)

    @property
    def best_seconds(self) -> float:
        return self.best_ns / 1e9

    @property
    def median_seconds(self) -> float:
        return self.median_ns / 1e9


def measure_interleaved(legs: Mapping[str, Callable[[], Any]],
                        rounds: int = 3, warmup: int = 1,
                        clock: Optional[Callable[[], int]] = None
                        ) -> Dict[str, LegTiming]:
    """Time *legs* (ordered name → zero-argument callable) interleaved.

    Every leg first runs ``warmup`` untimed repetitions (in leg order),
    then ``rounds`` timed rounds run the legs round-robin, with the
    schedule *rotated* one position every round (a Latin-square scheme:
    over ``len(legs)`` rounds each leg occupies each position exactly
    once).  That cancels position-dependent load bias — both monotonic
    drift (which taxes late positions) and periodic bursts whose period
    aliases against the round time (which tax one fixed position; the
    ABBA scheme this replaces only handled the monotonic case).  Each
    callable's return value is kept as the leg's ``payload`` (last round
    wins) so callers can check determinism of what the timed runs
    computed.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    now = clock if clock is not None else time.perf_counter_ns
    results = {name: LegTiming(name) for name in legs}
    for _ in range(warmup):
        for run in legs.values():
            run()
    order: List[Tuple[str, Callable[[], Any]]] = list(legs.items())
    for round_index in range(rounds):
        shift = round_index % len(order)
        schedule = order[shift:] + order[:shift]
        for name, run in schedule:
            # drain garbage left by the previous leg outside the timed
            # window: collections trigger on allocation thresholds, so
            # without this they land *systematically* in whichever leg
            # the accumulated pattern taxes, biasing the paired ratios
            gc.collect()
            started = now()
            payload = run()
            elapsed = now() - started
            timing = results[name]
            timing.times_ns.append(elapsed)
            timing.payload = payload
    return results


#: iterations of the calibration spin loop (~100 ms of pure Python on a
#: contemporary core — long enough to average over scheduler jitter,
#: short enough to run before every measurement)
CALIBRATION_LOOPS = 2_000_000


def calibration_spin() -> int:
    """One repetition of the fixed calibration spin loop.

    A host-speed yardstick for *absolute* wall-clock baselines: the
    simulator is pure Python, so dividing a measured wall time by the
    calibration cancels host-speed drift (frequency scaling, hypervisor
    CPU steal) to first order.  Crucially the spin loop must be timed as
    an extra **leg of the same interleaved measurement** — host noise
    comes in bursts of seconds, so a probe taken once before (or after)
    the measurement samples a different speed than the legs experienced.
    Baselines record their own calibration median; a comparison then
    checks ``wall / calibration`` against ``baseline_wall /
    baseline_calibration`` instead of raw nanoseconds.
    """
    total = 0
    for i in range(CALIBRATION_LOOPS):
        total += i
    return total


def calibrate(rounds: int = 3,
              clock: Optional[Callable[[], int]] = None) -> int:
    """Median-of-*rounds* wall time of :func:`calibration_spin`, in ns.

    A standalone probe for contexts without an interleaved measurement
    to ride; prefer adding ``calibration_spin`` as a leg of
    :func:`measure_interleaved` wherever one exists.
    """
    now = clock if clock is not None else time.perf_counter_ns
    times: List[int] = []
    for _ in range(rounds):
        started = now()
        calibration_spin()
        times.append(now() - started)
    return int(median(times))


def relative_overhead(candidate_ns: float, reference_ns: float) -> float:
    """``(candidate - reference) / reference`` guarded against zero."""
    if not reference_ns:
        return 0.0
    return (candidate_ns - reference_ns) / reference_ns


def paired_overhead(candidate: LegTiming, reference: LegTiming) -> float:
    """Overhead of *candidate* over *reference* as the **median of
    per-round ratios** — the noise-robust leg-vs-leg estimator.

    Within one interleaved round the two legs run back-to-back, so
    machine-load drift (CPU steal, frequency scaling) is mostly shared by
    the pair and cancels in the ratio; the median then discards rounds
    where a spike hit one leg but not the other.  Comparing best-of-k
    instead pits the *luckiest* run of each leg against the other, which
    on a noisy host swings by many percent in either direction.
    """
    ratios = [c / r for c, r in zip(candidate.times_ns, reference.times_ns)
              if r]
    if not ratios:
        return 0.0
    return median(ratios) - 1.0
