"""Regression guard: diff a bench run against a recorded baseline.

``repro bench --compare`` feeds two :mod:`repro.perf.bench` documents in
here.  The comparison applies a per-metric policy:

* **determinism** and **latency** are simulated state — compared *exactly*,
  always.  Any difference is a behavioral change (fail), never noise.
* **counts** (cycles, items) are likewise exact.
* **wall / throughput** are host time — compared within a declared
  tolerance, and only when both documents carry the same environment
  fingerprint (CI's committed-baseline compare typically skips these; its
  two-run stability compare exercises them).  When both documents carry a
  ``calibration_ns`` host-speed yardstick (:func:`repro.perf.timing.
  calibration_spin` timed in the same interleaved rounds as the
  workloads), a candidate whose host ran its calibration *slower* has its
  wall numbers deflated by the speed ratio first, so frequency scaling
  and hypervisor CPU steal between the two runs don't read as
  regressions.  The yardstick only ever excuses — a spin loop and a real
  workload don't scale identically under every kind of load, so a
  *faster* calibration never inflates the candidate.  A candidate slower
  than ``baseline * (1 + tolerance)`` after normalization is a
  regression; a faster one is noted but never fails.
* **profile** is informational and never compared — wall shares shift with
  host noise, and the exact parts (modeled cycles) are already covered by
  the determinism records.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: default allowed wall-clock slowdown fraction; an injected >=20% slowdown
#: must fail, so the tolerance sits safely below that
DEFAULT_TOLERANCE = 0.15

#: wall metrics compared within tolerance (per workload); everything in
#: ``determinism``/``latency``/``counts`` is compared exactly
WALL_METRICS = (
    ("wall", "median_ns"),
    ("throughput", "ns_per_reference_cycle"),
)


class ComparisonReport:
    """Outcome of one baseline comparison."""

    def __init__(self, tolerance: float, wall_checked: bool) -> None:
        self.tolerance = tolerance
        #: wall metrics were comparable (fingerprints matched or forced)
        self.wall_checked = wall_checked
        #: human-readable per-check lines, in check order
        self.lines: List[str] = []
        #: failed checks (subset of ``lines``)
        self.regressions: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.regressions

    def _note(self, line: str) -> None:
        self.lines.append(f"  ok   {line}")

    def _fail(self, line: str) -> None:
        self.lines.append(f"  FAIL {line}")
        self.regressions.append(line)

    def render(self) -> str:
        verdict = ("OK" if self.ok
                   else f"{len(self.regressions)} regression(s)")
        return "\n".join(self.lines + [f"comparison: {verdict}"])


def _dig(document: Dict[str, Any], *path: str) -> Any:
    value: Any = document
    for key in path:
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


def compare_documents(candidate: Dict[str, Any], baseline: Dict[str, Any],
                      tolerance: float = DEFAULT_TOLERANCE,
                      check_wall: Optional[bool] = None
                      ) -> ComparisonReport:
    """Compare *candidate* against *baseline*; see the module policy.

    *check_wall* forces the wall comparison on (``True``) or off
    (``False``); the default gates it on matching fingerprints.
    """
    if check_wall is None:
        check_wall = (candidate.get("fingerprint")
                      == baseline.get("fingerprint"))
    report = ComparisonReport(tolerance, check_wall)

    if candidate.get("schema_version") != baseline.get("schema_version"):
        report._fail(
            f"schema_version: candidate "
            f"{candidate.get('schema_version')} vs baseline "
            f"{baseline.get('schema_version')} (re-record the baseline)")
        return report

    # host-speed normalization: speed > 1 means the candidate's host ran
    # its calibration slower, so its raw wall numbers are deflated by the
    # same factor before the tolerance check; clamped at 1.0 because the
    # yardstick may only excuse a slow host, never convict a fast one
    speed = 1.0
    candidate_cal = candidate.get("calibration_ns")
    baseline_cal = baseline.get("calibration_ns")
    if check_wall and candidate_cal and baseline_cal:
        speed = max(1.0, candidate_cal / baseline_cal)
        if speed > 1.01:
            report.lines.append(
                f"  note wall normalized by host-speed ratio "
                f"{speed:.2f} (calibration {candidate_cal} ns vs "
                f"baseline {baseline_cal} ns)")

    baseline_workloads = baseline.get("workloads", {})
    candidate_workloads = candidate.get("workloads", {})
    for name, base in sorted(baseline_workloads.items()):
        mine = candidate_workloads.get(name)
        if mine is None:
            report._fail(f"{name}: workload missing from candidate")
            continue
        for section in ("determinism", "latency", "counts"):
            if mine.get(section) == base.get(section):
                report._note(f"{name}.{section}: exact match")
            else:
                report._fail(
                    f"{name}.{section}: simulated results diverged "
                    f"({_diff_hint(mine.get(section), base.get(section))})")
        if not check_wall:
            continue
        for path in WALL_METRICS:
            metric = ".".join(path)
            base_value = _dig(base, *path)
            mine_value = _dig(mine, *path)
            if base_value is None or mine_value is None:
                continue
            mine_value = mine_value / speed
            ratio = (mine_value / base_value) if base_value else 1.0
            delta = f"{(ratio - 1) * 100:+.1f}%"
            if mine_value > base_value * (1.0 + tolerance):
                report._fail(
                    f"{name}.{metric}: {mine_value:.0f} vs baseline "
                    f"{base_value:.0f} ({delta}, allowed "
                    f"+{tolerance * 100:.0f}%)")
            else:
                report._note(f"{name}.{metric}: {delta} vs baseline")
    if not check_wall:
        report.lines.append(
            "  note wall/throughput skipped (environment fingerprint "
            "differs from the baseline's)")
    return report


def _diff_hint(mine: Any, base: Any) -> str:
    """The first differing key, for actionable failure lines."""
    if isinstance(mine, dict) and isinstance(base, dict):
        for key in sorted(set(mine) | set(base)):
            if mine.get(key) != base.get(key):
                return (f"first diff at {key!r}: {mine.get(key)!r} "
                        f"vs {base.get(key)!r}")
    return f"{mine!r} vs {base!r}"
