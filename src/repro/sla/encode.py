"""State encoding with exclusivity sets, and the Configuration Register
layout.

"The efficient state encoding of a chart involves the generation of
exclusivity sets, which was first described in [5]" (Drusinsky's single-block
state assignment).  The idea: children of an OR-state can never be active
simultaneously — they form an exclusivity set and may share encoding bits —
while the regions of an AND-state are concurrently active and need disjoint
bits.  Recursively:

* a basic state needs 0 bits;
* an OR-state needs ``ceil(log2(n))`` selector bits plus the *maximum* of
  its children's widths (children overlay the same suffix field);
* an AND-state needs the *sum* of its regions' widths.

A state's activity is then a conjunction of equality constraints on selector
fields along its root path — exactly the AND-plane terms the SLA needs.

The CR (Fig. 1) holds ``E0..Ek`` (events), ``C0..Cj`` (conditions) and
``S0..Sl`` (the state field): this module assigns every signal and state its
bit position(s).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.statechart.model import Chart, StateKind


@dataclass(frozen=True)
class FieldConstraint:
    """``value`` must sit in the ``width`` bits starting at ``offset``."""

    offset: int
    width: int
    value: int

    def matches(self, bits: int) -> bool:
        mask = (1 << self.width) - 1
        return (bits >> self.offset) & mask == self.value


@dataclass
class StateEncoding:
    """The exclusivity-set (binary) encoding of a chart's state tree."""

    chart: Chart
    width: int
    #: per state: the selector constraints that make it active
    constraints: Dict[str, Tuple[FieldConstraint, ...]]

    def is_active(self, state: str, bits: int) -> bool:
        return all(c.matches(bits) for c in self.constraints[state])

    def active_states(self, bits: int) -> FrozenSet[str]:
        return frozenset(s for s in self.constraints
                         if self.is_active(s, bits))

    def encode(self, configuration: Iterable[str]) -> int:
        """Bits for a configuration (a consistent set of active states)."""
        bits = 0
        for state in configuration:
            for constraint in self.constraints[state]:
                bits |= constraint.value << constraint.offset
        return bits

    def term_literals(self, state: str) -> List[Tuple[int, bool]]:
        """(bit index, required value) pairs asserting *state* is active —
        the AND-plane literals of the SLA."""
        literals: List[Tuple[int, bool]] = []
        for constraint in self.constraints[state]:
            for bit in range(constraint.width):
                literals.append((constraint.offset + bit,
                                 bool((constraint.value >> bit) & 1)))
        return literals


def _selector_width(n_children: int) -> int:
    return 0 if n_children <= 1 else math.ceil(math.log2(n_children))


def binary_encoding(chart: Chart) -> StateEncoding:
    """Drusinsky-style exclusivity-set encoding of the chart."""
    constraints: Dict[str, List[FieldConstraint]] = {}

    def width_of(name: str) -> int:
        state = chart.states[name]
        if not state.children:
            return 0
        child_widths = [width_of(c) for c in state.children]
        if state.kind is StateKind.AND:
            return sum(child_widths)
        return _selector_width(len(state.children)) + max(child_widths)

    def assign(name: str, offset: int,
               inherited: Tuple[FieldConstraint, ...]) -> None:
        constraints[name] = list(inherited)
        state = chart.states[name]
        if not state.children:
            return
        if state.kind is StateKind.AND:
            cursor = offset
            for child in state.children:
                assign(child, cursor, inherited)
                cursor += width_of(child)
            return
        selector = _selector_width(len(state.children))
        for index, child in enumerate(state.children):
            child_constraints = inherited
            if selector:
                child_constraints = inherited + (
                    FieldConstraint(offset, selector, index),)
            assign(child, offset + selector, child_constraints)

    assign(chart.root, 0, ())
    return StateEncoding(
        chart, width_of(chart.root),
        {name: tuple(cs) for name, cs in constraints.items()})


def onehot_encoding(chart: Chart) -> StateEncoding:
    """One flip-flop per non-root state (the simple alternative)."""
    constraints: Dict[str, Tuple[FieldConstraint, ...]] = {chart.root: ()}
    names = [s.name for s in chart.preorder() if s.name != chart.root]
    for index, name in enumerate(names):
        constraints[name] = (FieldConstraint(index, 1, 1),)
    return StateEncoding(chart, len(names), constraints)


@dataclass
class CrLayout:
    """Bit assignment of the Configuration Register."""

    chart: Chart
    encoding: StateEncoding
    event_bits: Dict[str, int]
    condition_bits: Dict[str, int]
    state_offset: int

    @property
    def width(self) -> int:
        return self.state_offset + self.encoding.width

    def signal_bit(self, name: str) -> int:
        if name in self.event_bits:
            return self.event_bits[name]
        return self.condition_bits[name]

    def state_literals(self, state: str) -> List[Tuple[int, bool]]:
        """State-activity literals shifted into CR bit positions."""
        return [(self.state_offset + bit, value)
                for bit, value in self.encoding.term_literals(state)]

    def pack(self, events: Iterable[str], conditions: Iterable[str],
             configuration: Iterable[str]) -> int:
        """Assemble a CR value from symbolic contents."""
        bits = 0
        for event in events:
            bits |= 1 << self.event_bits[event]
        for condition in conditions:
            bits |= 1 << self.condition_bits[condition]
        bits |= self.encoding.encode(configuration) << self.state_offset
        return bits

    def unpack(self, bits: int):
        """(events, conditions, active states) from a CR value."""
        events = {name for name, bit in self.event_bits.items()
                  if (bits >> bit) & 1}
        conditions = {name for name, bit in self.condition_bits.items()
                      if (bits >> bit) & 1}
        states = self.encoding.active_states(bits >> self.state_offset)
        return events, conditions, states

    def input_names(self) -> List[str]:
        """One name per CR bit, LSB first (for BLIF/VHDL emission)."""
        names = [""] * self.width
        for event, bit in self.event_bits.items():
            names[bit] = f"ev_{event}"
        for condition, bit in self.condition_bits.items():
            names[bit] = f"cond_{condition}"
        for index in range(self.encoding.width):
            names[self.state_offset + index] = f"state_{index}"
        return names


def cr_layout(chart: Chart, onehot: bool = False) -> CrLayout:
    """Lay out the CR: events first, then conditions, then the state field
    (matching the E0:Ek / C0:Cj / S0:Sl split of Fig. 1)."""
    encoding = onehot_encoding(chart) if onehot else binary_encoding(chart)
    event_bits = {name: index for index, name in enumerate(chart.events)}
    condition_bits = {name: len(event_bits) + index
                      for index, name in enumerate(chart.conditions)}
    state_offset = len(event_bits) + len(condition_bits)
    return CrLayout(chart, encoding, event_bits, condition_bits, state_offset)
