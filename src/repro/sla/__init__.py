"""Statechart Logic Array synthesis: state encoding, PLA generation, BLIF.

Public API::

    from repro.sla import synthesize, cr_layout, emit_blif
"""

from repro.sla.blif import (
    BlifError,
    BlifModel,
    emit_blif,
    evaluate_pla_via_blif,
    parse_blif,
)
from repro.sla.encode import (
    CrLayout,
    FieldConstraint,
    StateEncoding,
    binary_encoding,
    cr_layout,
    onehot_encoding,
)
from repro.sla.synth import Pla, ProductTerm, SynthesisError, synthesize
from repro.sla.table import TatError, TransitionAddressTable

__all__ = [
    "BlifError", "BlifModel", "CrLayout", "FieldConstraint", "Pla",
    "ProductTerm", "StateEncoding", "SynthesisError", "TatError",
    "TransitionAddressTable", "binary_encoding", "cr_layout", "emit_blif",
    "evaluate_pla_via_blif", "onehot_encoding", "parse_blif", "synthesize",
]
