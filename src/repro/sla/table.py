"""The Transition Address Table (Fig. 1).

"The SLA generates the addresses of the transitions to be executed according
to the statechart description. […] Transitions are scheduled until the
Transition Address Table is empty."

Statically the TAT maps each transition index to the program-memory address
of its *transition stub* (a CALL into the action routine followed by TRET).
At run time it acts as the queue the scheduler drains into the TEPs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional


class TatError(Exception):
    """Raised on malformed table usage."""


@dataclass
class TransitionAddressTable:
    """Static address map + runtime FIFO of pending transitions."""

    #: transition index -> program entry label
    entries: Dict[int, str] = field(default_factory=dict)
    _pending: Deque[int] = field(default_factory=deque)

    # -- static side ------------------------------------------------------
    def bind(self, transition_index: int, entry_label: str) -> None:
        if transition_index in self.entries:
            raise TatError(f"transition {transition_index} already bound")
        self.entries[transition_index] = entry_label

    def entry(self, transition_index: int) -> str:
        try:
            return self.entries[transition_index]
        except KeyError:
            raise TatError(
                f"transition {transition_index} has no bound address") from None

    @property
    def size(self) -> int:
        return len(self.entries)

    # -- runtime side ---------------------------------------------------------
    def post(self, transition_indices: Iterable[int]) -> None:
        """The SLA writes the enabled transitions of this configuration."""
        for index in transition_indices:
            if index not in self.entries:
                raise TatError(f"posting unbound transition {index}")
            self._pending.append(index)

    def pop(self) -> Optional[int]:
        """The scheduler hands the next transition to a TEP."""
        return self._pending.popleft() if self._pending else None

    @property
    def empty(self) -> bool:
        return not self._pending

    @property
    def pending(self) -> List[int]:
        return list(self._pending)

    def clear(self) -> None:
        self._pending.clear()
