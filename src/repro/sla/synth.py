"""SLA synthesis: chart → PLA product terms (Fig. 1).

"The SLA … implements the semantics of the chart, and acts as a scheduler
for the transitions.  The SLA executes transitions based on the contents of
the CR.  The SLA generates four sets of outputs: It resets the event parts
of the CR …, it produces a set of signals for the Transition Address Table,
and updates the state part of the CR under the control of the guard signals
G0..Gm."

We synthesize a two-level (PLA) network over the CR bits:

* one output ``t<i>`` per transition: asserted when the source state is
  active and the trigger/guard expression holds (the expression's
  sum-of-products becomes one AND-plane row per product);
* one output ``evreset_<e>`` per event: events are consumed after each
  configuration cycle;
* the guard outputs ``g<m>``: conflict arbitration (outer scope wins,
  declaration order ties) is emitted as priority terms — output ``t<i>``
  suppressed by any conflicting higher-priority transition is listed in
  :attr:`Pla.guards` so the scheduler (hardware: extra decode logic) can
  apply them.

The functional reference for all of this is the statechart interpreter; the
equivalence is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.sla.encode import CrLayout, cr_layout
from repro.statechart.model import Chart, Transition


@dataclass(frozen=True)
class ProductTerm:
    """One AND-plane row: literals are (CR bit, required value)."""

    literals: Tuple[Tuple[int, bool], ...]

    def matches(self, bits: int) -> bool:
        return all(((bits >> bit) & 1) == int(value)
                   for bit, value in self.literals)

    @property
    def n_literals(self) -> int:
        return len(self.literals)


@dataclass
class Pla:
    """The synthesized SLA network."""

    layout: CrLayout
    #: per transition index: its product terms (OR-plane row)
    transition_terms: Dict[int, List[ProductTerm]]
    #: per transition index: the higher-priority transition indices that
    #: suppress it (the guard-signal network G0..Gm)
    guards: Dict[int, FrozenSet[int]]

    @property
    def product_terms(self) -> int:
        return sum(len(terms) for terms in self.transition_terms.values())

    @property
    def literal_count(self) -> int:
        return sum(term.n_literals
                   for terms in self.transition_terms.values()
                   for term in terms)

    def raw_enabled(self, cr_bits: int) -> List[int]:
        """Transition indices whose PLA output is asserted (pre-guard)."""
        return [index for index, terms in self.transition_terms.items()
                if any(term.matches(cr_bits) for term in terms)]

    def enabled(self, cr_bits: int) -> List[int]:
        """Transition indices after guard arbitration — what the Transition
        Address Table receives."""
        raw = set(self.raw_enabled(cr_bits))
        return sorted(index for index in raw
                      if not (self.guards[index] & raw))

    def output_names(self) -> List[str]:
        return [f"t{index}" for index in sorted(self.transition_terms)]

    def as_products_by_output(self):
        """For the VHDL/BLIF emitters: output name -> (pos, neg) name pairs."""
        input_names = self.layout.input_names()
        result = {}
        for index, terms in self.transition_terms.items():
            rendered = []
            for term in terms:
                positive = [input_names[bit] for bit, value in term.literals
                            if value]
                negative = [input_names[bit] for bit, value in term.literals
                            if not value]
                rendered.append((positive, negative))
            result[f"t{index}"] = rendered
        return result


class SynthesisError(Exception):
    """Raised when a chart cannot be synthesized (e.g. unresolved refs)."""


def _expression_terms(expression, layout: CrLayout):
    """Sum-of-products of a trigger/guard over CR bit literals."""
    if expression is None:
        return [tuple()]
    products = expression.to_sop()
    if not products:
        # contradictory expression: transition can never fire
        return []
    rendered = []
    for positive, negative in products:
        literals = [(layout.signal_bit(name), True) for name in sorted(positive)]
        literals += [(layout.signal_bit(name), False) for name in sorted(negative)]
        rendered.append(tuple(literals))
    return rendered


def synthesize(chart: Chart, onehot: bool = False) -> Pla:
    """Build the SLA PLA for *chart*."""
    from repro.statechart.model import StateKind

    for state in chart.states.values():
        if state.kind is StateKind.REF:
            raise SynthesisError(
                f"chart {chart.name!r} still contains unresolved reference "
                f"{state.name!r}; run resolve_references() first")

    layout = cr_layout(chart, onehot=onehot)
    transition_terms: Dict[int, List[ProductTerm]] = {}

    for transition in chart.transitions:
        state_literals = layout.state_literals(transition.source)
        terms: List[ProductTerm] = []
        trigger_products = _expression_terms(transition.trigger, layout)
        guard_products = _expression_terms(transition.guard, layout)
        for trigger_term in trigger_products:
            for guard_term in guard_products:
                combined = dict(state_literals)
                consistent = True
                for bit, value in trigger_term + guard_term:
                    if combined.get(bit, value) != value:
                        consistent = False
                        break
                    combined[bit] = value
                if consistent:
                    terms.append(ProductTerm(tuple(sorted(combined.items()))))
        transition_terms[transition.index] = terms

    guards = _guard_network(chart)
    return Pla(layout, transition_terms, guards)


def _guard_network(chart: Chart) -> Dict[int, FrozenSet[int]]:
    """Which transitions suppress which (outer scope wins, then index)."""
    guards: Dict[int, Set[int]] = {t.index: set() for t in chart.transitions}
    transitions = chart.transitions
    for a in transitions:
        scope_a = chart.transition_scope(a)
        for b in transitions:
            if a.index == b.index:
                continue
            scope_b = chart.transition_scope(b)
            related = (chart.is_ancestor(scope_a, scope_b)
                       or chart.is_ancestor(scope_b, scope_a))
            if not related:
                continue
            # b beats a if b's scope is strictly outer, or same depth
            # with a smaller index
            depth_a = chart.depth(scope_a)
            depth_b = chart.depth(scope_b)
            if depth_b < depth_a or (depth_b == depth_a and b.index < a.index):
                guards[a.index].add(b.index)
    return {index: frozenset(values) for index, values in guards.items()}
