"""Resilience: checkpoint/restore and a supervised PSCP machine farm.

``snapshot``
    Versioned, deterministic, JSON-serializable capture of a machine's
    complete architectural state, with byte-identical round-trip restore.
``queue``
    Bounded admission queues with backpressure, priority load shedding,
    and per-worker circuit breakers.
``supervisor``
    A farm of N supervised machines over a shared event stream with
    restart-from-snapshot and conservation-checked accounting.
"""

from repro.resil.snapshot import (
    SNAPSHOT_VERSION,
    MachineSnapshot,
    SnapshotError,
    restore_machine,
    snapshot_machine,
)
from repro.resil.queue import (
    Admission,
    BoundedQueue,
    CircuitBreaker,
    WorkItem,
)
from repro.resil.supervisor import (
    FarmLedger,
    FarmReport,
    MachineWorker,
    RestartPolicy,
    Supervisor,
    generate_event_stream,
)

__all__ = [
    "SNAPSHOT_VERSION",
    "MachineSnapshot",
    "SnapshotError",
    "snapshot_machine",
    "restore_machine",
    "WorkItem",
    "Admission",
    "BoundedQueue",
    "CircuitBreaker",
    "RestartPolicy",
    "FarmLedger",
    "FarmReport",
    "MachineWorker",
    "Supervisor",
    "generate_event_stream",
]
