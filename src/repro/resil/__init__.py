"""Resilience: checkpoint/restore and a supervised PSCP machine farm.

``snapshot``
    Versioned, deterministic, JSON-serializable capture of a machine's
    complete architectural state, with byte-identical round-trip restore
    and atomic snapshot-file IO.
``queue``
    Bounded admission queues with backpressure, priority load shedding,
    and per-worker circuit breakers.
``supervisor``
    A farm of N supervised machines over a shared event stream with
    restart-from-snapshot and conservation-checked accounting.
``transport``
    Length-prefixed JSON frames between farm processes: per-request
    timeouts, seeded-backoff retries, heartbeat probes.
``delta``
    Delta-encoded incremental snapshots against the last full
    :class:`MachineSnapshot`, with compaction and byte-identical
    reconstruction.
``standby``
    Hot-standby replicas replaying the stream one checkpoint behind, so
    escalation becomes promotion.
``shardfarm``
    The distributed farm: a :class:`ShardSupervisor` over N worker
    *processes* with failover, respawn and process-kill chaos, keeping
    the conservation ledger global.
"""

from repro.resil.snapshot import (
    SNAPSHOT_VERSION,
    MachineSnapshot,
    SnapshotError,
    read_snapshot,
    restore_machine,
    snapshot_machine,
    write_snapshot,
)
from repro.resil.queue import (
    Admission,
    BoundedQueue,
    CircuitBreaker,
    WorkItem,
)
from repro.resil.supervisor import (
    FarmLedger,
    FarmReport,
    MachineWorker,
    RestartPolicy,
    Supervisor,
    generate_event_stream,
)
from repro.resil.transport import (
    Channel,
    FrameTooLarge,
    RetryPolicy,
    TransportClosed,
    TransportError,
    TransportTimeout,
    channel_pair,
    encode_frame,
    probe,
)
from repro.resil.delta import (
    DELTA_VERSION,
    DeltaChain,
    DeltaSnapshot,
    apply_delta,
    diff_snapshots,
    snapshot_fingerprint,
)
from repro.resil.standby import StandbyLog, StandbyReplica
from repro.resil.shardfarm import (
    ShardConfig,
    ShardFarmError,
    ShardFarmReport,
    ShardSupervisor,
)

__all__ = [
    "SNAPSHOT_VERSION",
    "MachineSnapshot",
    "SnapshotError",
    "snapshot_machine",
    "restore_machine",
    "write_snapshot",
    "read_snapshot",
    "WorkItem",
    "Admission",
    "BoundedQueue",
    "CircuitBreaker",
    "RestartPolicy",
    "FarmLedger",
    "FarmReport",
    "MachineWorker",
    "Supervisor",
    "generate_event_stream",
    "Channel",
    "RetryPolicy",
    "TransportError",
    "TransportClosed",
    "TransportTimeout",
    "FrameTooLarge",
    "channel_pair",
    "encode_frame",
    "probe",
    "DELTA_VERSION",
    "DeltaSnapshot",
    "DeltaChain",
    "diff_snapshots",
    "apply_delta",
    "snapshot_fingerprint",
    "StandbyLog",
    "StandbyReplica",
    "ShardConfig",
    "ShardFarmError",
    "ShardFarmReport",
    "ShardSupervisor",
]
