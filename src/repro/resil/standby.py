"""Hot-standby replicas: replay one checkpoint behind, promote on death.

A critical shard's failure story without a standby is *rewind and
replay*: respawn a process, restore the last checkpoint, re-run the
in-flight items — a recovery whose latency grows with checkpoint spacing.
A :class:`~repro.resil.shardfarm.ShardSupervisor` started with
``standby=True`` instead pairs every primary with a **hot standby
process** running this module's loop:

* the supervisor **tees** every item the primary *processed* (in
  processed order) to the standby, where it lands in the replay buffer —
  the **delta log**;
* at every primary checkpoint the supervisor sends ``advance``: the
  standby replays buffered items up to the checkpoint watermark, so its
  machine state deliberately trails the primary by **exactly one
  checkpoint**, and then proves itself — its own snapshot fingerprint
  must equal the fingerprint of the snapshot the supervisor
  reconstructed from the primary's (delta-encoded) checkpoint.  Replay
  determinism and delta reconstruction verify each other continuously;
* when the primary dies, escalation becomes **promotion**: the standby
  drains the rest of its delta log (reaching the primary's last
  acknowledged state), replays the in-flight items the supervisor still
  holds, emits a fresh full checkpoint, and takes over as the shard's
  primary — same process, same socket, no rewind.

The standby never talks to the primary directly; the supervisor owns the
stream and the ledger, Harel-style: inter-object coordination lives in
one place and the replicas stay sequential and isolated.
"""

from __future__ import annotations

import os
import signal
from typing import Any, Dict, List, Optional

from repro.resil.snapshot import snapshot_machine
from repro.resil.transport import Channel, TransportClosed


class StandbyLog:
    """The delta log: teed items buffered between checkpoints.

    ``append`` takes item documents in the primary's processed order;
    ``take_through`` hands back the items needed to reach a watermark
    (a cumulative processed count), and ``drain`` the whole remainder.
    """

    def __init__(self) -> None:
        self._items: List[Dict[str, Any]] = []
        self.teed = 0
        self.replayed = 0

    def __len__(self) -> int:
        return len(self._items)

    def append(self, items: List[Dict[str, Any]]) -> None:
        self._items.extend(items)
        self.teed += len(items)

    def take_through(self, watermark: int) -> List[Dict[str, Any]]:
        """Items to replay so that ``replayed`` reaches *watermark*."""
        need = max(0, watermark - self.replayed)
        batch, self._items = self._items[:need], self._items[need:]
        self.replayed += len(batch)
        return batch

    def drain(self) -> List[Dict[str, Any]]:
        batch, self._items = self._items, []
        self.replayed += len(batch)
        return batch


class StandbyReplica:
    """Process-side state of one hot standby."""

    def __init__(self, system, config) -> None:
        from repro.fault.guard import MachineGuard

        self.system = system
        self.config = config
        self.machine = system.make_machine()
        self.machine.attach_guard(MachineGuard(
            max_retries=config.guard_retries,
            escalate_unrecoverable=True))
        self.log = StandbyLog()
        self.verified = 0
        self.divergences = 0

    # -- replay ------------------------------------------------------------
    def _replay(self, items: List[Dict[str, Any]]) -> None:
        for item in items:
            self.machine.step(tuple(item["events"]))

    def fingerprint(self) -> str:
        from repro.resil.delta import snapshot_fingerprint

        return snapshot_fingerprint(
            snapshot_machine(self.machine, include_attachments=False))

    # -- operations --------------------------------------------------------
    def on_tee(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self.log.append(message["items"])
        return {"op": "ok", "buffered": len(self.log)}

    def on_advance(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Replay through the checkpoint watermark, then prove the state."""
        self._replay(self.log.take_through(message["through"]))
        verified: Optional[bool] = None
        expected = message.get("fingerprint")
        if expected is not None:
            verified = self.fingerprint() == expected
            if verified:
                self.verified += 1
            else:
                self.divergences += 1
        return {"op": "advanced", "replayed": self.log.replayed,
                "buffered": len(self.log), "verified": verified}

    def on_promote(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Drain the delta log, replay the in-flight items, take over.

        ``retry`` items were accepted by the dead primary but never
        processed; ``fresh`` items were dispatched but never acknowledged.
        Both are (re)played here — the supervisor sorts out the ledger
        (retry items keep their acceptance, fresh ones gain it).
        """
        from repro.fault.guard import MachineEscalation
        from repro.pscp.machine import MachineError

        self._replay(self.log.drain())
        processed: List[int] = []
        dropped: List[List[Any]] = []
        escalation: Optional[str] = None
        pending = list(message.get("retry", ())) + \
            list(message.get("fresh", ()))
        for item in pending:
            if escalation is not None:
                dropped.append([item["seq"], "machine-escalation"])
                continue
            try:
                self.machine.step(tuple(item["events"]))
            except (MachineEscalation, MachineError) as exc:
                escalation = str(exc)
                dropped.append([item["seq"], "machine-escalation"])
                continue
            processed.append(item["seq"])
        snapshot = snapshot_machine(self.machine,
                                    include_attachments=False)
        return {
            "op": "promoted",
            "replayed": self.log.replayed,
            "processed": processed,
            "dropped": dropped,
            "escalation": escalation,
            "checkpoint": {"kind": "full", "doc": snapshot.to_json(),
                           "processed": self.log.replayed + len(processed),
                           "cycle": snapshot.cycle_count},
        }


def standby_main(child_sock, system, config, close_socks=()) -> None:
    """Entry point of a standby process (forked by the supervisor).

    Serves ``tee``/``advance``/``ping`` until either a ``promote`` —
    after which it switches into the primary serve loop and handles
    ``dispatch`` traffic — or a ``stop``/``die``/supervisor-EOF exit.
    """
    for sock in close_socks:
        try:
            sock.close()
        except OSError:
            pass
    channel = Channel(child_sock, max_frame=config.max_frame,
                      name="supervisor")
    replica = StandbyReplica(system, config)
    channel.send({"op": "ready", "role": "standby"})
    try:
        while True:
            try:
                message = channel.recv()
            except TransportClosed:
                os._exit(0)
            op = message.get("op")
            if op == "tee":
                channel.send(replica.on_tee(message))
            elif op == "advance":
                channel.send(replica.on_advance(message))
            elif op == "ping":
                channel.send({"op": "pong",
                              "token": message.get("token")})
            elif op == "promote":
                reply = replica.on_promote(message)
                channel.send(reply)
                # take over as the shard's primary on the same socket
                from repro.resil.shardfarm import WorkerCore, serve_primary

                core = WorkerCore(replica.system, replica.config,
                                  machine=replica.machine,
                                  processed=reply["checkpoint"]["processed"])
                serve_primary(channel, core, announce_ready=False)
                os._exit(0)
            elif op == "die":
                # chaos: an uncatchable, cleanup-free death, mid-standby
                os.kill(os.getpid(), signal.SIGKILL)
            elif op == "stop":
                channel.send({"op": "bye",
                              "transport": channel.describe(),
                              "verified": replica.verified,
                              "divergences": replica.divergences})
                os._exit(0)
            else:
                channel.send({"op": "error",
                              "detail": f"unknown op {op!r}"})
    except Exception as exc:  # report, then die visibly
        try:
            channel.send({"op": "error", "detail": f"{type(exc).__name__}: "
                                                   f"{exc}"})
        except Exception:
            pass
        os._exit(1)
