"""Delta-encoded incremental snapshots against a full machine snapshot.

High-frequency checkpointing and hot-standby sync must not cost
O(machine state) per checkpoint: between two nearby configuration cycles
only a handful of snapshot fields change (the CR parts, a few executor
registers, the counters).  A :class:`DeltaSnapshot` records exactly those
changes as **path → value operations** against a named base snapshot, and
:func:`apply_delta` reconstructs the target **byte-identically** — the
reconstruction is verified against the base fingerprint before a single
op is applied, and carries the target fingerprint so the receiver can
prove the rebuild.

Paths address into the snapshot's JSON document: dict keys joined with
``/``, list indices as bare integers (``executor/registers/3``).  Lists of
equal length diff element-wise; lists that changed length are replaced
wholesale (snapshot lists are either fixed-size register files or
append-mostly logs, so this stays compact).

:class:`DeltaChain` is the checkpoint producer's policy: it emits a full
snapshot first, deltas afterwards, and **compacts** (emits a fresh full)
whenever the encoded delta stops being meaningfully smaller than the full
document (``compact_ratio``) — the rule that keeps a long chain cheap to
replay and bounds how much history a restore must walk.
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.resil.snapshot import MachineSnapshot, SnapshotError

#: bump when the delta document layout changes
DELTA_VERSION = 1


def snapshot_fingerprint(snapshot: MachineSnapshot) -> str:
    """SHA-256 over the canonical JSON encoding — the identity a delta
    names its base (and target) by."""
    return hashlib.sha256(
        snapshot.to_json_str().encode("utf-8")).hexdigest()


def _document_fingerprint(document: Dict[str, Any]) -> str:
    return hashlib.sha256(
        json.dumps(document, sort_keys=True,
                   separators=(",", ":")).encode("utf-8")).hexdigest()


def _diff(base: Any, target: Any, path: str,
          ops: List[Tuple[str, Any]]) -> None:
    """Append (path, new value) ops turning *base* into *target*."""
    if isinstance(base, dict) and isinstance(target, dict) \
            and set(base) == set(target):
        for key in sorted(target):
            if base[key] != target[key]:
                _diff(base[key], target[key],
                      f"{path}/{key}" if path else key, ops)
        return
    if isinstance(base, list) and isinstance(target, list) \
            and len(base) == len(target):
        changed = [i for i in range(len(base)) if base[i] != target[i]]
        # element-wise only while it is actually sparser than replacement
        if changed and len(changed) <= max(1, len(base) // 2):
            for i in changed:
                _diff(base[i], target[i],
                      f"{path}/{i}" if path else str(i), ops)
            return
        if not changed:
            return
    if base != target:
        ops.append((path, copy.deepcopy(target)))


def _apply_op(document: Dict[str, Any], path: str, value: Any) -> None:
    parts = path.split("/")
    node: Any = document
    for part in parts[:-1]:
        node = node[int(part)] if isinstance(node, list) else node[part]
    leaf = parts[-1]
    if isinstance(node, list):
        node[int(leaf)] = value
    else:
        node[leaf] = value


@dataclass
class DeltaSnapshot:
    """The changes from one :class:`MachineSnapshot` to the next."""

    version: int
    chart: str
    base_cycle: int
    target_cycle: int
    base_fingerprint: str
    target_fingerprint: str
    ops: List[Tuple[str, Any]] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "chart": self.chart,
            "base_cycle": self.base_cycle,
            "target_cycle": self.target_cycle,
            "base_fingerprint": self.base_fingerprint,
            "target_fingerprint": self.target_fingerprint,
            "ops": [[path, value] for path, value in self.ops],
        }

    def to_json_str(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, document: Dict[str, Any]) -> "DeltaSnapshot":
        try:
            version = document["version"]
        except (TypeError, KeyError):
            raise SnapshotError("not a delta snapshot: no version field")
        if version != DELTA_VERSION:
            raise SnapshotError(
                f"delta version {version} is not supported (this build "
                f"reads version {DELTA_VERSION})")
        try:
            return cls(
                version=version,
                chart=document["chart"],
                base_cycle=document["base_cycle"],
                target_cycle=document["target_cycle"],
                base_fingerprint=document["base_fingerprint"],
                target_fingerprint=document["target_fingerprint"],
                ops=[(path, value) for path, value in document["ops"]],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"malformed delta snapshot: {exc}") from None

    @property
    def encoded_bytes(self) -> int:
        return len(self.to_json_str())


def diff_snapshots(base: MachineSnapshot,
                   target: MachineSnapshot) -> DeltaSnapshot:
    """The delta that rebuilds *target* from *base* byte-identically."""
    if base.chart != target.chart:
        raise SnapshotError(
            f"cannot delta across charts: base {base.chart!r}, "
            f"target {target.chart!r}")
    ops: List[Tuple[str, Any]] = []
    _diff(base.to_json(), target.to_json(), "", ops)
    return DeltaSnapshot(
        version=DELTA_VERSION,
        chart=target.chart,
        base_cycle=base.cycle_count,
        target_cycle=target.cycle_count,
        base_fingerprint=snapshot_fingerprint(base),
        target_fingerprint=snapshot_fingerprint(target),
        ops=ops,
    )


def apply_delta(base: MachineSnapshot,
                delta: DeltaSnapshot) -> MachineSnapshot:
    """Rebuild the delta's target from *base*; refuses the wrong base and
    proves the rebuild against the recorded target fingerprint."""
    fingerprint = snapshot_fingerprint(base)
    if fingerprint != delta.base_fingerprint:
        raise SnapshotError(
            f"delta targets base {delta.base_fingerprint[:12]}… at cycle "
            f"{delta.base_cycle}; this snapshot is {fingerprint[:12]}… at "
            f"cycle {base.cycle_count}")
    document = copy.deepcopy(base.to_json())
    for path, value in delta.ops:
        try:
            _apply_op(document, path, copy.deepcopy(value))
        except (KeyError, IndexError, ValueError) as exc:
            raise SnapshotError(
                f"delta op at {path!r} does not fit the base document: "
                f"{exc}") from None
    rebuilt = _document_fingerprint(document)
    if rebuilt != delta.target_fingerprint:
        raise SnapshotError(
            f"delta reconstruction fingerprint {rebuilt[:12]}… does not "
            f"match the recorded target "
            f"{delta.target_fingerprint[:12]}…")
    return MachineSnapshot.from_json(document)


class DeltaChain:
    """Checkpoint-encoding policy: full first, deltas after, compaction.

    ``record(snapshot)`` returns ``("full", document)`` or
    ``("delta", document)``.  A fresh full is emitted when the previous
    delta's encoded size exceeded ``compact_ratio`` of the full document's
    size, or after ``max_deltas`` consecutive deltas — whichever bites
    first.  The consumer (:class:`ShardState` on the supervisor side)
    applies deltas in order to its last full and always holds the current
    state at O(1) history.
    """

    def __init__(self, compact_ratio: float = 0.5,
                 max_deltas: int = 16) -> None:
        if not 0.0 < compact_ratio <= 1.0:
            raise ValueError("compact ratio must be in (0, 1]")
        if max_deltas < 1:
            raise ValueError("max deltas between fulls must be >= 1")
        self.compact_ratio = compact_ratio
        self.max_deltas = max_deltas
        self.last_full: Optional[MachineSnapshot] = None
        self.last_full_bytes = 0
        self.deltas_since_full = 0
        self.fulls_emitted = 0
        self.deltas_emitted = 0
        self.delta_bytes = 0
        self.full_bytes = 0
        self.compactions = 0
        self._compact_next = False

    def record(self, snapshot: MachineSnapshot
               ) -> Tuple[str, Dict[str, Any]]:
        if (self.last_full is None or self._compact_next
                or self.deltas_since_full >= self.max_deltas):
            if self.last_full is not None:
                self.compactions += 1
            return "full", self._emit_full(snapshot)
        delta = diff_snapshots(self.last_full, snapshot)
        encoded = delta.encoded_bytes
        if encoded >= self.compact_ratio * self.last_full_bytes:
            self.compactions += 1
            return "full", self._emit_full(snapshot)
        # the delta stays relative to the last *full*, so the consumer
        # never replays a chain: each delta alone rebuilds the current
        # state from the full it names
        self.deltas_since_full += 1
        self.deltas_emitted += 1
        self.delta_bytes += encoded
        return "delta", delta.to_json()

    def _emit_full(self, snapshot: MachineSnapshot) -> Dict[str, Any]:
        self.last_full = snapshot
        self.last_full_bytes = len(snapshot.to_json_str())
        self.deltas_since_full = 0
        self._compact_next = False
        self.fulls_emitted += 1
        self.full_bytes += self.last_full_bytes
        return snapshot.to_json()

    def describe(self) -> Dict[str, Any]:
        return {
            "fulls": self.fulls_emitted,
            "deltas": self.deltas_emitted,
            "compactions": self.compactions,
            "full_bytes": self.full_bytes,
            "delta_bytes": self.delta_bytes,
        }
