"""Versioned checkpoint/restore for the PSCP machine.

A :class:`MachineSnapshot` captures the *complete architectural state* of a
:class:`~repro.pscp.machine.PscpMachine` at a configuration-cycle boundary:
the CR event/condition/state parts, the TEP's registers, flags, RAM and
condition cache, pending Transition Address Table entries, pending internal
events (raised-event traffic waiting for the next cycle's sample), the port
latches, the condition-cache bus counters, the failed-TEP set and the time
and cycle counters.  Optionally it also captures:

* an attached :class:`~repro.fault.injector.FaultInjector`'s remaining
  faults, armed re-deliveries and stuck ports, and
* an attached :class:`~repro.fault.guard.MachineGuard`'s retry heap, open
  aborts, detection log and counters,
* an attached :class:`~repro.obs.FlightRecorder`'s digested ring (so a
  restore-then-escalate still dumps a complete forensics bundle), and
* a :class:`~repro.pscp.timers.TimerBank` passed alongside the machine,

so that a restored machine produces the *exact same*
:class:`~repro.pscp.machine.MachineStep` sequence as the original from the
snapshot cycle onward — even mid fault campaign (the round-trip property the
tests assert).

Snapshots are JSON documents: :meth:`MachineSnapshot.to_json` /
:meth:`~MachineSnapshot.from_json` round-trip byte-identically through
:meth:`~MachineSnapshot.to_json_str` (canonical key order).  Every document
carries ``SNAPSHOT_VERSION`` plus the chart name and architecture
description; :func:`restore_machine` refuses a snapshot from a different
version, chart or architecture instead of silently corrupting state.

The machine's hot path never sees any of this: snapshotting is a pull-style
read of machine state, so with snapshots unused the per-cycle behaviour is
byte-identical to the pre-snapshot machine (the same zero-overhead
discipline as the tracer and injector hooks).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: bump when the document layout changes; ``restore`` refuses other versions
SNAPSHOT_VERSION = 1


class SnapshotError(Exception):
    """Raised for malformed, incompatible or wrong-version snapshots."""


# ---------------------------------------------------------------------------
# operand / fault (de)serialization
# ---------------------------------------------------------------------------

def _encode_operand(operand) -> Any:
    """JSON-encode a fault target (int, str, None, Mem or Reg operand)."""
    from repro.isa.isa import Mem, Reg

    if operand is None or isinstance(operand, (int, str)):
        return operand
    if isinstance(operand, Mem):
        return {"__op__": "mem", "address": operand.address,
                "space": operand.space.name}
    if isinstance(operand, Reg):
        return {"__op__": "reg", "index": operand.index}
    raise SnapshotError(f"cannot serialize fault target {operand!r}")


def _decode_operand(data) -> Any:
    from repro.isa.arch import StorageClass
    from repro.isa.isa import Mem, Reg

    if not isinstance(data, dict):
        return data
    if data.get("__op__") == "mem":
        return Mem(data["address"], StorageClass[data["space"]])
    if data.get("__op__") == "reg":
        return Reg(data["index"])
    raise SnapshotError(f"unknown operand encoding {data!r}")


def _encode_fault(fault) -> Dict[str, Any]:
    return {"kind": fault.kind, "cycle": fault.cycle,
            "target": _encode_operand(fault.target), "param": fault.param}


def _decode_fault(data: Dict[str, Any]):
    from repro.fault.model import Fault

    return Fault(data["kind"], data["cycle"],
                 _decode_operand(data["target"]), data["param"])


def _encode_injected(record) -> Dict[str, Any]:
    return {"kind": record.kind, "cycle": record.cycle,
            "target": _encode_operand(record.target),
            "detail": record.detail}


def _decode_injected(data: Dict[str, Any]):
    from repro.fault.model import InjectedFault

    return InjectedFault(data["kind"], data["cycle"],
                         _decode_operand(data["target"]), data["detail"])


# ---------------------------------------------------------------------------
# the snapshot document
# ---------------------------------------------------------------------------

@dataclass
class MachineSnapshot:
    """One machine's architectural state at a configuration-cycle boundary.

    Construct with :func:`snapshot_machine` (or
    :meth:`PscpMachine.snapshot`); apply with :func:`restore_machine` (or
    :meth:`PscpMachine.restore`).  The ``guard``/``injector``/``timers``
    sections are optional — ``None`` when the corresponding attachment was
    absent at snapshot time.
    """

    version: int
    chart: str
    arch: str
    cycle_count: int
    time: int
    cr: Dict[str, List[str]]
    pending_internal_events: List[str]
    executor: Dict[str, Any]
    tat_pending: List[int]
    port_latches: Dict[str, int]
    bridge: Dict[str, int]
    failed_teps: List[int]
    timers: Optional[List[Dict[str, Any]]] = None
    injector: Optional[Dict[str, Any]] = None
    guard: Optional[Dict[str, Any]] = None
    #: flight-recorder ring (attachment state); explicitly ``None`` when no
    #: recorder was attached, so a document always states the fact
    flight_recorder: Optional[Dict[str, Any]] = None

    # -- serialization -----------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "chart": self.chart,
            "arch": self.arch,
            "cycle_count": self.cycle_count,
            "time": self.time,
            "cr": self.cr,
            "pending_internal_events": self.pending_internal_events,
            "executor": self.executor,
            "tat_pending": self.tat_pending,
            "port_latches": self.port_latches,
            "bridge": self.bridge,
            "failed_teps": self.failed_teps,
            "timers": self.timers,
            "injector": self.injector,
            "guard": self.guard,
            "flight_recorder": self.flight_recorder,
        }

    def to_json_str(self) -> str:
        """Canonical (sorted-key, compact) JSON — byte-comparable."""
        return json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, document: Dict[str, Any]) -> "MachineSnapshot":
        try:
            version = document["version"]
        except (TypeError, KeyError):
            raise SnapshotError("not a machine snapshot: no version field")
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot version {version} is not supported "
                f"(this build reads version {SNAPSHOT_VERSION})")
        try:
            fields = {name: document[name] for name in (
                "version", "chart", "arch", "cycle_count", "time", "cr",
                "pending_internal_events", "executor", "tat_pending",
                "port_latches", "bridge", "failed_teps", "timers",
                "injector", "guard")}
        except KeyError as exc:
            raise SnapshotError(f"snapshot missing field {exc}") from None
        # optional since its introduction: version-1 documents written
        # before the flight recorder existed simply carried no ring
        fields["flight_recorder"] = document.get("flight_recorder")
        return cls(**fields)

    @classmethod
    def from_json_str(cls, text: str) -> "MachineSnapshot":
        return cls.from_json(json.loads(text))


# ---------------------------------------------------------------------------
# capture
# ---------------------------------------------------------------------------

def snapshot_machine(machine, include_attachments: bool = True,
                     timer_bank=None) -> MachineSnapshot:
    """Capture *machine*'s architectural state (call between steps).

    ``include_attachments`` also captures the state of an attached fault
    injector and guard, so a restored machine continues a fault campaign
    exactly where it stood.  Pass a
    :class:`~repro.pscp.timers.TimerBank` to capture its phase alongside.
    """
    executor = machine.executor
    snap = MachineSnapshot(
        version=SNAPSHOT_VERSION,
        chart=machine.chart.name,
        arch=machine.arch.describe(),
        cycle_count=machine.cycle_count,
        time=machine.time,
        cr={
            "events": sorted(machine.cr.events),
            "conditions": sorted(machine.cr.conditions),
            "configuration": sorted(machine.cr.configuration),
        },
        pending_internal_events=sorted(machine._pending_internal_events),
        executor={
            "acc": executor.acc,
            "op": executor.op,
            "z": executor.z,
            "c": executor.c,
            "n": executor.n,
            "registers": list(executor.registers),
            "internal": {str(a): v for a, v in
                         sorted(executor.internal.items())},
            "external": {str(a): v for a, v in
                         sorted(executor.external.items())},
            "condition_cache": list(executor.condition_cache),
            "events_raised": sorted(executor.events_raised),
            "call_stack": list(executor.call_stack),
            "cycles": executor.cycles,
            "instructions_executed": executor.instructions_executed,
        },
        tat_pending=machine.tat.pending,
        port_latches={str(a): v for a, v in
                      sorted(machine.ports._latches.items())},
        bridge={
            "words_copied_in": machine.cond_cache_bridge.words_copied_in,
            "words_copied_back": machine.cond_cache_bridge.words_copied_back,
            "transfers": machine.cond_cache_bridge.transfers,
        },
        failed_teps=sorted(machine.failed_teps),
    )
    if timer_bank is not None:
        snap.timers = [timer.snapshot_state() for timer in timer_bank.timers]
    if include_attachments:
        if machine.injector is not None:
            snap.injector = _snapshot_injector(machine.injector)
        if machine.guard is not None:
            snap.guard = _snapshot_guard(machine.guard)
        if machine.recorder is not None:
            snap.flight_recorder = machine.recorder.snapshot_state()
    return snap


def _snapshot_injector(injector) -> Dict[str, Any]:
    return {
        "event_faults": [_encode_fault(f) for f in injector._event_faults],
        "cycle_faults": [_encode_fault(f) for f in injector._cycle_faults],
        "dispatch_faults": [_encode_fault(f)
                            for f in injector._dispatch_faults],
        "sla_faults": [_encode_fault(f) for f in injector._sla_faults],
        "reinjections": {str(cycle): sorted(events) for cycle, events in
                         sorted(injector._reinjections.items())},
        "stuck_ports": {str(a): v for a, v in
                        sorted(injector._stuck_ports.items())},
        "injected": [_encode_injected(r) for r in injector.injected],
    }


def _snapshot_guard(guard) -> Dict[str, Any]:
    detections = [
        {"kind": d.kind, "cycle": d.cycle,
         "target": _encode_operand(d.target), "detail": d.detail,
         "recovered": d.recovered}
        for d in guard.detections]
    index_of = {id(d): i for i, d in enumerate(guard.detections)}
    return {
        "detections": detections,
        "open_aborts": {str(t): index_of[id(d)]
                        for t, d in sorted(guard._open_aborts.items())},
        "retry_heap": [list(entry) for entry in sorted(guard._retry_heap)],
        "retry_seq": guard._retry_seq,
        "attempts": {str(t): n for t, n in sorted(guard._attempts.items())},
        "consecutive_illegal": guard._consecutive_illegal,
        "counters": {name: getattr(guard, name) for name in _GUARD_COUNTERS},
    }


_GUARD_COUNTERS = (
    "watchdog_aborts", "retries_scheduled", "retries_succeeded",
    "retries_exhausted", "illegal_configurations", "safe_state_recoveries",
    "tep_failovers", "escalation_count",
)


# ---------------------------------------------------------------------------
# restore
# ---------------------------------------------------------------------------

def restore_machine(machine, snapshot: MachineSnapshot,
                    restore_attachments: bool = True,
                    timer_bank=None) -> None:
    """Load *snapshot* into *machine*, replacing its architectural state.

    The machine must have been built from the same chart and architecture
    (checked by name/description).  ``restore_attachments`` additionally
    loads the snapshot's injector/guard sections into the machine's
    *currently attached* injector/guard — required for byte-identical
    continuation of a fault campaign; the supervised farm restores with
    ``restore_attachments=False`` so a fault that already bit is not
    re-armed after a restart.
    """
    if snapshot.version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {snapshot.version} is not supported "
            f"(this build reads version {SNAPSHOT_VERSION})")
    if snapshot.chart != machine.chart.name:
        raise SnapshotError(
            f"snapshot of chart {snapshot.chart!r} cannot restore a "
            f"{machine.chart.name!r} machine")
    if snapshot.arch != machine.arch.describe():
        raise SnapshotError(
            f"snapshot architecture {snapshot.arch!r} does not match "
            f"machine architecture {machine.arch.describe()!r}")

    machine.cycle_count = snapshot.cycle_count
    machine.time = snapshot.time
    machine.cr.events = set(snapshot.cr["events"])
    machine.cr.conditions = set(snapshot.cr["conditions"])
    machine.cr.configuration = frozenset(snapshot.cr["configuration"])
    machine._pending_internal_events = set(snapshot.pending_internal_events)

    executor = machine.executor
    doc = snapshot.executor
    executor.acc = doc["acc"]
    executor.op = doc["op"]
    executor.z = doc["z"]
    executor.c = doc["c"]
    executor.n = doc["n"]
    executor.registers = list(doc["registers"])
    executor.internal = {int(a): v for a, v in doc["internal"].items()}
    executor.external = {int(a): v for a, v in doc["external"].items()}
    executor.condition_cache = list(doc["condition_cache"])
    executor.events_raised = set(doc["events_raised"])
    executor.call_stack = list(doc["call_stack"])
    executor.cycles = doc["cycles"]
    executor.instructions_executed = doc["instructions_executed"]

    machine.tat.clear()
    machine.tat.post(snapshot.tat_pending)
    machine.ports._latches = {int(a): v for a, v in
                              snapshot.port_latches.items()}
    bridge = machine.cond_cache_bridge
    bridge.words_copied_in = snapshot.bridge["words_copied_in"]
    bridge.words_copied_back = snapshot.bridge["words_copied_back"]
    bridge.transfers = snapshot.bridge["transfers"]

    machine.failed_teps = set(snapshot.failed_teps)
    survivors = [i for i in range(machine.arch.n_teps)
                 if i not in machine.failed_teps]
    machine._available_teps = (survivors if machine.failed_teps else None)

    if timer_bank is not None and snapshot.timers is not None:
        if len(snapshot.timers) != len(timer_bank.timers):
            raise SnapshotError(
                f"snapshot has {len(snapshot.timers)} timer(s), bank has "
                f"{len(timer_bank.timers)}")
        for timer, state in zip(timer_bank.timers, snapshot.timers):
            timer.restore_state(state)

    if restore_attachments:
        if snapshot.injector is not None:
            if machine.injector is None:
                raise SnapshotError(
                    "snapshot carries injector state but the machine has "
                    "no injector attached")
            _restore_injector(machine.injector, snapshot.injector)
        if snapshot.guard is not None:
            if machine.guard is None:
                raise SnapshotError(
                    "snapshot carries guard state but the machine has no "
                    "guard attached")
            _restore_guard(machine.guard, snapshot.guard)
        if snapshot.flight_recorder is not None:
            if machine.recorder is None:
                raise SnapshotError(
                    "snapshot carries flight-recorder state but the "
                    "machine has no recorder attached")
            machine.recorder.restore_state(snapshot.flight_recorder)


def _restore_injector(injector, doc: Dict[str, Any]) -> None:
    injector._event_faults = [_decode_fault(f) for f in doc["event_faults"]]
    injector._cycle_faults = [_decode_fault(f) for f in doc["cycle_faults"]]
    injector._dispatch_faults = [_decode_fault(f)
                                 for f in doc["dispatch_faults"]]
    injector._sla_faults = [_decode_fault(f) for f in doc["sla_faults"]]
    injector._reinjections = {int(cycle): set(events) for cycle, events in
                              doc["reinjections"].items()}
    injector._stuck_ports = {int(a): v for a, v in
                             doc["stuck_ports"].items()}
    injector.injected = [_decode_injected(r) for r in doc["injected"]]
    injector._cycle_log.clear()
    injector.state_touched = False


def _restore_guard(guard, doc: Dict[str, Any]) -> None:
    from repro.fault.guard import Detection

    guard.detections = [
        Detection(d["kind"], d["cycle"], _decode_operand(d["target"]),
                  d["detail"], recovered=d["recovered"])
        for d in doc["detections"]]
    guard._open_aborts = {int(t): guard.detections[i]
                          for t, i in doc["open_aborts"].items()}
    guard._retry_heap = [tuple(entry) for entry in doc["retry_heap"]]
    guard._retry_seq = doc["retry_seq"]
    guard._attempts = {int(t): n for t, n in doc["attempts"].items()}
    guard._consecutive_illegal = doc["consecutive_illegal"]
    for name in _GUARD_COUNTERS:
        setattr(guard, name, doc["counters"][name])
    guard._cycle_log.clear()


def write_snapshot(snapshot: MachineSnapshot, path: str) -> None:
    """Write a snapshot file **atomically** (temp file + ``os.replace``).

    A worker killed mid-checkpoint leaves either the previous snapshot or
    none — never a torn JSON file that poisons the next restore.
    """
    import os

    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as handle:
            handle.write(snapshot.to_json_str())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_snapshot(path: str) -> MachineSnapshot:
    """Load a snapshot file, attributing torn or corrupt files honestly."""
    import json

    with open(path) as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SnapshotError(
                f"snapshot file {path!r} is truncated or corrupt (not "
                f"valid JSON at line {exc.lineno} column {exc.colno}): "
                f"{exc.msg}") from None
    return MachineSnapshot.from_json(document)
