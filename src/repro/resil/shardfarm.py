"""A distributed farm: the supervisor sharded across OS processes.

The paper scales by adding TEPs inside one PSCP; the ROADMAP's next rung
shards the whole supervised farm across **worker processes**, ConPro-style
— isolated sequential workers exchanging typed frames over channels
(:mod:`repro.resil.transport`), with one :class:`ShardSupervisor` owning
the stream, the routing and the global conservation ledger
(Harel-style inter-object coordination in exactly one place).

Topology and failure story
--------------------------

* ``N`` **shards**, each a forked primary process wrapping the familiar
  worker loop — a :class:`~repro.resil.queue.BoundedQueue`, a machine
  with a guard, and checkpoint-every-K items encoded through a
  :class:`~repro.resil.delta.DeltaChain` (full snapshot first, cheap
  deltas after, compaction when deltas stop paying);
* work routes by **shard key** (``seq % N``); a dead or backing-off
  shard's traffic **reroutes** to the next live shard (counted and
  visible in the report), and when nothing is live the item is rejected
  with a reason — degraded, attributed, never hung;
* the supervisor detects a dead worker by the **EOF** its kill leaves on
  the channel and a hung worker by **missed heartbeats** (bounded
  per-request timeouts; ``miss_threshold`` misses and the process is
  SIGKILLed and handled as dead);
* recovery is **promotion** when the shard has a hot standby
  (:mod:`repro.resil.standby`): the standby drains its delta log and
  takes over on its own socket — no rewind.  Without a standby the
  supervisor **respawns** the primary from the last checkpoint it
  reconstructed from the delta stream (bounded restarts with
  seeded-jitter backoff), and past the restart budget the shard fails
  permanently: queued work is shed ``shard-lost``, in-dispatch work is
  rejected ``shard-lost``, every item attributed;
* **chaos** is a seeded :class:`~repro.fault.model.ProcessKill` plan:
  at the planned tick the dispatch carries ``kill_after=j`` and the
  worker SIGKILLs *itself* mid-dispatch after processing ``j`` items —
  a real uncatchable death at a deterministic stream position, so two
  runs with the same seed produce byte-identical per-shard ledgers.

Everything the supervisor counts lands in the same conservation-checked
:class:`~repro.resil.supervisor.FarmLedger` the single-process farm uses:
``submitted = accepted + rejected + in-dispatch`` and ``accepted =
processed + shed + queued`` hold at every sample and at the end.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.resil.delta import (
    DeltaChain,
    DeltaSnapshot,
    apply_delta,
    snapshot_fingerprint,
)
from repro.resil.queue import (
    BoundedQueue,
    REJECT_QUEUE_FULL,
    REJECT_WORKER_FAILED,
    SHED_OVERLOAD,
    WorkItem,
)
from repro.resil.snapshot import MachineSnapshot, snapshot_machine, \
    restore_machine
from repro.resil.supervisor import FarmLedger, RestartPolicy
from repro.resil.transport import (
    Channel,
    DEFAULT_MAX_FRAME,
    TransportClosed,
    TransportError,
    TransportTimeout,
    channel_pair,
)

#: shard lifecycle states (the worker-process analogues of the
#: single-process worker's RUNNING/BACKOFF/FAILED)
RUNNING = "running"
BACKOFF = "backoff"
FAILED = "failed"

#: attribution reasons specific to the distributed farm
SHED_SHARD_LOST = "shard-lost"
SHED_RESPAWN_OVERFLOW = "respawn-overflow"
SHED_MACHINE_ESCALATION = "machine-escalation"


class ShardFarmError(Exception):
    """Raised for unusable farm configurations."""


@dataclass(frozen=True)
class ShardConfig:
    """Knobs shared by the supervisor and every worker process."""

    queue_capacity: int = 16
    shed_enabled: bool = True
    batch: int = 2
    checkpoint_every: int = 8
    compact_ratio: float = 0.5
    max_deltas: int = 16
    max_frame: int = DEFAULT_MAX_FRAME
    request_timeout: float = 30.0
    start_timeout: float = 60.0
    miss_threshold: int = 3
    guard_retries: int = 1
    sample_every: int = 5
    #: attach a per-worker LineageTracker and ship causal-hop digests in
    #: every result frame (the supervisor stitches them into one DAG)
    lineage: bool = False


def encode_item(item: WorkItem) -> Dict[str, Any]:
    return {"seq": item.seq, "events": list(item.events),
            "priority": item.priority, "origin": item.origin}


def decode_item(doc: Dict[str, Any]) -> WorkItem:
    return WorkItem(doc["seq"], tuple(doc["events"]),
                    doc.get("priority", 0), doc.get("origin", "stream"))


# ---------------------------------------------------------------------------
# process side: the worker core and serve loop
# ---------------------------------------------------------------------------

class WorkerCore:
    """One shard's machine, queue and checkpoint chain (process side)."""

    def __init__(self, system, config: ShardConfig, machine=None,
                 snapshot_doc: Optional[Dict[str, Any]] = None,
                 processed: int = 0) -> None:
        from repro.fault.guard import MachineGuard

        self.system = system
        self.config = config
        if machine is not None:
            self.machine = machine
        else:
            self.machine = system.make_machine()
            self.machine.attach_guard(MachineGuard(
                max_retries=config.guard_retries,
                escalate_unrecoverable=True))
            if snapshot_doc is not None:
                restore_machine(self.machine,
                                MachineSnapshot.from_json(snapshot_doc),
                                restore_attachments=False)
        self.lineage = None
        if config.lineage:
            from repro.obs.lineage import LineageTracker

            self.lineage = LineageTracker(origin="worker")
            self.machine.attach_lineage(self.lineage)
        self.queue = BoundedQueue(config.queue_capacity,
                                  shed_enabled=config.shed_enabled)
        self.chain = DeltaChain(compact_ratio=config.compact_ratio,
                                max_deltas=config.max_deltas)
        self.processed = processed
        self.restarts = 0
        self.escalations: List[str] = []
        self._since_checkpoint = 0

    # -- checkpointing -----------------------------------------------------
    def _checkpoint(self) -> Dict[str, Any]:
        snapshot = snapshot_machine(self.machine,
                                    include_attachments=False)
        kind, doc = self.chain.record(snapshot)
        self._since_checkpoint = 0
        return {"kind": kind, "doc": doc, "processed": self.processed,
                "cycle": snapshot.cycle_count}

    def initial_checkpoint(self) -> Dict[str, Any]:
        """The anchor checkpoint shipped in the ``ready`` handshake."""
        return self._checkpoint()

    def prime_chain(self) -> None:
        """Seed the chain with the current state without emitting (the
        promoted standby already shipped its full in the promote reply)."""
        self.chain.record(snapshot_machine(self.machine,
                                           include_attachments=False))

    # -- dispatch ----------------------------------------------------------
    def on_dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        from repro.fault.guard import MachineEscalation
        from repro.pscp.machine import MachineError

        accepted: List[int] = []
        rejected: List[List[Any]] = []
        shed: List[List[Any]] = []
        for doc in message.get("items", ()):
            item = decode_item(doc)
            admission = self.queue.offer(item)
            if admission.accepted:
                accepted.append(item.seq)
                if admission.shed is not None:
                    shed.append([admission.shed.seq, SHED_OVERLOAD])
            else:
                rejected.append([item.seq,
                                 admission.reason or REJECT_QUEUE_FULL])

        kill_after = message.get("kill_after")
        processed: List[int] = []
        checkpoints: List[Dict[str, Any]] = []
        for _ in range(message.get("batch", self.config.batch)):
            if kill_after is not None and kill_after <= 0:
                os.kill(os.getpid(), signal.SIGKILL)
            item = self.queue.pop()
            if item is None:
                break
            if self.lineage is not None:
                # bind each stepped event to the item's wire trace context
                for name in item.events:
                    self.lineage.note_injection(name, item.trace_id)
            try:
                self.machine.step(item.events)
            except (MachineEscalation, MachineError) as exc:
                # rewind to the last full checkpoint, attribute the item;
                # the machine continues from known-good state
                self.escalations.append(str(exc))
                shed.append([item.seq, SHED_MACHINE_ESCALATION])
                if self.chain.last_full is not None:
                    restore_machine(self.machine, self.chain.last_full,
                                    restore_attachments=False)
                    if self.machine.guard is not None:
                        self.machine.guard.reset_transient()
                    self.restarts += 1
                continue
            self.processed += 1
            processed.append(item.seq)
            if kill_after is not None:
                kill_after -= 1
            self._since_checkpoint += 1
            if self._since_checkpoint >= self.config.checkpoint_every:
                checkpoints.append(self._checkpoint())
        if kill_after is not None:
            # the seeded kill always lands at its tick: even when the
            # queue drained first, die before acknowledging — the reply
            # is never sent and the supervisor sees EOF mid-dispatch
            os.kill(os.getpid(), signal.SIGKILL)
        result = {
            "op": "result",
            "accepted": accepted,
            "rejected": rejected,
            "shed": shed,
            "processed": processed,
            "queue_depth": len(self.queue),
            "checkpoints": checkpoints,
            "sample": {
                "queue_depth": len(self.queue),
                "processed": self.processed,
                "cycle_count": self.machine.cycle_count,
                "restarts": self.restarts,
            },
        }
        if self.lineage is not None:
            # only the delta since the last acked reply rides the frame;
            # hops a SIGKILL takes down with the process are re-derived
            # at the item level by the supervisor (death + redispatch)
            result["lineage"] = self.lineage.drain()
        return result

    def full_snapshot_doc(self) -> Dict[str, Any]:
        return snapshot_machine(self.machine,
                                include_attachments=False).to_json()


def serve_primary(channel: Channel, core: WorkerCore,
                  announce_ready: bool = True) -> None:
    """The primary worker's serve loop (runs inside the forked process)."""
    if announce_ready:
        channel.send({"op": "ready", "role": "primary",
                      "checkpoint": core.initial_checkpoint()})
    try:
        while True:
            try:
                message = channel.recv()
            except TransportClosed:
                os._exit(0)
            op = message.get("op")
            if op == "dispatch":
                channel.send(core.on_dispatch(message))
            elif op == "ping":
                channel.send({"op": "pong",
                              "token": message.get("token")})
            elif op == "snapshot":
                channel.send({"op": "snapshot",
                              "doc": core.full_snapshot_doc()})
            elif op == "hang":
                # test hook: a worker that stops answering without dying
                time.sleep(message.get("seconds", 60.0))
                channel.send({"op": "hung-done"})
            elif op == "die":
                os.kill(os.getpid(), signal.SIGKILL)
            elif op == "stop":
                channel.send({"op": "bye",
                              "transport": channel.describe(),
                              "chain": core.chain.describe(),
                              "restarts": core.restarts,
                              "escalations": core.escalations})
                os._exit(0)
            else:
                channel.send({"op": "error",
                              "detail": f"unknown op {op!r}"})
    except Exception as exc:  # pragma: no cover - defensive
        try:
            channel.send({"op": "error",
                          "detail": f"{type(exc).__name__}: {exc}"})
        except Exception:
            pass
        os._exit(1)


def worker_main(child_sock, system, config: ShardConfig,
                snapshot_doc: Optional[Dict[str, Any]] = None,
                close_socks: Tuple = ()) -> None:
    """Entry point of a primary worker process (forked)."""
    for sock in close_socks:
        try:
            sock.close()
        except OSError:
            pass
    channel = Channel(child_sock, max_frame=config.max_frame,
                      name="supervisor")
    core = WorkerCore(system, config, snapshot_doc=snapshot_doc)
    serve_primary(channel, core)
    os._exit(0)


# ---------------------------------------------------------------------------
# supervisor side
# ---------------------------------------------------------------------------

class ShardHandle:
    """Supervisor-side bookkeeping for one shard."""

    def __init__(self, index: int, name: str) -> None:
        self.index = index
        self.name = name
        self.process = None
        self.channel: Optional[Channel] = None
        self.standby_process = None
        self.standby_channel: Optional[Channel] = None
        self.state = RUNNING
        #: accepted-but-unresolved items, seq -> item document
        self.outstanding: Dict[int, Dict[str, Any]] = {}
        #: dispatched item documents with no acknowledgement yet
        self.unacked: List[Dict[str, Any]] = []
        #: seqs whose acceptance must not be re-counted on a retry reply
        self.exempt: set = set()
        self.pending_retry = False
        self.awaiting_reply = False
        #: worker incarnation (respawns + promotions) — namespaces the
        #: lineage digests so replayed cycles never collide across lives
        self.generation = 0
        #: the last FULL snapshot received (every delta names it as base)
        self.base_full: Optional[MachineSnapshot] = None
        #: the current reconstructed state (base full + latest delta)
        self.last_full: Optional[MachineSnapshot] = None
        self.checkpoint_processed = 0
        self.queue_depth = 0
        self.missed_heartbeats = 0
        self.resume_at: Optional[int] = None
        self.failed_at: Optional[int] = None
        # per-shard ledger (the distributed analogue of worker.describe())
        self.accepted = 0
        self.processed = 0
        self.rejected = 0
        self.shed = 0
        self.respawns = 0
        self.promotions = 0
        self.kills = 0
        self.checkpoints = 0
        self.deltas_applied = 0
        self.standby_verified = 0
        self.standby_divergences = 0
        self.standby_lost = False
        self.rerouted_here = 0
        self.cycle_count = 0
        self.worker_restarts = 0
        self.transport: Optional[Dict[str, Any]] = None
        self.chain_stats: Optional[Dict[str, Any]] = None

    @property
    def live(self) -> bool:
        return self.state == RUNNING and self.channel is not None \
            and not self.awaiting_reply

    @property
    def busy(self) -> bool:
        if self.state == BACKOFF:
            return True
        if self.state == FAILED:
            return False
        return bool(self.outstanding or self.unacked or self.queue_depth
                    or self.pending_retry or self.awaiting_reply)

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "state": self.state,
            "accepted": self.accepted,
            "processed": self.processed,
            "rejected": self.rejected,
            "shed": self.shed,
            "queue_depth": self.queue_depth,
            "respawns": self.respawns,
            "promotions": self.promotions,
            "kills": self.kills,
            "checkpoints": self.checkpoints,
            "deltas_applied": self.deltas_applied,
            "standby_verified": self.standby_verified,
            "standby_divergences": self.standby_divergences,
            "standby_lost": self.standby_lost,
            "rerouted_here": self.rerouted_here,
            "cycle_count": self.cycle_count,
            "worker_restarts": self.worker_restarts,
            "transport": self.transport,
            "chain": self.chain_stats,
        }


@dataclass
class ShardFarmReport:
    """Outcome of one distributed soak, conservation-checked globally."""

    ticks: int
    n_shards: int
    standby: bool
    shards: List[Dict[str, Any]]
    submitted: int
    accepted: int
    processed: int
    rejected: Dict[str, int]
    shed: Dict[str, int]
    queued: int
    in_dispatch: int
    promotions: int
    respawns: int
    permanent_failures: int
    checkpoints: int
    kills_fired: int
    kills_skipped: int
    rerouted: int
    timeline: List[Dict[str, Any]] = field(default_factory=list)
    timeline_dropped: int = 0

    @property
    def in_flight(self) -> int:
        return self.queued + self.in_dispatch

    def conservation(self) -> List[str]:
        """Global no-silent-loss identities; empty when sound."""
        problems: List[str] = []
        rejected = sum(self.rejected.values())
        shed = sum(self.shed.values())
        if self.submitted != self.accepted + rejected + self.in_dispatch:
            problems.append(
                f"submitted {self.submitted} != accepted {self.accepted} "
                f"+ rejected {rejected} + in-dispatch {self.in_dispatch}")
        if self.accepted != self.processed + shed + self.queued:
            problems.append(
                f"accepted {self.accepted} != processed {self.processed} "
                f"+ shed {shed} + queued {self.queued}")
        return problems

    def to_json(self) -> Dict[str, Any]:
        return {
            "ticks": self.ticks,
            "n_shards": self.n_shards,
            "standby": self.standby,
            "shards": self.shards,
            "submitted": self.submitted,
            "accepted": self.accepted,
            "processed": self.processed,
            "rejected": dict(sorted(self.rejected.items())),
            "shed": dict(sorted(self.shed.items())),
            "queued": self.queued,
            "in_dispatch": self.in_dispatch,
            "in_flight": self.in_flight,
            "promotions": self.promotions,
            "respawns": self.respawns,
            "permanent_failures": self.permanent_failures,
            "checkpoints": self.checkpoints,
            "kills_fired": self.kills_fired,
            "kills_skipped": self.kills_skipped,
            "rerouted": self.rerouted,
            "timeline": self.timeline,
            "timeline_dropped": self.timeline_dropped,
            "conservation_violations": self.conservation(),
        }

    def render(self) -> str:
        from repro.flow import ascii_table

        rows = [(s["name"], s["state"], s["processed"], s["queue_depth"],
                 s["promotions"], s["respawns"], s["kills"],
                 s["checkpoints"], s["deltas_applied"],
                 s["standby_verified"])
                for s in self.shards]
        table = ascii_table(
            ["Shard", "State", "Processed", "Queue", "Promoted",
             "Respawns", "Kills", "Ckpts", "Deltas", "Verified"],
            rows,
            title=(f"Distributed farm: {self.submitted} submitted, "
                   f"{self.processed} processed, "
                   f"{sum(self.shed.values())} shed, "
                   f"{sum(self.rejected.values())} rejected, "
                   f"{self.kills_fired} kill(s), "
                   f"{self.promotions} promotion(s)"))
        problems = self.conservation()
        verdict = ("conservation OK" if not problems
                   else "CONSERVATION VIOLATED: " + "; ".join(problems))
        if self.timeline_dropped:
            verdict += (f"\ntimeline truncated: {self.timeline_dropped} "
                        f"oldest event(s) aged out of the ring")
        return table + "\n" + verdict


class ShardSupervisor:
    """Routes a work stream over N worker processes, with failover."""

    def __init__(self, system, n_shards: int = 2,
                 config: Optional[ShardConfig] = None,
                 policy: Optional[RestartPolicy] = None,
                 standby: bool = False,
                 kill_plan: Optional[Iterable] = None,
                 aggregator=None,
                 timeline_limit: Optional[int] = 4096,
                 lineage=None) -> None:
        if n_shards < 1:
            raise ShardFarmError("a distributed farm needs >= 1 shard")
        self.system = system
        self.config = config if config is not None else ShardConfig()
        self.policy = policy if policy is not None else RestartPolicy()
        self.standby = standby
        self.kill_plan = sorted(kill_plan or (),
                                key=lambda k: (k.tick, k.shard))
        self.aggregator = aggregator
        #: optional :class:`repro.obs.causal.FarmLineage` — item-level
        #: provenance stitched with the workers' machine-level digests
        self.lineage = lineage
        self.ledger = FarmLedger(timeline_limit=timeline_limit)
        self.shards = [ShardHandle(i, f"shard{i}")
                       for i in range(n_shards)]
        self.tick = 0
        self.rerouted = 0
        self.kills_fired = 0
        self.kills_skipped = 0
        self._parent_socks: List[Any] = []
        self._pending_kill: Dict[int, int] = {}
        self._ctx = None
        self._started = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Fork every primary (and standby), await their ready frames."""
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ShardFarmError(
                "the distributed farm requires the fork start method")
        self._ctx = multiprocessing.get_context("fork")
        for shard in self.shards:
            self._spawn_primary(shard)
            if self.standby:
                self._spawn_standby(shard)
        self._started = True

    def _fork(self, target, child_sock, extra_args) -> Any:
        process = self._ctx.Process(
            target=target,
            args=(child_sock, self.system, self.config) + extra_args
            + (tuple(self._parent_socks),),
            daemon=True)
        process.start()
        child_sock.close()
        return process

    def _spawn_primary(self, shard: ShardHandle,
                       snapshot_doc: Optional[Dict[str, Any]] = None
                       ) -> None:
        channel, child_sock = channel_pair(
            self.config.max_frame, names=("supervisor", shard.name))
        self._parent_socks.append(channel.sock)
        shard.channel = channel
        shard.process = self._fork(worker_main, child_sock,
                                   (snapshot_doc,))
        ready = channel.recv(self.config.start_timeout)
        if ready.get("op") != "ready":
            raise ShardFarmError(
                f"{shard.name} primary sent {ready!r} instead of ready")
        self._apply_checkpoint(shard, ready["checkpoint"])

    def _spawn_standby(self, shard: ShardHandle) -> None:
        from repro.resil.standby import standby_main

        channel, child_sock = channel_pair(
            self.config.max_frame,
            names=("supervisor", f"{shard.name}-standby"))
        self._parent_socks.append(channel.sock)
        shard.standby_channel = channel
        shard.standby_process = self._fork(standby_main, child_sock, ())
        ready = channel.recv(self.config.start_timeout)
        if ready.get("op") != "ready":
            raise ShardFarmError(
                f"{shard.name} standby sent {ready!r} instead of ready")

    def _close_channel(self, channel: Optional[Channel]) -> None:
        if channel is None:
            return
        if channel.sock in self._parent_socks:
            self._parent_socks.remove(channel.sock)
        channel.close()

    def shutdown(self) -> None:
        """Stop every live process, collecting final transport stats."""
        for shard in self.shards:
            for which, channel in (("primary", shard.channel),
                                   ("standby", shard.standby_channel)):
                if channel is None:
                    continue
                try:
                    bye = channel.request({"op": "stop"},
                                          self.config.request_timeout)
                    if which == "primary":
                        shard.transport = bye.get("transport")
                        shard.chain_stats = bye.get("chain")
                except TransportError:
                    pass
                self._close_channel(channel)
            shard.channel = None
            shard.standby_channel = None
            for process in (shard.process, shard.standby_process):
                if process is not None:
                    process.join(timeout=5)
                    if process.is_alive():
                        process.kill()
                        process.join(timeout=5)
            shard.process = None
            shard.standby_process = None

    # -- routing -----------------------------------------------------------
    def _route(self, seq: int) -> Optional[ShardHandle]:
        n = len(self.shards)
        preferred = seq % n
        for offset in range(n):
            shard = self.shards[(preferred + offset) % n]
            if shard.live:
                if offset:
                    self.rerouted += 1
                    shard.rerouted_here += 1
                    self.ledger.note(self.tick, "reroute", shard.name,
                                     f"item {seq} from shard{preferred}")
                return shard
        return None

    # -- the drive loop ----------------------------------------------------
    def run(self, stream: Iterable[WorkItem], arrivals_per_tick: int = 4,
            max_ticks: int = 100000) -> ShardFarmReport:
        """Drive the farm until the stream drains; returns the report.

        Starts and shuts the worker processes down itself when the farm
        is not already started (one-shot use).
        """
        own = not self._started
        if own:
            self.start()
        try:
            items = [encode_item(item) for item in stream]
            cursor = 0
            ticks = 0
            while ticks < max_ticks:
                ticks += 1
                self.tick = ticks
                self._fire_kills(ticks)
                self._respawn_due(ticks)
                burst = items[cursor:cursor + arrivals_per_tick]
                cursor += len(burst)
                self._tick_once(burst, ticks)
                if self.aggregator is not None \
                        and ticks % self.config.sample_every == 0:
                    self.aggregator.on_tick(ticks, self._counters(),
                                            self._shard_rows())
                if cursor >= len(items) and self._drained():
                    break
            self.kills_skipped += len([k for k in self.kill_plan
                                       if k.tick > ticks])
            return self.report(ticks)
        finally:
            if own:
                self.shutdown()

    def _tick_once(self, burst: List[Dict[str, Any]], tick: int) -> None:
        lineage = self.lineage
        buckets: Dict[int, List[Dict[str, Any]]] = {}
        for doc in burst:
            self.ledger.submitted += 1
            if lineage is not None:
                lineage.on_submit(tick, doc)
            shard = self._route(doc["seq"])
            if shard is None:
                self.ledger.reject(REJECT_WORKER_FAILED)
                if lineage is not None:
                    lineage.on_reject(tick, doc["seq"],
                                      REJECT_WORKER_FAILED)
            else:
                buckets.setdefault(shard.index, []).append(doc)

        contacted: List[Tuple[ShardHandle, str]] = []
        for shard in self.shards:
            if shard.state != RUNNING or shard.channel is None:
                continue
            if shard.awaiting_reply:
                contacted.append((shard, "late"))
                continue
            bucket = buckets.get(shard.index, [])
            redispatched: set = set()
            if shard.pending_retry:
                retry_docs = sorted(shard.outstanding.values(),
                                    key=lambda d: d["seq"]) + shard.unacked
                redispatched = {doc["seq"] for doc in retry_docs}
                bucket = retry_docs + bucket
                shard.exempt = set(shard.outstanding)
                shard.pending_retry = False
            kill_after = self._pending_kill.pop(shard.index, None)
            if bucket or shard.queue_depth or kill_after is not None:
                fresh = [doc for doc in bucket
                         if doc["seq"] not in shard.exempt]
                message: Dict[str, Any] = {"op": "dispatch",
                                           "items": bucket,
                                           "batch": self.config.batch}
                if kill_after is not None:
                    message["kill_after"] = kill_after
                    shard.kills += 1
                    self.kills_fired += 1
                    self.ledger.note(
                        tick, "process-kill", shard.name,
                        f"SIGKILL after {kill_after} item(s)")
                shard.unacked = fresh
                if lineage is not None:
                    for doc in bucket:
                        lineage.on_dispatch(
                            tick, shard.name, doc,
                            redispatch=doc["seq"] in redispatched)
                try:
                    shard.channel.send(message)
                except TransportClosed as exc:
                    self._on_death(shard, tick, str(exc))
                    continue
                contacted.append((shard, "dispatch"))
            else:
                try:
                    shard.channel.send({"op": "ping", "token": tick})
                except TransportClosed as exc:
                    self._on_death(shard, tick, str(exc))
                    continue
                contacted.append((shard, "ping"))

        for shard, what in contacted:
            if shard.channel is None or shard.state != RUNNING:
                continue
            try:
                reply = shard.channel.recv(self.config.request_timeout)
            except TransportClosed as exc:
                self._on_death(shard, tick, str(exc))
            except TransportTimeout:
                self._on_missed_heartbeat(shard, tick)
            else:
                shard.awaiting_reply = False
                shard.missed_heartbeats = 0
                if reply.get("op") == "result":
                    self._on_result(shard, reply, tick)
                elif reply.get("op") == "error":
                    self._on_death(shard, tick,
                                   f"worker error: {reply.get('detail')}")

    # -- reply accounting --------------------------------------------------
    def _on_result(self, shard: ShardHandle, reply: Dict[str, Any],
                   tick: int) -> None:
        ledger = self.ledger
        lineage = self.lineage
        dispatched = {doc["seq"]: doc for doc in shard.unacked}
        for seq in reply.get("accepted", ()):
            if seq in shard.exempt:
                continue
            ledger.accepted += 1
            shard.accepted += 1
            if lineage is not None:
                lineage.on_accept(tick, seq)
            if seq in dispatched:
                shard.outstanding[seq] = dispatched[seq]
        for seq, reason in reply.get("rejected", ()):
            if seq in shard.exempt:
                # an item the dead primary had accepted no longer fits
                # the respawned worker's queue: attributed shed, not loss
                shard.outstanding.pop(seq, None)
                ledger.drop(SHED_RESPAWN_OVERFLOW)
                shard.shed += 1
                if lineage is not None:
                    lineage.on_shed(tick, seq, SHED_RESPAWN_OVERFLOW)
            else:
                ledger.reject(reason)
                shard.rejected += 1
                if lineage is not None:
                    lineage.on_reject(tick, seq, reason)
        for seq, reason in reply.get("shed", ()):
            shard.outstanding.pop(seq, None)
            ledger.drop(reason)
            shard.shed += 1
            if lineage is not None:
                lineage.on_shed(tick, seq, reason)
            ledger.note(tick, "shed", shard.name,
                        f"item {seq}: {reason}")
        processed_docs: List[Dict[str, Any]] = []
        for seq in reply.get("processed", ()):
            doc = shard.outstanding.pop(seq, None)
            if doc is not None:
                processed_docs.append(doc)
            ledger.processed += 1
            shard.processed += 1
            if lineage is not None:
                lineage.on_processed(tick, seq)
        if lineage is not None and "lineage" in reply:
            lineage.merge_worker(shard.name, shard.generation,
                                 reply["lineage"])
        shard.unacked = []
        shard.exempt = set()
        shard.queue_depth = reply.get("queue_depth", 0)
        sample = reply.get("sample") or {}
        shard.cycle_count = sample.get("cycle_count", shard.cycle_count)
        shard.worker_restarts = sample.get("restarts",
                                           shard.worker_restarts)
        self._tee(shard, processed_docs, tick)
        for payload in reply.get("checkpoints", ()):
            self._apply_checkpoint(shard, payload)
            self._advance_standby(shard, payload, tick)

    def _apply_checkpoint(self, shard: ShardHandle,
                          payload: Dict[str, Any]) -> None:
        if payload["kind"] == "full":
            shard.base_full = MachineSnapshot.from_json(payload["doc"])
            shard.last_full = shard.base_full
        else:
            # deltas are always encoded against the last full, never
            # chained — each one alone rebuilds the current state
            delta = DeltaSnapshot.from_json(payload["doc"])
            shard.last_full = apply_delta(shard.base_full, delta)
            shard.deltas_applied += 1
        shard.checkpoint_processed = payload["processed"]
        shard.checkpoints += 1
        self.ledger.checkpoints += 1

    # -- standby coordination ----------------------------------------------
    def _tee(self, shard: ShardHandle, docs: List[Dict[str, Any]],
             tick: int) -> None:
        if shard.standby_channel is None or not docs:
            return
        try:
            shard.standby_channel.request(
                {"op": "tee", "items": docs}, self.config.request_timeout)
        except TransportError as exc:
            self._lose_standby(shard, tick, str(exc))

    def _advance_standby(self, shard: ShardHandle,
                         payload: Dict[str, Any], tick: int) -> None:
        if shard.standby_channel is None:
            return
        fingerprint = snapshot_fingerprint(shard.last_full)
        try:
            reply = shard.standby_channel.request(
                {"op": "advance", "through": payload["processed"],
                 "fingerprint": fingerprint},
                self.config.request_timeout)
        except TransportError as exc:
            self._lose_standby(shard, tick, str(exc))
            return
        if reply.get("verified"):
            shard.standby_verified += 1
        elif reply.get("verified") is False:
            shard.standby_divergences += 1
            self.ledger.note(tick, "standby-divergence", shard.name,
                             f"at {payload['processed']} processed")

    def _lose_standby(self, shard: ShardHandle, tick: int,
                      cause: str) -> None:
        self._close_channel(shard.standby_channel)
        shard.standby_channel = None
        if shard.standby_process is not None:
            shard.standby_process.join(timeout=5)
            shard.standby_process = None
        shard.standby_lost = True
        self.ledger.note(tick, "standby-lost", shard.name, cause)

    # -- failure handling --------------------------------------------------
    def _on_missed_heartbeat(self, shard: ShardHandle, tick: int) -> None:
        shard.missed_heartbeats += 1
        shard.awaiting_reply = True
        self.ledger.note(tick, "missed-heartbeat", shard.name,
                         f"{shard.missed_heartbeats} of "
                         f"{self.config.miss_threshold}")
        if shard.missed_heartbeats >= self.config.miss_threshold:
            # hung, not dead: put it down and handle the death uniformly
            if shard.process is not None and shard.process.is_alive():
                os.kill(shard.process.pid, signal.SIGKILL)
            self._on_death(
                shard, tick,
                f"hung: {shard.missed_heartbeats} missed heartbeat(s)")

    def _on_death(self, shard: ShardHandle, tick: int,
                  cause: str) -> None:
        self.ledger.escalations += 1
        self.ledger.note(tick, "worker-lost", shard.name, cause)
        if self.lineage is not None:
            self.lineage.on_worker_lost(tick, shard.name, cause)
        self._close_channel(shard.channel)
        shard.channel = None
        shard.awaiting_reply = False
        if shard.process is not None:
            shard.process.join(timeout=5)
            shard.process = None
        if shard.standby_channel is not None:
            if self._promote(shard, tick):
                return
        if shard.respawns < self.policy.max_restarts \
                and shard.last_full is not None:
            shard.state = BACKOFF
            shard.failed_at = tick
            shard.resume_at = tick + self.policy.backoff(shard.respawns,
                                                         key=shard.name)
            shard.pending_retry = True
            self.ledger.note(tick, "backoff", shard.name,
                             f"respawn at tick {shard.resume_at}")
        else:
            self._fail_shard(shard, tick, cause)

    def _promote(self, shard: ShardHandle, tick: int) -> bool:
        """Promote the standby; True when the shard is live again."""
        retry = sorted(shard.outstanding.values(),
                       key=lambda doc: doc["seq"])
        fresh = list(shard.unacked)
        try:
            reply = shard.standby_channel.request(
                {"op": "promote", "retry": retry, "fresh": fresh},
                self.config.request_timeout)
        except TransportError as exc:
            # double kill: the standby died too — fall back to respawn
            # or permanent failure, with both losses attributed
            self._lose_standby(shard, tick, f"died at promotion: {exc}")
            return False
        lineage = self.lineage
        if lineage is not None:
            lineage.on_promotion(tick, shard.name)
        fresh_seqs = {doc["seq"] for doc in fresh}
        for seq in reply.get("processed", ()):
            if seq in fresh_seqs:
                self.ledger.accepted += 1
                shard.accepted += 1
                if lineage is not None:
                    lineage.on_accept(tick, seq)
            shard.outstanding.pop(seq, None)
            self.ledger.processed += 1
            shard.processed += 1
            if lineage is not None:
                lineage.on_processed(tick, seq)
        for seq, reason in reply.get("dropped", ()):
            if seq in fresh_seqs:
                self.ledger.reject(reason)
                shard.rejected += 1
                if lineage is not None:
                    lineage.on_reject(tick, seq, reason)
            else:
                shard.outstanding.pop(seq, None)
                self.ledger.drop(reason)
                shard.shed += 1
                if lineage is not None:
                    lineage.on_shed(tick, seq, reason)
        shard.unacked = []
        self._apply_checkpoint(shard, reply["checkpoint"])
        shard.channel = shard.standby_channel
        shard.process = shard.standby_process
        shard.standby_channel = None
        shard.standby_process = None
        shard.queue_depth = 0
        shard.promotions += 1
        shard.generation += 1
        self.ledger.promotions += 1
        self.ledger.restarts += 1
        self.ledger.time_to_recover.append(0)
        self.ledger.note(tick, "promotion", shard.name,
                         f"standby took over at "
                         f"{reply['checkpoint']['processed']} processed")
        return True

    def _fail_shard(self, shard: ShardHandle, tick: int,
                    cause: str) -> None:
        shard.state = FAILED
        self.ledger.permanent_failures += 1
        self.ledger.note(tick, "permanent-failure", shard.name, cause)
        for seq in sorted(shard.outstanding):
            self.ledger.drop(SHED_SHARD_LOST)
            shard.shed += 1
            if self.lineage is not None:
                self.lineage.on_shed(tick, seq, SHED_SHARD_LOST)
        shard.outstanding.clear()
        for _doc in shard.unacked:
            self.ledger.reject(SHED_SHARD_LOST)
            shard.rejected += 1
            if self.lineage is not None:
                self.lineage.on_reject(tick, _doc["seq"], SHED_SHARD_LOST)
        shard.unacked = []
        shard.queue_depth = 0
        shard.pending_retry = False
        if shard.standby_channel is not None:
            self._lose_standby(shard, tick, "shard failed permanently")

    def _respawn_due(self, tick: int) -> None:
        for shard in self.shards:
            if shard.state != BACKOFF or tick < (shard.resume_at or 0):
                continue
            try:
                self._spawn_primary(shard,
                                    snapshot_doc=shard.last_full.to_json())
            except (TransportError, OSError) as exc:
                self._fail_shard(shard, tick, f"respawn failed: {exc}")
                continue
            shard.state = RUNNING
            shard.respawns += 1
            shard.generation += 1
            shard.queue_depth = 0
            self.ledger.restarts += 1
            if self.lineage is not None:
                self.lineage.on_respawn(tick, shard.name)
            if shard.failed_at is not None:
                self.ledger.time_to_recover.append(tick - shard.failed_at)
                shard.failed_at = None
            self.ledger.note(
                tick, "respawn", shard.name,
                f"respawn {shard.respawns} from cycle "
                f"{shard.last_full.cycle_count}")

    # -- chaos -------------------------------------------------------------
    def _fire_kills(self, tick: int) -> None:
        due = [kill for kill in self.kill_plan if kill.tick == tick]
        for kill in due:
            shard = self.shards[kill.shard % len(self.shards)]
            if kill.target == "standby":
                if shard.standby_channel is None:
                    self.kills_skipped += 1
                    continue
                try:
                    shard.standby_channel.send({"op": "die"})
                except TransportClosed:
                    pass
                shard.kills += 1
                self.kills_fired += 1
                self.ledger.note(tick, "process-kill",
                                 f"{shard.name}-standby", "SIGKILL")
                self._lose_standby(shard, tick, "chaos SIGKILL")
            else:
                if shard.state != RUNNING or shard.channel is None:
                    self.kills_skipped += 1
                    continue
                self._pending_kill[shard.index] = kill.after_items

    # -- reporting ---------------------------------------------------------
    def _drained(self) -> bool:
        return not any(shard.busy for shard in self.shards) \
            and not self._pending_kill

    def _counters(self) -> Dict[str, int]:
        return {
            "submitted": self.ledger.submitted,
            "accepted": self.ledger.accepted,
            "processed": self.ledger.processed,
            "rejected": self.ledger.rejected_total,
            "shed": self.ledger.shed_total,
            "queued": sum(len(s.outstanding) for s in self.shards),
            "in_dispatch": sum(len(s.unacked) for s in self.shards
                               if s.state != RUNNING or s.pending_retry
                               or s.awaiting_reply),
        }

    def _shard_rows(self) -> Dict[str, Dict[str, Any]]:
        return {
            shard.name: {
                "state": shard.state,
                "queue_depth": shard.queue_depth,
                "processed": shard.processed,
                "cycle_count": shard.cycle_count,
                "promotions": shard.promotions,
                "respawns": shard.respawns,
            }
            for shard in self.shards
        }

    def report(self, ticks: Optional[int] = None) -> ShardFarmReport:
        ledger = self.ledger
        counters = self._counters()
        return ShardFarmReport(
            ticks=ticks if ticks is not None else self.tick,
            n_shards=len(self.shards),
            standby=self.standby,
            shards=[shard.describe() for shard in self.shards],
            submitted=ledger.submitted,
            accepted=ledger.accepted,
            processed=ledger.processed,
            rejected=dict(ledger.rejected),
            shed=dict(ledger.shed),
            queued=counters["queued"],
            in_dispatch=counters["in_dispatch"],
            promotions=ledger.promotions,
            respawns=sum(shard.respawns for shard in self.shards),
            permanent_failures=ledger.permanent_failures,
            checkpoints=ledger.checkpoints,
            kills_fired=self.kills_fired,
            kills_skipped=self.kills_skipped,
            rerouted=self.rerouted,
            timeline=list(ledger.timeline),
            timeline_dropped=ledger.timeline_dropped,
        )
