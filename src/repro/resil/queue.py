"""Bounded admission queues with backpressure and priority load shedding.

The farm's unit of work is a :class:`WorkItem` — one configuration cycle's
worth of external events plus a priority.  Each
:class:`~repro.resil.supervisor.MachineWorker` owns one
:class:`BoundedQueue`; admission follows the backpressure ladder:

1. queue has room → **accepted** (FIFO; priority never reorders service,
   only shedding — accepted work is processed in arrival order);
2. queue full, some queued item has *strictly lower* priority than the
   arrival → the lowest-priority (oldest among ties) queued item is
   **shed** (``overload``) and the arrival is accepted;
3. queue full, nothing cheaper queued → the arrival is **rejected**
   (``queue-full``) — the caller is told immediately, nothing is dropped
   silently.

Every outcome is reported with a reason so the supervisor's conservation
check (admitted = processed + shed + rejected + in-flight) can be asserted
exactly; no event is ever double-counted or silently lost.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

#: rejection reasons (backpressure — the producer keeps the item)
REJECT_QUEUE_FULL = "queue-full"
REJECT_CIRCUIT_OPEN = "circuit-open"
REJECT_WORKER_FAILED = "worker-failed"
#: shed reasons (the farm accepted the item, then dropped it with a report)
SHED_OVERLOAD = "overload"
SHED_WORKER_FAILED = "worker-failed"


@dataclass(frozen=True)
class WorkItem:
    """One admitted unit of work: a cycle's external events."""

    seq: int
    events: Tuple[str, ...]
    priority: int = 0  # higher = more important; survives shedding longer
    #: trace context: with ``seq`` this names the item's stable lineage
    #: identity ``ev:<origin>:<seq>`` across processes and redispatch
    origin: str = "stream"

    @property
    def trace_id(self) -> str:
        return f"ev:{self.origin}:{self.seq}"

    def describe(self) -> str:
        return (f"item {self.seq} p{self.priority} "
                f"[{', '.join(self.events)}]")


@dataclass
class Admission:
    """The queue's verdict on one offered item."""

    accepted: bool
    reason: Optional[str] = None
    #: the queued item evicted to admit the arrival, if any
    shed: Optional[WorkItem] = None


class BoundedQueue:
    """A FIFO with a hard capacity and priority-based shedding."""

    def __init__(self, capacity: int, shed_enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self.shed_enabled = shed_enabled
        self._items: Deque[WorkItem] = deque()
        self.high_watermark = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def offer(self, item: WorkItem) -> Admission:
        """Admit *item* if there is room or something cheaper to shed."""
        if not self.full:
            self._push(item)
            return Admission(accepted=True)
        if self.shed_enabled:
            victim_pos = self._cheapest_below(item.priority)
            if victim_pos is not None:
                victim = self._items[victim_pos]
                del self._items[victim_pos]
                self._push(item)
                return Admission(accepted=True, shed=victim)
        return Admission(accepted=False, reason=REJECT_QUEUE_FULL)

    def _push(self, item: WorkItem) -> None:
        self._items.append(item)
        if len(self._items) > self.high_watermark:
            self.high_watermark = len(self._items)

    def _cheapest_below(self, priority: int) -> Optional[int]:
        """Position of the lowest-priority queued item strictly below
        *priority* (oldest among ties), or ``None``."""
        best_pos: Optional[int] = None
        best_priority = priority
        for pos, queued in enumerate(self._items):
            if queued.priority < best_priority:
                best_pos, best_priority = pos, queued.priority
        return best_pos

    def pop(self) -> Optional[WorkItem]:
        return self._items.popleft() if self._items else None

    def push_front(self, item: WorkItem) -> None:
        """Return an in-flight item to the head (retry after a restart)."""
        self._items.appendleft(item)

    def drain(self) -> List[WorkItem]:
        """Remove and return everything (terminal worker shutdown)."""
        items = list(self._items)
        self._items.clear()
        return items


class CircuitBreaker:
    """Per-worker circuit breaker over supervisor ticks.

    ``closed`` admits traffic; ``failure_threshold`` consecutive failures
    open it for ``cooldown_ticks``; after the cooldown it goes ``half-open``
    and admits work again — the first success closes it, the first failure
    re-opens it for a fresh cooldown.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, failure_threshold: int = 3,
                 cooldown_ticks: int = 8) -> None:
        if failure_threshold < 1:
            raise ValueError("failure threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_ticks = cooldown_ticks
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_count = 0
        self._reopen_at: Optional[int] = None

    def admits(self, tick: int) -> bool:
        if self.state == self.OPEN and tick >= (self._reopen_at or 0):
            self.state = self.HALF_OPEN
        return self.state != self.OPEN

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = self.CLOSED

    def record_failure(self, tick: int) -> None:
        self.consecutive_failures += 1
        if (self.state == self.HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold):
            self.state = self.OPEN
            self.opened_count += 1
            self._reopen_at = tick + self.cooldown_ticks
