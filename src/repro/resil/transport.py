"""Typed, framed messaging between farm processes.

The distributed farm (:mod:`repro.resil.shardfarm`) shards the supervisor
across OS processes, ConPro-style: isolated workers exchanging typed JSON
messages over channels.  This module is the channel: **length-prefixed JSON
frames** over a ``socket.socketpair()`` (or any stream socket), with

* **partial-read reassembly** — a frame is a 4-byte big-endian length
  header followed by the canonical-JSON payload; :meth:`Channel.recv`
  loops until the whole frame arrived, however the kernel fragments it;
* **oversized-frame rejection** — a header announcing more than
  ``max_frame`` bytes raises :class:`FrameTooLarge` *before* any payload
  is read, so a corrupt or hostile peer cannot balloon memory;
* **per-request timeouts** — every receive takes a deadline; a peer that
  stops talking raises :class:`TransportTimeout`, never a hang;
* **attributed close** — a peer that dies mid-frame (the SIGKILL chaos
  case) raises :class:`TransportClosed` naming how many bytes of which
  frame arrived, so the supervisor's report says *what* was lost;
* **heartbeat probes** — :func:`probe` sends a ``ping`` and awaits the
  ``pong``, retrying under a bounded exponential backoff with
  deterministic seeded jitter (:class:`RetryPolicy`), the liveness test
  behind the shard supervisor's missed-heartbeat accounting.

Framing is deliberately the same canonical JSON the snapshot layer uses:
a :class:`~repro.resil.snapshot.MachineSnapshot` document or a
:class:`~repro.resil.delta.DeltaSnapshot` rides the wire unchanged.
"""

from __future__ import annotations

import json
import socket
import struct
import time
import zlib
from dataclasses import dataclass
from typing import Any, Iterator, Optional, Tuple

#: 4-byte big-endian unsigned frame-length header
_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size

#: default ceiling on one frame's payload; a full machine snapshot for the
#: shipped workloads is a few tens of KiB, so 16 MiB is generous headroom
DEFAULT_MAX_FRAME = 16 * 1024 * 1024


class TransportError(Exception):
    """Base class for channel failures."""


class TransportClosed(TransportError):
    """The peer closed (or was killed); the message names what was lost."""


class TransportTimeout(TransportError):
    """The peer did not answer within the deadline."""


class FrameTooLarge(TransportError):
    """A frame header announced a payload above the channel's ceiling."""


def encode_frame(message: Any, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Serialize *message* as one length-prefixed canonical-JSON frame."""
    payload = json.dumps(message, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame:
        raise FrameTooLarge(
            f"frame of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte ceiling")
    return _HEADER.pack(len(payload)) + payload


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic seeded jitter.

    ``delays(key)`` yields the sleep before each retry: ``base * 2^n``
    capped at ``cap``, plus a jitter fraction drawn from a generator
    seeded by ``(seed, key, attempt)`` — derived through :func:`zlib.crc32`
    rather than :func:`hash`, so two runs with the same seed produce the
    same jitter regardless of ``PYTHONHASHSEED``.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    cap_delay: float = 1.0
    jitter: float = 0.5
    seed: int = 0

    def delays(self, key: str = "") -> Iterator[float]:
        import random

        for attempt in range(self.max_attempts):
            delay = min(self.base_delay * (1 << attempt), self.cap_delay)
            if self.jitter:
                token = f"{key}:{attempt}".encode("utf-8")
                rng = random.Random(self.seed * 1000003
                                    + zlib.crc32(token))
                delay += delay * self.jitter * rng.random()
            yield delay


class Channel:
    """One end of a framed duplex stream between two farm processes."""

    def __init__(self, sock: socket.socket,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 name: str = "peer") -> None:
        self.sock = sock
        self.max_frame = max_frame
        self.name = name
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self._buffer = b""
        self._closed = False

    # -- sending -----------------------------------------------------------
    def send(self, message: Any) -> None:
        """Frame and send one message (blocking until fully written)."""
        if self._closed:
            raise TransportClosed(f"channel to {self.name} is closed")
        frame = encode_frame(message, self.max_frame)
        try:
            self.sock.sendall(frame)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise TransportClosed(
                f"send to {self.name} failed: {exc}") from None
        self.frames_sent += 1
        self.bytes_sent += len(frame)

    # -- receiving ---------------------------------------------------------
    def recv(self, timeout: Optional[float] = None) -> Any:
        """Receive one message, reassembling however the stream fragments.

        *timeout* bounds the whole frame, not each read; ``None`` blocks.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        header = self._recv_exact(HEADER_BYTES, deadline, "frame header")
        (length,) = _HEADER.unpack(header)
        if length > self.max_frame:
            raise FrameTooLarge(
                f"peer {self.name} announced a {length}-byte frame; the "
                f"channel ceiling is {self.max_frame} bytes")
        payload = self._recv_exact(length, deadline,
                                   f"{length}-byte payload")
        self.frames_received += 1
        self.bytes_received += HEADER_BYTES + length
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TransportError(
                f"frame from {self.name} is not valid JSON: {exc}") \
                from None

    def _recv_exact(self, n: int, deadline: Optional[float],
                    what: str) -> bytes:
        """Read exactly *n* bytes, surfacing EOF and deadline honestly."""
        while len(self._buffer) < n:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportTimeout(
                        f"timed out waiting for {what} from {self.name} "
                        f"({len(self._buffer)} of {n} bytes buffered)")
                self.sock.settimeout(remaining)
            else:
                self.sock.settimeout(None)
            try:
                chunk = self.sock.recv(65536)
            except socket.timeout:
                raise TransportTimeout(
                    f"timed out waiting for {what} from {self.name} "
                    f"({len(self._buffer)} of {n} bytes buffered)") \
                    from None
            except (ConnectionResetError, OSError) as exc:
                raise TransportClosed(
                    f"{self.name} dropped mid-{what}: {exc}") from None
            if not chunk:
                raise TransportClosed(
                    f"{self.name} closed with {len(self._buffer)} of {n} "
                    f"bytes of the {what} received")
            self._buffer += chunk
        data, self._buffer = self._buffer[:n], self._buffer[n:]
        return data

    # -- request/response --------------------------------------------------
    def request(self, message: Any,
                timeout: Optional[float] = None) -> Any:
        """Send one message and await the reply (the farm's RPC shape)."""
        self.send(message)
        return self.recv(timeout)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self.sock.close()
            except OSError:
                pass

    def describe(self) -> dict:
        return {
            "name": self.name,
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }


def channel_pair(max_frame: int = DEFAULT_MAX_FRAME,
                 names: Tuple[str, str] = ("parent", "child")
                 ) -> Tuple[Channel, socket.socket]:
    """A (supervisor channel, raw child socket) pair over ``socketpair``.

    The child end is handed to the forked worker raw; the worker wraps it
    in its own :class:`Channel` after closing the parent end's duplicate.
    """
    parent_sock, child_sock = socket.socketpair()
    return Channel(parent_sock, max_frame, name=names[1]), child_sock


def probe(channel: Channel, timeout: float,
          retry: Optional[RetryPolicy] = None,
          token: int = 0) -> bool:
    """One heartbeat: ping the peer, await the echoing pong.

    Retries under *retry*'s backoff schedule (sleeping between attempts);
    returns ``False`` when every attempt timed out — the caller counts a
    missed heartbeat.  A closed channel propagates
    :class:`TransportClosed`: death is not a missed heartbeat, it is a
    detected kill.
    """
    retry = retry if retry is not None else RetryPolicy(max_attempts=1)
    delays = list(retry.delays(channel.name))
    for attempt in range(retry.max_attempts):
        if attempt:
            time.sleep(delays[attempt - 1])
        try:
            reply = channel.request({"op": "ping", "token": token}, timeout)
        except TransportTimeout:
            continue
        if (isinstance(reply, dict) and reply.get("op") == "pong"
                and reply.get("token") == token):
            return True
    return False
