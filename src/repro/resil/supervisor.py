"""A supervised farm of PSCP machines: restart-from-snapshot under faults.

The paper's PSCP is *scalable* — an array of reactive processors — and the
ROADMAP's north star is a production-scale service.  This module provides
the supervision layer between the two: a :class:`Supervisor` runs N
:class:`MachineWorker` instances over a shared stream of
:class:`~repro.resil.queue.WorkItem`\\ s with

* **bounded admission queues** — every worker owns a
  :class:`~repro.resil.queue.BoundedQueue`; a full queue rejects with a
  reason (backpressure) or sheds its lowest-priority pending item to admit
  higher-priority traffic (load shedding);
* **per-worker circuit breakers** — consecutive failures open the breaker,
  diverting traffic away during the cooldown, with a half-open probe before
  it closes again;
* **restart-from-snapshot** — each worker checkpoints its machine every
  ``checkpoint_every`` processed items
  (:func:`~repro.resil.snapshot.snapshot_machine`); when an unrecoverable
  fault escalates out of the machine
  (:class:`~repro.fault.guard.MachineEscalation`), the worker restores its
  last checkpoint after a bounded exponential backoff and re-runs the
  in-flight item.  Restarts are restored with
  ``restore_attachments=False``: a fault that already bit stays consumed,
  so a single fault cannot wedge a worker in an escalation loop;
* **a terminal state** — after ``max_restarts`` restarts the worker is
  marked permanently failed; its queue is drained and every pending item
  reported shed (``worker-failed``), never silently lost.

Accounting is conservation-checked: ``submitted = accepted + rejected`` and
``accepted = processed + shed + in-flight``, with each item counted exactly
once (:meth:`FarmReport.conservation`).  The whole farm is deterministic —
no wall clock, no OS threads; time is the supervisor's integer tick — so a
seeded chaos soak is reproducible bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.obs.metrics import Histogram
from repro.resil.queue import (
    BoundedQueue,
    CircuitBreaker,
    REJECT_CIRCUIT_OPEN,
    REJECT_QUEUE_FULL,
    REJECT_WORKER_FAILED,
    SHED_OVERLOAD,
    SHED_WORKER_FAILED,
    WorkItem,
)
from repro.resil.snapshot import MachineSnapshot, snapshot_machine, \
    restore_machine

#: worker lifecycle states
RUNNING = "running"
BACKOFF = "backoff"
FAILED = "failed"


@dataclass(frozen=True)
class RestartPolicy:
    """How a worker restarts after an escalated (unrecoverable) fault."""

    max_restarts: int = 3
    backoff_base_ticks: int = 2
    backoff_cap_ticks: int = 32
    checkpoint_every: int = 16
    #: maximum extra ticks of seeded jitter added to each backoff, so
    #: simultaneous escalations across workers/shards do not produce a
    #: synchronized restart stampede; 0 (the default) keeps the historical
    #: deterministic schedule byte-identical
    jitter_ticks: int = 0
    jitter_seed: int = 0

    def backoff(self, restarts_used: int, key: str = "") -> int:
        """Bounded exponential backoff: base * 2^restarts, capped.

        With ``jitter_ticks`` set, adds ``[0, jitter_ticks]`` extra ticks
        drawn from a generator seeded by ``(jitter_seed, key,
        restarts_used)`` — derived through :func:`zlib.crc32`, not
        :func:`hash`, so two runs with the same seed desynchronize
        *identically* regardless of ``PYTHONHASHSEED``.
        """
        import random
        import zlib

        base = min(self.backoff_base_ticks * (1 << restarts_used),
                   self.backoff_cap_ticks)
        if not self.jitter_ticks:
            return base
        token = f"{key}:{restarts_used}".encode("utf-8")
        rng = random.Random(self.jitter_seed * 1000003 + zlib.crc32(token))
        return base + rng.randrange(self.jitter_ticks + 1)


@dataclass
class FarmLedger:
    """The farm's conservation-checked accounting, shared by all workers."""

    submitted: int = 0
    accepted: int = 0
    processed: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)
    shed: Dict[str, int] = field(default_factory=dict)
    escalations: int = 0
    restarts: int = 0
    #: standby promotions (distributed farm only)
    promotions: int = 0
    permanent_failures: int = 0
    checkpoints: int = 0
    time_to_recover: List[int] = field(default_factory=list)
    #: supervisor-level instants (shed, restart, escalation,
    #: permanent-failure) in tick order — the merged Perfetto trace's
    #: dedicated supervisor track and the forensics timeline.  Bounded:
    #: the ring keeps the most recent ``timeline_limit`` events and counts
    #: what aged out in ``timeline_dropped``, so a long soak cannot grow
    #: without limit and consumers can report the truncation honestly.
    timeline: List[Dict[str, Any]] = field(default_factory=list)
    timeline_limit: Optional[int] = 4096
    timeline_dropped: int = 0

    def reject(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def drop(self, reason: str, count: int = 1) -> None:
        if count:
            self.shed[reason] = self.shed.get(reason, 0) + count

    def note(self, tick: int, kind: str, worker: Optional[str] = None,
             detail: Optional[str] = None) -> None:
        """Append one supervisor-level event to the timeline."""
        event: Dict[str, Any] = {"tick": tick, "kind": kind}
        if worker is not None:
            event["worker"] = worker
        if detail is not None:
            event["detail"] = detail
        self.timeline.append(event)
        if self.timeline_limit is not None:
            overflow = len(self.timeline) - self.timeline_limit
            if overflow > 0:
                del self.timeline[:overflow]
                self.timeline_dropped += overflow

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())


class MachineWorker:
    """One supervised machine instance with its queue and checkpoint."""

    def __init__(self, name: str, machine_factory: Callable[[], Any],
                 ledger: FarmLedger, policy: RestartPolicy,
                 queue_capacity: int = 32, shed_enabled: bool = True,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.name = name
        self.ledger = ledger
        self.policy = policy
        self.queue = BoundedQueue(queue_capacity, shed_enabled=shed_enabled)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.machine = machine_factory()
        self.state = RUNNING
        self.processed = 0
        self.restarts_used = 0
        self.restored_from_snapshot = 0
        self._since_checkpoint = 0
        self._resume_at: Optional[int] = None
        self._failed_at: Optional[int] = None
        self.last_escalation: Optional[str] = None
        #: dispatch latency in supervisor ticks (enqueue -> processed);
        #: restarts and backoff count into the retried item's latency
        self.latency = Histogram(
            f"{name}.dispatch_latency_ticks",
            "ticks from queue admission to completed processing",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512))
        self._enqueued_at: Dict[int, int] = {}
        #: forensics bundles dumped on escalation / permanent failure
        self.forensics: List[Dict[str, Any]] = []
        self._checkpoint_seq = 0
        self._progress_at_checkpoint: Dict[str, int] = {}
        #: restart-from-snapshot anchor; taken at start so a restart is
        #: always defined, refreshed every ``checkpoint_every`` items
        self.checkpoint: MachineSnapshot = self._take_checkpoint()

    # -- checkpointing -----------------------------------------------------
    def _take_checkpoint(self) -> MachineSnapshot:
        snapshot = snapshot_machine(self.machine,
                                    include_attachments=False)
        self.ledger.checkpoints += 1
        self._since_checkpoint = 0
        self._checkpoint_seq += 1
        self._progress_at_checkpoint = {
            "processed": self.processed,
            "cycle_count": self.machine.cycle_count,
            "time": self.machine.time,
            "restarts": self.restarts_used,
        }
        if self.machine.recorder is not None:
            self.machine.recorder.note_checkpoint(
                snapshot.cycle_count,
                f"{self.name}:ckpt{self._checkpoint_seq}"
                f"@cycle{snapshot.cycle_count}")
        return snapshot

    def _dump_forensics(self, tick: int, kind: str, detail: str) -> None:
        """Dump the machine's flight-recorder ring as a forensics bundle
        (no-op without a recorder attached)."""
        recorder = self.machine.recorder
        if recorder is None:
            return
        progress = self._progress_at_checkpoint
        delta = {
            "processed": self.processed - progress.get("processed", 0),
            "cycle_count": (self.machine.cycle_count
                            - progress.get("cycle_count", 0)),
            "time": self.machine.time - progress.get("time", 0),
            "restarts": self.restarts_used - progress.get("restarts", 0),
        }
        cause = {"kind": kind, "tick": tick, "detail": detail}
        self.forensics.append(recorder.forensics_bundle(
            cause, worker=self.name, metrics_delta=delta))

    # -- admission ---------------------------------------------------------
    def offer(self, item: WorkItem, tick: int) -> bool:
        """Route one item to this worker; returns True when accepted."""
        if self.state == FAILED:
            self.ledger.reject(REJECT_WORKER_FAILED)
            return False
        if not self.breaker.admits(tick):
            self.ledger.reject(REJECT_CIRCUIT_OPEN)
            return False
        admission = self.queue.offer(item)
        if not admission.accepted:
            self.ledger.reject(admission.reason or REJECT_QUEUE_FULL)
            return False
        self.ledger.accepted += 1
        self._enqueued_at[item.seq] = tick
        if admission.shed is not None:
            # the evicted item was accepted earlier; it leaves as shed
            self.ledger.drop(SHED_OVERLOAD)
            self._enqueued_at.pop(admission.shed.seq, None)
            self.ledger.note(tick, "shed", self.name,
                             admission.shed.describe())
        return True

    # -- the work loop -----------------------------------------------------
    def advance(self, tick: int, batch: int) -> None:
        """Run this worker for one supervisor tick."""
        if self.state == BACKOFF:
            if tick >= (self._resume_at or 0):
                self._restart(tick)
            else:
                return
        if self.state != RUNNING:
            return
        for _ in range(batch):
            item = self.queue.pop()
            if item is None:
                return
            if not self._process(item, tick):
                return

    def _process(self, item: WorkItem, tick: int) -> bool:
        from repro.fault.guard import MachineEscalation
        from repro.pscp.machine import MachineError

        try:
            self.machine.step(item.events)
        except MachineEscalation as exc:
            self._on_failure(item, tick, exc.describe())
            return False
        except MachineError as exc:
            # an un-escalated crash is supervised the same way
            self._on_failure(item, tick, f"crash: {exc}")
            return False
        self.processed += 1
        self.ledger.processed += 1
        self.latency.observe(tick - self._enqueued_at.pop(item.seq, tick))
        self.breaker.record_success()
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.policy.checkpoint_every:
            self.checkpoint = self._take_checkpoint()
        return True

    def _on_failure(self, item: WorkItem, tick: int, detail: str) -> None:
        self.ledger.escalations += 1
        self.last_escalation = detail
        self.breaker.record_failure(tick)
        self.ledger.note(tick, "escalation", self.name, detail)
        permanent = self.restarts_used >= self.policy.max_restarts
        self._dump_forensics(
            tick, "permanent-failure" if permanent else "escalation",
            detail)
        if permanent:
            self._fail_permanently(item, tick)
            return
        # the in-flight item goes back to the head: it is retried from the
        # restored snapshot, so it stays in-flight, not lost
        self.queue.push_front(item)
        self.state = BACKOFF
        self._failed_at = tick
        self._resume_at = tick + self.policy.backoff(self.restarts_used,
                                                     key=self.name)

    def _restart(self, tick: int) -> None:
        """Restore the machine from the last checkpoint and resume.

        ``restore_attachments=False`` keeps the injector's already-bitten
        faults consumed and the guard's transient retry state cleared — a
        restart is a fresh start from known-good architectural state.
        """
        restore_machine(self.machine, self.checkpoint,
                        restore_attachments=False)
        if self.machine.guard is not None:
            self.machine.guard.reset_transient()
        self.restarts_used += 1
        self.restored_from_snapshot += 1
        self.ledger.restarts += 1
        if self._failed_at is not None:
            self.ledger.time_to_recover.append(tick - self._failed_at)
            self._failed_at = None
        self.state = RUNNING
        self.ledger.note(tick, "restart", self.name,
                         f"restart {self.restarts_used} from "
                         f"cycle {self.checkpoint.cycle_count}")

    def _fail_permanently(self, in_flight: Optional[WorkItem],
                          tick: int) -> None:
        self.state = FAILED
        self.ledger.permanent_failures += 1
        self.ledger.note(tick, "permanent-failure", self.name,
                         self.last_escalation)
        drained = self.queue.drain()
        count = len(drained) + (1 if in_flight is not None else 0)
        self.ledger.drop(SHED_WORKER_FAILED, count)
        for item in drained:
            self._enqueued_at.pop(item.seq, None)
        if in_flight is not None:
            self._enqueued_at.pop(in_flight.seq, None)

    # -- reporting ---------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "state": self.state,
            "processed": self.processed,
            "queue_depth": len(self.queue),
            "queue_high_watermark": self.queue.high_watermark,
            "restarts": self.restarts_used,
            "breaker": self.breaker.state,
            "breaker_opened": self.breaker.opened_count,
            "last_escalation": self.last_escalation,
            "dispatch_latency_ticks": self.latency.summary(),
            "forensics_bundles": len(self.forensics),
        }


@dataclass
class FarmReport:
    """Outcome of one supervised run, conservation-checked."""

    ticks: int
    workers: List[Dict[str, Any]]
    submitted: int
    accepted: int
    processed: int
    rejected: Dict[str, int]
    shed: Dict[str, int]
    in_flight: int
    escalations: int
    restarts: int
    permanent_failures: int
    checkpoints: int
    time_to_recover: List[int]
    timeline: List[Dict[str, Any]] = field(default_factory=list)
    timeline_dropped: int = 0
    forensics_bundles: int = 0

    def conservation(self) -> List[str]:
        """Violations of the no-silent-loss ledger; empty when sound.

        Every submitted item is accepted or rejected; every accepted item
        is processed, shed (with a reason) or still in flight.
        """
        problems: List[str] = []
        rejected = sum(self.rejected.values())
        shed = sum(self.shed.values())
        if self.submitted != self.accepted + rejected:
            problems.append(
                f"submitted {self.submitted} != accepted {self.accepted} "
                f"+ rejected {rejected}")
        if self.accepted != self.processed + shed + self.in_flight:
            problems.append(
                f"accepted {self.accepted} != processed {self.processed} "
                f"+ shed {shed} + in-flight {self.in_flight}")
        return problems

    def to_json(self) -> Dict[str, Any]:
        return {
            "ticks": self.ticks,
            "workers": self.workers,
            "submitted": self.submitted,
            "accepted": self.accepted,
            "processed": self.processed,
            "rejected": dict(sorted(self.rejected.items())),
            "shed": dict(sorted(self.shed.items())),
            "in_flight": self.in_flight,
            "escalations": self.escalations,
            "restarts": self.restarts,
            "permanent_failures": self.permanent_failures,
            "checkpoints": self.checkpoints,
            "time_to_recover": self.time_to_recover,
            "timeline": self.timeline,
            "timeline_dropped": self.timeline_dropped,
            "forensics_bundles": self.forensics_bundles,
            "conservation_violations": self.conservation(),
        }

    def render(self) -> str:
        from repro.flow import ascii_table

        rows = [(w["name"], w["state"], w["processed"], w["queue_depth"],
                 w["queue_high_watermark"], w["restarts"], w["breaker"])
                for w in self.workers]
        table = ascii_table(
            ["Worker", "State", "Processed", "Queue", "HWM", "Restarts",
             "Breaker"],
            rows,
            title=(f"Farm: {self.submitted} submitted, "
                   f"{self.processed} processed, "
                   f"{sum(self.shed.values())} shed, "
                   f"{sum(self.rejected.values())} rejected, "
                   f"{self.restarts} restart(s)"))
        problems = self.conservation()
        verdict = ("conservation OK" if not problems
                   else "CONSERVATION VIOLATED: " + "; ".join(problems))
        if self.timeline_dropped:
            verdict += (f"\ntimeline truncated: {self.timeline_dropped} "
                        f"oldest event(s) aged out of the ring")
        return table + "\n" + verdict


class Supervisor:
    """Routes a work stream over N supervised machine workers."""

    def __init__(self, workers: Sequence[MachineWorker],
                 ledger: FarmLedger, metrics=None, sampler=None) -> None:
        if not workers:
            raise ValueError("a farm needs at least one worker")
        self.workers = list(workers)
        self.ledger = ledger
        self.metrics = metrics
        #: a :class:`~repro.obs.FarmSampler` fed at the end of every tick
        self.sampler = sampler
        self.tick = 0

    @classmethod
    def for_system(cls, system, n_workers: int = 2,
                   queue_capacity: int = 32,
                   policy: Optional[RestartPolicy] = None,
                   shed_enabled: bool = True,
                   guard_factory: Optional[Callable[[], Any]] = None,
                   injector_factory: Optional[
                       Callable[[int], Any]] = None,
                   breaker_factory: Optional[
                       Callable[[], CircuitBreaker]] = None,
                   tracer_factory: Optional[Callable[[int], Any]] = None,
                   recorder_factory: Optional[
                       Callable[[int], Any]] = None,
                   metrics=None, sampler=None,
                   timeline_limit: Optional[int] = 4096) -> "Supervisor":
        """Build a farm of fresh machines over one built system.

        ``guard_factory`` returns a fresh
        :class:`~repro.fault.guard.MachineGuard` per worker (defaults to one
        with escalation enabled); ``injector_factory(worker_index)`` returns
        a per-worker :class:`~repro.fault.injector.FaultInjector` — the
        chaos hook — or ``None``.  ``tracer_factory(worker_index)`` /
        ``recorder_factory(worker_index)`` likewise attach a per-worker
        :class:`~repro.obs.Tracer` (full timeline, for the merged Perfetto
        export) and :class:`~repro.obs.FlightRecorder` (bounded forensics
        ring) — or ``None``.
        """
        from repro.fault.guard import MachineGuard

        policy = policy if policy is not None else RestartPolicy()
        ledger = FarmLedger(timeline_limit=timeline_limit)
        workers = []
        for index in range(n_workers):
            def factory(index=index):
                machine = system.make_machine()
                if injector_factory is not None:
                    injector = injector_factory(index)
                    if injector is not None:
                        machine.attach_injector(injector)
                guard = (guard_factory() if guard_factory is not None
                         else MachineGuard(escalate_unrecoverable=True))
                machine.attach_guard(guard)
                if recorder_factory is not None:
                    recorder = recorder_factory(index)
                    if recorder is not None:
                        machine.attach_recorder(recorder)
                if tracer_factory is not None:
                    tracer = tracer_factory(index)
                    if tracer is not None:
                        machine.attach_tracer(tracer)
                return machine
            breaker = (breaker_factory() if breaker_factory is not None
                       else CircuitBreaker())
            workers.append(MachineWorker(
                f"worker{index}", factory, ledger, policy,
                queue_capacity=queue_capacity, shed_enabled=shed_enabled,
                breaker=breaker))
        return cls(workers, ledger, metrics=metrics, sampler=sampler)

    # -- admission ---------------------------------------------------------
    def submit(self, item: WorkItem) -> bool:
        """Admit one item: the preferred worker is ``seq % N``; failed
        workers are probed past, but a live worker's backpressure is final
        (no spillover — the producer is told to slow down)."""
        self.ledger.submitted += 1
        n = len(self.workers)
        preferred = item.seq % n
        for offset in range(n):
            worker = self.workers[(preferred + offset) % n]
            if worker.state == FAILED:
                continue
            return worker.offer(item, self.tick)
        self.ledger.reject(REJECT_WORKER_FAILED)
        return False

    # -- the drive loop ----------------------------------------------------
    def run(self, stream: Iterable[WorkItem], arrivals_per_tick: int = 4,
            batch_per_worker: int = 2, max_ticks: int = 100000
            ) -> FarmReport:
        """Drive the farm until the stream drains and the queues empty."""
        pending = list(stream)
        cursor = 0
        ticks = 0
        while ticks < max_ticks:
            ticks += 1
            self.tick = ticks
            burst = pending[cursor:cursor + arrivals_per_tick]
            cursor += len(burst)
            for item in burst:
                self.submit(item)
            for worker in self.workers:
                worker.advance(ticks, batch_per_worker)
            if self.sampler is not None:
                self.sampler.on_tick(self, ticks)
            if cursor >= len(pending) and self._drained():
                break
        return self.report(ticks)

    def _drained(self) -> bool:
        for worker in self.workers:
            if worker.state == BACKOFF:
                return False
            if worker.state == RUNNING and len(worker.queue):
                return False
        return True

    # -- reporting ---------------------------------------------------------
    def report(self, ticks: Optional[int] = None) -> FarmReport:
        ledger = self.ledger
        report = FarmReport(
            ticks=ticks if ticks is not None else self.tick,
            workers=[worker.describe() for worker in self.workers],
            submitted=ledger.submitted,
            accepted=ledger.accepted,
            processed=ledger.processed,
            rejected=dict(ledger.rejected),
            shed=dict(ledger.shed),
            in_flight=sum(len(worker.queue) for worker in self.workers),
            escalations=ledger.escalations,
            restarts=ledger.restarts,
            permanent_failures=ledger.permanent_failures,
            checkpoints=ledger.checkpoints,
            time_to_recover=list(ledger.time_to_recover),
            timeline=list(ledger.timeline),
            timeline_dropped=ledger.timeline_dropped,
            forensics_bundles=sum(len(w.forensics) for w in self.workers),
        )
        if self.metrics is not None:
            self.publish(self.metrics, report)
        return report

    # -- farm-wide observability -------------------------------------------
    def machine_tracers(self) -> Dict[str, Any]:
        """``{worker name: tracer}`` for the workers that trace, with any
        buffered idle spans flushed — feed to
        :func:`~repro.obs.merged_chrome_trace` together with
        ``ledger.timeline`` for the whole-farm Perfetto view."""
        tracers: Dict[str, Any] = {}
        for worker in self.workers:
            if worker.machine.tracer is not None:
                worker.machine.flush_trace()
                tracers[worker.name] = worker.machine.tracer
        return tracers

    def forensics_bundles(self) -> List[Dict[str, Any]]:
        """Every worker's dumped bundles, in worker order."""
        bundles: List[Dict[str, Any]] = []
        for worker in self.workers:
            bundles.extend(worker.forensics)
        return bundles

    def publish(self, metrics, report: Optional[FarmReport] = None) -> None:
        """Publish supervisor counters into a metrics registry."""
        if report is None:
            report = FarmReport(
                ticks=self.tick,
                workers=[worker.describe() for worker in self.workers],
                submitted=self.ledger.submitted,
                accepted=self.ledger.accepted,
                processed=self.ledger.processed,
                rejected=dict(self.ledger.rejected),
                shed=dict(self.ledger.shed),
                in_flight=sum(len(w.queue) for w in self.workers),
                escalations=self.ledger.escalations,
                restarts=self.ledger.restarts,
                permanent_failures=self.ledger.permanent_failures,
                checkpoints=self.ledger.checkpoints,
                time_to_recover=list(self.ledger.time_to_recover),
            )
        metrics.counter("farm.submitted",
                        "work items offered to the farm").value = \
            report.submitted
        metrics.counter("farm.accepted").value = report.accepted
        metrics.counter("farm.processed").value = report.processed
        for reason, count in sorted(report.rejected.items()):
            metrics.counter(f"farm.rejected.{reason}").value = count
        for reason, count in sorted(report.shed.items()):
            metrics.counter(f"farm.shed.{reason}").value = count
        metrics.gauge("farm.in_flight",
                      "items queued at report time").set(report.in_flight)
        metrics.counter("farm.escalations",
                        "unrecoverable faults escalated").value = \
            report.escalations
        metrics.counter("farm.restarts",
                        "restarts from snapshot").value = report.restarts
        metrics.counter("farm.permanent_failures").value = \
            report.permanent_failures
        metrics.counter("farm.checkpoints").value = report.checkpoints
        recover = metrics.histogram(
            "farm.time_to_recover_ticks",
            "ticks from escalation to restored worker")
        recover.reset()
        for ticks in report.time_to_recover:
            recover.observe(ticks)
        for worker in self.workers:
            scoped = metrics.scoped(f"farm.{worker.name}")
            scoped.gauge("queue_depth").set(len(worker.queue))
            scoped.gauge("queue_high_watermark").set(
                worker.queue.high_watermark)
            scoped.counter("processed").value = worker.processed
            scoped.counter("restarts").value = worker.restarts_used
            scoped.counter("forensics_bundles",
                           "post-mortem bundles dumped").value = \
                len(worker.forensics)
            # copy the worker's latency distribution wholesale (assignment,
            # not accumulation, so republishing stays idempotent)
            latency = scoped.histogram(
                "dispatch_latency_ticks",
                "ticks from queue admission to completed processing",
                buckets=worker.latency.buckets)
            latency.counts = list(worker.latency.counts)
            latency.overflow = worker.latency.overflow
            latency.count = worker.latency.count
            latency.sum = worker.latency.sum
            latency.min = worker.latency.min
            latency.max = worker.latency.max


def generate_event_stream(events: Iterable[str], n_items: int,
                          seed: int = 1, max_burst: int = 2,
                          priorities: int = 3) -> List[WorkItem]:
    """A seeded work stream over *events*: each item carries 1..max_burst
    distinct events and a priority in ``[0, priorities)``.

    Deterministic for identical arguments — the farm soak's reproducibility
    rests on it.
    """
    import random

    pool = sorted(set(events))
    if not pool:
        raise ValueError("cannot generate a stream without events")
    rng = random.Random(seed)
    items: List[WorkItem] = []
    for seq in range(n_items):
        count = rng.randrange(1, max(2, max_burst + 1))
        chosen = tuple(sorted(rng.sample(pool, min(count, len(pool)))))
        items.append(WorkItem(seq, chosen, rng.randrange(max(1, priorities))))
    return items
