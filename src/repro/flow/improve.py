"""The iterative improvement loop (section 4).

"If a violation for an event cycle is detected, improvements are applied in
increasing order of difficulty to the transitions in question":

1. **peephole** — remove redundant jumps from the microprogram sequences;
2. **storage promotion** — "the type of storage elements and their
   associated Load/Store instructions are changed from external to internal
   to registers, recomputing the timing values for each step";
3. **pattern matching** — insert a comparator ALU style for ``if (a == b)``
   patterns, a two's-complement ALU for ``x = -x``;
4. **custom instructions** — fuse arithmetic expressions (bounded so they
   don't become the TEP's critical path);
5. **wider data bus** — the data-path analysis step normally picks this up
   front, but the ladder can still widen an 8-bit machine;
6. **more TEPs** — "the last resort …, but this has repercussions on the
   design of the SLA …  Therefore, designers must indicate which transition
   routines should be mutually exclusive."

Every rung is evaluated by rebuilding the system and re-running the timing
validator; the resulting trajectory is exactly the kind of data Table 4
reports (area vs. the two critical paths at each point).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.hw.library import custom_instruction_is_safe
from repro.isa.arch import ArchConfig, StorageClass
from repro.isa.isa import Mem, Reg
from repro.obs.flowprof import FlowProfile
from repro.isa.patterns import (
    find_comparator_sites,
    find_custom_candidates,
    find_negation_sites,
)
from repro.flow.build import BuiltSystem, build_system, select_initial_architecture
from repro.statechart.model import Chart


@dataclass
class LadderStep:
    """One evaluated point of the improvement trajectory."""

    rung: str
    description: str
    arch: ArchConfig
    storage_map: Dict[str, StorageClass]
    critical_paths: Dict[str, int]
    n_violations: int
    area_clbs: int

    @property
    def meets_constraints(self) -> bool:
        return self.n_violations == 0


@dataclass
class ImprovementResult:
    steps: List[LadderStep]
    final: BuiltSystem
    #: per-rung wall-clock/area/timing deltas (the Table 4 trajectory as
    #: structured data; see :mod:`repro.obs.flowprof`)
    profile: Optional[FlowProfile] = None

    @property
    def success(self) -> bool:
        return bool(self.steps) and self.steps[-1].meets_constraints

    def trajectory_table(self) -> List[Tuple[str, int, Dict[str, int]]]:
        return [(step.rung, step.area_clbs, step.critical_paths)
                for step in self.steps]


def hot_globals(system: BuiltSystem) -> List[str]:
    """Globals ranked by static reference count in the compiled code.

    "Load/Store instructions are changed from external to internal to
    registers" — this picks which variables to move first.
    """
    location_to_name: Dict[Tuple, str] = {}
    for name, loc in system.compiled.allocator.locations.items():
        if "." in name:
            continue  # locals/params/temps: already internal
        for operand in loc.words:
            if isinstance(operand, Mem):
                location_to_name[(operand.space, operand.address)] = name
            elif isinstance(operand, Reg):
                location_to_name[("reg", operand.index)] = name
    counts: Counter = Counter()
    for instruction in system.compiled.flat_instructions():
        operand = instruction.operand
        key = None
        if isinstance(operand, Mem):
            key = (operand.space, operand.address)
        elif isinstance(operand, Reg):
            key = ("reg", operand.index)
        if key is not None and key in location_to_name:
            counts[location_to_name[key]] += 1
    return [name for name, _ in counts.most_common()]


class Improver:
    """Walks the optimization ladder until the constraints hold."""

    def __init__(
        self,
        chart: Chart,
        source: str,
        initial_arch: Optional[ArchConfig] = None,
        mutual_exclusions: FrozenSet[FrozenSet[str]] = frozenset(),
        max_teps: int = 2,
        max_custom_instructions: int = 2,
        register_file_size: int = 4,
        allow_pipelining: bool = False,
    ) -> None:
        self.chart = chart
        self.source = source
        self.initial_arch = (initial_arch if initial_arch is not None
                             else select_initial_architecture(chart, source))
        self.mutual_exclusions = mutual_exclusions
        self.max_teps = max_teps
        self.max_custom_instructions = max_custom_instructions
        self.register_file_size = register_file_size
        self.allow_pipelining = allow_pipelining
        #: per-rung profile of the most recent :meth:`run`
        self.profile = FlowProfile()

    # ------------------------------------------------------------------
    def _evaluate(self, rung: str, description: str, arch: ArchConfig,
                  storage_map: Dict[str, StorageClass]
                  ) -> Tuple[BuiltSystem, LadderStep]:
        started = self.profile.begin()
        system = build_system(self.chart, self.source, arch,
                              storage_map=storage_map)
        step = LadderStep(
            rung=rung,
            description=description,
            arch=arch,
            storage_map=dict(storage_map),
            critical_paths=system.critical_paths(),
            n_violations=len(system.violations()),
            area_clbs=system.area().total_clbs,
        )
        self.profile.record(rung, description, started, step.area_clbs,
                            step.n_violations, step.critical_paths)
        return system, step

    def _result(self, steps: List[LadderStep],
                system: BuiltSystem) -> ImprovementResult:
        return ImprovementResult(steps, system, profile=self.profile)

    def run(self) -> ImprovementResult:
        self.profile = FlowProfile()
        steps: List[LadderStep] = []
        arch = self.initial_arch
        storage_map: Dict[str, StorageClass] = {}

        system, step = self._evaluate(
            "baseline", f"initial architecture {arch.describe()}",
            arch, storage_map)
        steps.append(step)
        if step.meets_constraints:
            return self._result(steps, system)

        # 1. microcode peephole
        arch = arch.with_(microcode_optimized=True)
        system, step = self._evaluate(
            "peephole", "remove redundant jumps from microprograms",
            arch, storage_map)
        steps.append(step)
        if step.meets_constraints:
            return self._result(steps, system)

        # 2a. storage promotion: externals -> internal RAM
        promoted = hot_globals(system)
        storage_map = {name: StorageClass.INTERNAL for name in promoted}
        system, step = self._evaluate(
            "promote-internal",
            f"promote {len(promoted)} globals from external to internal RAM",
            arch, storage_map)
        steps.append(step)
        if step.meets_constraints:
            return self._result(steps, system)

        # 2b. storage promotion: hottest variables -> registers
        arch = arch.with_(register_file_size=self.register_file_size)
        hottest = hot_globals(system)[: self.register_file_size]
        for name in hottest:
            storage_map[name] = StorageClass.REGISTER
        system, step = self._evaluate(
            "promote-register",
            f"promote {len(hottest)} hottest globals to registers",
            arch, storage_map)
        steps.append(step)
        if step.meets_constraints:
            return self._result(steps, system)

        # 3. pattern-matched hardware
        pattern_flags = {}
        if find_comparator_sites(system.checked.program):
            pattern_flags["has_comparator"] = True
        if find_negation_sites(system.checked.program):
            pattern_flags["has_negator"] = True
        if pattern_flags:
            arch = arch.with_(**pattern_flags)
            system, step = self._evaluate(
                "patterns",
                "insert " + " and ".join(sorted(pattern_flags)),
                arch, storage_map)
            steps.append(step)
            if step.meets_constraints:
                return self._result(steps, system)

        # 4. custom instructions
        candidates = find_custom_candidates(
            system.checked.program,
            max_operands=2 + arch.register_file_size)
        selected = []
        for candidate in candidates:
            custom = candidate.to_instruction(len(selected))
            if custom_instruction_is_safe(custom, arch):
                selected.append(custom)
            if len(selected) >= self.max_custom_instructions:
                break
        if selected:
            arch = arch.with_(custom_instructions=tuple(selected))
            system, step = self._evaluate(
                "custom-instructions",
                f"fuse {len(selected)} expression(s) into single-cycle units",
                arch, storage_map)
            steps.append(step)
            if step.meets_constraints:
                return self._result(steps, system)

        # 4b. pipelined TEP (the paper's "future work", opt-in)
        if self.allow_pipelining and not arch.pipelined:
            arch = arch.with_(pipelined=True)
            system, step = self._evaluate(
                "pipeline", "pipeline the TEP (fetch overlapped, flush on "
                "control transfers)", arch, storage_map)
            steps.append(step)
            if step.meets_constraints:
                return self._result(steps, system)

        # 5. wider data bus
        if arch.data_width < 16:
            arch = arch.with_(data_width=16, internal_ram_words=max(
                64, arch.internal_ram_words))
            system, step = self._evaluate(
                "widen-bus", "widen the data bus to 16 bits",
                arch, storage_map)
            steps.append(step)
            if step.meets_constraints:
                return self._result(steps, system)

        # 6. more TEPs (the last resort)
        while arch.n_teps < self.max_teps:
            arch = arch.with_(n_teps=arch.n_teps + 1,
                              mutual_exclusions=self.mutual_exclusions)
            system, step = self._evaluate(
                "add-tep",
                f"replicate to {arch.n_teps} TEPs "
                f"({len(self.mutual_exclusions)} declared exclusions)",
                arch, storage_map)
            steps.append(step)
            if step.meets_constraints:
                return self._result(steps, system)

        return self._result(steps, system)
