"""The codesign flow: build, static timing validation, iterative improvement.

Public API::

    from repro.flow import build_system, TimingValidator, Improver
"""

from repro.flow.build import (
    BuiltSystem,
    build_system,
    select_initial_architecture,
    transition_cost_map,
)
from repro.flow.improve import (
    Improver,
    ImprovementResult,
    LadderStep,
    hot_globals,
)
from repro.flow.report import (
    architecture_figure,
    ascii_table,
    comparison_table,
    improvement_profile_report,
    table1_report,
    table2_report,
    table3_report,
    table4_report,
)
from repro.flow.timing import (
    EventCycle,
    TimingValidator,
    TimingViolation,
    lpt_makespan,
)

__all__ = [
    "BuiltSystem", "EventCycle", "ImprovementResult", "Improver",
    "LadderStep", "TimingValidator", "TimingViolation",
    "architecture_figure", "ascii_table", "build_system",
    "comparison_table", "hot_globals", "improvement_profile_report",
    "lpt_makespan",
    "select_initial_architecture", "table1_report", "table2_report",
    "table3_report", "table4_report", "transition_cost_map",
]
