"""Heuristic static timing validation for extended statecharts (section 4).

Full validation of statecharts amounts to reachability analysis and is
NP-complete, so the paper "localizes the problem":

1. for a constrained event E, find every state that *consumes* E (has an
   outgoing transition whose trigger/guard mentions E);
2. from each such state, run a depth-first search over the transition graph
   for **event cycles** — paths between two states whose trigger sets both
   contain E (the result may be a simple path or a cycle);
3. the length of an event cycle is the combined length of its transitions;
4. "whenever a parallel substate must be explored, an upper bound is
   computed for its parallel siblings" and added for every step taken inside
   the parallel region.  The bound is computed recursively: at an OR-state
   the maximum-length transition of its children, at an AND-state the sum of
   the children;
5. cycles longer than E's arrival period are violations.

Architecture awareness (how Table 4's two-TEP rows fall out): with k TEPs,
one step's work and its parallel siblings' bounded work are jobs scheduled
on k machines; the step's contribution is the LPT makespan instead of the
serial sum.  With one TEP this reduces exactly to the paper's "add the upper
bound of the sibling".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.isa.arch import ArchConfig
from repro.statechart.graph import TransitionGraph
from repro.statechart.model import Chart, Transition

#: transition-cost oracle: cycles to execute one transition (stub + routine
#: + dispatch overhead)
CostFn = Callable[[Transition], int]


@dataclass(frozen=True)
class EventCycle:
    """One discovered event cycle (Table 3 row)."""

    event: str
    states: Tuple[str, ...]
    transition_indices: Tuple[int, ...]
    length: int

    def describe(self) -> str:
        inner = ", ".join(self.states)
        return f"{{{inner}}}  {self.length}"


@dataclass(frozen=True)
class TimingViolation:
    """An event cycle exceeding its event's arrival period."""

    cycle: EventCycle
    period: int

    @property
    def excess(self) -> int:
        return self.cycle.length - self.period

    def describe(self) -> str:
        return (f"{self.cycle.event}: cycle {self.cycle.describe()} exceeds "
                f"period {self.period} by {self.excess}")


def lpt_makespan(jobs: Sequence[int], machines: int) -> int:
    """Longest-processing-time-first makespan bound for *jobs* on
    *machines* identical machines (exact for machines == 1)."""
    if not jobs:
        return 0
    if machines <= 1:
        return sum(jobs)
    loads = [0] * machines
    for job in sorted(jobs, reverse=True):
        loads[loads.index(min(loads))] += job
    return max(loads)


class TimingValidator:
    """The heuristic of section 4, parameterized by transition costs."""

    def __init__(
        self,
        chart: Chart,
        cost_fn: CostFn,
        arch: Optional[ArchConfig] = None,
        max_depth: int = 24,
    ) -> None:
        self.chart = chart
        self.cost_fn = cost_fn
        self.n_teps = arch.n_teps if arch is not None else 1
        self.max_depth = max_depth
        self.graph = TransitionGraph(chart)
        self._region_jobs_cache: Dict[str, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # parallel-sibling upper bounds
    # ------------------------------------------------------------------
    def region_jobs(self, state_name: str) -> Tuple[int, ...]:
        """The sibling region's worst-case work as independent jobs.

        The paper's recursion ("at an OR-state, the maximum length
        transition of this node's children; at an AND-state, the sum of the
        children") gives the serial bound; we keep the AND-state summands as
        *separate jobs* so that on a k-TEP machine they can overlap.  The
        serial bound of the region is exactly ``sum(region_jobs(...))``.
        """
        cached = self._region_jobs_cache.get(state_name)
        if cached is not None:
            return cached
        state = self.chart.states[state_name]
        own = max((self.cost_fn(t) for t in state.transitions), default=0)
        from repro.statechart.model import StateKind
        if not state.children:
            jobs: Tuple[int, ...] = (own,) if own else ()
        elif state.kind is StateKind.AND:
            combined: List[int] = []
            for child in state.children:
                combined.extend(self.region_jobs(child))
            if own > sum(combined):
                combined = [own]
            jobs = tuple(combined)
        else:
            best: Tuple[int, ...] = (own,) if own else ()
            for child in state.children:
                candidate = self.region_jobs(child)
                if sum(candidate) > sum(best):
                    best = candidate
            jobs = best
        self._region_jobs_cache[state_name] = jobs
        return jobs

    def region_upper_bound(self, state_name: str) -> int:
        """The serial upper bound of one configuration step inside *state*
        (the quantity annotated in Fig. 4)."""
        return sum(self.region_jobs(state_name))

    def _step_cost(self, transition: Transition, position: str) -> int:
        """Cost of one DFS step: the transition itself plus the parallel
        siblings active alongside it, scheduled on the available TEPs.

        A transition whose scope *leaves* the parallel composite exits the
        sibling regions too, so their bound is not added for that step.
        """
        own = self.cost_fn(transition)
        scope = self.chart.transition_scope(transition)
        sibling_jobs: List[int] = []
        for context in self.graph.parallel_contexts(position):
            if not (self.chart.is_ancestor(context.and_state, scope)
                    and scope != context.and_state):
                continue  # the transition exits this parallel composition
            for sibling in context.sibling_regions:
                sibling_jobs.extend(self.region_jobs(sibling))
        if not sibling_jobs:
            return own
        return lpt_makespan([own] + sibling_jobs, self.n_teps)

    # ------------------------------------------------------------------
    # event-cycle search
    # ------------------------------------------------------------------
    def consuming_states(self, event: str) -> List[str]:
        return self.graph.consuming_states(event)

    def _is_event_step(self, transition: Transition) -> bool:
        """Which transitions the DFS may traverse as event-cycle steps.

        Pure completion transitions (no trigger, no guard) fire within the
        configuration window that entered their source; condition-only
        transitions are level-triggered and complete within the window of
        whichever routine set the condition.  Neither begins a new wait for
        an external event, so neither is an event-cycle step — their costs
        still count inside the parallel-sibling bounds.  A step must involve
        at least one *event* (any polarity) in its trigger or guard.
        """
        chart_events = set(self.chart.events)
        for expression in (transition.trigger, transition.guard):
            if expression is not None and expression.names() & chart_events:
                return True
        return False

    def event_cycles(self, event: str) -> List[EventCycle]:
        """All event cycles for *event*, deduplicated, longest first.

        Cycles reached through identical transition sequences (only the
        intermediate default-completion branch differs) are reported once,
        with the shallowest representative path.
        """
        consumers = set(self.consuming_states(event))
        cycles: Dict[Tuple[int, ...], EventCycle] = {}
        for start in sorted(consumers):
            self._dfs(event, start, consumers, cycles)
        return sorted(cycles.values(), key=lambda c: (-c.length, c.states))

    def _dfs(self, event: str, start: str, consumers: Set[str],
             cycles: Dict[Tuple[int, ...], EventCycle]) -> None:
        def record(states: List[str], transitions: List[int],
                   length: int) -> None:
            key = tuple(transitions)
            candidate = EventCycle(event, tuple(states), key, length)
            existing = cycles.get(key)
            if existing is None or candidate.length > existing.length:
                cycles[key] = candidate

        def recurse(position: str, path_states: List[str],
                    path_transitions: List[int], length: int,
                    visited: Set[str]) -> None:
            if len(path_states) > self.max_depth:
                return
            for target, transition in self.graph.effective_successors(position):
                if not self._is_event_step(transition):
                    continue
                step = self._step_cost(transition, position)
                for next_position in self.chart.default_completion(target):
                    new_states = path_states + [next_position]
                    new_transitions = path_transitions + [transition.index]
                    if next_position in consumers:
                        record(new_states, new_transitions, length + step)
                        continue
                    if next_position in visited:
                        continue
                    recurse(next_position, new_states, new_transitions,
                            length + step, visited | {next_position})

        recurse(start, [start], [], 0, {start})

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def critical_path(self, event: str) -> int:
        """The longest event cycle for *event* (Table 4's columns)."""
        cycles = self.event_cycles(event)
        return cycles[0].length if cycles else 0

    def validate(self) -> List[TimingViolation]:
        """Check every constrained event; returns all violations."""
        violations: List[TimingViolation] = []
        for event in self.chart.constrained_events():
            assert event.period is not None
            for cycle in self.event_cycles(event.name):
                if cycle.length > event.period:
                    violations.append(TimingViolation(cycle, event.period))
        return violations

    def all_cycles(self) -> List[EventCycle]:
        """Event cycles of every constrained event (the Table 3 content)."""
        result: List[EventCycle] = []
        for event in self.chart.constrained_events():
            result.extend(self.event_cycles(event.name))
        return result

    def annotated_dot(self, event: str) -> str:
        """Fig. 4: the transition graph with the event's cycles highlighted
        and parallel upper bounds annotated."""
        cycles = self.event_cycles(event)
        highlight = {index for cycle in cycles
                     for index in cycle.transition_indices}
        dot = self.graph.to_dot(highlight=highlight)
        annotations = []
        from repro.statechart.model import StateKind
        for state in self.chart.preorder():
            if state.kind is StateKind.AND:
                for child in state.children:
                    annotations.append(
                        f'// upper bound {child}: '
                        f'{self.region_upper_bound(child)}')
        period = self.chart.events[event].period
        header = f'// event {event} (period {period})\n'
        return header + dot + "\n" + "\n".join(annotations)
