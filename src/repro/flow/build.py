"""The end-to-end codesign flow.

Ties the front end (textual statechart + intermediate-C routines) to every
backend artifact: checked program, compiled routines, synthesized SLA,
transition costs, the timing validator, the area estimate, and — on demand —
an executable :class:`~repro.pscp.machine.PscpMachine`.

This is the module a user calls first::

    system = build_system(chart, routines_source, arch)
    system.validator.validate()      # static timing
    machine = system.make_machine()  # executable model
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.action.check import CheckedProgram, Externals
from repro.hw.area import AppStats, AreaEstimate, estimate_area
from repro.isa.arch import ArchConfig, StorageClass
from repro.isa.codegen import CodeGenerator, CompiledProgram, NameMaps, prepare_program
from repro.isa.microcode import DecoderRom
from repro.pscp.machine import PscpMachine, stub_wcet
from repro.pscp.ports import PortBus
from repro.pscp.scheduler import DISPATCH_OVERHEAD_CYCLES
from repro.sla.synth import Pla, synthesize
from repro.statechart.model import Chart, Transition
from repro.flow.timing import TimingValidator


@dataclass
class BuiltSystem:
    """Everything the flow produces for one (chart, source, arch) triple."""

    chart: Chart
    source: str
    arch: ArchConfig
    checked: CheckedProgram
    compiled: CompiledProgram
    pla: Pla
    param_names: Dict[str, List[str]]
    transition_costs: Dict[int, int]
    validator: TimingValidator
    storage_map: Dict[str, StorageClass] = field(default_factory=dict)

    # -- derived artifacts -------------------------------------------------
    def make_machine(self, port_bus: Optional[PortBus] = None) -> PscpMachine:
        return PscpMachine(self.chart, self.compiled, pla=self.pla,
                           port_bus=port_bus, param_names=self.param_names)

    def app_stats(self) -> AppStats:
        return AppStats(
            product_terms=self.pla.product_terms,
            cr_bits=self.pla.layout.width,
            transitions=len(self.chart.transitions),
            ports=max(1, len(self.chart.ports)
                      + len([e for e in self.chart.events.values() if e.port])
                      + len([c for c in self.chart.conditions.values() if c.port])),
        )

    def decoder_rom(self) -> DecoderRom:
        rom = DecoderRom(self.arch)
        rom.add_program(self.compiled.flat_instructions())
        return rom

    def area(self) -> AreaEstimate:
        return estimate_area(self.arch, self.app_stats(),
                             rom_words=min(self.decoder_rom().size_words, 256))

    def critical_paths(self) -> Dict[str, int]:
        """Worst event-cycle length per constrained event (Table 4 columns)."""
        return {event.name: self.validator.critical_path(event.name)
                for event in self.chart.constrained_events()}

    def violations(self):
        return self.validator.validate()

    def routine_wcets(self) -> Dict[str, int]:
        return self.compiled.wcets()


def transition_cost_map(chart: Chart, compiled: CompiledProgram,
                        param_names: Dict[str, List[str]]) -> Dict[int, int]:
    """Static per-transition cost: stub + routine + dispatch overhead."""
    return {
        transition.index:
            stub_wcet(transition, compiled, param_names)
            + DISPATCH_OVERHEAD_CYCLES
        for transition in chart.transitions
    }


def _enum_value_map(program) -> Dict[str, int]:
    from repro.action.ast import EnumType

    values: Dict[str, int] = {}
    for enum_type in program.enums:
        for member in enum_type.members:
            values[member] = enum_type.value_of(member)
    for _, typ in program.typedefs:
        if isinstance(typ, EnumType):
            for member in typ.members:
                values.setdefault(member, typ.value_of(member))
    return values


def specialize_routines(chart: Chart, checked: CheckedProgram,
                        externals: Externals) -> Tuple[Chart, CheckedProgram]:
    """Clone constant-argument routines per call site and fold the constants.

    ``DeltaT(MX)`` becomes a call to the parameterless ``DeltaT_0`` whose
    body indexes the motor arrays statically — the code-generation
    refinement the flow applies when violations persist.  Returns a copied
    chart with rewritten action texts and the re-checked extended program.
    """
    import copy as _copy

    from repro.action.check import check_program
    from repro.action.transform import TransformError, specialize_call
    from repro.statechart.labels import action_arguments, action_routine_name

    chart = _copy.deepcopy(chart)
    program = checked.program
    enum_values = _enum_value_map(program)
    existing = {f.name for f in program.functions}
    made: Dict[Tuple[str, Tuple[int, ...]], str] = {}

    def resolve(argument: str) -> Optional[int]:
        argument = argument.strip()
        if argument in enum_values:
            return enum_values[argument]
        try:
            return int(argument)
        except ValueError:
            return None

    changed = False
    for transition in chart.transitions:
        if not transition.action:
            continue
        routine = action_routine_name(transition.action)
        if routine not in existing:
            continue
        arguments = action_arguments(transition.action)
        if not arguments:
            continue
        values = [resolve(a) for a in arguments]
        if any(v is None for v in values):
            continue
        key = (routine, tuple(values))
        if key not in made:
            clone_name = f"{routine}_" + "_".join(str(v) for v in values)
            try:
                clone = specialize_call(program.function(routine),
                                        [v for v in values if v is not None],
                                        clone_name)
            except TransformError:
                continue
            program.functions.append(clone)
            existing.add(clone_name)
            made[key] = clone_name
        transition.action = f"{made[key]}()"
        changed = True
    if changed:
        checked = check_program(program, externals)
    return chart, checked


def build_system(
    chart: Chart,
    source: str,
    arch: ArchConfig,
    storage_map: Optional[Dict[str, StorageClass]] = None,
    specialize: bool = False,
) -> BuiltSystem:
    """Run the flow front-to-back for one architecture point."""
    externals = Externals.from_chart(chart)
    checked = prepare_program(source, arch, externals)
    if specialize:
        chart, checked = specialize_routines(chart, checked, externals)
    maps = NameMaps.from_chart(chart)
    compiled = CodeGenerator(checked, arch, maps=maps,
                             storage_map=storage_map).compile()
    param_names = {f.name: [p.name for p in f.params]
                   for f in checked.program.functions}
    pla = synthesize(chart)
    costs = transition_cost_map(chart, compiled, param_names)
    validator = TimingValidator(
        chart, lambda t: costs[t.index], arch=arch)
    return BuiltSystem(
        chart=chart,
        source=source,
        arch=arch,
        checked=checked,
        compiled=compiled,
        pla=pla,
        param_names=param_names,
        transition_costs=costs,
        validator=validator,
        storage_map=dict(storage_map or {}),
    )


def select_initial_architecture(chart: Chart, source: str,
                                name: str = "selected") -> ArchConfig:
    """Derive the starting architecture from the application's data-path
    requirements (section 1: "The assembler-level instruction set is mostly
    used to analyze the data-path requirements of an application").

    * the data-bus width is the widest scalar the routines manipulate
      (rounded to 8/16/32);
    * an M/D calculation unit is selected iff the routines multiply or
      divide.
    """
    from repro.action.ast import Binary, BinOp, type_width, walk_expr, walk_stmts
    from repro.action.parser import parse_with_preamble
    from repro.action.check import check_program

    externals = Externals.from_chart(chart)
    program = parse_with_preamble(source)
    check_program(program, externals)

    max_width = 8
    needs_muldiv = False
    for function in program.functions:
        for stmt in walk_stmts(function.body):
            for attr in ("value", "init", "cond", "expr", "target"):
                root = getattr(stmt, attr, None)
                if root is None or not hasattr(root, "typ"):
                    continue
                for node in walk_expr(root):
                    if node.typ is not None:
                        from repro.action.ast import ArrayType, StructType
                        if not isinstance(node.typ, (ArrayType, StructType)):
                            try:
                                max_width = max(max_width,
                                                type_width(node.typ))
                            except TypeError:
                                pass
                    if isinstance(node, Binary) and node.op in (
                            BinOp.MUL, BinOp.DIV, BinOp.MOD):
                        needs_muldiv = True
    width = 8 if max_width <= 8 else (16 if max_width <= 16 else 32)
    return ArchConfig(
        name=name,
        data_width=width,
        has_muldiv=needs_muldiv,
        internal_ram_words=64 if width >= 16 else 32,
    )
