"""Renderers for the paper's tables and figures.

Every benchmark regenerates its table/figure through these helpers so the
output format is uniform: plain ASCII tables with the same rows/columns the
paper prints, plus DOT for the graph figures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def ascii_table(headers: Sequence[str],
                rows: Iterable[Sequence[object]],
                title: str = "") -> str:
    """A boxed, column-aligned table."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(
            cell.ljust(width) for cell, width in zip(cells, widths)) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(separator)
    parts.append(line(list(headers)))
    parts.append(separator)
    for row in rendered_rows:
        parts.append(line(row))
    parts.append(separator)
    return "\n".join(parts)


def table1_report() -> str:
    """Table 1: microcode format."""
    from repro.isa.microcode import format_table1

    rows = [(symbolic, f"{bits} {pattern}")
            for symbolic, bits, pattern in format_table1()]
    return ascii_table(["Symbolic", "Encoding"], rows,
                       title="Table 1: Microcode format")


def table2_report(chart) -> str:
    """Table 2: timing constraints of the application chart."""
    rows = [(event.name, event.period)
            for event in chart.constrained_events()]
    return ascii_table(["Event", "Cycles"], rows,
                       title="Table 2: Timing Constraints")


def table3_report(cycles) -> str:
    """Table 3: detected event cycles."""
    rows = [("{" + ", ".join(c.states) + "}", c.length) for c in cycles]
    return ascii_table(["Cycle", "Length"], rows,
                       title="Table 3: Event Cycles")


def table4_report(rows: Sequence[Tuple[str, int, int, int]]) -> str:
    """Table 4: area and timing results.

    ``rows``: (architecture description, area CLBs, X/Y critical path,
    DATA_VALID critical path).
    """
    return ascii_table(
        ["Architecture", "Area", "Crit. Path X, Y", "Crit. Path DATA_VALID"],
        rows, title="Table 4: Area and Timing Results")


def improvement_profile_report(profile) -> str:
    """The improvement ladder's per-rung profile
    (:class:`repro.obs.FlowProfile`) as a table: area trajectory, deltas,
    remaining violations and the wall-clock cost of each rebuild."""
    table = ascii_table(
        ["Rung", "Area", "ΔArea", "Violations", "Wall ms"], profile.rows(),
        title="Improvement ladder profile")
    return (f"{table}\n"
            f"total rebuild time {profile.total_wall_seconds * 1e3:.1f} ms "
            f"over {len(profile.rungs)} rung(s)")


def comparison_table(title: str,
                     rows: Sequence[Tuple[str, object, object]],
                     value_names: Tuple[str, str] = ("paper", "measured")
                     ) -> str:
    """paper-vs-measured tables for EXPERIMENTS.md."""
    return ascii_table(["Quantity", value_names[0], value_names[1]],
                       rows, title=title)


def architecture_figure(system) -> str:
    """Fig. 1/Fig. 3: the generated machine structure, as indented text."""
    arch = system.arch
    est = system.area()
    lines = [f"PSCP architecture ({arch.describe()})", "shared:"]
    for component in est.shared:
        lines.append(f"  {component.name:28s} {component.clbs:4d} CLBs")
    for tep in range(arch.n_teps):
        lines.append(f"TEP {tep}:")
        for component in est.per_tep:
            lines.append(f"  {component.name:28s} {component.clbs:4d} CLBs")
    lines.append(f"total: {est.total_clbs} CLBs on {est.device().name}")
    return "\n".join(lines)
