"""AST transforms: cloning and constant-argument specialization.

Transition labels call their routines with *constant* arguments — enum
members like ``DeltaT(MX)`` (Fig. 5).  The code generator's improvement step
can therefore clone a routine per distinct constant-argument tuple and fold
the constants in, which turns dynamic array indexing (``velocity[m]``) into
static addressing (``velocity[2]``) — one of the "refinements of the code
generation process" the paper's flow applies when timing violations persist.

The transform is purely at the AST level: :func:`specialize_call` produces a
new parameterless :class:`~repro.action.ast.Function`; the flow rewrites the
transition's action text to call the clone.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Sequence, Tuple

from repro.action.ast import (
    Assign,
    Binary,
    BoolLiteral,
    Call,
    Expr,
    ExprStmt,
    FieldAccess,
    Function,
    If,
    Index,
    IntLiteral,
    NameRef,
    Return,
    Stmt,
    Unary,
    VarDecl,
    While,
)


class TransformError(Exception):
    """Raised when a requested specialization is impossible."""


def _clone_expr(expr: Expr, substitution: Dict[str, int]) -> Expr:
    if isinstance(expr, IntLiteral):
        return IntLiteral(expr.value, expr.base)
    if isinstance(expr, BoolLiteral):
        return BoolLiteral(expr.value)
    if isinstance(expr, NameRef):
        if expr.name in substitution:
            return IntLiteral(substitution[expr.name])
        return NameRef(expr.name)
    if isinstance(expr, FieldAccess):
        return FieldAccess(_clone_expr(expr.base, substitution), expr.field)
    if isinstance(expr, Index):
        return Index(_clone_expr(expr.base, substitution),
                     _clone_expr(expr.index, substitution))
    if isinstance(expr, Unary):
        return Unary(expr.op, _clone_expr(expr.operand, substitution))
    if isinstance(expr, Binary):
        return Binary(expr.op, _clone_expr(expr.left, substitution),
                      _clone_expr(expr.right, substitution))
    if isinstance(expr, Call):
        return Call(expr.name,
                    [_clone_expr(a, substitution) for a in expr.args])
    raise TransformError(f"cannot clone expression {expr!r}")


def _clone_stmt(stmt: Stmt, substitution: Dict[str, int]) -> Stmt:
    if isinstance(stmt, VarDecl):
        init = (_clone_expr(stmt.init, substitution)
                if stmt.init is not None else None)
        return VarDecl(stmt.name, stmt.typ, init)
    if isinstance(stmt, Assign):
        target = _clone_expr(stmt.target, substitution)
        if isinstance(stmt.target, NameRef) and stmt.target.name in substitution:
            raise TransformError(
                f"cannot specialize: parameter {stmt.target.name!r} is "
                "assigned inside the routine")
        return Assign(target, _clone_expr(stmt.value, substitution), stmt.op)
    if isinstance(stmt, If):
        return If(_clone_expr(stmt.cond, substitution),
                  [_clone_stmt(s, substitution) for s in stmt.then_body],
                  [_clone_stmt(s, substitution) for s in stmt.else_body])
    if isinstance(stmt, While):
        return While(_clone_expr(stmt.cond, substitution),
                     [_clone_stmt(s, substitution) for s in stmt.body],
                     bound=stmt.bound)
    if isinstance(stmt, Return):
        value = (_clone_expr(stmt.value, substitution)
                 if stmt.value is not None else None)
        return Return(value)
    if isinstance(stmt, ExprStmt):
        return ExprStmt(_clone_expr(stmt.expr, substitution))
    raise TransformError(f"cannot clone statement {stmt!r}")


def parameter_is_assigned(function: Function, name: str) -> bool:
    from repro.action.ast import walk_stmts

    for stmt in walk_stmts(function.body):
        if isinstance(stmt, Assign) and isinstance(stmt.target, NameRef):
            if stmt.target.name == name:
                return True
    return False


def specialize_call(function: Function, argument_values: Sequence[int],
                    clone_name: str) -> Function:
    """A parameterless clone of *function* with arguments folded in.

    Raises :class:`TransformError` when a parameter is reassigned inside the
    body (folding would change semantics).
    """
    if len(argument_values) != len(function.params):
        raise TransformError(
            f"{function.name} takes {len(function.params)} parameter(s), "
            f"got {len(argument_values)} value(s)")
    for param in function.params:
        if parameter_is_assigned(function, param.name):
            raise TransformError(
                f"{function.name}: parameter {param.name!r} is assigned; "
                "cannot fold")
    substitution = {param.name: value
                    for param, value in zip(function.params, argument_values)}
    body = [_clone_stmt(stmt, substitution) for stmt in function.body]
    return Function(clone_name, [], function.return_type, body,
                    wcet_override=function.wcet_override)


def clone_function(function: Function, new_name: str) -> Function:
    """A plain structural copy under a new name."""
    body = [_clone_stmt(stmt, {}) for stmt in function.body]
    return Function(new_name, copy.deepcopy(function.params),
                    function.return_type, body,
                    wcet_override=function.wcet_override)
