"""Semantic checks and type annotation for intermediate-C programs.

Responsibilities:

* build the symbol environment (globals, enum members, functions, plus the
  chart's events/conditions/ports injected as *externals*);
* annotate every expression node with its type (``Expr.typ``);
* enforce the dialect's restrictions:

  - **no recursion** — "functions can call other functions, but recursion is
    not permitted" (section 2); detected as any cycle in the call graph;
  - every called function or builtin exists, with the right argument count;
  - builtins naming events/conditions/ports get names of the right class;
  - assignment targets are lvalues of scalar type;
  - every ``while`` loop has an ``@bound`` annotation or the enclosing
    function an ``@wcet`` override (otherwise WCET analysis would have no
    bound — the paper requires explicit timing constraints in that case).

The checker returns a :class:`CheckedProgram` carrying the environment that
code generation (:mod:`repro.isa.codegen`) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.action.ast import (
    ArrayType,
    Assign,
    Binary,
    BinOp,
    BoolLiteral,
    BoolType,
    Call,
    COMPARISONS,
    EnumType,
    Expr,
    ExprStmt,
    FieldAccess,
    Function,
    If,
    Index,
    IntLiteral,
    IntType,
    LOGICALS,
    NameRef,
    Program,
    Return,
    Stmt,
    StructType,
    Type,
    Unary,
    UnOp,
    VarDecl,
    VoidType,
    While,
    called_functions,
    type_width,
)
from repro.action.stdlib import BUILTINS, is_builtin
from repro.analysis.diag import Diagnostic, Severity, SourceLocation


class CheckError(Exception):
    """Raised with every semantic problem found, joined together."""


@dataclass
class Externals:
    """Names the chart contributes to the routine environment."""

    events: Set[str] = field(default_factory=set)
    conditions: Set[str] = field(default_factory=set)
    ports: Set[str] = field(default_factory=set)

    @classmethod
    def from_chart(cls, chart) -> "Externals":
        return cls(events=set(chart.events),
                   conditions=set(chart.conditions),
                   ports=set(chart.ports))


@dataclass
class CheckedProgram:
    """A type-annotated program plus its resolved environment."""

    program: Program
    externals: Externals
    global_types: Dict[str, Type]
    #: topological order of the call graph (callees before callers)
    call_order: List[str]

    def function(self, name: str) -> Function:
        return self.program.function(name)


class _FunctionChecker:
    def __init__(self, checker: "Checker", function: Function) -> None:
        self.checker = checker
        self.function = function
        self.scopes: List[Dict[str, Type]] = [dict()]
        #: line of the statement currently being checked, for diagnostics
        self.current_line: Optional[int] = function.line
        for param in function.params:
            self.scopes[0][param.name] = param.typ

    def error(self, message: str) -> None:
        self.checker.error(message, line=self.current_line,
                           obj=f"function {self.function.name!r}")

    # -- scope helpers -------------------------------------------------------
    def lookup(self, name: str) -> Optional[Type]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return self.checker.global_types.get(name)

    def declare(self, name: str, typ: Type) -> None:
        if name in self.scopes[-1]:
            self.error(f"{self.function.name}: redeclaration of {name!r}")
        self.scopes[-1][name] = typ

    # -- statements -----------------------------------------------------------
    def check_body(self, body: List[Stmt]) -> None:
        self.scopes.append({})
        for stmt in body:
            self.check_stmt(stmt)
        self.scopes.pop()

    def check_stmt(self, stmt: Stmt) -> None:
        fname = self.function.name
        if getattr(stmt, "line", None) is not None:
            self.current_line = stmt.line
        if isinstance(stmt, VarDecl):
            if stmt.init is not None:
                self.check_expr(stmt.init)
            self.declare(stmt.name, stmt.typ)
        elif isinstance(stmt, Assign):
            target_type = self.check_expr(stmt.target)
            self.check_expr(stmt.value)
            if not isinstance(stmt.target, (NameRef, FieldAccess, Index)):
                self.error(f"{fname}: assignment to non-lvalue")
            elif isinstance(target_type, (StructType, ArrayType)):
                self.error(
                    f"{fname}: cannot assign whole {target_type}")
            elif (isinstance(stmt.target, NameRef)
                  and self.lookup(stmt.target.name) is None):
                pass  # already reported by check_expr
        elif isinstance(stmt, If):
            self.check_expr(stmt.cond)
            self.check_body(stmt.then_body)
            self.check_body(stmt.else_body)
        elif isinstance(stmt, While):
            self.check_expr(stmt.cond)
            if stmt.bound is None and self.function.wcet_override is None:
                self.error(
                    f"{fname}: while loop needs @bound(N) (or the function "
                    "an @wcet override) for timing analysis")
            if stmt.bound is not None and stmt.bound <= 0:
                self.error(f"{fname}: @bound must be positive")
            self.check_body(stmt.body)
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                self.check_expr(stmt.value)
                if isinstance(self.function.return_type, VoidType):
                    self.error(
                        f"{fname}: returning a value from a void function")
            elif not isinstance(self.function.return_type, VoidType):
                self.error(f"{fname}: missing return value")
        elif isinstance(stmt, ExprStmt):
            self.check_expr(stmt.expr)
        else:  # pragma: no cover - parser produces no other nodes
            self.error(f"{fname}: unknown statement {stmt!r}")

    # -- expressions ------------------------------------------------------------
    def check_expr(self, expr: Expr) -> Type:
        typ = self._infer(expr)
        expr.typ = typ
        return typ

    def _infer(self, expr: Expr) -> Type:
        fname = self.function.name
        error = self.error
        if isinstance(expr, IntLiteral):
            width = max(1, abs(expr.value).bit_length())
            return IntType(max(width, 1), signed=expr.value < 0)
        if isinstance(expr, BoolLiteral):
            return BoolType()
        if isinstance(expr, NameRef):
            typ = self.lookup(expr.name)
            if typ is not None:
                return typ
            externals = self.checker.externals
            if expr.name in externals.conditions:
                return BoolType()
            if expr.name in externals.ports:
                return IntType(8, signed=False)
            if expr.name in externals.events:
                error(f"{fname}: event {expr.name!r} used as a value "
                      "(use Raise(...) to emit it)")
                return BoolType()
            error(f"{fname}: unknown name {expr.name!r}")
            return IntType(16)
        if isinstance(expr, FieldAccess):
            base = self.check_expr(expr.base)
            if isinstance(base, StructType):
                try:
                    return base.field_type(expr.field)
                except KeyError:
                    error(f"{fname}: {base} has no field {expr.field!r}")
                    return IntType(16)
            error(f"{fname}: field access on non-struct {base}")
            return IntType(16)
        if isinstance(expr, Index):
            base = self.check_expr(expr.base)
            self.check_expr(expr.index)
            if isinstance(base, ArrayType):
                return base.element
            error(f"{fname}: indexing non-array {base}")
            return IntType(16)
        if isinstance(expr, Unary):
            operand = self.check_expr(expr.operand)
            if expr.op is UnOp.LNOT:
                return BoolType()
            if isinstance(operand, (StructType, ArrayType, VoidType)):
                error(f"{fname}: unary {expr.op.value} on {operand}")
                return IntType(16)
            return operand
        if isinstance(expr, Binary):
            left = self.check_expr(expr.left)
            right = self.check_expr(expr.right)
            if expr.op in COMPARISONS or expr.op in LOGICALS:
                return BoolType()
            for side in (left, right):
                if isinstance(side, (StructType, ArrayType, VoidType)):
                    error(f"{fname}: operator {expr.op.value} on {side}")
                    return IntType(16)
            width = max(type_width(left), type_width(right))
            signed = (getattr(left, "signed", False)
                      or getattr(right, "signed", False))
            return IntType(min(width, 64), signed=signed)
        if isinstance(expr, Call):
            return self._infer_call(expr)
        error(f"{fname}: unknown expression {expr!r}")
        return IntType(16)

    def _infer_call(self, call: Call) -> Type:
        fname = self.function.name
        error = self.error
        externals = self.checker.externals
        if is_builtin(call.name):
            kinds, return_type = BUILTINS[call.name]
            if len(call.args) != len(kinds):
                error(f"{fname}: {call.name} expects {len(kinds)} argument(s),"
                      f" got {len(call.args)}")
                return return_type
            for kind, arg in zip(kinds, call.args):
                if kind == "value":
                    self.check_expr(arg)
                    continue
                if not isinstance(arg, NameRef):
                    error(f"{fname}: {call.name} needs a bare {kind} name")
                    continue
                pool = {"event": externals.events,
                        "condition": externals.conditions,
                        "port": externals.ports}[kind]
                if arg.name not in pool:
                    error(f"{fname}: {call.name}: {arg.name!r} is not a "
                          f"declared {kind}")
                arg.typ = BoolType() if kind != "port" else IntType(8, False)
            return return_type
        try:
            callee = self.checker.program.function(call.name)
        except KeyError:
            error(f"{fname}: call to undefined function {call.name!r}")
            for arg in call.args:
                self.check_expr(arg)
            return IntType(16)
        if len(call.args) != len(callee.params):
            error(f"{fname}: {call.name} expects {len(callee.params)} "
                  f"argument(s), got {len(call.args)}")
        for arg in call.args:
            self.check_expr(arg)
        return callee.return_type


class Checker:
    def __init__(self, program: Program, externals: Optional[Externals] = None,
                 source_path: Optional[str] = None) -> None:
        self.program = program
        self.externals = externals or Externals()
        self.problems: List[str] = []
        #: structured form of ``problems``: same messages plus stable codes
        #: and source locations (line numbers threaded from the parser)
        self.diagnostics: List[Diagnostic] = []
        self.source_path = source_path
        self.global_types: Dict[str, Type] = {}

    def error(self, message: str, *, line: Optional[int] = None,
              code: str = "PSC302", obj: str = "") -> None:
        self.problems.append(message)
        self.diagnostics.append(Diagnostic(
            code=code, severity=Severity.ERROR, message=message,
            location=SourceLocation(file=self.source_path, line=line,
                                    obj=obj)))

    def analyze(self) -> CheckedProgram:
        """Check everything, collecting problems instead of raising.

        Every error is accumulated in :attr:`problems` (message strings)
        and :attr:`diagnostics` (coded, located) so callers can report all
        of them together.  The returned program is only trustworthy when
        no problems were found.
        """
        return self._run_checks()

    def run(self) -> CheckedProgram:
        checked = self._run_checks()
        if self.problems:
            raise CheckError(
                "action program is not well-formed:\n  " +
                "\n  ".join(self.problems))
        return checked

    def _run_checks(self) -> CheckedProgram:
        # enum members are global constants
        for enum_type in self.program.enums + [
                t for _, t in self.program.typedefs if isinstance(t, EnumType)]:
            for member in enum_type.members:
                self.global_types[member] = enum_type
        for struct in self.program.structs:
            for member_enum in (f for _, f in struct.fields
                                if isinstance(f, EnumType)):
                for member in member_enum.members:
                    self.global_types.setdefault(member, member_enum)
        for gvar in self.program.globals:
            if gvar.name in self.global_types:
                self.error(f"duplicate global {gvar.name!r}")
            self.global_types[gvar.name] = gvar.typ

        seen_functions: Set[str] = set()
        for function in self.program.functions:
            if function.name in seen_functions:
                self.error(f"duplicate function {function.name!r}")
            seen_functions.add(function.name)

        for function in self.program.functions:
            checker = _FunctionChecker(self, function)
            checker.check_body(function.body)

        call_order = self._check_recursion()

        return CheckedProgram(self.program, self.externals,
                              self.global_types, call_order)

    def _check_recursion(self) -> List[str]:
        """Reject call cycles; return callees-first topological order."""
        graph = {f.name: sorted(called_functions(f) & {
            g.name for g in self.program.functions})
            for f in self.program.functions}
        order: List[str] = []
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(name: str, stack: Tuple[str, ...]) -> None:
            if state.get(name) == 1:
                return
            if state.get(name) == 0:
                cycle = " -> ".join(stack[stack.index(name):] + (name,))
                self.error(f"recursion is not permitted: {cycle}",
                           code="PSC303",
                           line=self.program.function(name).line,
                           obj=f"function {name!r}")
                return
            state[name] = 0
            for callee in graph.get(name, ()):
                visit(callee, stack + (name,))
            state[name] = 1
            order.append(name)

        for name in graph:
            visit(name, ())
        return order


def check_program(program: Program,
                  externals: Optional[Externals] = None) -> CheckedProgram:
    """Check *program*; raises :class:`CheckError` listing every problem."""
    return Checker(program, externals).run()
