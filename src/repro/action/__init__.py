"""The intermediate C dialect for transition routines (Fig. 2b).

Public API::

    from repro.action import parse_program, parse_with_preamble, check_program
"""

from repro.action.ast import (
    ArrayType,
    Assign,
    Binary,
    BinOp,
    BoolLiteral,
    BoolType,
    Call,
    EnumType,
    Expr,
    ExprStmt,
    FieldAccess,
    Function,
    GlobalVar,
    If,
    Index,
    IntLiteral,
    IntType,
    NameRef,
    Param,
    Program,
    Return,
    Stmt,
    StructType,
    Type,
    Unary,
    UnOp,
    VarDecl,
    VoidType,
    While,
    called_functions,
    type_width,
    walk_expr,
    walk_stmts,
)
from repro.action.check import CheckedProgram, CheckError, Externals, check_program
from repro.action.lexer import LexError, Token, tokenize
from repro.action.parser import ActionParseError, parse_program, parse_with_preamble
from repro.action.stdlib import BUILTINS, PREAMBLE, is_builtin

__all__ = [
    "ActionParseError", "ArrayType", "Assign", "BUILTINS", "Binary", "BinOp",
    "BoolLiteral", "BoolType", "Call", "CheckError", "CheckedProgram",
    "EnumType", "Expr", "ExprStmt", "Externals", "FieldAccess", "Function",
    "GlobalVar", "If", "Index", "IntLiteral", "IntType", "LexError",
    "NameRef", "PREAMBLE", "Param", "Program", "Return", "Stmt",
    "StructType", "Token", "Type", "Unary", "UnOp", "VarDecl", "VoidType",
    "While", "called_functions", "check_program", "is_builtin",
    "parse_program", "parse_with_preamble", "tokenize", "type_width",
    "walk_expr", "walk_stmts",
]
