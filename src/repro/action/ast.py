"""AST for the intermediate C dialect (Fig. 2b).

The paper introduces "C as notation for the action parts of transition
labels" with two deviations from standard C:

* declarations of the form ``int:16`` give the exact bit width of data
  elements — "careful range specification helps the ASIP generator to select
  an optimal architecture";
* binary constants such as ``B:001011``.

Functions may call other functions, *recursion is not permitted* (checked by
:mod:`repro.action.check`).  The dialect supported here covers everything the
paper's figures show (enums, structs, typedefs, port declarations) plus the
statement forms any real transition routine needs: declarations with
initializers, assignment (including compound assignment), ``if``/``else``,
bounded ``while`` loops (``@bound(N)`` annotation drives the WCET analysis),
``return``, and call statements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# types
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class IntType:
    """``int:N`` — a signed integer of exactly N bits (``int`` = ``int:16``)."""

    width: int
    signed: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.width <= 64:
            raise ValueError(f"unsupported integer width {self.width}")

    def __str__(self) -> str:
        prefix = "int" if self.signed else "uint"
        return f"{prefix}:{self.width}"


@dataclass(frozen=True)
class BoolType:
    """1-bit truth value (conditions, comparison results)."""

    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class VoidType:
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class EnumType:
    """A named enumeration; members carry small integer values."""

    name: str
    members: Tuple[str, ...]

    def value_of(self, member: str) -> int:
        return self.members.index(member)

    @property
    def width(self) -> int:
        return max(1, (len(self.members) - 1).bit_length())

    def __str__(self) -> str:
        return f"enum {self.name}"


@dataclass(frozen=True)
class StructType:
    """A named struct; fields are (name, type) pairs laid out in order."""

    name: str
    fields: Tuple[Tuple[str, "Type"], ...]

    def field_type(self, name: str) -> "Type":
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def __str__(self) -> str:
        return f"struct {self.name}"


@dataclass(frozen=True)
class ArrayType:
    element: "Type"
    length: int

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


Type = Union[IntType, BoolType, VoidType, EnumType, StructType, ArrayType]


def type_width(t: Type) -> int:
    """Storage width in bits of a value of type *t*."""
    if isinstance(t, IntType):
        return t.width
    if isinstance(t, BoolType):
        return 1
    if isinstance(t, EnumType):
        return t.width
    if isinstance(t, StructType):
        return sum(type_width(ft) for _, ft in t.fields)
    if isinstance(t, ArrayType):
        return type_width(t.element) * t.length
    if isinstance(t, VoidType):
        return 0
    raise TypeError(f"not a type: {t!r}")


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class of expression nodes.  ``typ`` is filled by the checker."""

    typ: Optional[Type] = None


@dataclass
class IntLiteral(Expr):
    value: int
    #: textual base for round-tripping: 10, 2 ('B:...'), 16, or 8
    base: int = 10
    typ: Optional[Type] = None

    def __str__(self) -> str:
        if self.base == 2:
            return "B:" + bin(self.value)[2:]
        if self.base == 16:
            return hex(self.value)
        return str(self.value)


@dataclass
class BoolLiteral(Expr):
    value: bool
    typ: Optional[Type] = None

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass
class NameRef(Expr):
    """A variable, parameter, enum member, port or condition reference."""

    name: str
    typ: Optional[Type] = None

    def __str__(self) -> str:
        return self.name


@dataclass
class FieldAccess(Expr):
    base: Expr
    field: str
    typ: Optional[Type] = None

    def __str__(self) -> str:
        return f"{self.base}.{self.field}"


@dataclass
class Index(Expr):
    base: Expr
    index: Expr
    typ: Optional[Type] = None

    def __str__(self) -> str:
        return f"{self.base}[{self.index}]"


class BinOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    AND = "&"
    OR = "|"
    XOR = "^"
    SHL = "<<"
    SHR = ">>"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    LAND = "&&"
    LOR = "||"


COMPARISONS = {BinOp.EQ, BinOp.NE, BinOp.LT, BinOp.LE, BinOp.GT, BinOp.GE}
LOGICALS = {BinOp.LAND, BinOp.LOR}


@dataclass
class Binary(Expr):
    op: BinOp
    left: Expr
    right: Expr
    typ: Optional[Type] = None

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


class UnOp(enum.Enum):
    NEG = "-"
    BNOT = "~"
    LNOT = "!"


@dataclass
class Unary(Expr):
    op: UnOp
    operand: Expr
    typ: Optional[Type] = None

    def __str__(self) -> str:
        return f"{self.op.value}{self.operand}"


@dataclass
class Call(Expr):
    name: str
    args: List[Expr]
    typ: Optional[Type] = None

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

class Stmt:
    """Base class of statement nodes."""


@dataclass
class VarDecl(Stmt):
    name: str
    typ: Type
    init: Optional[Expr] = None
    #: source line (filled by the parser; None for synthesized nodes)
    line: Optional[int] = None

    def __str__(self) -> str:
        init = f" = {self.init}" if self.init is not None else ""
        return f"{self.typ} {self.name}{init};"


@dataclass
class Assign(Stmt):
    """``target op= value``; plain assignment has ``op is None``."""

    target: Expr
    value: Expr
    op: Optional[BinOp] = None
    line: Optional[int] = None

    def __str__(self) -> str:
        op = (self.op.value if self.op else "") + "="
        return f"{self.target} {op} {self.value};"


@dataclass
class If(Stmt):
    cond: Expr
    then_body: List[Stmt]
    else_body: List[Stmt] = field(default_factory=list)
    line: Optional[int] = None


@dataclass
class While(Stmt):
    cond: Expr
    body: List[Stmt]
    #: maximum iteration count, from an ``@bound(N)`` annotation; required
    #: for WCET analysis ("otherwise explicit timing constraints must be
    #: specified" — section 4).
    bound: Optional[int] = None
    line: Optional[int] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None
    line: Optional[int] = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr
    line: Optional[int] = None


# ---------------------------------------------------------------------------
# top-level declarations
# ---------------------------------------------------------------------------

@dataclass
class Param:
    name: str
    typ: Type


@dataclass
class Function:
    name: str
    params: List[Param]
    return_type: Type
    body: List[Stmt]
    #: explicit WCET override in cycles (used instead of analysis if set)
    wcet_override: Optional[int] = None
    line: Optional[int] = None


@dataclass
class GlobalVar:
    name: str
    typ: Type
    init: Optional[Expr] = None
    #: initializer list for structs/arrays, e.g. ``{Event,1,0700,Output}``
    init_list: Optional[List[Expr]] = None


@dataclass
class Program:
    """A complete intermediate-C translation unit."""

    enums: List[EnumType] = field(default_factory=list)
    structs: List[StructType] = field(default_factory=list)
    typedefs: List[Tuple[str, Type]] = field(default_factory=list)
    globals: List[GlobalVar] = field(default_factory=list)
    functions: List[Function] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function {name!r}")

    def global_var(self, name: str) -> GlobalVar:
        for g in self.globals:
            if g.name == name:
                return g
        raise KeyError(f"no global {name!r}")


def walk_expr(expr: Expr):
    """Yield *expr* and every sub-expression, preorder."""
    yield expr
    if isinstance(expr, Binary):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, Unary):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, FieldAccess):
        yield from walk_expr(expr.base)
    elif isinstance(expr, Index):
        yield from walk_expr(expr.base)
        yield from walk_expr(expr.index)


def walk_stmts(stmts: Sequence[Stmt]):
    """Yield every statement in *stmts*, recursively, preorder."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, While):
            yield from walk_stmts(stmt.body)


def called_functions(function: Function) -> set:
    """Names of all functions called (directly) by *function*."""
    names = set()
    for stmt in walk_stmts(function.body):
        exprs: List[Expr] = []
        if isinstance(stmt, ExprStmt):
            exprs.append(stmt.expr)
        elif isinstance(stmt, Assign):
            exprs.extend([stmt.target, stmt.value])
        elif isinstance(stmt, VarDecl) and stmt.init is not None:
            exprs.append(stmt.init)
        elif isinstance(stmt, If):
            exprs.append(stmt.cond)
        elif isinstance(stmt, While):
            exprs.append(stmt.cond)
        elif isinstance(stmt, Return) and stmt.value is not None:
            exprs.append(stmt.value)
        for expr in exprs:
            for node in walk_expr(expr):
                if isinstance(node, Call):
                    names.add(node.name)
    return names
